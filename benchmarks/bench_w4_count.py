"""E4: exact weight counting -- the paper's §3 headline numbers.

* W4(12112) = 223,059 for the 802.3 polynomial ("this particular
  polynomial ... will fail to detect the 223,059 four-bit possible
  errors"), with the "slightly more than 1 in 2^32" aliasing fraction.
* The §4.1 worked example: exactly ONE undetected 4-bit error at 2975
  bits, zero at 2974.
"""

from __future__ import annotations

from math import comb

from conftest import once
from repro.gf2.notation import koopman_to_full
from repro.hd.weights import count_weight_4, undetected_fraction, weight_profile

G_8023 = koopman_to_full(0x82608EDB)
MTU = 12112


def test_w4_at_mtu(benchmark, record):
    w4 = once(benchmark, count_weight_4, G_8023, MTU + 32)
    record("w4_count", {
        "8023_W4_at_12112": {"paper": 223059, "measured": w4},
        "codeword_bits": MTU + 32,
        "combinations": comb(MTU + 32, 4),
    })
    assert w4 == 223059
    # "slightly more than 1 out of every 2^32 possible errors"
    frac = undetected_fraction(w4, MTU + 32, 4)
    assert 1.0 < frac * 2**32 < 1.1
    benchmark.extra_info["W4"] = w4


def test_worked_example_weights(benchmark, record):
    def both():
        return (
            weight_profile(G_8023, 2974, 4),
            weight_profile(G_8023, 2975, 4),
        )

    at_2974, at_2975 = once(benchmark, both)
    record("w4_count", {
        "8023_weights_at_2974": at_2974,
        "8023_weights_at_2975": at_2975,
    })
    assert at_2974 == {2: 0, 3: 0, 4: 0}
    assert at_2975 == {2: 0, 3: 0, 4: 1}  # "in fact exactly one"
