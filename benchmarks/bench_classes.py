"""E3b: class-restricted search -- Castagnoli's methodology, reproduced.

The paper's §3 describes the pre-2002 state of the art: construct
candidates from promising factorization classes and evaluate only
those.  Two measurements here:

* **necessity is not sufficiency**: random members of the winning
  {1,3,28} class are screened for HD>=6 at 2048 bits.  Nearly all die
  (only 448 of ~19.2 million class members achieve HD=6 at MTU, so a
  small sample contains none) while 0xBA0DC66B sails through --
  reproducing the paper's warning that "a polynomial with a promising
  factorization might be vulnerable ... specific evaluation is
  required".
* **restricted vs exhaustive** at a scaled width where both are
  feasible (width 10): the class-restricted search finds only members
  of the preselected classes, while the exhaustive sweep finds every
  survivor -- quantifying what Castagnoli's approach could and could
  not see.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.crc.catalog import PAPER_POLYS
from repro.gf2.factorize import factor_degrees
from repro.hd.breakpoints import refute_hd_at
from repro.search.classes import class_size, sample_class_members
from repro.search.exhaustive import SearchConfig, search_all


def test_class_membership_is_not_sufficient(benchmark, record):
    """Two-stage screen of random {1,3,28} members, reproducing both
    halves of the paper's story:

    * the class structure is *powerful*: at 2048 bits a sizable
      fraction of random members still holds HD=6 -- far beyond what
      a random even-weight code could (C(2080,4)/2^31 ~ 360 expected
      undetected 4-bit errors);
    * it is *not sufficient*: at MTU length only 448 of ~19.2 million
      members qualify (Table 2), so a 12-member sample is expected to
      lose everyone -- while 0xBA0DC66B sails through.
    """
    ba0d = PAPER_POLYS["BA0DC66B"].full

    def screen():
        sample = sample_class_members((1, 3, 28), 12, seed=2002)
        for g in sample:
            assert factor_degrees(g) == [1, 3, 28]
        stage1 = [g for g in sample if refute_hd_at(g, 6, 2048) is None]
        stage2 = [g for g in stage1 if refute_hd_at(g, 6, 12112) is None]
        survivor_ok = refute_hd_at(ba0d, 6, 12112) is None
        return len(sample), len(stage1), len(stage2), survivor_ok

    total, at_2048, at_mtu, survivor_ok = once(benchmark, screen)
    record("classes", {"necessity_not_sufficiency": {
        "class": "{1,3,28}",
        "class_size": class_size((1, 3, 28)),
        "paper_hd6_members_at_mtu": 448,
        "sampled": total,
        "hold_hd6_at_2048": at_2048,
        "hold_hd6_at_12112": at_mtu,
        "ba0dc66b_holds_at_12112": survivor_ok,
    }})
    assert survivor_ok
    # density at MTU is 448 / 19.2M ~ 2e-5: the sample losing every
    # member at 12112 bits is the overwhelmingly expected outcome
    assert at_mtu == 0
    # ...and the class structure genuinely helps at shorter lengths
    assert at_2048 >= 1


def test_restricted_vs_exhaustive_width10(benchmark, record):
    """At width 10, run both methodologies to completion and compare
    coverage."""

    def both():
        cfg = SearchConfig(width=10, target_hd=4, filter_lengths=(32, 200),
                           confirm_weights=False)
        exhaustive = search_all(cfg)
        survivor_classes = {
            tuple(factor_degrees(r.poly)) for r in exhaustive.survivors
        }
        # A Castagnoli-style study would preselect a couple of shapes:
        preselected = {(1, 9), (1, 1, 8)}
        visible = [
            r.poly for r in exhaustive.survivors
            if tuple(factor_degrees(r.poly)) in preselected
        ]
        return exhaustive, survivor_classes, preselected, visible

    exhaustive, survivor_classes, preselected, visible = once(benchmark, both)
    missed = {
        sig for sig in survivor_classes if sig not in preselected
    }
    record("classes", {"restricted_vs_exhaustive_width10": {
        "exhaustive_survivors": len(exhaustive.survivors),
        "survivor_classes": sorted(str(s) for s in survivor_classes),
        "preselected_classes": sorted(str(s) for s in preselected),
        "visible_to_restricted": len(visible),
        "classes_missed_by_restricted": sorted(str(s) for s in missed),
    }})
    # the paper's point: the exhaustive sweep sees classes a
    # preselection would have skipped (like {1,3,28} at width 32)
    assert len(exhaustive.survivors) >= len(visible)
    assert survivor_classes  # non-vacuous
