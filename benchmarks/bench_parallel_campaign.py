"""E7b: wall-clock scaling of the process-parallel campaign backend.

The paper bought its throughput with ~80 workstations; this exhibit
shows the reproduction buying it with cores.  A small-width exhaustive
search runs through :class:`repro.dist.pool.ParallelCoordinator` at
1, 2 and 4 processes; with per-chunk work dominating the pool's
submission overhead the scaling should be near linear up to the
machine's core count.  Speedup is asserted only when the host actually
has the cores (CI runners and laptops vary); the measured curve is
always recorded to ``results/parallel_campaign.json``.
"""

from __future__ import annotations

import os

from conftest import once
from repro.dist.pool import ParallelCoordinator
from repro.search.exhaustive import SearchConfig, search_all

CFG = SearchConfig.for_bits(12, 4, 300)
CHUNK_SIZE = 64  # 2**11 indices -> 32 chunks, plenty per process


def run_with(processes: int) -> tuple[float, ParallelCoordinator]:
    runner = ParallelCoordinator(
        config=CFG,
        chunk_size=CHUNK_SIZE,
        processes=processes,
        lease_duration=120.0,
        max_seconds=600.0,
    )
    elapsed = runner.run()
    return elapsed, runner


def test_parallel_speedup(benchmark, record):
    baseline = search_all(CFG)
    truth = {r.poly: r.survived for r in baseline.records}

    def sweep():
        return {procs: run_with(procs) for procs in (1, 2, 4)}

    results = once(benchmark, sweep)
    for procs, (elapsed, runner) in results.items():
        # Correctness first: every fleet size produces the identical
        # campaign record.
        assert runner.queue.all_done
        assert runner.campaign.candidates_examined == baseline.examined
        assert {
            r.poly: r.survived for r in runner.campaign.results.values()
        } == truth

    t1 = results[1][0]
    cores = os.cpu_count() or 1
    speedups = {procs: t1 / elapsed for procs, (elapsed, _) in results.items()}
    record("parallel_campaign", {
        "width": CFG.width,
        "final_length": CFG.final_length,
        "candidates": baseline.examined,
        "chunks": len(results[1][1].queue),
        "host_cores": cores,
        "wall_seconds": {
            str(p): round(e, 3) for p, (e, _) in results.items()
        },
        "speedup_vs_1": {str(p): round(s, 2) for p, s in speedups.items()},
    })
    if cores >= 4:
        assert speedups[4] >= 2.5, f"4-process speedup only {speedups[4]:.2f}x"
    if cores >= 2:
        assert speedups[2] >= 1.5, f"2-process speedup only {speedups[2]:.2f}x"
