"""E2/E11 (REPRO_FULL): the long cells of Table 1, exactly.

These are the computations the paper needed days of 2001 hardware (or
could not complete at all) for, each an exact single-CPU measurement
here thanks to the MITM engine:

* 0xBA0DC66B: HD=6 through 16,360 bits (the '19-day' cell);
* 0xFA567D89: HD=6 through 32,736;
* 0x992C1A4C: HD=6 through 32,738 (2014 erratum; original said 32,737);
* 0x90022004: HD=6 through 32,738;
* 0xD419CC15 / 0x80108400: HD=5 through 65,505;
* 802.3: HD=4 through 91,607.

Run with ``REPRO_FULL=1 pytest benchmarks/bench_table1_full.py
--benchmark-only`` (budget ~15-25 minutes total).
"""

from __future__ import annotations

import pytest

from conftest import once, requires_full
from repro.crc.catalog import PAPER_POLYS
from repro.hd.breakpoints import first_failure_length

pytestmark = requires_full


@pytest.mark.parametrize(
    "key,k,n_max,paper_first_failure",
    [
        # (polynomial, weight, search bound, expected first failure)
        ("BA0DC66B", 4, 20_000, 16_361),
        ("FA567D89", 4, 40_000, 32_737),
        ("992C1A4C", 4, 40_000, 32_739),   # 2014 erratum
        ("90022004", 4, 40_000, 32_739),
        ("802.3", 3, 95_000, 91_608),
    ],
    ids=["ba0d_w4", "fa56_w4", "992c_w4_erratum", "9002_w4", "8023_w3"],
)
def test_first_failure_long_cells(benchmark, record, key, k, n_max, paper_first_failure):
    pp = PAPER_POLYS[key]
    n = once(benchmark, lambda: first_failure_length(pp.full, k, n_max=n_max))
    record("table1_full", {f"{key}_w{k}_first_failure": {
        "paper": paper_first_failure, "measured": n,
    }})
    assert n == paper_first_failure


@pytest.mark.parametrize(
    "key,n_clear",
    [("D419CC15", 65_505), ("80108400", 65_505)],
    ids=["d419_hd5", "8010_hd5"],
)
def test_hd5_to_65505(benchmark, record, key, n_clear):
    """{32}-class cells: no weight-3 or weight-4 failure through
    65,505 bits; the HD=2 onset at 65,506 is order-derived."""
    pp = PAPER_POLYS[key]

    def verify():
        w3 = first_failure_length(pp.full, 3, n_max=n_clear)
        w4 = first_failure_length(pp.full, 4, n_max=n_clear)
        return w3, w4

    w3, w4 = once(benchmark, verify)
    record("table1_full", {f"{key}_hd5_through_65505": {
        "w3_first_failure": w3, "w4_first_failure": w4,
        "paper": "HD=5 through 65505, HD=2 from 65506",
    }})
    assert w3 is None and w4 is None
    from repro.gf2.order import order_of_x

    assert order_of_x(pp.full) == 65_537
