"""Coordination overhead of the network farm backend.

The farm exists for machines the pool backend cannot reach, so the
question this exhibit answers is: what does the NDJSON protocol cost
over doing the same work inline?  A small exhaustive campaign runs
three ways -- single-process reference, a 1-worker loopback farm
(pure protocol overhead), and a 3-worker loopback farm -- and every
variant must produce the identical campaign record.  The loopback
transport keeps the numbers about framing, leasing and heartbeats
rather than kernel socket buffers; per-chunk wall time and protocol
overhead land in ``results/net_farm.json``.
"""

from __future__ import annotations

import asyncio
import time

from conftest import once
from repro.dist.net import WorkClient, WorkServer
from repro.dist.tasks import partition_space
from repro.dist.transport import LoopbackTransport
from repro.search.exhaustive import SearchConfig, search_chunk
from repro.search.records import CampaignRecord

CFG = SearchConfig.for_bits(10, 4, 300)
CHUNK_SIZE = 32  # 2**9 candidates -> 16 chunks


def run_reference() -> tuple[float, CampaignRecord]:
    t0 = time.perf_counter()
    record = CampaignRecord(
        width=CFG.width,
        data_word_bits=CFG.final_length,
        target_hd=CFG.target_hd,
    )
    for task in partition_space(CFG.width, CHUNK_SIZE):
        res = search_chunk(CFG, task.start_index, task.end_index)
        record.merge_chunk(task.chunk_id, res.records, res.examined)
    return time.perf_counter() - t0, record


def run_farm(workers: int) -> tuple[float, WorkServer]:
    transport = LoopbackTransport()
    server = WorkServer(
        CFG,
        CHUNK_SIZE,
        transport,
        lease_duration=30.0,
        handle_signals=False,
        max_seconds=600.0,
    )
    clients = [
        WorkClient("loopback:0", transport, f"bench-w{i}")
        for i in range(workers)
    ]

    async def farm():
        return await asyncio.gather(
            server.serve(), *[c.run() for c in clients]
        )

    t0 = time.perf_counter()
    rcs = asyncio.run(farm())
    elapsed = time.perf_counter() - t0
    assert rcs == [0] * (workers + 1)
    return elapsed, server


def test_farm_overhead(benchmark, record):
    def sweep():
        ref_elapsed, ref_record = run_reference()
        farms = {workers: run_farm(workers) for workers in (1, 3)}
        return ref_elapsed, ref_record, farms

    ref_elapsed, ref_record, farms = once(benchmark, sweep)
    ref_json = ref_record.to_json()
    for workers, (elapsed, server) in farms.items():
        # Correctness first: every farm size produces the identical
        # campaign record, byte for byte.
        assert server.queue.all_done
        assert server.campaign.to_json() == ref_json
        assert server.stats.duplicate_deliveries == 0

    chunks = len(farms[1][1].queue)
    solo_elapsed = farms[1][0]
    # The 1-worker farm does the reference's work plus every protocol
    # round trip: the difference, per chunk, is the coordination tax.
    overhead_ms = max(solo_elapsed - ref_elapsed, 0.0) * 1000.0 / chunks
    record("net_farm", {
        "width": CFG.width,
        "final_length": CFG.final_length,
        "chunks": chunks,
        "candidates": ref_record.candidates_examined,
        "wall_seconds": {
            "reference": round(ref_elapsed, 3),
            "farm_1_worker": round(solo_elapsed, 3),
            "farm_3_workers": round(farms[3][0], 3),
        },
        "protocol_overhead_ms_per_chunk": round(overhead_ms, 2),
    })
    # Guardrail, not a race: leasing a chunk over the farm protocol
    # must stay well under the cost of computing one.
    assert overhead_ms < 250.0, (
        f"protocol overhead {overhead_ms:.1f}ms per chunk"
    )
