"""E3: Table 2 -- factorization-class census of HD-target survivors.

The paper's 32-bit census (21,292 HD=6-at-MTU survivors in 8 classes,
all divisible by (x+1)) required the full farm campaign; per DESIGN.md
the census *machinery* is reproduced exhaustively at scaled widths:

* width 8 (default): all 128 generators, HD>=4 at a 100-bit "MTU".
* width 10 (default): all 512 generators, HD>=4 at 200 bits.
* width 12 (REPRO_FULL): all 2048 generators, HD>=5 at a 240-bit MTU
  analogue -- the closest scaled analogue of "HD better than the
  deployed standard at MTU".

The paper's structural law -- every survivor divisible by (x+1) --
is asserted at each width for even HD targets.
"""

from __future__ import annotations

import pytest

from conftest import once, requires_full
from repro.analysis.tables import render_table2
from repro.search.census import census_of
from repro.search.exhaustive import SearchConfig, expected_examined, search_all


def run_census(width: int, target_hd: int, lengths: tuple[int, ...]):
    cfg = SearchConfig(
        width=width, target_hd=target_hd, filter_lengths=lengths,
        confirm_weights=False,
    )
    res = search_all(cfg)
    return res, census_of(res.survivors)


def test_width8_census(benchmark, record, results_dir):
    res, census = once(benchmark, run_census, 8, 4, (16, 40, 100))
    assert res.examined == expected_examined(8)
    assert census.total > 0
    assert census.all_divisible_by_x_plus_1()
    text = render_table2(census, title="width-8 HD>=4 @ 100 bits census")
    (results_dir / "table2_width8.txt").write_text(text)
    record("table2", {
        "width8_hd4_at_100": {
            "examined": res.examined,
            "survivors": census.total,
            "classes": {str(sig): c for sig, c in census.sorted_rows()},
            "all_div_x_plus_1": True,
        }
    })
    benchmark.extra_info["survivors"] = census.total


def test_width10_census(benchmark, record, results_dir):
    """Width-10 census -- including a finding the scaled study
    surfaces: the (x+1) law is a property of the 32-bit/MTU regime,
    not a theorem.  At width 10 / HD>=4 / 200 bits, three {4,6}-class
    survivors are NOT divisible by (x+1) (they hold W3 = 0 over this
    range without the parity crutch).  Recorded, and asserted to stay
    a small minority."""
    res, census = once(benchmark, run_census, 10, 4, (32, 80, 200))
    assert res.examined == expected_examined(10)
    violators = census.violators_of_x_plus_1()
    (results_dir / "table2_width10.txt").write_text(
        render_table2(census, title="width-10 HD>=4 @ 200 bits census")
    )
    record("table2", {
        "width10_hd4_at_200": {
            "examined": res.examined,
            "survivors": census.total,
            "classes": {str(sig): c for sig, c in census.sorted_rows()},
            "x_plus_1_violators": [hex(v) for v in violators],
        }
    })
    # every violator genuinely earns its place (exact re-check)
    from repro.hd.hamming import hamming_distance

    for v in violators:
        assert hamming_distance(v, 200) >= 4
    assert len(violators) < census.total // 10


@requires_full
def test_width16_census_full(benchmark, record, results_dir):
    """The genuine scaled Table 2: every one of the 32,768 16-bit
    generators screened for HD>=6 at a 135-bit 'scaled MTU' (the
    length regime where the best 16-bit polynomials hold HD=6, as the
    32-bit ones do at 12112).  All survivors classified; the (x+1) law
    asserted."""
    res, census = once(benchmark, run_census, 16, 6, (40, 90, 135))
    assert res.examined == expected_examined(16)
    (results_dir / "table2_width16.txt").write_text(
        render_table2(census, title="width-16 HD>=6 @ 135 bits census "
                                    "(scaled Table 2)")
    )
    record("table2", {
        "width16_hd6_at_135": {
            "examined": res.examined,
            "survivors": census.total,
            "classes": {str(sig): c for sig, c in census.sorted_rows()},
            "all_div_x_plus_1": census.all_divisible_by_x_plus_1(),
        }
    })
    if census.total:
        assert census.all_divisible_by_x_plus_1()


@requires_full
def test_width12_census_full(benchmark, record, results_dir):
    res, census = once(benchmark, run_census, 12, 5, (32, 120, 240))
    assert res.examined == expected_examined(12)
    (results_dir / "table2_width12.txt").write_text(
        render_table2(census, title="width-12 HD>=5 @ 240 bits census")
    )
    record("table2", {
        "width12_hd5_at_240": {
            "examined": res.examined,
            "survivors": census.total,
            "classes": {str(sig): c for sig, c in census.sorted_rows()},
        }
    })


def test_32bit_named_class_membership(benchmark, record):
    """At width 32 the census machinery is applied to the paper's
    named survivors: their classes are Table 2 rows, and the four
    HD=6-at-MTU polynomials obey the (x+1) law."""
    from repro.crc.catalog import PAPER_POLYS
    from repro.gf2.poly import divisible_by_x_plus_1

    def classify():
        hd6 = [
            pp.full for pp in PAPER_POLYS.values()
            if pp.hd_breaks.get(6, 0) >= 12112
        ]
        return census_of(hd6)

    census = once(benchmark, classify)
    rows = {sig: c for sig, c in census.sorted_rows()}
    # classes seen among the named HD=6 polys, all present in Table 2
    assert set(rows) <= {(1, 3, 28), (1, 1, 15, 15), (1, 1, 30)}
    assert census.all_divisible_by_x_plus_1()
    record("table2", {
        "named_32bit_hd6_classes": {str(s): c for s, c in rows.items()},
        "paper_table2_rows": {
            "{1,1,30}": 658, "{1,3,28}": 448, "{1,1,15,15}": 9887,
            "{1,1,2,28}": 895, "{1,3,14,14}": 4154, "{1,1,1,1,28}": 448,
            "{1,1,2,14,14}": 2639, "{1,1,1,1,14,14}": 2263,
        },
    })
