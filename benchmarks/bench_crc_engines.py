"""E12: CRC engine throughput (substrate performance).

The paper's polynomials only matter if CRCs stay cheap to compute at
line rate; this measures the three software engines on an MTU-sized
payload and the per-byte cost ordering (bit-serial << table <<
slice-by-4 is the expected *throughput* ordering).  These are true
microbenchmarks (multiple rounds), unlike the reproduction
measurements elsewhere in the harness."""

from __future__ import annotations

import pytest

from repro.crc.catalog import get_spec
from repro.crc.engine import crc_bitwise, crc_slice4, crc_table

SPEC = get_spec("CRC-32/IEEE-802.3")
PAYLOAD = bytes(range(256)) * 6  # 1536 bytes ~ one MTU frame


@pytest.fixture(scope="module")
def expected():
    return crc_bitwise(SPEC, PAYLOAD)


def test_bitwise_engine(benchmark, expected):
    result = benchmark(crc_bitwise, SPEC, PAYLOAD)
    assert result == expected


def test_table_engine(benchmark, expected):
    # warm the table cache outside the timed region
    crc_table(SPEC, b"warm")
    result = benchmark(crc_table, SPEC, PAYLOAD)
    assert result == expected


def test_slice4_engine(benchmark, expected):
    crc_slice4(SPEC, b"warm")
    result = benchmark(crc_slice4, SPEC, PAYLOAD)
    assert result == expected


def test_sparse_poly_register_cost(benchmark, record):
    """The hardware argument for 0x90022004/0x80108400: fewer feedback
    taps.  Software analogue measured here: tap count drives the
    bit-serial engine's XOR work; recorded alongside gate counts."""
    from repro.crc.engine import BitSerialRegister
    from repro.crc.spec import CRCSpec
    from repro.gf2.notation import koopman_to_full

    def gate_counts():
        out = {}
        for key, koop in [("802.3", 0x82608EDB), ("90022004", 0x90022004),
                          ("80108400", 0x80108400), ("BA0DC66B", 0xBA0DC66B)]:
            full = koopman_to_full(koop)
            spec = CRCSpec(name=key, width=32, poly=full & 0xFFFFFFFF)
            out[key] = BitSerialRegister(spec).xor_gate_count
        return out

    counts = benchmark.pedantic(gate_counts, rounds=1, iterations=1)
    record("crc_engines", {"xor_gate_counts": counts})
    assert counts["80108400"] < counts["90022004"] < counts["802.3"]
    assert counts["BA0DC66B"] > counts["90022004"]
