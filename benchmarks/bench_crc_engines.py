"""E12: CRC engine throughput (substrate performance).

The paper's polynomials only matter if CRCs stay cheap to compute at
line rate; this measures the generated kernel registry
(:mod:`repro.crc.backends`) on MTU-sized payloads: every registered
backend of every catalog spec, correctness asserted against the
bit-serial reference before any timing is kept.  The per-byte cost
ordering (bit-serial << table << slice-by-N, with the numpy wordwise
kernel ahead on large buffers) is the expected *throughput* ordering.
These are true microbenchmarks (multiple rounds), unlike the
reproduction measurements elsewhere in the harness.

Output: ``results/crc_engines.json`` plus the committed
``BENCH_crc_engines.json`` at the repo root (schema 1, like
``BENCH_batched_search.json``).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from conftest import once
from repro.crc.backends import available_backends, crc_compute
from repro.crc.catalog import CATALOG, get_spec
from repro.crc.engine import crc_bitwise

SPEC = get_spec("CRC-32/IEEE-802.3")
PAYLOAD = bytes(range(256)) * 6  # 1536 bytes ~ one MTU frame
SWEEP_PAYLOAD = bytes((i * 151 + 43) & 0xFF for i in range(4096))
SWEEP_REPS = 3

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def expected():
    return crc_bitwise(SPEC, PAYLOAD)


@pytest.mark.parametrize("backend", ["bitwise", "bytewise", "slice4", "slice8",
                                     "wordwise"])
def test_engine_backend(benchmark, expected, backend):
    if backend not in available_backends(SPEC):
        pytest.skip(f"{backend} backend not registered here")
    crc_compute(SPEC, b"warm", backend=backend)  # build outside the clock
    result = benchmark(crc_compute, SPEC, PAYLOAD, backend=backend)
    assert result == expected


def test_backend_sweep(benchmark, record):
    """Every catalog spec through every registered backend: correctness
    against the reference, then best-of-``SWEEP_REPS`` throughput."""

    def sweep():
        rows = {}
        for name in sorted(CATALOG):
            spec = CATALOG[name]
            ref = crc_bitwise(spec, SWEEP_PAYLOAD)
            per_backend = {}
            for backend in available_backends(spec):
                assert crc_compute(spec, SWEEP_PAYLOAD, backend=backend) == ref
                best = None
                for _ in range(SWEEP_REPS):
                    t0 = time.perf_counter()
                    crc_compute(spec, SWEEP_PAYLOAD, backend=backend)
                    elapsed = time.perf_counter() - t0
                    if best is None or elapsed < best:
                        best = elapsed
                per_backend[backend] = len(SWEEP_PAYLOAD) / best / 1e6
            rows[name] = per_backend
        return rows

    rows = once(benchmark, sweep)

    metrics = {
        name: {backend: round(mbps, 2) for backend, mbps in per.items()}
        for name, per in rows.items()
    }
    record("crc_engines", {"backend_mbyte_per_s": metrics})

    bench = {
        "bench": "crc_engines",
        "schema": 1,
        "config": {
            "payload_bytes": len(SWEEP_PAYLOAD),
            "reps": SWEEP_REPS,
            "specs": sorted(CATALOG),
        },
        "metrics": {"backend_mbyte_per_s": metrics},
    }
    out = REPO_ROOT / "BENCH_crc_engines.json"
    tmp = str(out) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(bench, f, indent=1, sort_keys=True)
        f.write("\n")
    os.replace(tmp, out)

    # The registry's reason to exist: the table kernels must beat the
    # bit-serial loop on every spec, narrow and mixed-reflection ones
    # included.
    for name, per in rows.items():
        assert per["slice8"] > per["bitwise"], name


def test_sparse_poly_register_cost(benchmark, record):
    """The hardware argument for 0x90022004/0x80108400: fewer feedback
    taps.  Software analogue measured here: tap count drives the
    bit-serial engine's XOR work; recorded alongside gate counts."""
    from repro.crc.engine import BitSerialRegister
    from repro.crc.spec import CRCSpec
    from repro.gf2.notation import koopman_to_full

    def gate_counts():
        out = {}
        for key, koop in [("802.3", 0x82608EDB), ("90022004", 0x90022004),
                          ("80108400", 0x80108400), ("BA0DC66B", 0xBA0DC66B)]:
            full = koopman_to_full(koop)
            spec = CRCSpec(name=key, width=32, poly=full & 0xFFFFFFFF)
            out[key] = BitSerialRegister(spec).xor_gate_count
        return out

    counts = benchmark.pedantic(gate_counts, rounds=1, iterations=1)
    record("crc_engines", {"xor_gate_counts": counts})
    assert counts["80108400"] < counts["90022004"] < counts["802.3"]
    assert counts["BA0DC66B"] > counts["90022004"]
