"""Ablations of the design choices DESIGN.md calls out.

Each test switches one mechanism off (or swaps it for the naive
alternative) and measures the effect, with correctness asserted
invariant:

* reciprocal deduplication (paper §3): search the raw space vs the
  canonical space -- same survivor *pairs*, ~2x work;
* parity shortcut: HD evaluation with and without exploiting the
  (x+1) theorem -- same answers, fewer checks;
* windowed-witness fast path: hamming_distance with the probe
  disabled (window smaller than useful) vs enabled -- same answers;
* chunk-size sensitivity of the distributed coordinator -- same
  campaign outcome across granularities.
"""

from __future__ import annotations

import time

import pytest

from conftest import once
from repro.gf2.notation import koopman_to_full
from repro.gf2.poly import reciprocal
from repro.hd.hamming import hamming_distance
from repro.search.exhaustive import SearchConfig, search_chunk, search_all


def test_reciprocal_dedup_ablation(benchmark, record):
    """Searching without dedup doubles work and finds each survivor's
    reciprocal too -- verifying both the saving and Peterson's
    reciprocal-equivalence theorem on real data."""
    cfg = SearchConfig(width=8, target_hd=4, filter_lengths=(16, 60),
                       confirm_weights=False)

    def both():
        deduped = search_all(cfg)
        # raw space: evaluate every candidate (no canonicalization)
        from repro.hd.breakpoints import refute_hd_at
        raw_survivors = []
        raw_examined = 0
        from repro.search.space import candidate_polys
        for g in candidate_polys(8):
            raw_examined += 1
            if refute_hd_at(g, 4, 60) is None:
                raw_survivors.append(g)
        return deduped, raw_survivors, raw_examined

    deduped, raw_survivors, raw_examined = once(benchmark, both)
    canon = {r.poly for r in deduped.survivors}
    assert {min(p, reciprocal(p)) for p in raw_survivors} == canon
    # reciprocal pairs behave identically (the theorem, empirically)
    for p in raw_survivors:
        assert min(p, reciprocal(p)) in canon
    record("ablation", {"reciprocal_dedup": {
        "raw_examined": raw_examined,
        "canonical_examined": deduped.examined,
        "raw_survivors": len(raw_survivors),
        "canonical_survivors": len(canon),
    }})
    assert deduped.examined < raw_examined


def test_parity_shortcut_ablation(benchmark, record):
    """Same HD with the (x+1) theorem on and off, over a sweep."""
    g = koopman_to_full(0xBA0DC66B)
    lengths = [50, 120, 153, 300, 900]

    def both():
        t0 = time.perf_counter()
        with_p = [hamming_distance(g, n, exploit_parity=True) for n in lengths]
        t_with = time.perf_counter() - t0
        t0 = time.perf_counter()
        without = [hamming_distance(g, n, exploit_parity=False) for n in lengths]
        t_without = time.perf_counter() - t0
        return with_p, without, t_with, t_without

    with_p, without, t_with, t_without = once(benchmark, both)
    assert with_p == without
    record("ablation", {"parity_shortcut": {
        "seconds_with": round(t_with, 3),
        "seconds_without": round(t_without, 3),
        "answers": dict(zip(map(str, lengths), with_p)),
    }})


def test_windowed_witness_ablation(benchmark, record):
    """Disable the windowed fast path (window too small to ever hit)
    and confirm identical HDs from the full checks, with timing."""
    g = koopman_to_full(0x82608EDB)
    lengths = [400, 1000, 4000, 12112]

    def both():
        t0 = time.perf_counter()
        fast = [hamming_distance(g, n) for n in lengths]
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow = [hamming_distance(g, n, witness_window=3) for n in lengths]
        t_slow = time.perf_counter() - t0
        return fast, slow, t_fast, t_slow

    fast, slow, t_fast, t_slow = once(benchmark, both)
    # 802.3: HD=5 through 2974 bits, HD=4 beyond (Table 1)
    assert fast == slow == [5, 5, 4, 4]
    record("ablation", {"windowed_witness": {
        "seconds_with": round(t_fast, 3),
        "seconds_without": round(t_slow, 3),
    }})


@pytest.mark.parametrize("chunk_size", [4, 16, 64])
def test_chunk_size_invariance(benchmark, record, chunk_size):
    """Campaign outcome is independent of work-partition granularity."""
    cfg = SearchConfig(width=6, target_hd=4, filter_lengths=(8, 20),
                       confirm_weights=False)

    def run():
        parts = {}
        total = 1 << 5
        for i, lo in enumerate(range(0, total, chunk_size)):
            parts[i] = search_chunk(cfg, lo, min(lo + chunk_size, total))
        return parts

    parts = once(benchmark, run)
    survivors = sorted(
        r.poly for res in parts.values() for r in res.survivors
    )
    baseline = sorted(r.poly for r in search_all(cfg).survivors)
    assert survivors == baseline
    record("ablation", {f"chunk_size_{chunk_size}_survivors": len(survivors)})
