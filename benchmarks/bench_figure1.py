"""E1: Figure 1 -- error-detection capability curves for the paper's
eight polynomials.

Regenerates the stepped HD-vs-length curves on the log-2 grid (64 ..
128K bits in the paper; the default envelope computes the exact curve
through 4096 bits, which contains every visual feature of Figure 1
except the far-right tails -- those tails are pinned by bench_table1
(full mode) and the order-derived HD=2 onsets).  Writes
``results/figure1.csv`` and an ASCII rendering, and asserts the
headline orderings the figure exists to show.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.analysis.figures import (
    figure1_series,
    log2_grid,
    render_figure1_ascii,
    series_to_csv,
)
from repro.crc.catalog import PAPER_POLYS
from repro.hd.breakpoints import hd_breakpoint_table
from repro.network.frames import figure1_marks

# Tables cover 5000 bits so the "512+40B packet" mark (4496 bits) is
# inside the envelope; the plotted grid stops at the 4096 tick.
N_MAX = 5000
GRID = log2_grid(64, 4096)


@pytest.fixture(scope="module")
def columns():
    cols = []
    for key in sorted(PAPER_POLYS):
        pp = PAPER_POLYS[key]
        cols.append((key, hd_breakpoint_table(pp.full, hd_max=8, n_max=N_MAX)))
    return cols


def test_figure1_series(benchmark, columns, record, results_dir):
    series = once(benchmark, figure1_series, columns, GRID)
    csv = series_to_csv(series)
    (results_dir / "figure1.csv").write_text(csv)
    art = render_figure1_ascii(series, hd_min=2, hd_max=8)
    (results_dir / "figure1.txt").write_text(art)
    record("figure1", {label: dict(pts) for label, pts in series.items()})

    s = {label: dict(pts) for label, pts in series.items()}
    # The figure's visual story, as assertions:
    # (1) at 512 bits, 802.3 is still HD=6 but about to drop; the new
    #     polynomials hold HD=6.
    assert s["802.3"][256] == 6 and s["802.3"][512] == 5
    assert s["BA0DC66B"][512] == 6 and s["FA567D89"][512] == 6
    # (2) by 4K bits (between the 512+40B packet and MTU marks) the
    #     candidate split is visible: HD=6 class vs HD<=5.
    assert s["BA0DC66B"][4096] == 6
    assert s["8F6E37A0"][4096] == 6  # drops to 4 at 5244, after this grid
    assert s["802.3"][4096] == 4
    assert s["D419CC15"][4096] == 5
    assert s["80108400"][4096] == 5


def test_figure1_at_paper_marks(benchmark, columns, record):
    """HD at the labeled message sizes within the default envelope
    (40B ack and 512+40B packets)."""
    marks = {k: v for k, v in figure1_marks().items() if v <= N_MAX}

    def sample():
        out = {}
        for label, table in columns:
            out[label] = {m: table.hd_at(n) for m, n in marks.items()}
        return out

    sampled = once(benchmark, sample)
    record("figure1_marks", sampled)
    # 40-byte acks: every studied polynomial gives HD >= 6; the
    # high-HD specialists (D419CC15, 802.3) do even better.
    for label, by_mark in sampled.items():
        assert by_mark["40B ack packet"] >= 5, label
    assert sampled["D419CC15"]["40B ack packet"] == 6
    assert sampled["802.3"]["512+40B packet"] == 4
    assert sampled["BA0DC66B"]["512+40B packet"] == 6
