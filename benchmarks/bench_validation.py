"""E10: the §4.5 validation program, re-run.

* exhaustive 8-bit search: "simple" (reference enumeration) vs
  "optimized" (MITM cascade) engines must agree candidate by candidate;
* the two implementation-independent invariants over real profiles;
* the Castagnoli publication error, rediscovered from scratch by
  evaluating both hex values;
* order computations re-verified against direct iteration.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.crc.catalog import CASTAGNOLI_CORRECT_FULL, CASTAGNOLI_TYPO_FULL
from repro.gf2.notation import full_to_koopman
from repro.hd.breakpoints import refute_hd_at
from repro.hd.hamming import hamming_distance
from repro.hd.invariants import WeightMonitor
from repro.hd.reference import enumerate_weights_reference
from repro.hd.weights import weight_profile
from repro.search.space import canonical_candidates


def test_simple_vs_optimized_width8(benchmark, record):
    """Every canonical 8-bit polynomial: reference enumeration weights
    vs MITM-backed weight profile at 40 bits.  Bit-identical or bust."""

    from repro.gf2.order import order_of_x
    from repro.hd.hamming import hamming_distance

    def compare_all():
        mismatches = []
        checked = degenerate = 0
        for g in canonical_candidates(8):
            ref = enumerate_weights_reference(g, 40, 4, order="lex").weights
            if order_of_x(g) >= 48:
                fast = weight_profile(g, 40, 4)
                if ref != fast:
                    mismatches.append(full_to_koopman(g))
            else:
                # degenerate generators (order < window, e.g. (x+1)^8):
                # exact counting declines by design; cross-check the HD
                # instead, which stays exact via the order shortcut.
                degenerate += 1
                ref_hd = next((k for k in (2, 3, 4) if ref[k]), None)
                if ref_hd is not None:
                    if hamming_distance(g, 40, k_max=8) != ref_hd:
                        mismatches.append(full_to_koopman(g))
            checked += 1
        return checked, degenerate, mismatches

    checked, degenerate, mismatches = once(benchmark, compare_all)
    record("validation", {"simple_vs_optimized_width8": {
        "candidates": checked, "degenerate": degenerate,
        "mismatches": len(mismatches),
    }})
    assert checked == 72
    assert mismatches == []


def test_invariants_over_real_profiles(benchmark, record):
    """Run the §4.5 monitors over a real sweep (both invariants were
    violated by injected bugs in unit tests; here they must pass on
    honest data for a 32-bit polynomial)."""
    from repro.gf2.notation import koopman_to_full

    g = koopman_to_full(0xBA0DC66B)  # divisible by (x+1)

    def sweep():
        mon = WeightMonitor(g)
        for n in (100, 300, 1000, 2000):
            w = weight_profile(g, n, 4)
            w[3] = w[3]  # W3 present and must be 0 by parity
            mon.observe(n, w)
        return mon.checks_passed

    passed = once(benchmark, sweep)
    record("validation", {"invariant_monitor_checks": passed})
    assert passed == 4


def test_castagnoli_erratum_rediscovered(benchmark, record):
    """Evaluate the two published hex values blind; the reproduction
    must flag the typo'd one as unusable, as §4.2 reports."""

    def evaluate():
        return {
            "typo_hd_at_382": hamming_distance(CASTAGNOLI_TYPO_FULL, 382),
            "typo_hd_at_500": hamming_distance(CASTAGNOLI_TYPO_FULL, 500),
            "correct_hd_at_500": hamming_distance(CASTAGNOLI_CORRECT_FULL, 500),
            "correct_hd_at_12112": hamming_distance(CASTAGNOLI_CORRECT_FULL, 12112),
        }

    out = once(benchmark, evaluate)
    record("validation", {"castagnoli_erratum": {
        **out,
        "paper": "published 1F6ACFB13 keeps HD=6 only to ~382 bits; "
                 "correct 1F4ACFB13 (0xFA567D89) to 32736",
    }})
    assert out["typo_hd_at_382"] == 6
    assert out["typo_hd_at_500"] == 5      # collapsed
    assert out["correct_hd_at_500"] == 6   # fine
    assert out["correct_hd_at_12112"] == 6


def test_hd6_requires_x_plus_1_spot_check(benchmark, record):
    """§4.2/§5: no polynomial NOT divisible by (x+1) has HD=6 at MTU.
    Full proof needs the 2^30 sweep; here the claim is spot-checked by
    inverse-filtering a deterministic sample of non-(x+1) polynomials
    at MTU length -- every one must be refuted (HD < 6)."""
    import random

    rng = random.Random(2002)

    def sample_and_refute():
        refuted = 0
        for _ in range(6):
            # random 32-bit poly with an odd number of terms
            k = (1 << 31) | rng.getrandbits(31)
            g = (k << 1) | 1
            if g.bit_count() % 2 == 0:
                g ^= 2  # flip x^1 to make the term count odd
            out = refute_hd_at(g, 6, 12112)
            if out is not None:
                refuted += 1
        return refuted

    refuted = once(benchmark, sample_and_refute)
    record("validation", {"non_parity_spot_check_refuted": refuted})
    assert refuted == 6
