"""E14: theoretical ceilings vs the exhaustive search's findings.

The abstract's "the theoretical maximum is detection of five
independent bit errors (HD=6)" is the sphere-packing bound; this
bench regenerates the comparison between that ceiling and what the
paper's exhaustive search proved achievable -- including the one row
where they coincide (HD=3: primitive polynomials are shortened
Hamming codes, perfect at their natural length).
"""

from __future__ import annotations

from conftest import once
from repro.hd.bounds import (
    bound_vs_achieved,
    hamming_bound_ok,
    max_length_for_theoretical_hd,
    max_theoretical_hd,
)


def test_mtu_ceiling(benchmark, record):
    d = once(benchmark, max_theoretical_hd, 32, 12112)
    record("bounds", {"mtu_theoretical_max_hd": d})
    assert d == 6
    assert not hamming_bound_ok(32, 12112, 7)


def test_bound_vs_search(benchmark, record):
    rows = once(benchmark, bound_vs_achieved)
    record("bounds", {"bound_vs_achieved": {
        str(hd): {"sphere_packing_limit": bound, "search_limit": found}
        for hd, bound, found in rows
    }})
    by_hd = {hd: (bound, found) for hd, bound, found in rows}
    # the search's global limits sit strictly below the packing bound
    # for HD 5 and 6 (cyclic structure costs something)...
    assert by_hd[6][0] > by_hd[6][1]
    assert by_hd[5][0] > by_hd[5][1]
    # ...and exactly meets it for HD=3 (shortened Hamming perfection)
    assert by_hd[3][0] == by_hd[3][1] == 2**32 - 33


def test_ceiling_curve(benchmark, record):
    """Theoretical max HD across Figure 1's length grid -- the
    envelope every Table 1 column must stay under."""

    def curve():
        return {
            n: max_theoretical_hd(32, n)
            for n in (64, 128, 256, 512, 1024, 4096, 12112, 32768, 131072)
        }

    c = once(benchmark, curve)
    record("bounds", {"ceiling_by_length": {str(k): v for k, v in c.items()}})
    assert c[12112] == 6
    assert c[131072] >= 4
    values = [c[n] for n in sorted(c)]
    assert values == sorted(values, reverse=True)
