"""E-BATCH: the screening-kernel ladder -- scalar, batched, packed.

The paper's campaign throughput ("approximately two polynomials
filtered per second per CPU" on 2001 hardware) is bounded by the
screening phase: per-candidate syndrome tables and low-weight searches.
This exhibit prices the three kernels pairwise, each on the space
where the comparison is honest:

* ``scalar`` vs ``batched`` on the E7b configuration (width-12 full
  canonical space, ``SearchConfig.for_bits(12, 4, 300)``).  The scalar
  kernel is a python loop; short filter lengths keep a full-space
  scalar sweep affordable.
* ``batched`` vs ``packed`` on the E7 configuration (width-16 full
  canonical space at the CRC-16 breakpoint length,
  ``SearchConfig.for_bits(16, 4, 12112)``).  The packed backend
  (:mod:`repro.search.packed`) keeps syndromes as bit-planes -- one
  bit per candidate per register bit, the whole batch stepped by
  ``~r`` word-wide XORs -- and screens weight-2/3 kills plane-wise,
  materializing uint64 tables only for condemned rows and survivors.

Method: screening only (:func:`~repro.search.exhaustive.screen_chunk`
-- survivor confirmation is byte-identical code on all backends),
interleaved best-of-``reps`` (more reps on the cheap pair, whose
~15ms batched side is otherwise at the mercy of scheduler noise) so
background drift penalizes every variant alike.  Correctness is asserted before speed: on each space
the two kernels must tell the same story record for record --
survivors, per-stage kill counts, kill weights, witnesses.

Output: ``results/batched_search.json`` plus the committed
``BENCH_batched_search.json`` at the repo root (schema 1, like
``BENCH_observability.json``).  Acceptance: batched >= 8x scalar on
E7b and packed >= 5x batched on E7 (candidates/second).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import replace

from conftest import once
from repro.search.exhaustive import SearchConfig, expected_examined, screen_chunk

SCALAR_CFG = SearchConfig.for_bits(12, 4, 300)
PACKED_CFG = SearchConfig.for_bits(16, 4, 12112)
# The E7b pair is sub-second per rep, so extra reps are cheap and the
# best-of needs them: its batched side finishes in ~15ms, where a few
# ms of scheduler noise moves the ratio by whole multiples.
SCALAR_REPS = 7
PACKED_REPS = 3
# Floors leave headroom under the measured margins (batched lands at
# ~9-12x scalar depending on host load; packed at ~6x batched): a
# regression that halves a kernel trips them, scheduler noise does not.
SCALAR_FLOOR = 8.0  # batched vs scalar on SCALAR_CFG
PACKED_FLOOR = 5.0  # packed vs batched on PACKED_CFG

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def screen_full_space(config: SearchConfig, backend: str):
    end = 1 << (config.width - 1)
    t0 = time.perf_counter()
    result = screen_chunk(replace(config, backend=backend), 0, end)
    return time.perf_counter() - t0, result


def run_pair(config: SearchConfig, contender: str, baseline: str, reps: int):
    """Interleaved best-of-``reps`` of two kernels on one full space."""
    best = {contender: None, baseline: None}
    results = {}
    for _ in range(reps):
        for backend in (contender, baseline):
            elapsed, res = screen_full_space(config, backend)
            results[backend] = res
            if best[backend] is None or elapsed < best[backend]:
                best[backend] = elapsed
    return best, results


def assert_identical(a, b, width: int) -> None:
    assert a.examined == b.examined == expected_examined(width)
    assert a.stage_kills == b.stage_kills
    assert a.records == b.records
    assert [s[:2] for s in a.survivors] == [s[:2] for s in b.survivors]


def pair_payload(config: SearchConfig, best, results, contender, baseline):
    res = results[contender]
    rate = {k: res.examined / t for k, t in best.items()}
    return {
        "width": config.width,
        "target_hd": config.target_hd,
        "filter_lengths": list(config.filter_lengths),
        "batch_size": config.batch_size,
        "candidates": res.examined,
        "survivors": len(res.survivors),
        "stage_kills": {str(k): v for k, v in sorted(res.stage_kills.items())},
        "screen_seconds": {k: round(t, 4) for k, t in best.items()},
        "candidates_per_second": {k: round(r, 1) for k, r in rate.items()},
        "speedup": round(rate[contender] / rate[baseline], 2),
    }


def test_screening_kernel_ladder(benchmark, record):
    def sweep():
        return (
            run_pair(SCALAR_CFG, "batched", "scalar", SCALAR_REPS),
            run_pair(PACKED_CFG, "packed", "batched", PACKED_REPS),
        )

    (e7b_best, e7b_results), (e7_best, e7_results) = once(benchmark, sweep)

    # Correctness before speed, on both spaces.
    assert_identical(
        e7b_results["batched"], e7b_results["scalar"], SCALAR_CFG.width
    )
    assert_identical(
        e7_results["packed"], e7_results["batched"], PACKED_CFG.width
    )

    payload = {
        "reps": {"batched_vs_scalar": SCALAR_REPS, "packed_vs_batched": PACKED_REPS},
        "batched_vs_scalar": pair_payload(
            SCALAR_CFG, e7b_best, e7b_results, "batched", "scalar"
        ),
        "packed_vs_batched": pair_payload(
            PACKED_CFG, e7_best, e7_results, "packed", "batched"
        ),
    }
    record("batched_search", payload)

    bench = {
        "bench": "batched_search",
        "schema": 1,
        "config": {
            "reps": {
                "batched_vs_scalar": SCALAR_REPS,
                "packed_vs_batched": PACKED_REPS,
            },
            "batched_vs_scalar": {
                "width": SCALAR_CFG.width,
                "target_hd": SCALAR_CFG.target_hd,
                "final_length": SCALAR_CFG.final_length,
                "batch_size": SCALAR_CFG.batch_size,
            },
            "packed_vs_batched": {
                "width": PACKED_CFG.width,
                "target_hd": PACKED_CFG.target_hd,
                "final_length": PACKED_CFG.final_length,
                "batch_size": PACKED_CFG.batch_size,
            },
        },
        "metrics": payload,
    }
    out = REPO_ROOT / "BENCH_batched_search.json"
    tmp = str(out) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(bench, f, indent=1, sort_keys=True)
        f.write("\n")
    os.replace(tmp, out)

    batched_speedup = payload["batched_vs_scalar"]["speedup"]
    packed_speedup = payload["packed_vs_batched"]["speedup"]
    assert batched_speedup >= SCALAR_FLOOR, (
        f"batched screening speedup {batched_speedup:.1f}x below "
        f"{SCALAR_FLOOR:.0f}x floor"
    )
    assert packed_speedup >= PACKED_FLOOR, (
        f"packed screening speedup {packed_speedup:.1f}x below "
        f"{PACKED_FLOOR:.0f}x floor"
    )
