"""E-BATCH: batched screening kernel vs the scalar cascade.

The paper's campaign throughput ("approximately two polynomials
filtered per second per CPU" on 2001 hardware) is bounded by the
screening phase: per-candidate syndrome tables and low-weight searches.
The batched backend (:mod:`repro.search.batched`) evaluates a whole
block of candidates per numpy op; this exhibit prices that against the
scalar oracle on the E7b configuration (width-12 full canonical space,
``SearchConfig.for_bits(12, 4, 300)``).

Method: screening only (:func:`~repro.search.exhaustive.screen_chunk`
-- survivor confirmation is byte-identical code on both backends),
interleaved best-of-``REPS`` so background drift penalizes both
variants alike.  Correctness is asserted before speed: identical kill
records, survivors and per-stage kill counts, record for record.

Output: ``results/batched_search.json`` plus the committed
``BENCH_batched_search.json`` at the repo root (schema 1, like
``BENCH_observability.json``).  Acceptance: >= 10x scalar screening
throughput (candidates/second).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import replace

from conftest import once
from repro.search.exhaustive import SearchConfig, expected_examined, screen_chunk

CFG = SearchConfig.for_bits(12, 4, 300)
REPS = 3
SPEEDUP_FLOOR = 10.0

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def screen_full_space(config: SearchConfig):
    end = 1 << (config.width - 1)
    t0 = time.perf_counter()
    result = screen_chunk(config, 0, end)
    return time.perf_counter() - t0, result


def test_batched_screening_speedup(benchmark, record):
    def sweep():
        best = {"batched": None, "scalar": None}
        results = {}
        for _ in range(REPS):
            for backend in ("batched", "scalar"):
                elapsed, res = screen_full_space(
                    replace(CFG, backend=backend)
                )
                results[backend] = res
                if best[backend] is None or elapsed < best[backend]:
                    best[backend] = elapsed
        return best, results

    best, results = once(benchmark, sweep)

    # Correctness before speed: the two backends must tell the same
    # story record for record.
    batched, scalar = results["batched"], results["scalar"]
    assert batched.examined == scalar.examined == expected_examined(CFG.width)
    assert batched.stage_kills == scalar.stage_kills
    assert batched.records == scalar.records
    assert [s[:2] for s in batched.survivors] == [
        s[:2] for s in scalar.survivors
    ]

    rate = {k: batched.examined / t for k, t in best.items()}
    speedup = rate["batched"] / rate["scalar"]

    payload = {
        "width": CFG.width,
        "target_hd": CFG.target_hd,
        "filter_lengths": list(CFG.filter_lengths),
        "batch_size": CFG.batch_size,
        "candidates": batched.examined,
        "survivors": len(batched.survivors),
        "stage_kills": {str(k): v for k, v in sorted(batched.stage_kills.items())},
        "reps": REPS,
        "screen_seconds": {k: round(t, 4) for k, t in best.items()},
        "candidates_per_second": {k: round(r, 1) for k, r in rate.items()},
        "speedup": round(speedup, 2),
    }
    record("batched_search", payload)

    bench = {
        "bench": "batched_search",
        "schema": 1,
        "config": {
            "width": CFG.width,
            "target_hd": CFG.target_hd,
            "final_length": CFG.final_length,
            "batch_size": CFG.batch_size,
            "reps": REPS,
        },
        "metrics": payload,
    }
    out = REPO_ROOT / "BENCH_batched_search.json"
    tmp = str(out) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(bench, f, indent=1, sort_keys=True)
        f.write("\n")
    os.replace(tmp, out)

    assert speedup >= SPEEDUP_FLOOR, (
        f"batched screening speedup {speedup:.1f}x below "
        f"{SPEEDUP_FLOOR:.0f}x floor"
    )
