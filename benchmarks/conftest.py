"""Benchmark-harness plumbing.

Every benchmark regenerates one exhibit of the paper (see DESIGN.md's
per-experiment index) and records paper-vs-measured values into
``results/`` as JSON, which EXPERIMENTS.md summarizes.  Long exact
computations (Table 1's 16K-114K cells) only run with ``REPRO_FULL=1``.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

REPRO_FULL = os.environ.get("REPRO_FULL") == "1"

requires_full = pytest.mark.skipif(
    not REPRO_FULL,
    reason="multi-minute exact computation; set REPRO_FULL=1 to run",
)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Append structured paper-vs-measured rows to results/<name>.json."""

    def _record(name: str, payload) -> None:
        path = results_dir / f"{name}.json"
        existing = {}
        if path.exists():
            existing = json.loads(path.read_text())
        if isinstance(payload, dict):
            existing.update(payload)
        else:
            existing[name] = payload
        path.write_text(json.dumps(existing, indent=1, sort_keys=True))

    return _record


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive exact computation exactly once under the
    benchmark clock (rounds=1): these are reproduction measurements,
    not microbenchmarks."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
