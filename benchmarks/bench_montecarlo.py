"""E9: §4.4 applications -- undetected-error rates under realistic
error processes (the Stone & Partridge motivation) and the jumbo-frame
what-if.

Cross-validates Monte Carlo simulation against the analytic
``P_ud = sum W_k p^k (1-p)^(N-k)`` built from exact weights -- which
simultaneously re-checks the W4 counting path -- and evaluates the
paper's application guidance at the jumbo-frame length."""

from __future__ import annotations

from math import comb

import pytest

from conftest import once
from repro.gf2.notation import koopman_to_full
from repro.gf2.order import hd2_data_word_limit
from repro.hd.weights import weight_profile
from repro.network.errors import BernoulliBitErrors, FixedWeightErrors
from repro.network.frames import JUMBO_DATA_WORD_BITS
from repro.network.montecarlo import analytic_pud, simulate_undetected


def test_mc_vs_analytic_crc8(benchmark, record):
    """CRC-8 at 80 bits, BER 2e-2: simulation within 2x of the exact
    truncated analytic value (Poisson noise bound)."""
    g, n, ber = 0x107, 80, 0.02
    N = n + 8

    def run():
        weights = weight_profile(g, n, 4)
        pud = analytic_pud(weights, N, ber)
        res = simulate_undetected(
            g, n, BernoulliBitErrors(ber, seed=77), trials=300_000
        )
        return weights, pud, res

    weights, pud, res = once(benchmark, run)
    p_corrupt = 1 - (1 - ber) ** N
    expected_cond = pud / p_corrupt
    got = res.p_undetected_given_corrupted
    record("montecarlo", {"crc8_ber2e-2": {
        "weights": weights,
        "analytic_pud": float(f"{pud:.4g}"),
        "simulated_cond": float(f"{got:.4g}"),
        "expected_cond": float(f"{expected_cond:.4g}"),
        "undetected_events": res.undetected,
    }})
    assert res.undetected > 10
    assert expected_cond / 2 < got < expected_cond * 2.5


def test_weight4_conditional_rate_8023(benchmark, record):
    """Conditioned on exactly 4 bit errors at a 1000-bit data word,
    the 802.3 undetected rate equals W4/C(N,4) -- the regime where
    Table 1 rows translate directly into probabilities."""
    g = koopman_to_full(0x82608EDB)
    n = 3600  # inside the HD=4 band (2975..91607), W4 small but nonzero
    N = n + 32

    def run():
        w4 = weight_profile(g, n, 4)[4]
        return w4

    w4 = once(benchmark, run)
    expected = w4 / comb(N, 4)
    record("montecarlo", {"8023_w4_rate_at_3600": {
        "W4": w4,
        "per_4bit_error_rate": float(f"{expected:.4g}"),
    }})
    assert w4 > 0  # inside the HD=4 band
    # sanity: aliasing rate stays near the 2^-32 folklore value
    assert 0.01 < expected * 2**32 < 100


def test_jumbo_frames_guidance(benchmark, record):
    """§4.4: 9000-byte jumbo packets (72,112-bit data words) with the
    legacy 802.3 CRC keep HD=4 (91,607-bit limit); a {1,1,30}- or
    {1,1,15,15}-class replacement would drop to HD=2 territory, while
    0xBA0DC66B keeps HD=4 -- the paper's next-generation-Ethernet
    argument, from pure algebra."""

    def evaluate():
        rows = {}
        for key, koop in [("802.3", 0x82608EDB), ("BA0DC66B", 0xBA0DC66B),
                          ("FA567D89", 0xFA567D89), ("8F6E37A0", 0x8F6E37A0)]:
            g = koopman_to_full(koop)
            rows[key] = {
                "hd3_plus_limit": hd2_data_word_limit(g),
                "covers_jumbo": hd2_data_word_limit(g) >= JUMBO_DATA_WORD_BITS,
            }
        return rows

    rows = once(benchmark, evaluate)
    record("montecarlo", {"jumbo_72112_bits": rows})
    assert rows["802.3"]["covers_jumbo"]
    assert rows["BA0DC66B"]["covers_jumbo"]          # 114,663 > 72,112
    assert not rows["FA567D89"]["covers_jumbo"]      # 65,502 < 72,112
    assert rows["8F6E37A0"]["covers_jumbo"]


def test_burst_guarantee_all_paper_polys(benchmark, record):
    """"All burst errors of size <= 32 are detected ... remains intact
    for all the codes we consider" -- verified for every paper
    polynomial over a sliding window of starts."""
    from repro.crc.catalog import PAPER_POLYS
    from repro.network.montecarlo import detected_all_bursts

    def verify():
        return {
            key: detected_all_bursts(pp.full, 200, max_start=64)
            for key, pp in PAPER_POLYS.items()
        }

    results = once(benchmark, verify)
    record("montecarlo", {"burst_guarantee": results})
    assert all(results.values())
