"""E2: Table 1 -- HD breakpoint bands for the paper's 8 polynomials.

The default run computes every cell whose breakpoint lies within a
6000-bit envelope (covering 802.3's entire upper column and the HD>=6
structure of every polynomial) and checks each against the paper's
chain-verified claims.  ``REPRO_FULL=1`` extends to the 16K-114K cells
(see bench_table1_full.py).
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.analysis.tables import render_table1
from repro.crc.catalog import PAPER_POLYS
from repro.gf2.order import hd2_data_word_limit
from repro.hd.breakpoints import hd_breakpoint_table

N_MAX = 6000

# Per-column weight ceiling: high enough to cover every claimed cell,
# low enough that non-binding high-weight probes stay cheap.  The
# bench-local work envelope is deliberately tight (~2.5e8 elements);
# weights whose probes exceed it are recorded as capped, which never
# affects the claimed cells (all bound by weights <= 6).
HD_MAX = {
    "802.3": 15, "D419CC15": 15,
    "8F6E37A0": 12, "BA0DC66B": 12, "FA567D89": 12,
    "992C1A4C": 12, "90022004": 12, "80108400": 12,
}
BENCH_MEM = 250_000_000
BENCH_STREAM = 250_000_000

KEYS = sorted(PAPER_POLYS)


@pytest.mark.parametrize("key", KEYS)
def test_breakpoint_column(benchmark, key, record):
    pp = PAPER_POLYS[key]
    table = once(
        benchmark, hd_breakpoint_table, pp.full,
        hd_max=HD_MAX[key], n_max=N_MAX,
        mem_elems=BENCH_MEM, stream_elems=BENCH_STREAM,
    )
    measured_bands = {
        hd: (lo, hi) for hd, lo, hi in table.bands
    }
    # Check every paper claim that falls inside the default envelope.
    checked = {}
    for hd, last_len in pp.hd_breaks.items():
        if last_len >= N_MAX or hd > HD_MAX[key]:
            continue
        measured_limit = table.max_length_for(hd)
        checked[hd] = {"paper": last_len, "measured": measured_limit}
        assert measured_limit == last_len, (
            f"{key}: HD={hd} paper={last_len} measured={measured_limit}"
        )
    # HD=2 onset is order-derived and exact at any length.
    checked[2] = {
        "paper_onset": None,
        "measured_hd3_limit": hd2_data_word_limit(pp.full),
    }
    record(f"table1_{key}", {
        "bands_to_6000": {str(h): v for h, v in measured_bands.items()},
        "paper_vs_measured": {str(h): v for h, v in checked.items()},
    })
    benchmark.extra_info["cells_verified"] = len(checked)


def test_render_table1_document(benchmark, record, results_dir):
    """Assemble the full Table 1 rendering from the measured columns
    (recomputed at a smaller envelope so this stays quick)."""

    def build():
        columns = []
        for key in KEYS:
            pp = PAPER_POLYS[key]
            columns.append(
                (key, hd_breakpoint_table(pp.full, hd_max=8, n_max=3000))
            )
        return render_table1(columns)

    text = once(benchmark, build)
    (results_dir / "table1.txt").write_text(text)
    assert "802.3" in text
