"""E-OBS: wall-clock overhead of the observability layer.

The 2001 campaign was flown blind between mailed result files; the
reproduction's campaigns narrate themselves (``repro.obs``) — but only
when asked.  This exhibit prices that narration on the E7b
configuration (width-12 exhaustive search, 2 processes, the same
config as ``bench_parallel_campaign.py``): one campaign with
observability off, one with ``--events`` but span collection
suppressed, one with ``--events`` as shipped (trace spans auto-on),
and one with events and metrics both on (latency histograms and
worker span shipping included).  Each variant keeps its best of
``REPS`` runs (the usual defence against scheduler noise), all four
must produce the identical campaign record, and the fully-enabled run
must land within 5% of the disabled one — the acceptance threshold
from the live-observability issue (raised from the original 3% when
spans and histograms joined the narration).

The enabled run's event log is folded back through
:class:`~repro.obs.report.RunReport` and written to the repo root as
``BENCH_observability.json`` (the first ``BENCH_*.json`` entry), with
the overhead measurements added to its metrics block; the raw curve
also lands in ``results/observability.json``.
"""

from __future__ import annotations

import json
import os
import pathlib

from conftest import once
from repro.dist.pool import ParallelCoordinator
from repro.obs.events import NULL_EVENTS, EventLog, iter_events
from repro.obs.report import RunReport
from repro.search.exhaustive import SearchConfig

CFG = SearchConfig.for_bits(12, 4, 300)
CHUNK_SIZE = 64
PROCESSES = 2
REPS = 3
OVERHEAD_LIMIT = 0.05

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def run_campaign(events=NULL_EVENTS, collect_metrics=False,
                 collect_traces=None):
    runner = ParallelCoordinator(
        config=CFG,
        chunk_size=CHUNK_SIZE,
        processes=PROCESSES,
        lease_duration=120.0,
        max_seconds=600.0,
        events=events,
        collect_metrics=collect_metrics,
        collect_traces=collect_traces,
    )
    elapsed = runner.run()
    return elapsed, runner


def test_observability_overhead(benchmark, record, tmp_path):
    def sweep():
        # Interleave the variants within each rep and keep each
        # variant's minimum: background-load drift over the sweep then
        # penalizes all three alike instead of whichever ran last.
        best = {}

        def keep(kind, elapsed, runner, rep):
            if kind not in best or elapsed < best[kind][0]:
                best[kind] = (elapsed, runner, rep)

        for i in range(REPS):
            keep("off", *run_campaign(), i)
            with EventLog(tmp_path / f"notrace-{i}.jsonl") as events:
                keep("events_notrace",
                     *run_campaign(events=events, collect_traces=False), i)
            with EventLog(tmp_path / f"events-{i}.jsonl") as events:
                keep("events", *run_campaign(events=events), i)
            with EventLog(tmp_path / f"full-{i}.jsonl") as events:
                keep("full",
                     *run_campaign(events=events, collect_metrics=True), i)
        return (best["off"], best["events_notrace"], best["events"],
                best["full"])

    ((t_off, r_off, _), (t_nt, r_nt, _), (t_ev, r_ev, _),
     (t_full, r_full, full_i)) = once(benchmark, sweep)

    # Correctness first: narrated and silent campaigns are the same
    # campaign.
    baseline = {p: r.survived for p, r in r_off.campaign.results.items()}
    for runner in (r_nt, r_ev, r_full):
        assert runner.queue.all_done
        assert runner.campaign.candidates_examined == \
            r_off.campaign.candidates_examined
        assert {p: r.survived for p, r in runner.campaign.results.items()} \
            == baseline

    # The log folds back into a report that agrees with the
    # coordinator's own accounting.
    rep = RunReport.from_path(tmp_path / f"full-{full_i}.jsonl")
    assert rep.complete
    assert rep.candidates_examined == r_full.campaign.candidates_examined
    assert rep.metrics is not None  # the workers' snapshots arrived
    # The new tiers actually ran: the full log carries spans, and the
    # report's per-chunk latency histogram saw every completion.
    assert any(
        r["event"] == "trace.span"
        for r in iter_events(tmp_path / f"full-{full_i}.jsonl")
    )
    assert rep.chunk_durations.count == rep.chunks_completed

    overhead_nt = t_nt / t_off - 1.0
    overhead_ev = t_ev / t_off - 1.0
    overhead_full = t_full / t_off - 1.0
    record("observability", {
        "width": CFG.width,
        "final_length": CFG.final_length,
        "chunks": len(r_off.queue),
        "processes": PROCESSES,
        "reps": REPS,
        "wall_seconds": {
            "off": round(t_off, 3),
            "events_notrace": round(t_nt, 3),
            "events": round(t_ev, 3),
            "events_metrics": round(t_full, 3),
        },
        "overhead_vs_off": {
            "events_notrace": round(overhead_nt, 4),
            "events": round(overhead_ev, 4),
            "events_metrics": round(overhead_full, 4),
        },
    })

    # The first committed BENCH_*.json: the enabled run's report with
    # the overhead measurements folded into its metrics block.
    bench = rep.to_bench_dict(name="observability")
    bench["metrics"]["wall_seconds_off"] = round(t_off, 3)
    bench["metrics"]["wall_seconds_events_notrace"] = round(t_nt, 3)
    bench["metrics"]["wall_seconds_events"] = round(t_ev, 3)
    bench["metrics"]["wall_seconds_events_metrics"] = round(t_full, 3)
    bench["metrics"]["overhead_events_notrace"] = round(overhead_nt, 4)
    bench["metrics"]["overhead_events"] = round(overhead_ev, 4)
    bench["metrics"]["overhead_events_metrics"] = round(overhead_full, 4)
    out = REPO_ROOT / "BENCH_observability.json"
    tmp = str(out) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(bench, f, indent=1, sort_keys=True)
        f.write("\n")
    os.replace(tmp, out)

    assert overhead_full < OVERHEAD_LIMIT, (
        f"events+metrics overhead {overhead_full:.1%} exceeds "
        f"{OVERHEAD_LIMIT:.0%}"
    )
