"""E8: the §4.3 iSCSI comparison -- 0x8F6E37A0 (draft iSCSI pick)
vs 0xBA0DC66B (the paper's proposal).

Reproduces the argument: both keep HD=4 out past any realistic iSCSI
burst, but 0xBA0DC66B additionally gives HD=6 for MTU-sized payloads
(single Ethernet packets on the same network), two extra bits of
guaranteed detection over both the 802.3 CRC and the draft pick.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.crc.catalog import PAPER_POLYS
from repro.gf2.order import hd2_data_word_limit
from repro.hd.hamming import hamming_distance
from repro.network.frames import MTU_DATA_WORD_BITS, IscsiPdu

G_ISCSI = PAPER_POLYS["8F6E37A0"]
G_KOOP = PAPER_POLYS["BA0DC66B"]
G_8023 = PAPER_POLYS["802.3"]


def test_hd_at_mtu_comparison(benchmark, record):
    def measure():
        return {
            "802.3": hamming_distance(G_8023.full, MTU_DATA_WORD_BITS),
            "8F6E37A0": hamming_distance(G_ISCSI.full, MTU_DATA_WORD_BITS),
            "BA0DC66B": hamming_distance(G_KOOP.full, MTU_DATA_WORD_BITS),
        }

    hd = once(benchmark, measure)
    record("iscsi", {"hd_at_mtu": hd})
    # the paper's §4.3 pitch: +2 bits of HD at MTU length
    assert hd == {"802.3": 4, "8F6E37A0": 4, "BA0DC66B": 6}


def test_long_pdu_guarantees(benchmark, record):
    """HD >= 4 coverage for packed multi-MTU PDUs, from pure algebra
    (order + parity), for the exact PDU sizes iSCSI would pack."""

    def measure():
        rows = {}
        for mtus in (1, 2, 4, 6, 8, 9):
            bits = IscsiPdu.packed_mtus(mtus).data_word_bits
            rows[mtus] = {
                "data_word_bits": bits,
                "koopman_hd4_holds": bits <= 114663,
                "iscsi_hd4_holds": bits <= hd2_data_word_limit(G_ISCSI.full),
            }
        return rows

    rows = once(benchmark, measure)
    record("iscsi", {"multi_mtu": {str(k): v for k, v in rows.items()}})
    # 0xBA0DC66B: HD=4 "more than 9 times an Ethernet MTU"
    assert rows[9]["data_word_bits"] <= 114663
    for mtus in rows:
        assert rows[mtus]["koopman_hd4_holds"]
        assert rows[mtus]["iscsi_hd4_holds"]


def test_hd6_coverage_window(benchmark, record):
    """Where each candidate's HD=6 guarantee ends (default envelope:
    verify the draft pick's 5243/5244 transition exactly; the 16360
    bound is REPRO_FULL territory, asserted from catalog claims)."""

    def measure():
        return {
            "iscsi_hd6_at_5243": hamming_distance(G_ISCSI.full, 5243),
            "iscsi_hd6_at_5244": hamming_distance(G_ISCSI.full, 5244),
            "koopman_hd6_at_5244": hamming_distance(G_KOOP.full, 5244),
        }

    out = once(benchmark, measure)
    record("iscsi", {"hd6_window": out})
    assert out["iscsi_hd6_at_5243"] == 6
    assert out["iscsi_hd6_at_5244"] == 4
    assert out["koopman_hd6_at_5244"] == 6  # still holding (to 16360)
    assert G_KOOP.hd_breaks[6] == 16360 > MTU_DATA_WORD_BITS
