"""E7: the search campaign -- live scaled runs and the 2001 fleet model.

Three measurements:

* a live exhaustive width-8 campaign through the real distributed
  coordinator with injected faults (crash + duplicate delivery),
  asserting the result matches the clean single-process search;
* the local filtering rate (candidates/second/CPU), the 2026 analogue
  of the paper's "approximately two polynomials ... per second per
  CPU" on 2001 Alphas;
* the virtual-time simulation of the paper's fleet, which must land
  on "one summer" for the full 1,073,774,592-candidate space, with
  Castagnoli-hardware (3600+ years) and brute-force (151M years)
  comparisons.
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.dist.coordinator import Coordinator
from repro.dist.farm import (
    FarmSpec,
    brute_force_years,
    castagnoli_hardware_years,
    paper_campaign_estimate,
)
from repro.dist.faults import FaultPlan
from repro.dist.worker import ChunkWorker
from repro.search.exhaustive import SearchConfig, search_all

CFG = SearchConfig(width=8, target_hd=4, filter_lengths=(16, 40, 100),
                   confirm_weights=False)


def test_live_campaign_with_faults(benchmark, record):
    baseline = search_all(CFG)
    truth = {r.poly: r.survived for r in baseline.records}

    def campaign():
        coord = Coordinator(config=CFG, chunk_size=8, lease_duration=2.0)
        plan = FaultPlan(
            crash_points={"w1": 1},
            duplicate_completions={"w2": 0},
            straggle={"w0": 2.5},
        )
        workers = [ChunkWorker(f"w{i}", CFG, faults=plan) for i in range(3)]
        coord.run(workers)
        return coord

    coord = once(benchmark, campaign)
    assert {r.poly: r.survived for r in coord.campaign.results.values()} == truth
    record("farm", {"live_width8_campaign": {
        "chunks": len(coord.queue),
        "reassignments": coord.reassignments,
        "duplicate_deliveries": coord.duplicate_deliveries,
        "survivors": len(coord.campaign.survivors),
    }})
    assert coord.reassignments >= 1
    assert coord.duplicate_deliveries >= 1


def test_local_filtering_rate(benchmark, record):
    res = once(benchmark, search_all, CFG)
    record("farm", {"filtering_rate": {
        "examined": res.examined,
        "seconds": round(res.elapsed_seconds, 3),
        "candidates_per_second": round(res.filtering_rate, 1),
        "paper_2001_rate_per_cpu": 2.0,
    }})
    # A 2026 CPU with the MITM engine should beat two-per-second at
    # width 8 comfortably (the paper's figure was width 32 at longer
    # lengths, so rates are not directly comparable -- recorded, not
    # asserted against each other).
    assert res.filtering_rate > 2.0


def test_paper_fleet_simulation(benchmark, record):
    est = once(benchmark, paper_campaign_estimate)
    record("farm", {"fleet_2001": {
        "candidates": est.total_candidates,
        "wall_days": round(est.wall_days, 1),
        "wall_months": round(est.wall_months, 2),
        "cpu_years": round(est.cpu_seconds / 3.156e7, 1),
        "paper": "late May to early September 2001 (~3.5 months)",
    }})
    assert 2.5 <= est.wall_months <= 4.5


def test_alternative_platforms(benchmark, record):
    def compute():
        return castagnoli_hardware_years(), brute_force_years()

    hw_years, bf_years = once(benchmark, compute)
    record("farm", {"alternatives": {
        "castagnoli_hardware_years": round(hw_years),
        "paper_claim_hardware": ">3600 years",
        "brute_force_years": float(f"{bf_years:.3g}"),
        "paper_claim_brute_force": "151 million years",
    }})
    assert hw_years > 3600
    assert abs(bf_years / 151e6 - 1) < 0.02


def test_fleet_scaling(benchmark, record):
    """Ablation: how the same campaign scales with fleet size (the
    'riding the technology curve / idle cycles' argument)."""
    from repro.dist.farm import MachineSpec, simulate_campaign

    def sweep():
        rows = {}
        for count in (10, 25, 50, 100):
            farm = FarmSpec((MachineSpec("alpha", count, 2.0),))
            est = simulate_campaign(farm, 1_073_774_592)
            rows[count] = round(est.wall_days, 1)
        return rows

    rows = once(benchmark, sweep)
    record("farm", {"fleet_scaling_wall_days": {str(k): v for k, v in rows.items()}})
    assert rows[100] < rows[50] < rows[25] < rows[10]
    assert rows[50] == pytest.approx(rows[100] * 2, rel=0.05)
