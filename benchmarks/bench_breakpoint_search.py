"""E5: the §4.1 worked example -- finding the 802.3 HD=5 -> HD=4
transition at 2974/2975 bits, comparing search strategies.

The paper walks through four refinements (full weights -> filter to
weight 4 -> early bailout -> increasing lengths + binary search).  Our
engine realizes the endpoint of that ladder (increasing-length probes
+ one collect-all span scan); this benchmark times it against a naive
binary-subdivision search built from the same primitives and against
the per-probe costs the paper quotes (7 min -> 7 s -> under a minute,
on 2001 hardware)."""

from __future__ import annotations

import time

import pytest

from conftest import once
from repro.gf2.notation import koopman_to_full
from repro.hd.breakpoints import first_failure_length
from repro.hd.mitm import exists_weight_k

G = koopman_to_full(0x82608EDB)
R = 32


def binary_subdivision(lo: int, hi: int) -> int:
    """The paper's baseline: bisect [lo, hi] with a full weight-4
    existence check at each midpoint.  Returns the first failing
    length."""
    # invariant: no weight-4 failure at lo; failure at hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if exists_weight_k(G, mid + R, 4):
            hi = mid
        else:
            lo = mid
    return hi


def test_increasing_lengths_strategy(benchmark, record):
    n = once(benchmark, lambda: first_failure_length(G, 4, n_max=4096))
    assert n == 2975
    record("breakpoint_search", {"increasing_lengths": {
        "found": n, "paper": 2975,
    }})


def test_binary_subdivision_strategy(benchmark, record):
    # the paper's hypothetical span: "search for the transition over a
    # span up to 64K bits" -- scaled to 4K here so the comparison runs
    # in seconds (the point is the strategy ratio, not absolute time)
    n = once(benchmark, binary_subdivision, 64, 4096)
    assert n == 2975
    record("breakpoint_search", {"binary_subdivision": {"found": n}})


def test_strategy_comparison(benchmark, record):
    """Head-to-head timing: increasing-lengths concentrates probes on
    short (cheap) windows, beating bisection over the same span, for
    the same exact answer -- §4.1's concluding observation."""

    def both():
        t0 = time.perf_counter()
        a = first_failure_length(G, 4, n_max=4096)
        t_inc = time.perf_counter() - t0
        t0 = time.perf_counter()
        b = binary_subdivision(64, 4096)
        t_bis = time.perf_counter() - t0
        return a, b, t_inc, t_bis

    a, b, t_inc, t_bis = once(benchmark, both)
    assert a == b == 2975
    record("breakpoint_search", {"comparison": {
        "increasing_lengths_seconds": round(t_inc, 3),
        "binary_subdivision_seconds": round(t_bis, 3),
        "paper_note": "increasing lengths beats subdivision by "
                      "concentrating evaluations on small payloads",
    }})


def test_early_out_asymmetry(benchmark, record):
    """§4.1: 'early-out location of an undetected error at a longer
    length can be faster than discovering that all errors are detected
    at a shorter length' -- measured at the exact lengths the paper
    uses (2974 vs 2975)."""

    def measure():
        t0 = time.perf_counter()
        clean = exists_weight_k(G, 2974 + R, 4)
        t_clean = time.perf_counter() - t0
        t0 = time.perf_counter()
        dirty = exists_weight_k(G, 2975 + R, 4)
        t_dirty = time.perf_counter() - t0
        return clean, dirty, t_clean, t_dirty

    clean, dirty, t_clean, t_dirty = once(benchmark, measure)
    assert not clean and dirty
    record("breakpoint_search", {"early_out_asymmetry": {
        "t_all_detected_at_2974": round(t_clean, 4),
        "t_first_undetected_at_2975": round(t_dirty, 4),
        "paper_2001_seconds": {"2974": 2.7, "2975": 1.9},
    }})
