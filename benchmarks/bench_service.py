"""E14: CRC-as-a-service throughput (serving-layer performance).

The north star's "millions of users" framing makes the serving layer a
measured deliverable like any table: this times the two hot paths of
:mod:`repro.service` -- streaming checksum MB/s through
:class:`~repro.service.session.CrcSession` per backend (64 KiB
fragments, the scatter/gather receive shape), and NDJSON requests/s
through :class:`~repro.service.server.CrcService.handle_line` with
``advise``/``hd`` answered from the warmed breakpoint cache (the
no-MITM hot path the acceptance criteria pin).

Output: ``results/service.json`` plus the committed
``BENCH_service.json`` at the repo root (schema 1, like
``BENCH_crc_engines.json``).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from conftest import once
from repro.crc.backends import available_backends, crc_compute
from repro.crc.catalog import get_spec
from repro.crc.codeword import append_fcs
from repro.service.advice import AdviceStore, default_polys
from repro.service.server import CrcService
from repro.service.session import CrcSession

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
CACHE = REPO_ROOT / "results" / "advice_cache.json"

SPEC = get_spec("CRC-32/IEEE-802.3")
CHUNK = 64 * 1024
STREAM_REPS = 3
#: Per-backend payload sizes: the python bit-serial loop is ~3-4
#: orders of magnitude slower, so it gets a smaller (but still
#: chunk-spanning) buffer to keep the benchmark subsecond.
STREAM_BYTES = {"bitwise": 2 * CHUNK, "default": 64 * CHUNK}

REQUEST_REPS = 2000


def payload_for(backend: str) -> bytes:
    n = STREAM_BYTES.get(backend, STREAM_BYTES["default"])
    return bytes((i * 167 + 13) & 0xFF for i in range(n))


def stream_mbps(backend: str) -> float:
    data = payload_for(backend)
    view = memoryview(data)
    expected = crc_compute(SPEC, data)
    session = CrcSession(SPEC, backend)
    best = None
    for _ in range(STREAM_REPS):
        session.reset()
        t0 = time.perf_counter()
        for off in range(0, len(data), CHUNK):
            session.add(view[off:off + CHUNK])
        elapsed = time.perf_counter() - t0
        assert session.value == expected, backend
        best = elapsed if best is None else min(best, elapsed)
    return len(data) / best / 1e6


def requests_per_second(service: CrcService, line: str) -> float:
    out = json.loads(service.handle_line(line))  # warm + correctness
    assert out["ok"], out
    t0 = time.perf_counter()
    for _ in range(REQUEST_REPS):
        service.handle_line(line)
    return REQUEST_REPS / (time.perf_counter() - t0)


def test_service_throughput(benchmark, record):
    store = AdviceStore(str(CACHE), autosave=False)
    missing = [g for g in default_polys() if g not in store.entries]
    assert not missing, f"advice cache is cold for {missing}; re-warm it"
    service = CrcService(store, compute_on_miss=False)

    frame = append_fcs(SPEC, b"x" * 1500).hex()
    requests = {
        "advise": json.dumps({"op": "advise", "length": 1500, "hd": 4}),
        "hd": json.dumps({"op": "hd", "poly": "0xBA0DC66B", "length": 1024}),
        "checksum": json.dumps(
            {"op": "checksum", "spec": SPEC.name, "data": "ab" * 256}
        ),
        "verify": json.dumps(
            {"op": "verify", "spec": SPEC.name, "frame": frame}
        ),
    }

    def measure():
        return {
            "stream_mbyte_per_s": {
                backend: round(stream_mbps(backend), 2)
                for backend in available_backends(SPEC)
            },
            "requests_per_s": {
                op: round(requests_per_second(service, line), 1)
                for op, line in requests.items()
            },
        }

    metrics = once(benchmark, measure)
    record("service", metrics)

    bench = {
        "bench": "service",
        "schema": 1,
        "config": {
            "spec": SPEC.name,
            "chunk_bytes": CHUNK,
            "stream_bytes": {
                b: len(payload_for(b)) for b in available_backends(SPEC)
            },
            "stream_reps": STREAM_REPS,
            "request_reps": REQUEST_REPS,
            "advice_cache": "results/advice_cache.json",
        },
        "metrics": metrics,
    }
    out = REPO_ROOT / "BENCH_service.json"
    tmp = str(out) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(bench, f, indent=1, sort_keys=True)
        f.write("\n")
    os.replace(tmp, out)

    # The serving layer's reasons to exist: table-driven streaming
    # beats the bit-serial loop, and cache-served advice holds
    # interactive request rates without any exact search in-request.
    assert metrics["stream_mbyte_per_s"]["slice8"] > (
        metrics["stream_mbyte_per_s"]["bitwise"]
    )
    assert min(metrics["requests_per_s"].values()) > 100
