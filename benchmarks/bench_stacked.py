"""E9b: stacked application-level CRC (the §4.4 recommendation,
quantified) and the hardware minterm comparison (§4.2's sparse-
polynomial remark).
"""

from __future__ import annotations

import pytest

from conftest import once
from repro.crc.parallel import compare_hardware_cost
from repro.gf2.notation import koopman_to_full
from repro.network.stacked import same_poly_pitfall, stacked_hd

G_LINK = koopman_to_full(0x82608EDB)
G_APP = koopman_to_full(0xBA0DC66B)


def test_same_poly_adds_nothing(benchmark, record):
    out = once(benchmark, lambda: [
        same_poly_pitfall(G_LINK, n) for n in (100, 1000, 4000)
    ])
    record("stacked", {"same_poly_pitfall_at_100_1000_4000": out})
    assert all(out)


def test_stacked_hd_at_record_sizes(benchmark, record):
    def measure():
        rows = {}
        for n in (256, 1000):
            a = stacked_hd(G_LINK, G_APP, n)
            rows[n] = {
                "link_hd": a.hd_link,
                "app_hd": a.hd_app,
                "joint_hd": a.hd_stacked,
                "joint_exact": a.stacked_exact,
                "effective_bits": a.effective_check_bits,
            }
        return rows

    rows = once(benchmark, measure)
    record("stacked", {"link_8023_app_ba0dc66b": {str(k): v for k, v in rows.items()}})
    for n, row in rows.items():
        assert row["effective_bits"] == 64
        assert row["joint_hd"] >= max(row["link_hd"], row["app_hd"]) + 1


def test_hardware_minterms(benchmark, record):
    """§4.2: "Having only five non-zero coefficients may help in
    creating high-speed combinational logic implementation of CRCs by
    reducing logic synthesis minterms" -- XOR-term counts of the
    8-bit-datapath parallel network for each polynomial."""

    def measure():
        return compare_hardware_cost({
            "802.3": G_LINK,
            "BA0DC66B": G_APP,
            "90022004": koopman_to_full(0x90022004),
            "80108400": koopman_to_full(0x80108400),
            "D419CC15": koopman_to_full(0xD419CC15),
        }, datapath=8)

    costs = once(benchmark, measure)
    record("stacked", {"parallel_crc_xor_terms_datapath8": costs})
    assert costs["90022004"]["xor_terms"] < costs["802.3"]["xor_terms"]
    assert costs["80108400"]["xor_terms"] < costs["802.3"]["xor_terms"]
    # the sparse pair is also sparser than the paper's HD-optimal pick
    assert costs["90022004"]["xor_terms"] < costs["BA0DC66B"]["xor_terms"]
