"""E6: the §4.1 optimization studies.

Measures each of the paper's speedup techniques in isolation on the
reference (enumeration) engine, plus the cost-model claims:

* early bailout vs full weight computation;
* FCS-first vs lexicographic pattern order (aggregate over a sample);
* filtering at increasing lengths (the ~17,500x cost ratio between
  1024-bit and 12112-bit HD>4 screens, verified on the cost model and
  empirically via the O((n+r)^2) pair-counting kernel);
* the MITM engine's asymptotic advantage over enumeration.
"""

from __future__ import annotations

import random
import time

import pytest

from conftest import once
from repro.gf2.notation import koopman_to_full
from repro.hd.cost import enumeration_cost, enumeration_speedup, mitm_cost
from repro.hd.reference import enumerate_weights_reference, first_undetected_reference
from repro.hd.weights import count_weight_3


def test_early_bailout_speedup(benchmark, record):
    """Early bailout examines a fraction of the patterns of a full
    weight computation on failing polynomials (width 12 @ 60 bits)."""
    rng = random.Random(1)
    polys = [(1 << 12) | (rng.getrandbits(11) << 1) | 1 for _ in range(12)]

    def measure():
        full = early = 0
        for g in polys:
            full += enumerate_weights_reference(
                g, 60, 4, order="lex", hard_limit=10**8
            ).patterns_examined
            early += enumerate_weights_reference(
                g, 60, 4, order="lex", early_out=True, hard_limit=10**8
            ).patterns_examined
        return full, early

    full, early = once(benchmark, measure)
    speedup = full / max(early, 1)
    record("filtering", {"early_bailout": {
        "patterns_full": full, "patterns_early": early,
        "speedup": round(speedup, 1),
    }})
    assert speedup > 5  # most candidates die early, as the paper found


def test_fcs_first_ordering(benchmark, record):
    """Aggregate head-to-head of the paper's FCS-first heuristic."""
    rng = random.Random(42)
    polys = [(1 << 12) | (rng.getrandbits(11) << 1) | 1 for _ in range(20)]

    def measure():
        wins = losses = lex_total = fcs_total = 0
        for g in polys:
            lex = first_undetected_reference(g, 60, 4, order="lex", hard_limit=10**7)
            fcs = first_undetected_reference(g, 60, 4, order="fcs_first", hard_limit=10**7)
            if not (lex.bailed_out and fcs.bailed_out):
                continue
            lex_total += lex.patterns_examined
            fcs_total += fcs.patterns_examined
            if fcs.patterns_examined <= lex.patterns_examined:
                wins += 1
            else:
                losses += 1
        return wins, losses, lex_total, fcs_total

    wins, losses, lex_total, fcs_total = once(benchmark, measure)
    record("filtering", {"fcs_first": {
        "wins": wins, "losses": losses,
        "lex_patterns": lex_total, "fcs_patterns": fcs_total,
    }})
    assert wins > losses  # the paper's "majority of polynomials" effect


def test_increasing_length_cost_ratio(benchmark, record):
    """The paper's 17,500x: C(12144,4)/C(1056,4).  Verified on the
    model and empirically via the quadratic kernel at scaled lengths
    (timing the actual quartic enumeration at 12112 bits is precisely
    what the paper teaches us NOT to do)."""
    model_ratio = enumeration_speedup(1024 + 32, 12112 + 32, 4)

    g = koopman_to_full(0x82608EDB)

    def empirical_quadratic():
        t0 = time.perf_counter()
        count_weight_3(g, 512 + 32)
        t_short = time.perf_counter() - t0
        t0 = time.perf_counter()
        count_weight_3(g, 2048 + 32)
        t_long = time.perf_counter() - t0
        return t_short, t_long

    t_short, t_long = once(benchmark, empirical_quadratic)
    empirical = t_long / max(t_short, 1e-9)
    expected_quadratic = ((2048 + 32) / (512 + 32)) ** 2
    record("filtering", {"increasing_lengths": {
        "paper_model_ratio_1024_vs_12112": round(model_ratio),
        "quadratic_kernel_time_ratio": round(empirical, 1),
        "quadratic_model_ratio": round(expected_quadratic, 1),
    }})
    assert 17000 < model_ratio < 17600
    # empirical scaling within a loose factor of the O(N^2) model
    assert empirical < expected_quadratic * 4


def test_mitm_vs_enumeration_model(benchmark, record):
    """The algorithmic substitution justification (DESIGN.md): the
    MITM engine turns the paper's '19-day' HD=6 confirmation at 16360
    bits into ~1e8 operations."""

    def ratios():
        n = 16360 + 32
        return {
            "enumeration_ops_w5_check": enumeration_cost(n, 5),
            "mitm_ops_w5_check": mitm_cost(n, 5),
            "enumeration_ops_w4_check": enumeration_cost(n, 4),
            "mitm_ops_w4_check": mitm_cost(n, 4),
        }

    r = once(benchmark, ratios)
    record("filtering", {"mitm_vs_enumeration_at_16392": {
        k: float(f"{v:.3g}") for k, v in r.items()
    }})
    assert r["enumeration_ops_w5_check"] / r["mitm_ops_w5_check"] > 1e8
    assert r["mitm_ops_w4_check"] < 2e8
