#!/usr/bin/env python
"""Service smoke gate: a real ``repro serve-crc`` under a scripted client.

The CI-sized proof that the serving layer works end to end as an
operator would run it: spawn the server as a subprocess on an
ephemeral loopback port (with the committed advice cache, metrics and
an event log on), run a scripted NDJSON session covering every op
plus the error paths, SIGTERM it, and assert the whole story --
responses correct, exit status 0, ``service.start`` /
``service.drain`` / ``service.stop`` in the event log, and the final
``metrics.snapshot`` counters agreeing with the requests we sent
(`make service-smoke`, wired into CI alongside chaos-smoke and
backend-gate).

Exit status 0 iff every assertion holds.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.crc.catalog import get_spec  # noqa: E402
from repro.crc.codeword import append_fcs  # noqa: E402
from repro.obs.events import read_events  # noqa: E402

CACHE = os.path.join(REPO, "results", "advice_cache.json")

#: The scripted session: (request, assertion) pairs.  Assertions are
#: names of checker functions below.
SPEC = get_spec("CRC-32/IEEE-802.3")
FRAME = append_fcs(SPEC, b"service smoke payload")


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def scripted_session(port: int) -> dict[str, int]:
    """Run the client script; returns the op counts it expects the
    server's final metrics snapshot to report."""
    sent: dict[str, int] = {}
    errors = 0
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sk:
        f = sk.makefile("rw")

        def ask(request: dict) -> dict:
            f.write(json.dumps(request) + "\n")
            f.flush()
            return json.loads(f.readline())

        out = ask({"op": "ping", "id": 0})
        check(out["ok"] and out["id"] == 0, f"ping failed: {out}")

        out = ask({"op": "checksum", "spec": SPEC.name,
                   "data": b"123456789".hex()})
        check(out["crc"] == "0xcbf43926", f"checksum wrong: {out}")

        out = ask({"op": "verify", "spec": SPEC.name, "frame": FRAME.hex()})
        check(out["valid"] is True, f"residue verify failed: {out}")

        out = ask({"op": "advise", "length": 1500, "hd": 4})
        check(out["best"] is not None and out["best"]["source"] == "cache",
              f"advise not cache-served: {out}")

        out = ask({"op": "hd", "poly": "0xBA0DC66B", "length": 1024})
        check(out["hd"] == 6 and out["source"] == "cache",
              f"hd not cache-served: {out}")

        for op in ("ping", "checksum", "verify", "advise", "hd"):
            sent[op] = sent.get(op, 0) + 1

        # Error paths must answer too, and count as errors, not ops.
        out = ask({"op": "frobnicate"})
        check(out["error"]["code"] == "unknown-op", f"unexpected: {out}")
        out = ask({"op": "checksum", "spec": "CRC-999", "data": "00"})
        check(out["error"]["code"] == "unknown-spec", f"unexpected: {out}")
        errors += 2
    sent["errors"] = errors
    return sent


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        events_path = os.path.join(tmp, "events.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve-crc",
             "--cache", CACHE, "--no-compute", "--metrics",
             "--events", events_path],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env, cwd=REPO,
        )
        try:
            announce = proc.stdout.readline().strip()
            check(announce.startswith("service.listening "),
                  f"bad announce line: {announce!r}")
            port = int(announce.rsplit("port=", 1)[1])
            print(f"server up on port {port}")

            sent = scripted_session(port)
            print(f"scripted session done: {sent}")

            proc.send_signal(signal.SIGTERM)
            check(proc.wait(timeout=60) == 0,
                  f"drain exit code {proc.returncode}")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        events = {}
        for record in read_events(events_path):
            events.setdefault(record["event"], []).append(record)
        for name in ("service.start", "service.drain", "service.stop"):
            check(name in events, f"missing {name} event")
        check(events["service.drain"][0]["signal"] == "SIGTERM",
              "drain not attributed to SIGTERM")
        total = sum(v for k, v in sent.items() if k != "errors")
        check(events["service.stop"][0]["requests"] == total + sent["errors"],
              "service.stop request count mismatch")

        counters = events["metrics.snapshot"][0]["metrics"]["counters"]
        for op, n in sent.items():
            if op == "errors":
                continue
            check(counters.get(f"service.request.{op}") == n,
                  f"counter service.request.{op} != {n}: {counters}")
        check(counters.get("service.request.error") == sent["errors"],
              f"error counter mismatch: {counters}")
        print("event log and metrics agree with the scripted session")
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
