#!/usr/bin/env python
"""Dashboard smoke gate: a real campaign's log through ``repro dash``.

The CI-sized proof of the acceptance criterion for the live tier: run
a tiny but real ``repro campaign --parallel --events`` as an operator
would, replay the log through ``repro dash <log> --once`` (a second
subprocess -- the actual CLI, not the library), and assert the frame
shows the load-bearing lines: the progress bar at completion, a
throughput figure, per-chunk latency percentiles from the histogram
path, the worker line, and (since tracing rides along with
``--events``) the span waterfall with the remote compute span.  The
error paths ride along: pointing ``dash`` and ``report`` at a
directory or an empty file must exit 2 with a one-line diagnosis.

Exit status 0 iff every assertion holds (``make dash-smoke``).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def run_cli(*args: str, expect_rc: int = 0) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, timeout=600,
    )
    check(
        proc.returncode == expect_rc,
        f"repro {args[0]} exited {proc.returncode}, wanted {expect_rc}:\n"
        f"{proc.stdout}{proc.stderr}",
    )
    return proc


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-dash-smoke-") as scratch:
        log = os.path.join(scratch, "run.jsonl")
        ckpt = os.path.join(scratch, "campaign.json")

        # 1. A real two-process campaign narrating into the log.
        run_cli(
            "campaign", "--width", "8", "--target-hd", "4", "--bits", "100",
            "--parallel", "2", "--chunk-size", "8",
            "--checkpoint", ckpt, "--events", log, "--metrics",
        )
        check(os.path.getsize(log) > 0, "campaign wrote no events")

        # 2. One dashboard frame over that log, via the CLI.
        frame = run_cli("dash", log, "--once").stdout
        for needle in (
            "repro dash",
            "progress: [",
            "throughput:",
            "polys/s",
            "p50=",
            "p95=",
            "p99=",
            "workers: 2 configured",
            "health:",
            "eta: complete",
            "last trace (chunk",
            "chunk.compute",
        ):
            check(needle in frame, f"frame lacks {needle!r}:\n{frame}")
        match = re.search(r"progress: \[#+\] (\d+)/(\d+) chunks", frame)
        check(match is not None, f"no full progress bar in:\n{frame}")
        check(match.group(1) == match.group(2), "campaign not complete")
        latency = re.search(r"p95=([\d.]+)ms", frame)
        check(float(latency.group(1)) > 0.0, "p95 latency is zero")

        # 3. The report reads the same log and carries the percentiles.
        report = run_cli("report", log).stdout
        check("chunk latency: p50=" in report, f"report lacks latency:\n{report}")

        # 4. Friendly failures: directories and empty files are
        # diagnosed on stderr with exit 2, for dash and report both.
        empty = os.path.join(scratch, "empty.jsonl")
        open(empty, "w").close()
        for args, needle in (
            (("dash", scratch, "--once"), "is a directory"),
            (("dash", empty, "--once"), "is empty"),
            (("report", scratch), "is a directory"),
            (("report", empty), "is empty"),
        ):
            proc = run_cli(*args, expect_rc=2)
            err = proc.stdout + proc.stderr
            check(needle in err, f"{args} lacks {needle!r}: {err}")

    print("dash-smoke: campaign -> dash --once -> report all OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
