#!/usr/bin/env python
"""Chaos harness: a real parallel campaign under a scripted disaster.

Runs the same wall-clock :class:`~repro.dist.pool.ParallelCoordinator`
campaign three ways and holds the results to the repo's governing
invariant -- *whatever happens to the processes, the finished campaign
record is bit-identical to a fault-free run*:

1. **Reference**: no faults, no checkpoint.  The ground truth.
2. **Chaos**: a seeded :meth:`~repro.dist.faults.FaultPlan.chaos_plan`
   soft-crashes a fraction of first attempts, hard-kills one
   subprocess (breaking the executor), duplicates one completion, and
   SIGTERMs the coordinator mid-run.  The drained session writes a
   final checkpoint; this script then scribbles over that checkpoint
   (silent bit rot) before resuming.  The resume must fall back to the
   rotated ``.prev`` generation via the CRC self-check, recompute
   whatever the older generation lacks, and finish with the reference
   record, byte for byte.
3. **Poison**: one chunk crashes its worker on *every* attempt.  The
   retry budget must quarantine it: the campaign terminates (instead
   of re-leasing forever), reports the chunk, and the record holds
   exactly everything else.

Exit status 0 iff every assertion holds.  Deterministic in ``--seed``:
two invocations with the same seed produce the same fault schedule
and the same final records (``tests/dist/test_chaos.py`` pins the
plan-level determinism down; ``make chaos-smoke`` runs this script).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.dist.checkpoint import previous_path  # noqa: E402
from repro.dist.faults import FaultPlan, corrupt_file  # noqa: E402
from repro.dist.pool import ParallelCoordinator  # noqa: E402
from repro.obs.events import EventLog, read_events  # noqa: E402
from repro.search.exhaustive import SearchConfig  # noqa: E402

#: Same cheap-but-real search the pool test suite drives: 128
#: candidates, 16 chunks, subsecond per chunk.
CFG = SearchConfig(
    width=8, target_hd=4, filter_lengths=(16, 40, 100), confirm_weights=False
)
CHUNK_SIZE = 8
MAX_SECONDS = 120.0


def make_runner(**kwargs) -> ParallelCoordinator:
    kwargs.setdefault("config", CFG)
    kwargs.setdefault("chunk_size", CHUNK_SIZE)
    kwargs.setdefault("processes", 2)
    kwargs.setdefault("lease_duration", 2.0)
    kwargs.setdefault("max_seconds", MAX_SECONDS)
    kwargs.setdefault("retry_backoff", 0.01)
    return ParallelCoordinator(**kwargs)


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def chaos_run(seed: int, workdir: str, say) -> None:
    """Kill + corrupt + resume; the record must match the reference."""
    reference = make_runner()
    reference.run()
    check(reference.queue.all_done, "reference run did not finish")
    ref_json = reference.campaign.to_json()
    say(f"reference: {reference.stats.completions} chunks, "
        f"{len(reference.campaign.survivors)} survivors")

    ckpt = os.path.join(workdir, "chaos.ckpt")
    events_path = os.path.join(workdir, "chaos.jsonl")
    chunks = len(reference.queue)
    plan = FaultPlan.chaos_plan(
        seed,
        chunks,
        crash_fraction=0.2,
        kill_count=1,
        duplicate=True,
        # SIGTERM the coordinator mid-campaign: late enough that at
        # least two checkpoint generations exist (so the corruption
        # below has a .prev to fall back to), early enough that real
        # work remains for the resumed session.
        kill_signal_after=chunks // 2,
    )
    say(f"chaos plan: crash {sorted(plan.crash_chunks)}, "
        f"kill {sorted(plan.kill_chunks)}, SIGTERM after "
        f"{plan.kill_signal_after} completions")

    with EventLog(events_path) as events:
        session1 = make_runner(
            checkpoint_path=ckpt, checkpoint_every=2, faults=plan,
            events=events,
        )
        session1.run()
        check(
            session1.interrupted == "SIGTERM",
            f"expected a SIGTERM drain, got {session1.interrupted!r}",
        )
        check(
            os.path.exists(previous_path(ckpt)),
            "no rotated .prev generation on disk after the drain",
        )
        say(f"session 1: drained on SIGTERM with "
            f"{session1.stats.completions} chunks done, "
            f"{session1.stats.checkpoints_written} checkpoints written")

        corrupt_file(ckpt, seed=seed)
        say(f"corrupted live checkpoint {ckpt}")

        # Same chunk-level faults (unfinished chunks crash their first
        # attempt again -- the resumed queue starts fresh), but the
        # operator's SIGTERM was a one-time event.
        resumed_plan = dataclasses.replace(plan, kill_signal_after=None)
        session2 = make_runner(
            checkpoint_path=ckpt, checkpoint_every=2, faults=resumed_plan,
            events=events,
        )
        skipped = session2.resume()
        session2.run()
        check(session2.interrupted is None, "resumed session interrupted")
        check(session2.queue.all_done, "resumed session did not finish")
        say(f"session 2: fell back to .prev, skipped {skipped} chunks, "
            f"computed {session2.stats.completions}")

    names = [rec["event"] for rec in read_events(events_path)]
    check(
        "checkpoint.corrupt" in names,
        "resume did not report the corrupted generation",
    )
    check("shutdown.drain" in names, "drain event missing from the log")
    check(
        "campaign.interrupted" in names,
        "campaign.interrupted event missing from the log",
    )

    final_json = session2.campaign.to_json()
    check(
        final_json == ref_json,
        "chaos campaign record differs from the fault-free reference",
    )
    total_done = len(session2.campaign.chunks_done)
    check(total_done == chunks, f"{total_done}/{chunks} chunks accounted for")
    say("chaos record is bit-identical to the reference")


def poison_run(seed: int, workdir: str, say) -> None:
    """A chunk that always crashes must end quarantined, not wedge."""
    poison = seed % (128 // CHUNK_SIZE)
    plan = FaultPlan(poison_chunks={poison})
    runner = make_runner(
        checkpoint_path=os.path.join(workdir, "poison.ckpt"),
        faults=plan,
        max_attempts=3,
    )
    runner.run()
    check(runner.queue.finished, "poison campaign did not terminate")
    check(not runner.queue.all_done, "poison chunk completed impossibly")
    check(
        runner.queue.quarantined_ids == [poison],
        f"expected chunk {poison} quarantined, "
        f"got {runner.queue.quarantined_ids}",
    )
    check(
        poison not in runner.campaign.chunks_done,
        "quarantined chunk leaked into the campaign record",
    )
    check(
        len(runner.campaign.chunks_done) == len(runner.queue) - 1,
        "healthy chunks went missing from the poison campaign",
    )
    say(f"poison chunk {poison} quarantined after "
        f"{runner.queue.task(poison).attempts} attempts; "
        f"all other chunks completed")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2002)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    say = (lambda m: None) if args.quiet else (lambda m: print(f"  {m}"))
    t0 = time.monotonic()
    with tempfile.TemporaryDirectory(prefix="chaos-campaign-") as workdir:
        print(f"chaos campaign (seed {args.seed})")
        chaos_run(args.seed, workdir, say)
        print("poison campaign")
        poison_run(args.seed, workdir, say)
    print(f"PASS in {time.monotonic() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
