#!/usr/bin/env python
"""Kernel-registry identity gate: every backend, every catalog spec.

The CI-sized sibling of ``benchmarks/bench_crc_engines.py``: for each
catalog spec, run the published ``b"123456789"`` check vector plus a
handful of adversarial buffers (empty, single byte, chunk-split,
multi-KiB) through every registered backend and assert exact agreement
with the bit-serial reference.  The registry already differential-tests
each kernel at construction; this gate re-proves it end to end through
the public API (`make backend-gate`, wired into CI alongside tier-1).

Exit status 0 iff every backend of every spec tells the same story.
"""

from __future__ import annotations

import sys

from repro.crc.backends import available_backends, crc_compute
from repro.crc.catalog import CATALOG
from repro.crc.engine import crc_bitwise
from repro.crc.stream import StreamingCrc

VECTORS = (
    b"",
    b"\x00",
    b"123456789",
    bytes(range(256)),
    bytes((i * 167 + 13) & 0xFF for i in range(4096)),
)


def main() -> int:
    failures = []
    for name in sorted(CATALOG):
        spec = CATALOG[name]
        backends = available_backends(spec)
        if crc_compute(spec, b"123456789") != spec.check:
            failures.append(f"{name}: auto backend missed the check vector")
        for data in VECTORS:
            ref = crc_bitwise(spec, data)
            for backend in backends:
                got = crc_compute(spec, data, backend=backend)
                if got != ref:
                    failures.append(
                        f"{name}/{backend}: {got:#x} != {ref:#x} "
                        f"({len(data)} bytes)"
                    )
        # streaming at an awkward split must match one-shot
        h = StreamingCrc(spec)
        long = VECTORS[-1]
        h.update(long[:97])
        h.update(b"")
        h.update(long[97:])
        if h.digest() != crc_bitwise(spec, long):
            failures.append(f"{name}: StreamingCrc split digest mismatch")
        print(f"{name:22s} {len(backends)} backends OK "
              f"({', '.join(backends)})")
    if failures:
        print(f"\n{len(failures)} MISMATCH(ES):")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"\nall backends identical across {len(CATALOG)} specs: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
