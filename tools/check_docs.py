#!/usr/bin/env python
"""Execute every fenced ``python`` block in the Markdown docs, and
validate every intra-repo Markdown link.

Documentation that shows code must show code that runs: this tool
extracts fenced blocks whose info string starts with ``python`` from
README.md and docs/*.md and executes them, per file, in one shared
namespace (so a block may use names an earlier block in the same file
defined -- the way a reader would type them into one REPL session).

Documentation that points somewhere must point at something: before
running any code, every ``[text](target)`` link in README.md,
ROADMAP.md, and docs/*.md is resolved.  Relative targets must name an
existing file or directory; ``#fragment`` anchors (bare or attached
to a ``.md`` target) must match a heading in the target file under
GitHub's slug rules.  External schemes (``http(s)``, ``mailto``) are
left alone -- this is a repo-integrity check, not a crawler.  A
broken link fails the run exactly like a failing example block.

Conventions:

* Blocks run with the repository's ``src/`` importable and the
  current directory set to a fresh temp dir, so examples may write
  files (checkpoints, event logs) without polluting the repo.
* A block whose info string contains ``no-run`` is skipped -- reserved
  for output transcripts and genuinely unrunnable sketches.  Use
  sparingly; every skip weakens the guarantee.
* Non-``python`` fences (bash, plain) are ignored.

Exit status 0 iff every block ran without raising.  On failure, the
offending file, block, and source line are reported with the
traceback.  Wired into ``make verify`` and the docs-check CI job.
"""

from __future__ import annotations

import os
import re
import sys
import tempfile
import time
import traceback

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_FENCE = re.compile(
    r"^```(?P<info>[^\n]*)\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)


def doc_files() -> list[str]:
    files = [os.path.join(REPO, "README.md")]
    docs = os.path.join(REPO, "docs")
    for name in sorted(os.listdir(docs)):
        if name.endswith(".md"):
            files.append(os.path.join(docs, name))
    return files


def link_checked_files() -> list[str]:
    return doc_files() + [os.path.join(REPO, "ROADMAP.md")]


# -- intra-repo link validation ----------------------------------------

#: ``[text](target)`` and ``![alt](target)``; title suffixes
#: (``(file.md "title")``) are split off the target below.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def _strip_fences(text: str) -> str:
    """Drop fenced code blocks -- bracketed indexing in code is not a
    Markdown link."""
    return _FENCE.sub("", text)


def _slugify(heading: str) -> str:
    """GitHub's anchor slug for a heading line (close enough: lower,
    strip punctuation except hyphens/underscores, spaces to hyphens)."""
    # Inline code/emphasis markers render away before slugging.
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: str) -> set[str]:
    with open(path, encoding="utf-8") as f:
        text = _strip_fences(f.read())
    out = set()
    for line in text.splitlines():
        if line.startswith("#"):
            out.add(_slugify(line.lstrip("#")))
    return out


def check_links() -> int:
    """Validate every intra-repo link; returns the number broken."""
    broken = 0
    checked = 0
    for path in link_checked_files():
        rel = os.path.relpath(path, REPO)
        with open(path, encoding="utf-8") as f:
            text = _strip_fences(f.read())
        for m in _LINK.finditer(text):
            target = m.group(1)
            if _EXTERNAL.match(target):
                continue
            checked += 1
            line = text.count("\n", 0, m.start()) + 1
            dest, _, fragment = target.partition("#")
            if dest:
                dest_path = os.path.normpath(
                    os.path.join(os.path.dirname(path), dest)
                )
            else:
                dest_path = path  # same-file anchor
            if not os.path.exists(dest_path):
                broken += 1
                print(f"BROKEN {rel}:{line}: ({target}) -> no such file "
                      f"{os.path.relpath(dest_path, REPO)}")
                continue
            if fragment and dest_path.endswith(".md"):
                if fragment.lower() not in _anchors(dest_path):
                    broken += 1
                    print(f"BROKEN {rel}:{line}: ({target}) -> no heading "
                          f"#{fragment} in "
                          f"{os.path.relpath(dest_path, REPO)}")
    print(f"docs-check: {checked} intra-repo links checked, {broken} broken")
    return broken


def python_blocks(text: str) -> list[tuple[int, str, str]]:
    """``(first_line_number, info_string, source)`` per fenced block."""
    blocks = []
    for m in _FENCE.finditer(text):
        info = m.group("info").strip()
        line = text.count("\n", 0, m.start()) + 2  # body starts after fence
        blocks.append((line, info, m.group("body")))
    return blocks


def run_file(path: str) -> tuple[int, int]:
    """Execute the file's python blocks; returns (run, failed)."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    rel = os.path.relpath(path, REPO)
    namespace: dict = {"__name__": f"docscheck:{rel}"}
    run = failed = 0
    for line, info, body in python_blocks(text):
        words = info.split()
        if not words or words[0] != "python":
            continue
        if "no-run" in words[1:]:
            print(f"  {rel}:{line}: skipped (no-run)")
            continue
        run += 1
        t0 = time.perf_counter()
        try:
            code = compile(body, f"{rel}:{line}", "exec")
            exec(code, namespace)  # noqa: S102 -- the point of the tool
        except Exception:
            failed += 1
            print(f"FAIL {rel}:{line}")
            print("  | " + body.rstrip().replace("\n", "\n  | "))
            traceback.print_exc()
        else:
            print(f"  {rel}:{line}: ok ({time.perf_counter() - t0:.1f}s)")
    return run, failed


def main() -> int:
    sys.path.insert(0, os.path.join(REPO, "src"))
    bad_links = check_links()  # before chdir: paths resolve repo-relative
    total = bad = 0
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
        os.chdir(scratch)  # examples may write checkpoints/logs here
        for path in doc_files():
            run, failed = run_file(path)
            total += run
            bad += failed
    print(f"docs-check: {total} blocks run, {bad} failed")
    return 1 if bad or bad_links else 0


if __name__ == "__main__":
    raise SystemExit(main())
