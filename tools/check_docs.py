#!/usr/bin/env python
"""Execute every fenced ``python`` block in the Markdown docs.

Documentation that shows code must show code that runs: this tool
extracts fenced blocks whose info string starts with ``python`` from
README.md and docs/*.md and executes them, per file, in one shared
namespace (so a block may use names an earlier block in the same file
defined -- the way a reader would type them into one REPL session).

Conventions:

* Blocks run with the repository's ``src/`` importable and the
  current directory set to a fresh temp dir, so examples may write
  files (checkpoints, event logs) without polluting the repo.
* A block whose info string contains ``no-run`` is skipped -- reserved
  for output transcripts and genuinely unrunnable sketches.  Use
  sparingly; every skip weakens the guarantee.
* Non-``python`` fences (bash, plain) are ignored.

Exit status 0 iff every block ran without raising.  On failure, the
offending file, block, and source line are reported with the
traceback.  Wired into ``make verify`` and the docs-check CI job.
"""

from __future__ import annotations

import os
import re
import sys
import tempfile
import time
import traceback

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_FENCE = re.compile(
    r"^```(?P<info>[^\n]*)\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)


def doc_files() -> list[str]:
    files = [os.path.join(REPO, "README.md")]
    docs = os.path.join(REPO, "docs")
    for name in sorted(os.listdir(docs)):
        if name.endswith(".md"):
            files.append(os.path.join(docs, name))
    return files


def python_blocks(text: str) -> list[tuple[int, str, str]]:
    """``(first_line_number, info_string, source)`` per fenced block."""
    blocks = []
    for m in _FENCE.finditer(text):
        info = m.group("info").strip()
        line = text.count("\n", 0, m.start()) + 2  # body starts after fence
        blocks.append((line, info, m.group("body")))
    return blocks


def run_file(path: str) -> tuple[int, int]:
    """Execute the file's python blocks; returns (run, failed)."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    rel = os.path.relpath(path, REPO)
    namespace: dict = {"__name__": f"docscheck:{rel}"}
    run = failed = 0
    for line, info, body in python_blocks(text):
        words = info.split()
        if not words or words[0] != "python":
            continue
        if "no-run" in words[1:]:
            print(f"  {rel}:{line}: skipped (no-run)")
            continue
        run += 1
        t0 = time.perf_counter()
        try:
            code = compile(body, f"{rel}:{line}", "exec")
            exec(code, namespace)  # noqa: S102 -- the point of the tool
        except Exception:
            failed += 1
            print(f"FAIL {rel}:{line}")
            print("  | " + body.rstrip().replace("\n", "\n  | "))
            traceback.print_exc()
        else:
            print(f"  {rel}:{line}: ok ({time.perf_counter() - t0:.1f}s)")
    return run, failed


def main() -> int:
    sys.path.insert(0, os.path.join(REPO, "src"))
    total = bad = 0
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
        os.chdir(scratch)  # examples may write checkpoints/logs here
        for path in doc_files():
            run, failed = run_file(path)
            total += run
            bad += failed
    print(f"docs-check: {total} blocks run, {bad} failed")
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
