#!/usr/bin/env python
"""Farm chaos gauntlet: a multi-worker network campaign under fire.

The same 3-worker loopback farm as ``tools/farm_smoke.py``, but the
wire runs through :class:`~repro.dist.transport.FaultyTransport`
scripted by :meth:`~repro.dist.faults.FaultPlan.farm_chaos_plan`, and
the coordinator itself is SIGTERM-drained mid-campaign and restarted
from its checkpoint.  One seeded run exercises every recovery path
the coordinator owes its operators:

* a **severed connection** mid-protocol -- the worker reconnects with
  backoff and carries on;
* a **dropped completion** -- the ack never comes, the worker times
  out, reconnects, and resends the pended result;
* a **duplicated completion** (the resend, by construction) -- the
  coordinator merges once and counts the echo;
* a **killed worker holding a fresh lease** -- nobody ever completes
  it; the server-side reaper must expire the lease and hand the chunk
  to a surviving worker;
* a **coordinator drain + restart** -- session 1 checkpoints and
  drains on SIGTERM, session 2 resumes the checkpoint with a fresh
  crew and finishes.

The verdict is the repo's governing invariant: after all of that, the
final :class:`~repro.search.records.CampaignRecord` is bit-identical
to a fault-free run's, and the event log proves each fault actually
fired (a chaos harness that quietly stops injecting is worse than
none).  Exit status 0 iff every assertion holds.  Deterministic in
``--seed``: the fault schedule is a pure function of it
(``tests/dist/test_chaos.py::TestFarmChaosPlan`` pins that down);
``make farm-chaos`` runs this script.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.dist.faults import FaultPlan  # noqa: E402
from repro.dist.net import WorkClient, WorkServer, WorkerKilled  # noqa: E402
from repro.dist.tasks import partition_space  # noqa: E402
from repro.dist.transport import FaultyTransport, LoopbackTransport  # noqa: E402
from repro.obs.events import EventLog, read_events  # noqa: E402
from repro.obs.report import RunReport  # noqa: E402
from repro.search.exhaustive import SearchConfig, search_chunk  # noqa: E402
from repro.search.records import CampaignRecord  # noqa: E402

#: Smaller chunks than the smoke (16 of them instead of 8) so session
#: 1 still has real work left when the drain lands.
CFG = SearchConfig(
    width=8, target_hd=4, filter_lengths=(16, 40, 100), confirm_weights=False
)
CHUNK_SIZE = 8
WORKERS = ["w0", "w1", "w2"]
MAX_SECONDS = 120.0


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def reference_record() -> CampaignRecord:
    ref = CampaignRecord(
        width=CFG.width,
        data_word_bits=CFG.final_length,
        target_hd=CFG.target_hd,
    )
    for task in partition_space(CFG.width, CHUNK_SIZE):
        res = search_chunk(CFG, task.start_index, task.end_index)
        ref.merge_chunk(task.chunk_id, res.records, res.examined)
    return ref


def make_server(transport, **kwargs) -> WorkServer:
    kwargs.setdefault("lease_duration", 1.0)
    kwargs.setdefault("handle_signals", False)
    kwargs.setdefault("max_seconds", MAX_SECONDS)
    kwargs.setdefault("checkpoint_every", 2)
    return WorkServer(CFG, CHUNK_SIZE, transport, **kwargs)


def make_client(transport, worker_id, plan=None) -> WorkClient:
    return WorkClient(
        "loopback:0",
        transport,
        worker_id,
        host=f"{worker_id}.farm",
        ack_timeout=0.8,
        reconnect_base=0.02,
        reconnect_cap=0.2,
        max_connect_attempts=30,
        faults=plan,
    )


async def run_session(server, clients):
    async def run_client(client):
        try:
            return await client.run()
        except WorkerKilled:
            return "killed"

    return await asyncio.gather(
        server.serve(), *[run_client(c) for c in clients]
    )


def chaos_farm(seed: int, workdir: str, say) -> None:
    ref_json = reference_record().to_json()
    chunks = len(list(partition_space(CFG.width, CHUNK_SIZE)))
    ckpt = os.path.join(workdir, "farm.ckpt")
    events_path = os.path.join(workdir, "farm.jsonl")

    plan = FaultPlan.farm_chaos_plan(seed, WORKERS)
    # SIGTERM the coordinator once most -- but not all -- of the
    # campaign is done, so the restart has real work left.
    plan.kill_signal_after = chunks - 3
    say(f"plan: sever {plan.net_sever_after}, drop "
        f"{plan.net_drop_complete}, duplicate "
        f"{plan.net_duplicate_complete}, kill {plan.net_kill_after}, "
        f"coordinator SIGTERM after {plan.kill_signal_after} completions")

    with EventLog(events_path) as events:
        transport = FaultyTransport(LoopbackTransport(), plan)
        session1 = make_server(
            transport, checkpoint_path=ckpt, faults=plan, events=events,
            worker_fault_budget=3,
        )
        clients1 = [make_client(transport, w, plan) for w in WORKERS]
        rcs = asyncio.run(run_session(session1, clients1))
        check(
            session1.interrupted == "SIGTERM",
            f"expected a SIGTERM drain, got {session1.interrupted!r}",
        )
        victim = next(iter(plan.net_kill_after))
        check(
            rcs[1 + WORKERS.index(victim)] == "killed",
            f"the kill victim {victim} survived: {rcs}",
        )
        done1 = session1.queue.done
        check(0 < done1 < chunks, f"drained with {done1}/{chunks} done")
        say(f"session 1: drained with {done1}/{chunks} chunks, "
            f"{session1.stats.duplicate_deliveries} duplicate(s), "
            f"{session1.stats.lease_expiries} lease expiry(ies), "
            f"{session1.stats.checkpoints_written} checkpoint(s)")

        # Every scripted fault must have actually fired in session 1.
        check(
            session1.stats.duplicate_deliveries >= 1,
            "the duplicated completion never reached the coordinator",
        )
        check(
            session1.stats.lease_expiries >= 1,
            "the killed worker's lease was never reclaimed",
        )
        resent = {c.worker_id: c.stats.resent_completes for c in clients1}
        check(
            any(n >= 1 for n in resent.values()),
            f"no worker resent a dropped completion: {resent}",
        )
        reconnects = {c.worker_id: c.stats.reconnects for c in clients1}
        check(
            any(n >= 1 for n in reconnects.values()),
            f"no worker reconnected: {reconnects}",
        )

        # Coordinator restart: a clean wire, a fresh crew, the same
        # checkpoint.  The one-time faults already fired.
        transport2 = LoopbackTransport()
        session2 = make_server(
            transport2, checkpoint_path=ckpt, events=events,
        )
        skipped = session2.resume()
        check(skipped == done1, f"resume skipped {skipped}, not {done1}")
        clients2 = [make_client(transport2, f"x{i}") for i in range(2)]
        rcs2 = asyncio.run(run_session(session2, clients2))
        check(rcs2 == [0, 0, 0], f"session 2 exit codes: {rcs2}")
        check(session2.queue.all_done, "resumed farm did not finish")
        say(f"session 2: resumed {skipped} chunks from the checkpoint, "
            f"computed {session2.stats.completions} more")

    check(
        session2.campaign.to_json() == ref_json,
        "post-chaos campaign record differs from the fault-free reference",
    )
    say("post-chaos record is bit-identical to the reference")

    # The event log tells the whole story, including who did what.
    names = [rec["event"] for rec in read_events(events_path)]
    # (worker.lease_lost is absent by design: the lease that expired
    # belonged to the killed worker, and the dead never renew.)
    for wanted in (
        "worker.hello", "lease.expire",
        "shutdown.drain", "campaign.interrupted", "checkpoint.write",
        "campaign.resume", "campaign.end",
    ):
        check(wanted in names, f"{wanted} missing from the event log")
    report = RunReport.from_events(read_events(events_path))
    check(
        set(report.workers) >= set(WORKERS),
        f"per-worker books incomplete: {sorted(report.workers)}",
    )
    merged = sum(w["chunks"] for w in report.workers.values())
    check(
        merged == chunks,
        f"worker books account for {merged}/{chunks} chunks",
    )
    say(f"event log: {len(names)} records, "
        f"{len(report.workers)} worker books balance")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2002)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    say = (lambda m: None) if args.quiet else (lambda m: print(f"  {m}"))
    t0 = time.monotonic()
    with tempfile.TemporaryDirectory(prefix="chaos-farm-") as workdir:
        print(f"farm chaos gauntlet (seed {args.seed})")
        chaos_farm(args.seed, workdir, say)
    print(f"PASS in {time.monotonic() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
