#!/usr/bin/env python
"""Tiny-scale smoke benchmark: batched screening vs the scalar oracle.

The CI-sized sibling of ``benchmarks/bench_batched_search.py``: run
both screening backends over a small full canonical space, assert the
results are identical record for record, and print the timings.  This
is a correctness gate first (`make bench-smoke`, wired into CI
alongside tier-1) and a smoke-level perf signal second -- no speedup
floor is asserted at this scale, where fixed per-batch overheads and
CI machine noise dominate; the committed ≥10x trajectory point comes
from the full-scale benchmark (``BENCH_batched_search.json``).

Exit status 0 iff both backends tell exactly the same story.
"""

from __future__ import annotations

import sys
import time
from dataclasses import replace

from repro.search.exhaustive import SearchConfig, expected_examined, screen_chunk

WIDTH = 10
CFG = SearchConfig.for_bits(WIDTH, 4, 120)


def main() -> int:
    end = 1 << (WIDTH - 1)
    elapsed = {}
    results = {}
    for backend in ("batched", "scalar"):
        t0 = time.perf_counter()
        results[backend] = screen_chunk(replace(CFG, backend=backend), 0, end)
        elapsed[backend] = time.perf_counter() - t0

    batched, scalar = results["batched"], results["scalar"]
    checks = [
        ("examined", batched.examined, scalar.examined),
        ("examined vs space", batched.examined, expected_examined(WIDTH)),
        ("stage_kills", batched.stage_kills, scalar.stage_kills),
        ("records", batched.records, scalar.records),
        (
            "survivors",
            [s[:2] for s in batched.survivors],
            [s[:2] for s in scalar.survivors],
        ),
    ]
    failed = [name for name, got, want in checks if got != want]
    for backend in ("batched", "scalar"):
        rate = batched.examined / elapsed[backend]
        print(
            f"{backend:8s} {elapsed[backend] * 1e3:8.2f} ms  "
            f"{rate:10.0f} candidates/s"
        )
    print(
        f"width {WIDTH}, {batched.examined} candidates, "
        f"{len(batched.survivors)} survivors, "
        f"speedup {elapsed['scalar'] / elapsed['batched']:.1f}x (smoke only)"
    )
    if failed:
        print(f"MISMATCH between backends: {', '.join(failed)}")
        return 1
    print("backends identical: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
