#!/usr/bin/env python
"""Packed-kernel identity gate: bit-plane census vs the scalar oracle.

The CI-sized sibling of ``benchmarks/bench_batched_search.py``: run the
width-10 full canonical space (256 candidates) through the packed
(bit-plane / composite-key) backend and through the scalar cascade,
and assert the census is *bit-identical* -- every record's kill
weight, kill stage and witness, every survivor, every per-stage kill
count.  A second sweep at HD 5 routes the packed backend through the
batched weight-4/5 machinery on materialized tables, and a batch-size-7
pass exercises lane compaction across word boundaries.

Two independent spot-check oracles ride along:

* ``repro.gf2.matpow``: the GF(2) companion-matrix ladder must agree
  with the big-int square-and-multiply ``x_pow_mod`` at large n.
* ``repro.hd.jump``: the bisecting breakpoint engine must reproduce
  the CRC-32 HD=4 breakpoint (2974/2975) from the paper's Table 1.

Exit status 0 iff every census and every oracle agrees
(`make packed-gate`, wired into CI alongside tier-1).
"""

from __future__ import annotations

import sys
import time
from dataclasses import replace

from repro.gf2.matpow import ladder_for
from repro.gf2.notation import koopman_to_full
from repro.gf2.poly import x_pow_mod
from repro.hd.breakpoints import first_failure_length, max_length_for_hd
from repro.search.exhaustive import (
    SearchConfig,
    expected_examined,
    search_chunk,
)

SWEEPS = (
    ("width-10 hd4", SearchConfig.for_bits(10, 4, 160)),
    ("width-10 hd5", SearchConfig.for_bits(10, 5, 120)),
    ("width-10 hd4 batch7", SearchConfig.for_bits(10, 4, 160, batch_size=7)),
)


def census(config: SearchConfig, backend: str):
    end = 1 << (config.width - 1)
    t0 = time.perf_counter()
    result = search_chunk(replace(config, backend=backend), 0, end)
    return time.perf_counter() - t0, result


def diff_census(label, packed, scalar, failures):
    if packed.examined != scalar.examined:
        failures.append(
            f"{label}: examined {packed.examined} != {scalar.examined}"
        )
        return
    if packed.stage_kills != scalar.stage_kills:
        failures.append(
            f"{label}: stage kills {packed.stage_kills} "
            f"!= {scalar.stage_kills}"
        )
    for rp, rs in zip(packed.records, scalar.records):
        if rp != rs:
            failures.append(
                f"{label}: record mismatch at {rp.poly:#x}: {rp} != {rs}"
            )
            return


def main() -> int:
    failures: list[str] = []
    for label, cfg in SWEEPS:
        tp, packed = census(cfg, "packed")
        ts, scalar = census(cfg, "scalar")
        diff_census(label, packed, scalar, failures)
        expect = expected_examined(cfg.width)
        if packed.examined != expect:
            failures.append(
                f"{label}: census covered {packed.examined}, "
                f"expected {expect}"
            )
        survivors = sum(r.survived for r in packed.records)
        print(
            f"{label:22s} {packed.examined} candidates, "
            f"{survivors} survive, packed {tp:.3f}s / scalar {ts:.3f}s"
        )

    # Independent oracle 1: matrix ladder vs big-int exponentiation.
    g = koopman_to_full(0x82608EDB)  # CRC-32
    ladder = ladder_for(g)
    for n in (1, 63, 64, 4096, 12_112, 10**9, 10**15):
        jumped = ladder.syndrome_at(n)
        direct = x_pow_mod(n, g)
        if jumped != direct:
            failures.append(
                f"matpow: x^{n} mod g: {jumped:#x} != {direct:#x}"
            )
    print("matpow ladder vs x_pow_mod at n up to 1e15: OK")

    # Independent oracle 2: the jump engine must land on the paper's
    # CRC-32 HD=4/5 breakpoint (2974 data bits at HD 5).
    ff = first_failure_length(g, 4, n_max=4000)
    ml = max_length_for_hd(g, 5, n_max=4000)
    if (ff, ml) != (2975, 2974):
        failures.append(
            f"jump engine: CRC-32 breakpoint ({ff}, {ml}) != (2975, 2974)"
        )
    print(f"jump engine CRC-32 breakpoint: first HD<5 failure at {ff}, OK")

    if failures:
        print(f"\n{len(failures)} MISMATCH(ES):")
        for line in failures:
            print(f"  {line}")
        return 1
    print("\npacked census bit-identical to scalar oracle: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
