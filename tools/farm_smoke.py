#!/usr/bin/env python
"""Farm smoke: a fault-free multi-worker campaign over the loopback.

Boots a real :class:`~repro.dist.net.WorkServer` coordinator and
three real :class:`~repro.dist.net.WorkClient` workers in one event
loop (the :class:`~repro.dist.transport.LoopbackTransport` stands in
for TCP, frame-for-frame) and checks the repo's governing invariant:
the finished :class:`~repro.search.records.CampaignRecord` is
bit-identical to merging :func:`search_chunk` over the partition
directly.  Also spot-checks the bookkeeping that ``repro serve``
prints for the operator: per-worker chunk counts that sum to the
campaign, one connection per worker, zero duplicates or expiries.

Exit status 0 iff every assertion holds.  ``make farm-smoke`` runs
this in CI; the chaos version of the same farm is
``tools/chaos_farm.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.dist.net import WorkClient, WorkServer  # noqa: E402
from repro.dist.tasks import partition_space  # noqa: E402
from repro.dist.transport import LoopbackTransport  # noqa: E402
from repro.search.exhaustive import SearchConfig, search_chunk  # noqa: E402
from repro.search.records import CampaignRecord  # noqa: E402

#: Same cheap-but-real search the dist test suites drive: 128
#: candidates over 8 chunks, subsecond per chunk.
CFG = SearchConfig(
    width=8, target_hd=4, filter_lengths=(16, 40, 100), confirm_weights=False
)
CHUNK_SIZE = 16
WORKERS = 3
MAX_SECONDS = 120.0


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def reference_record() -> CampaignRecord:
    ref = CampaignRecord(
        width=CFG.width,
        data_word_bits=CFG.final_length,
        target_hd=CFG.target_hd,
    )
    for task in partition_space(CFG.width, CHUNK_SIZE):
        res = search_chunk(CFG, task.start_index, task.end_index)
        ref.merge_chunk(task.chunk_id, res.records, res.examined)
    return ref


async def run_farm(say) -> WorkServer:
    transport = LoopbackTransport()
    server = WorkServer(
        CFG,
        CHUNK_SIZE,
        transport,
        lease_duration=2.0,
        handle_signals=False,
        max_seconds=MAX_SECONDS,
    )
    clients = [
        WorkClient(
            "loopback:0",
            transport,
            f"smoke-w{i}",
            host=f"host{i}",
            reconnect_base=0.02,
        )
        for i in range(WORKERS)
    ]
    rcs = await asyncio.gather(
        server.serve(), *[c.run() for c in clients]
    )
    check(rcs == [0] * (WORKERS + 1), f"non-zero exit codes: {rcs}")
    for client in clients:
        check(client.outcome == "done", f"{client.worker_id}: {client.outcome}")
        say(f"{client.worker_id}: {client.stats.chunks} chunks, "
            f"{client.stats.examined} candidates")
    return server


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    say = (lambda m: None) if args.quiet else (lambda m: print(f"  {m}"))
    t0 = time.monotonic()
    print(f"farm smoke: {WORKERS} loopback workers, "
          f"{128 // CHUNK_SIZE} chunks")
    server = asyncio.run(run_farm(say))

    check(server.queue.all_done, "farm campaign did not finish")
    check(
        server.campaign.to_json() == reference_record().to_json(),
        "farm record differs from the direct single-process merge",
    )
    check(
        server.stats.duplicate_deliveries == 0,
        "duplicates delivered on a fault-free wire",
    )
    check(server.stats.lease_expiries == 0, "leases expired without faults")
    books = server.workers
    check(
        sum(b.chunks for b in books.values()) == len(server.queue),
        "per-worker chunk counts do not sum to the campaign",
    )
    check(
        all(b.connections == 1 for b in books.values()),
        "reconnects on a fault-free wire",
    )
    say(f"record matches the reference "
        f"({len(server.campaign.survivors)} survivors, "
        f"{server.campaign.candidates_examined} candidates)")
    print(f"PASS in {time.monotonic() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
