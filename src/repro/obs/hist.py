"""Fixed-bucket log2 latency histograms.

:class:`~repro.obs.metrics.TimerStat`'s four-number summary (count /
total / min / max) can say *that* requests got slow, but not *which*
requests: a p99 regression hides completely inside an unchanged mean.
This module adds the missing shape.  A :class:`Histogram` counts
observations into **fixed power-of-two buckets** -- bucket ``i`` holds
values in ``(2^(i-1+MIN_EXP), 2^(i+MIN_EXP)]`` seconds, spanning ~1 us
to ~64 s plus an overflow bucket -- so campaigns and services report
p50/p95/p99 chunk and request latencies instead of only means.

The bucket boundaries being *fixed* (never adapted to the data) is the
load-bearing property: two histograms built in different processes
from different samples always share the same buckets, so the
cross-process merge the campaign pool performs
(worker snapshot -> parent :meth:`merge`) is **bucket-exact** -- the
merged histogram equals the histogram of the concatenated samples,
bucket for bucket (``tests/obs/test_hist.py`` proves it with
hypothesis over random sample splits).  That is the same
additive-merge contract counters already obey, extended to
distributions.

Quantiles are estimated by linear interpolation inside the selected
bucket, clamped by the observed min/max -- exact at the resolution of
a factor-of-two bucket, which is the honest resolution for scheduler-
noisy wall-clock data anyway.  The Prometheus text rendering
(:mod:`repro.obs.prom`) exposes the same buckets as a cumulative
``_bucket{le="..."}`` series, so an external scraper and the NDJSON
``metrics`` verb see literally the same numbers.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable

#: Exponent of the smallest bucket's upper bound: 2**-20 s ~= 0.95 us.
MIN_EXP = -20
#: Exponent of the largest finite bucket's upper bound: 2**6 = 64 s.
MAX_EXP = 6

#: Finite bucket upper bounds, ascending; the last bucket is +Inf.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    2.0**e for e in range(MIN_EXP, MAX_EXP + 1)
)

#: Total bucket count, including the +Inf overflow bucket.
NUM_BUCKETS = len(BUCKET_BOUNDS) + 1


class Histogram:
    """Counts of observations in fixed log2 buckets, plus count / sum /
    min / max.  Merge is element-wise addition, so merging commutes
    and associates exactly like counters do."""

    __slots__ = ("buckets", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.buckets = [0] * NUM_BUCKETS
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Count one observation (seconds; any non-negative float)."""
        if value < 0.0:
            value = 0.0
        self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    # -- quantiles ------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1]: walk the
        cumulative counts to the target bucket, interpolate linearly
        inside it, clamp to the observed [min, max].  0.0 when empty."""
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if cumulative + n >= target:
                lo = BUCKET_BOUNDS[i - 1] if i > 0 else 0.0
                hi = (
                    BUCKET_BOUNDS[i]
                    if i < len(BUCKET_BOUNDS)
                    else max(self.max, lo)
                )
                frac = (target - cumulative) / n
                value = lo + (hi - lo) * frac
                return min(max(value, self.min), self.max)
            cumulative += n
        return self.max  # pragma: no cover - q <= 1 lands in the loop

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # -- serialization / merge -----------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A plain-JSON/picklable dump.  Buckets ship sparse (only
        non-zero slots) keyed by bucket index, because most of the
        27-bucket range is empty for any one workload."""
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": round(self.min, 9) if self.count else 0.0,
            "max": round(self.max, 9),
            "buckets": {
                str(i): n for i, n in enumerate(self.buckets) if n
            },
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Histogram":
        hist = cls()
        hist.count = int(d["count"])
        hist.sum = float(d["sum"])
        hist.min = float(d["min"]) if hist.count else float("inf")
        hist.max = float(d["max"])
        for key, n in d.get("buckets", {}).items():
            i = int(key)
            if not 0 <= i < NUM_BUCKETS:
                raise ValueError(
                    f"histogram bucket index {i} outside the fixed "
                    f"log2 scheme (0..{NUM_BUCKETS - 1})"
                )
            hist.buckets[i] = int(n)
        return hist

    def merge(self, other: "Histogram | dict[str, Any]") -> None:
        """Fold another histogram (or its dict snapshot) in: buckets
        and counts add, min/max combine.  Bucket-exact because the
        bounds are fixed."""
        if isinstance(other, dict):
            other = Histogram.from_dict(other)
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, p50={self.p50:.6f}, "
            f"p95={self.p95:.6f}, p99={self.p99:.6f})"
        )


def bucket_upper_bounds() -> tuple[float, ...]:
    """The finite upper bounds, for renderers (the overflow bucket is
    ``+Inf``)."""
    return BUCKET_BOUNDS
