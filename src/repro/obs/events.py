"""Structured campaign event log (JSONL, schema-versioned).

Koopman's 2001 search was steerable only because its progress was
measurable; this module is the reproduction's flight recorder.  An
:class:`EventLog` appends one JSON object per line to a file -- no
dependencies, no daemon, safe to ``tail -f`` -- and the emit sites in
:mod:`repro.dist.pool`, :mod:`repro.dist.coordinator` and
:mod:`repro.search.exhaustive` record every lease grant/renewal/
expiry, worker crash, pool rebuild, chunk completion and checkpoint
write.  :mod:`repro.obs.report` turns the file back into a run
summary.

Design constraints, in order:

* **Crash-durable.**  Every record is flushed on write: a campaign
  killed with SIGKILL loses at most the line being written.  The
  parser (:func:`read_events`) therefore tolerates a torn final line.
* **Appendable.**  A killed-and-resumed campaign reopens the same
  path in append mode; each process session starts with a
  ``log.open`` record carrying a wall-clock anchor, and record
  timestamps are *monotonic seconds since that session's open* (wall
  clocks jump; ``time.monotonic`` does not).  Sessions are delimited
  by the ``log.open`` records.
* **Schema-versioned.**  Every record carries ``{"v": 1}``; readers
  reject records from a future schema instead of misreading them.

Record shape::

    {"v": 1, "seq": 17, "t": 3.201, "event": "pool.chunk.done", ...}

``seq`` restarts at 0 each session; ``t`` is seconds since the
session's ``log.open``.  All other keys are event-specific payload
fields (see docs/OBSERVABILITY.md for the full vocabulary).

The disabled path is :data:`NULL_EVENTS`, whose :meth:`~NullEventLog.emit`
is a constant no-op -- instrumented code calls it unconditionally and
pays one no-op method call per *chunk-scale* event (never per
candidate), which is unmeasurable against real chunk work.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Iterator

#: Version written into every record; bump on incompatible changes.
SCHEMA_VERSION = 1


class NullEventLog:
    """The disabled event sink: every operation is a no-op.

    A single shared instance (:data:`NULL_EVENTS`) is the default
    ``events`` argument throughout the library, so call sites never
    branch on "is logging enabled".
    """

    enabled = False

    def emit(self, event: str, **fields: Any) -> None:  # noqa: ARG002
        return None

    def close(self) -> None:
        return None

    def __enter__(self) -> "NullEventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


#: Shared no-op sink; use as the default for ``events`` parameters.
NULL_EVENTS = NullEventLog()


class EventLog(NullEventLog):
    """Append-only JSONL event writer for one process session.

    Opening the same path again (e.g. after a kill + ``--resume``)
    appends a new session rather than truncating history -- the run
    report aggregates across sessions.

    ``clock`` is injectable for tests; it must be monotonic.
    """

    enabled = True

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = os.fspath(path)
        self._clock = clock
        self._file = open(self.path, "a", encoding="utf-8")
        self._t0 = clock()
        self._seq = 0
        self.emit(
            "log.open",
            wall=round(time.time(), 3),
            pid=os.getpid(),
            schema=SCHEMA_VERSION,
        )

    def emit(self, event: str, **fields: Any) -> None:
        """Append one record and flush it to the OS.

        Payload values must be JSON-serializable (ints, floats,
        strings, lists, dicts); emit sites keep payloads flat.
        """
        if self._file.closed:
            return
        record = {
            "v": SCHEMA_VERSION,
            "seq": self._seq,
            "t": round(self._clock() - self._t0, 6),
            "event": event,
        }
        record.update(fields)
        self._seq += 1
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def iter_events(path: str | os.PathLike[str]) -> Iterator[dict[str, Any]]:
    """Yield event records from a JSONL log, oldest first.

    A torn final line (the writer was killed mid-record) is skipped
    silently; a malformed line anywhere *else* raises ``ValueError``,
    because it means the file is not an event log at all.  Records
    from a newer schema than this reader raise too -- guessing at
    unknown semantics is how dashboards lie.
    """
    with open(path, encoding="utf-8") as f:
        lines = f.read().split("\n")
    # Trailing "" from the final newline, plus possibly a torn record.
    while lines and not lines[-1].strip():
        lines.pop()
    for i, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                return  # torn tail from a kill mid-write
            raise ValueError(
                f"{os.fspath(path)}:{i + 1}: not a JSONL event record"
            ) from None
        if not isinstance(record, dict) or "event" not in record:
            raise ValueError(
                f"{os.fspath(path)}:{i + 1}: not an event record"
            )
        if record.get("v", 0) > SCHEMA_VERSION:
            raise ValueError(
                f"{os.fspath(path)}:{i + 1}: schema v{record['v']} is newer "
                f"than this reader (v{SCHEMA_VERSION})"
            )
        yield record


def read_events(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Read a whole event log into memory (see :func:`iter_events`)."""
    return list(iter_events(path))
