"""Campaign observability: structured events, metrics, run reports.

The 2001 search was steerable because its progress was visible; this
package is the reproduction's instrumentation layer, threaded through
the distributed substrate (:mod:`repro.dist`), the search driver
(:mod:`repro.search.exhaustive`) and the weight engines
(:mod:`repro.hd`):

* :mod:`repro.obs.events` -- zero-dependency JSONL event log
  (schema-versioned, monotonic timestamps, append-across-resumes,
  crash-durable), written by the ``--events PATH`` flag on the
  ``campaign`` and ``search`` CLI commands.
* :mod:`repro.obs.metrics` -- counters/gauges/timers with per-process
  collection and additive cross-process merge; worker subprocesses
  ship snapshots back with their chunk results.
* :mod:`repro.obs.report` -- ``repro report events.jsonl``: the event
  log rendered into throughput, lease-expiry rate, bailout efficiency
  and an ETA check against :mod:`repro.dist.progress`, in human and
  ``BENCH_*.json`` machine form.

Everything is off by default, and the disabled path is a shared no-op
object (:data:`~repro.obs.events.NULL_EVENTS`,
:data:`~repro.obs.metrics.NULL_METRICS`) -- see
docs/OBSERVABILITY.md for the event schema, the metrics catalog and
the measured overhead.
"""

from repro.obs.events import (
    EventLog,
    NULL_EVENTS,
    NullEventLog,
    SCHEMA_VERSION,
    iter_events,
    read_events,
)
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    TimerStat,
    active,
    install,
    uninstall,
)
from repro.obs.report import RunReport

__all__ = [
    "EventLog",
    "NullEventLog",
    "NULL_EVENTS",
    "SCHEMA_VERSION",
    "iter_events",
    "read_events",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "TimerStat",
    "active",
    "install",
    "uninstall",
    "RunReport",
]
