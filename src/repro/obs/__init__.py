"""Campaign observability: structured events, metrics, run reports.

The 2001 search was steerable because its progress was visible; this
package is the reproduction's instrumentation layer, threaded through
the distributed substrate (:mod:`repro.dist`), the search driver
(:mod:`repro.search.exhaustive`) and the weight engines
(:mod:`repro.hd`):

* :mod:`repro.obs.events` -- zero-dependency JSONL event log
  (schema-versioned, monotonic timestamps, append-across-resumes,
  crash-durable), written by the ``--events PATH`` flag on the
  ``campaign`` and ``search`` CLI commands.
* :mod:`repro.obs.metrics` -- counters/gauges/timers with per-process
  collection and additive cross-process merge; worker subprocesses
  ship snapshots back with their chunk results.
* :mod:`repro.obs.report` -- ``repro report events.jsonl``: the event
  log rendered into throughput, lease-expiry rate, bailout efficiency
  and an ETA check against :mod:`repro.dist.progress`, in human and
  ``BENCH_*.json`` machine form.
* :mod:`repro.obs.trace` -- hierarchical spans (``trace.span`` events
  in the same JSONL stream), shipped picklable across the pool
  boundary and re-parented into one waterfall.
* :mod:`repro.obs.hist` -- fixed-bucket log2 latency histograms with
  bucket-exact cross-process merge; p50/p95/p99 for chunks and
  service requests.
* :mod:`repro.obs.live` -- ``repro dash events.jsonl --follow``: the
  stdlib-only terminal dashboard tailing the stream live; and
  :mod:`repro.obs.prom`, the Prometheus text rendering ``serve-crc``
  answers on ``GET /metrics``.

Everything is off by default, and the disabled path is a shared no-op
object (:data:`~repro.obs.events.NULL_EVENTS`,
:data:`~repro.obs.metrics.NULL_METRICS`) -- see
docs/OBSERVABILITY.md for the event schema, the metrics catalog and
the measured overhead.
"""

from repro.obs.events import (
    EventLog,
    NULL_EVENTS,
    NullEventLog,
    SCHEMA_VERSION,
    iter_events,
    read_events,
)
from repro.obs.hist import Histogram
from repro.obs.live import Dashboard, EventTail
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    TimerStat,
    active,
    install,
    uninstall,
)
from repro.obs.report import RunReport
from repro.obs.trace import (
    NULL_TRACE,
    NullTracer,
    Tracer,
    flatten_tree,
    span_tree,
    spans_from_events,
)

__all__ = [
    "EventLog",
    "NullEventLog",
    "NULL_EVENTS",
    "SCHEMA_VERSION",
    "iter_events",
    "read_events",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "TimerStat",
    "Histogram",
    "Tracer",
    "NullTracer",
    "NULL_TRACE",
    "spans_from_events",
    "span_tree",
    "flatten_tree",
    "Dashboard",
    "EventTail",
    "active",
    "install",
    "uninstall",
    "RunReport",
]
