"""Lightweight hierarchical trace spans.

Events (:mod:`repro.obs.events`) say *what* happened; metrics
(:mod:`repro.obs.metrics`) say *how much*; spans say *where inside one
operation the time went*.  A span is one timed region with an id, an
optional parent id, and flat attributes::

    with tracer.span("chunk.compute", chunk=7):
        with tracer.span("screen.stage", n=64):
            ...

Design rules, in order:

* **Same off-by-default contract as the rest of ``repro.obs``.**  The
  process-local active tracer is :data:`NULL_TRACE`, whose ``span()``
  is a constant no-op context manager; instrumented code calls it
  unconditionally.  Instrumentation sits at chunk / cascade-stage /
  request granularity -- never per candidate.
* **Spans are JSONL events, not a second file format.**  A
  :class:`Tracer` bound to an :class:`~repro.obs.events.EventLog`
  emits one ``trace.span`` record per *finished* span (children
  therefore appear before their parents; readers reassemble by id).
  Each record carries ``span``/``parent`` ids, the span ``name``,
  ``dur`` (seconds), and ``rel`` -- the span's start relative to its
  root span's start -- so a waterfall can be rendered without trusting
  cross-process clocks.
* **Picklable across the pool boundary.**  A worker subprocess runs an
  *unattached* tracer (no event log), buffers finished spans as plain
  dicts, and ships :meth:`Tracer.snapshot` back beside its metrics
  snapshot; the parent's :meth:`Tracer.adopt` re-parents the worker's
  root spans under the chunk's dispatch span and emits them into the
  one JSONL stream.  Span ids are ``pid:counter`` strings, so ids from
  different processes never collide and a kill-and-resume campaign's
  sessions stay distinguishable.

Not thread-safe by design: each process (coordinator, worker, service
event loop) owns one tracer and drives it from one thread, the same
discipline the metrics registry already relies on.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Any, Callable, Iterator

from repro.obs.events import NULL_EVENTS, NullEventLog

_ids = itertools.count(1)


def _new_id() -> str:
    """Process-unique span id, collision-free across pool workers."""
    return f"{os.getpid():x}:{next(_ids):x}"


class _SpanHandle:
    """One open span.  ``annotate()`` adds attributes before the span
    finishes; the tracer closes it (``end()`` directly, or the
    ``span()`` context manager on exit)."""

    __slots__ = ("tracer", "name", "id", "parent", "start", "attrs", "_open")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: str,
        parent: str | None,
        start: float,
        attrs: dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.id = span_id
        self.parent = parent
        self.start = start
        self.attrs = attrs
        self._open = True

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def end(self) -> None:
        if self._open:
            self._open = False
            self.tracer._finish(self)


class NullSpan:
    """The disabled span: accepts annotations, records nothing."""

    id = None
    parent = None

    def annotate(self, **attrs: Any) -> None:  # noqa: ARG002
        return None

    def end(self) -> None:
        return None


#: Shared no-op span yielded by the disabled tracer.
NULL_SPAN = NullSpan()


class _NullSpanContext:
    """Reusable no-op context manager: ``NULL_TRACE.span(...)`` costs
    one method call and returns this shared object -- no generator
    frame, no allocation."""

    __slots__ = ()

    def __enter__(self) -> NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled tracer: every operation is a constant no-op."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:  # noqa: ARG002
        return _NULL_SPAN_CONTEXT

    def start(
        self, name: str, parent: str | None = None, **attrs: Any  # noqa: ARG002
    ) -> NullSpan:
        return NULL_SPAN

    def adopt(
        self,
        spans: "list[dict[str, Any]] | None",
        parent: str | None = None,  # noqa: ARG002
    ) -> None:
        return None

    def snapshot(self) -> list[dict[str, Any]] | None:
        return None


#: Shared no-op tracer; the process-wide default.
NULL_TRACE = NullTracer()


class Tracer(NullTracer):
    """Collects hierarchical spans for one process.

    Attached mode (``events`` is a real log): finished spans emit
    ``trace.span`` records immediately and nothing is buffered, so a
    months-long campaign's tracer stays O(open spans).  Unattached
    mode (the pool-worker shape): finished spans buffer as plain
    dicts for :meth:`snapshot` to ship across the process boundary.

    ``clock`` must be monotonic; it is injectable for tests.
    """

    enabled = True

    def __init__(
        self,
        events: NullEventLog = NULL_EVENTS,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.events = events
        self._clock = clock
        self._stack: list[_SpanHandle] = []
        #: Open roots' start times by id, for ``rel`` computation.
        self._root_start: dict[str, float] = {}
        self._buffer: list[dict[str, Any]] = []

    # -- recording ------------------------------------------------------

    def start(
        self, name: str, parent: str | None = None, **attrs: Any
    ) -> _SpanHandle:
        """Open a span that outlives lexical scope (the coordinator's
        chunk span spans many event-loop iterations).  ``parent``
        defaults to the innermost span open via :meth:`span`; pass an
        explicit id (or ``None`` for a root) to place it elsewhere.
        The caller must ``end()`` it."""
        if parent is None and self._stack:
            parent = self._stack[-1].id
        handle = _SpanHandle(
            self, name, _new_id(), parent, self._clock(), dict(attrs)
        )
        if parent is None:
            self._root_start[handle.id] = handle.start
        return handle

    class _SpanContext:
        __slots__ = ("tracer", "name", "attrs", "handle")

        def __init__(
            self, tracer: "Tracer", name: str, attrs: dict[str, Any]
        ) -> None:
            self.tracer = tracer
            self.name = name
            self.attrs = attrs

        def __enter__(self) -> _SpanHandle:
            self.handle = self.tracer.start(self.name, **self.attrs)
            self.tracer._stack.append(self.handle)
            return self.handle

        def __exit__(self, *exc: object) -> None:
            if self.tracer._stack and self.tracer._stack[-1] is self.handle:
                self.tracer._stack.pop()
            self.handle.end()

    def span(self, name: str, **attrs: Any) -> "Tracer._SpanContext":
        """Context manager: open a child of the innermost open span
        (or a root), close it on exit -- even on exceptions."""
        return Tracer._SpanContext(self, name, attrs)

    def _rel_origin(self, handle: _SpanHandle) -> float:
        """The start time of ``handle``'s root, walking the open stack
        (a finished span's ancestors are still open by construction)."""
        parent = handle.parent
        while parent is not None:
            if parent in self._root_start:
                return self._root_start[parent]
            for open_span in reversed(self._stack):
                if open_span.id == parent:
                    parent = open_span.parent
                    break
            else:
                break  # parent opened via start(); treat span as root-relative
        return self._root_start.get(handle.id, handle.start)

    def _finish(self, handle: _SpanHandle) -> None:
        now = self._clock()
        record = {
            "name": handle.name,
            "span": handle.id,
            "parent": handle.parent,
            "rel": round(handle.start - self._rel_origin(handle), 6),
            "dur": round(now - handle.start, 6),
        }
        record.update(handle.attrs)
        self._root_start.pop(handle.id, None)
        if self.events.enabled:
            self.events.emit("trace.span", **record)
        else:
            self._buffer.append(record)

    # -- cross-process shipping ----------------------------------------

    def snapshot(self) -> list[dict[str, Any]]:
        """Drain the buffered finished spans as plain picklable dicts
        (unattached tracers only -- an attached tracer already emitted
        everything and returns an empty list)."""
        spans, self._buffer = self._buffer, []
        return spans

    def adopt(
        self,
        spans: list[dict[str, Any]] | None,
        parent: str | None = None,
    ) -> None:
        """Fold a worker's shipped spans into this tracer's stream.

        The worker's *root* spans (``parent`` is None) are re-parented
        under ``parent`` -- the chunk's dispatch span -- so the
        waterfall shows lease -> dispatch -> compute -> merge as one
        tree even though compute happened in another process.  Non-root
        spans keep their worker-local parent ids (pid-prefixed, so
        they cannot collide with ours)."""
        if not spans:
            return
        for record in spans:
            if record.get("parent") is None and parent is not None:
                record = dict(record, parent=parent, remote=True)
            if self.events.enabled:
                self.events.emit("trace.span", **record)
            else:
                self._buffer.append(record)


# -- the process-local active tracer -----------------------------------
#
# Mirrors repro.obs.metrics: hot paths fetch the tracer at call time,
# so install() takes effect everywhere at once, including in forked
# pool workers that install their own tracer per chunk.

_active: NullTracer = NULL_TRACE


def install(tracer: NullTracer) -> NullTracer:
    """Make ``tracer`` the process-local active tracer; returns the
    previous one so callers can restore it."""
    global _active
    previous = _active
    _active = tracer
    return previous


def uninstall() -> None:
    """Reset the active tracer to the disabled default."""
    install(NULL_TRACE)


def active() -> NullTracer:
    """The tracer instrumented code records into (:data:`NULL_TRACE`
    unless :func:`install` was called in this process)."""
    return _active


def spans_from_events(
    records: "list[dict[str, Any]]",
) -> list[dict[str, Any]]:
    """The ``trace.span`` records of a parsed event stream, in emit
    order (children before parents within one trace)."""
    return [r for r in records if r.get("event") == "trace.span"]


def span_tree(
    spans: list[dict[str, Any]],
) -> dict[str | None, list[dict[str, Any]]]:
    """Index spans by parent id -- ``tree[None]`` are the roots;
    ``tree[span_id]`` the children of ``span_id``.  Orphans (parent
    never seen, e.g. the log started mid-trace) group under their
    missing parent id, which renderers treat as extra roots."""
    tree: dict[str | None, list[dict[str, Any]]] = {}
    for record in spans:
        tree.setdefault(record.get("parent"), []).append(record)
    return tree


def _walk(
    tree: dict[str | None, list[dict[str, Any]]],
    parent: str | None,
    depth: int,
    out: list[tuple[int, dict[str, Any]]],
    seen: set[str],
) -> None:
    for record in tree.get(parent, []):
        span_id = record.get("span")
        if span_id in seen:
            continue  # defensive: a cycle would otherwise recurse forever
        seen.add(span_id)
        out.append((depth, record))
        _walk(tree, span_id, depth + 1, out, seen)


def flatten_tree(
    spans: list[dict[str, Any]],
) -> list[tuple[int, dict[str, Any]]]:
    """Depth-first ``(depth, span)`` rows for rendering: roots at
    depth 0, children indented under their parents, orphaned subtrees
    appended as extra roots."""
    tree = span_tree(spans)
    known = {r.get("span") for r in spans}
    out: list[tuple[int, dict[str, Any]]] = []
    seen: set[str] = set()
    _walk(tree, None, 0, out, seen)
    for parent in tree:
        if parent is not None and parent not in known:
            _walk(tree, parent, 0, out, seen)
    return out
