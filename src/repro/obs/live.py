"""Live terminal dashboard over a campaign's JSONL event stream.

``repro report`` is the post-mortem; this module is the flight deck.
``repro dash run.jsonl --follow`` tails the event log a campaign (or
service) is writing *right now* and renders, once a second, the
numbers the 2001 operators steered ~80 workstations by: throughput,
chunks in flight, lease churn, quarantines, per-chunk latency
percentiles, the estimator's ETA -- and, with tracing on, the most
recent span waterfall showing where inside a chunk or request the
time went.

Stdlib only, like everything in ``repro.obs``: the renderer writes
plain text (one ANSI clear-screen between frames in follow mode), so
it works over ssh, under ``watch``, and in CI (``--once`` renders a
single frame and exits -- ``make dash-smoke`` asserts on it).

Tailing is torn-tolerant twice over, because the writer may be killed
mid-record at any moment:

* :class:`EventTail` only consumes *newline-terminated* lines; a
  partial final line stays in the file until the writer finishes it
  (or is never finished -- a dead writer's torn tail is simply never
  rendered, same as :func:`repro.obs.events.iter_events` skipping it).
* A log that shrinks (rotated or restarted) resets the tail to the
  start rather than erroring.

Aggregation reuses :class:`~repro.obs.report.RunReport` wholesale --
the dashboard re-folds the accumulated records each frame, so every
number shown live is *definitionally* the number the post-mortem
report will print.  Event logs are chunk-granular (never
per-candidate), so a re-fold is thousands of records, not millions.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Callable

from repro.obs.events import SCHEMA_VERSION
from repro.obs.report import _CHUNK_DONE, RunReport
from repro.obs.trace import span_tree

#: How many finished spans the dashboard keeps for waterfall rendering.
SPAN_WINDOW = 512


class EventTail:
    """Incremental JSONL reader: each :meth:`poll` yields the records
    appended since the last poll, never consuming a torn final line."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self._offset = 0

    def poll(self) -> list[dict[str, Any]]:
        """The records appended since the last poll (possibly empty).

        Raises ``ValueError`` on a malformed *interior* line -- the
        file is not an event log -- but leaves an unterminated final
        line unconsumed for the next poll.
        """
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size < self._offset:
            self._offset = 0  # rotated/truncated: start over
        if size == self._offset:
            return []
        with open(self.path, "rb") as f:
            f.seek(self._offset)
            data = f.read()
        # Only newline-terminated lines are complete records; whatever
        # follows the last newline is a write in progress.
        end = data.rfind(b"\n")
        if end < 0:
            return []
        complete, self._offset = data[: end + 1], self._offset + end + 1
        records: list[dict[str, Any]] = []
        for raw in complete.split(b"\n"):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                raise ValueError(
                    f"{self.path}: not a JSONL event log (malformed line)"
                ) from None
            if not isinstance(record, dict) or "event" not in record:
                raise ValueError(f"{self.path}: not an event record")
            if record.get("v", 0) > SCHEMA_VERSION:
                raise ValueError(
                    f"{self.path}: schema v{record['v']} is newer than "
                    f"this reader (v{SCHEMA_VERSION})"
                )
            records.append(record)
        return records


def _bar(fraction: float, width: int = 24) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _fmt_eta(seconds: float | None) -> str:
    if seconds is None:
        return "unknown (no completions yet)"
    if seconds <= 0:
        return "complete"
    if seconds < 90:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 90:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class Dashboard:
    """Fold a (possibly still growing) event stream into render frames.

    Aggregate numbers come from re-folding all records through
    :class:`~repro.obs.report.RunReport`; the live-only state --
    chunks currently in flight, the recent span window, last event
    time -- is tracked incrementally here.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = os.fspath(path)
        self.tail = EventTail(path)
        self.records: list[dict[str, Any]] = []
        self.spans: deque[dict[str, Any]] = deque(maxlen=SPAN_WINDOW)
        #: Chunk ids leased but not yet completed/forfeited.
        self.in_flight: set[int] = set()
        self.last_event: dict[str, Any] | None = None
        #: Farm-worker liveness: last (t, event) *from* each worker --
        #: hellos, renews, completions.  A lease expiring is evidence
        #: of death, not life, so it never refreshes this.
        self.worker_last: dict[str, tuple[float, str]] = {}

    def refresh(self) -> int:
        """Pull newly appended records; returns how many arrived."""
        new = self.tail.poll()
        for rec in new:
            self._fold_live(rec)
        self.records.extend(new)
        return len(new)

    def _fold_live(self, rec: dict[str, Any]) -> None:
        event = rec.get("event")
        self.last_event = rec
        worker = rec.get("worker")
        if isinstance(worker, str) and event != "lease.expire":
            self.worker_last[worker] = (
                float(rec.get("t", 0.0)),
                str(event),
            )
        if event == "trace.span":
            self.spans.append(rec)
        elif event == "lease.grant":
            self.in_flight.add(rec.get("chunk"))
        elif event in _CHUNK_DONE or event in (
            "lease.expire",
            "chunk.quarantine",
            "worker.crash",
        ):
            self.in_flight.discard(rec.get("chunk"))
        elif event in ("pool.rebuild", "shutdown.drain", "log.open"):
            # Everything in flight was forfeited or belongs to a dead
            # session.
            self.in_flight.clear()

    # -- waterfall ------------------------------------------------------

    def _waterfall(self, max_rows: int = 12) -> list[str]:
        """The most recent *root* span's subtree, one row per span:
        name, offset from the root start, duration, and a bar scaled
        to the root's duration."""
        spans = list(self.spans)
        if not spans:
            return []
        root = next(
            (s for s in reversed(spans) if s.get("parent") is None), None
        )
        if root is None:
            return []
        tree = span_tree(spans)
        rows: list[tuple[int, dict[str, Any]]] = []

        def walk(span: dict[str, Any], depth: int) -> None:
            rows.append((depth, span))
            for child in tree.get(span.get("span"), []):
                walk(child, depth + 1)

        walk(root, 0)
        total = max(float(root.get("dur", 0.0)), 1e-9)
        label = root.get("name", "?")
        for key in ("chunk", "op"):
            if key in root:
                label += f" {key}={root[key]}"
        lines = [f"last trace ({label}, {total * 1000:.1f}ms):"]
        for depth, span in rows[:max_rows]:
            rel = float(span.get("rel", 0.0))
            dur = float(span.get("dur", 0.0))
            pre = int(round((rel / total) * 20))
            fill = max(int(round((dur / total) * 20)), 1)
            bar = " " * min(pre, 19) + "#" * min(fill, 20 - min(pre, 19))
            name = "  " * depth + str(span.get("name", "?"))
            lines.append(
                f"    {name:<26} {bar:<20} +{rel * 1000:7.1f}ms "
                f"{dur * 1000:8.1f}ms"
            )
        if len(rows) > max_rows:
            lines.append(f"    ... {len(rows) - max_rows} more spans")
        return lines

    # -- frames ---------------------------------------------------------

    def render(self, *, following: bool = False) -> str:
        """One dashboard frame as plain text."""
        report = RunReport.from_events(self.records, path=self.path)
        mode = "following" if following else "snapshot"
        lines = [f"repro dash -- {self.path} ({mode})"]
        if report.config:
            cfg = ", ".join(
                f"{k}={v}" for k, v in sorted(report.config.items())
            )
            lines.append(f"  campaign: {cfg}")
        done = report.chunks_completed + report.chunks_resumed
        total = report.total_chunks
        if total:
            frac = done / total
            lines.append(
                f"  progress: [{_bar(frac)}] {done}/{total} chunks "
                f"({frac:.0%})"
                + (
                    f", {report.chunks_resumed} resumed"
                    if report.chunks_resumed
                    else ""
                )
            )
        else:
            lines.append(f"  progress: {done} chunks done (total unknown)")
        dur = report.chunk_durations
        lines.append(
            f"  throughput: {report.polys_per_second:.1f} polys/s over "
            f"{report.active_seconds:.1f}s observed "
            f"({report.candidates_examined} examined, "
            f"{report.survivors} survivors)"
        )
        lines.append(
            f"  latency: chunk p50={dur.p50 * 1000:.1f}ms "
            f"p95={dur.p95 * 1000:.1f}ms p99={dur.p99 * 1000:.1f}ms "
            f"max={dur.max * 1000:.1f}ms (n={dur.count})"
        )
        workers = report.config.get("processes") or report.config.get(
            "workers"
        )
        lines.append(
            f"  workers: {workers if workers is not None else '?'} "
            f"configured, {len(self.in_flight)} chunks in flight, "
            f"session {report.sessions}"
        )
        if self.worker_last:
            frontier = (
                float(self.last_event.get("t", 0.0))
                if self.last_event is not None
                else 0.0
            )
            parts = []
            for name in sorted(self.worker_last):
                t, last = self.worker_last[name]
                folded = report.workers.get(name, {})
                part = (
                    f"{name} {folded.get('chunks', 0)}ch "
                    f"(last {last} {max(frontier - t, 0.0):.1f}s ago)"
                )
                if folded.get("benched"):
                    part += " [benched]"
                parts.append(part)
            lines.append(f"  hosts: {'; '.join(parts)}")
        lines.append(
            f"  health: {report.lease_expiries} lease expiries "
            f"({report.lease_expiry_rate:.0%} of grants), "
            f"{report.worker_crashes} crashes, "
            f"{report.pool_rebuilds} rebuilds, "
            f"{report.quarantined_chunks} quarantined, "
            f"{report.interruptions} drains"
        )
        if report.complete:
            lines.append("  eta: complete")
        else:
            rate = report.estimator_rate
            lines.append(
                f"  eta: {_fmt_eta(report.estimator_eta_seconds)}"
                + (f" at {rate:.2f} chunks/s" if rate else "")
            )
        if self.last_event is not None:
            lines.append(
                f"  last event: {self.last_event.get('event')} "
                f"at t={self.last_event.get('t', 0.0):.1f}s"
            )
        waterfall = self._waterfall()
        if waterfall:
            lines.append("  " + waterfall[0])
            lines.extend(waterfall[1:])
        return "\n".join(lines)


#: ANSI: clear screen + home -- the whole "TUI framework".
CLEAR = "\x1b[2J\x1b[H"


def check_log_path(path: str) -> str | None:
    """A friendly diagnosis of an unusable event-log path, or ``None``
    when the path is a plausible log file."""
    if not os.path.exists(path):
        return f"{path}: no such file"
    if os.path.isdir(path):
        return (
            f"{path} is a directory, not an event log; pass the "
            ".jsonl file a campaign wrote with --events"
        )
    if os.path.getsize(path) == 0:
        return (
            f"{path} is empty: no events were written yet (is the "
            "campaign running with --events pointing here?)"
        )
    return None


def run_dash(
    path: str,
    *,
    follow: bool = False,
    interval: float = 1.0,
    out: Callable[[str], None] = print,
    max_frames: int | None = None,
) -> int:
    """Drive the dashboard: render once, or every ``interval`` seconds
    until Ctrl-C.  ``max_frames`` bounds follow mode for tests."""
    problem = check_log_path(path)
    if problem is not None and not (follow and not os.path.isdir(path)):
        out(f"repro dash: {problem}")
        return 2
    dash = Dashboard(path)
    try:
        dash.refresh()
    except ValueError as exc:
        out(f"repro dash: {exc}")
        return 2
    if not follow:
        out(dash.render())
        return 0
    frames = 0
    try:
        while True:
            out(CLEAR + dash.render(following=True))
            frames += 1
            if max_frames is not None and frames >= max_frames:
                return 0
            time.sleep(interval)
            try:
                dash.refresh()
            except ValueError as exc:
                out(f"repro dash: {exc}")
                return 2
    except KeyboardInterrupt:
        out("")  # leave the shell prompt on its own line
        return 0
