"""Prometheus text exposition of a :class:`~repro.obs.metrics.MetricsRegistry`.

``repro serve-crc`` answers ``GET /metrics`` on its NDJSON TCP port
with this rendering (text format 0.0.4), so an external scraper and
the NDJSON ``metrics`` verb read the *same registry at the same
instant* -- no second collection path, no drift.  The mapping:

* counters -> ``counter`` samples (dotted names flattened to
  underscores: ``service.request.ping`` -> ``service_request_ping``);
* gauges -> ``gauge`` samples;
* timers (:class:`~repro.obs.metrics.TimerStat`) -> the Prometheus
  summary-shaped pair ``<name>_count`` / ``<name>_sum``;
* histograms (:mod:`repro.obs.hist`) -> a ``histogram`` family:
  cumulative ``<name>_bucket{le="..."}`` series over the fixed log2
  bounds plus ``le="+Inf"``, and ``<name>_sum`` / ``<name>_count``.
  The ``+Inf`` bucket equals ``<name>_count`` by construction, which
  is exactly the sum-match the service tests assert against the
  NDJSON snapshot.
"""

from __future__ import annotations

import re

from repro.obs.hist import BUCKET_BOUNDS
from repro.obs.metrics import NullMetrics

#: Content-Type for the rendering (Prometheus text format 0.0.4).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(dotted: str) -> str:
    """A dotted repro metric name as a legal Prometheus metric name."""
    name = _NAME_RE.sub("_", dotted)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _fmt(value: float) -> str:
    """A sample value: integral floats render bare, no exponent noise
    for the common case."""
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _le(bound: float) -> str:
    """A bucket bound for the ``le`` label (shortest exact form)."""
    return repr(bound)


def render_prometheus(registry: NullMetrics) -> str:
    """The registry as Prometheus text format 0.0.4 (trailing newline
    included).  A disabled registry renders to a comment only."""
    if not registry.enabled:
        return "# metrics collection disabled (run with --metrics)\n"
    lines: list[str] = []
    for dotted in sorted(registry.counters):
        name = metric_name(dotted)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(registry.counters[dotted])}")
    for dotted in sorted(registry.gauges):
        name = metric_name(dotted)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(registry.gauges[dotted])}")
    for dotted in sorted(registry.timers):
        timer = registry.timers[dotted]
        name = metric_name(dotted)
        lines.append(f"# TYPE {name} summary")
        lines.append(f"{name}_count {timer.count}")
        lines.append(f"{name}_sum {_fmt(timer.total)}")
    for dotted in sorted(registry.hists):
        hist = registry.hists[dotted]
        name = metric_name(dotted)
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for i, bound in enumerate(BUCKET_BOUNDS):
            cumulative += hist.buckets[i]
            lines.append(f'{name}_bucket{{le="{_le(bound)}"}} {cumulative}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{name}_sum {_fmt(hist.sum)}")
        lines.append(f"{name}_count {hist.count}")
    return "\n".join(lines) + "\n" if lines else "# no metrics recorded\n"
