"""Lightweight metrics registry: counters, gauges, timers.

Where :mod:`repro.obs.events` records *what happened*,  this module
counts *where the cycles go*: candidates screened, cascade-stage
kills, meet-in-the-middle early bailouts, syndrome chunks streamed.
The emit sites live in the hot paths (:mod:`repro.search.exhaustive`,
:mod:`repro.hd.weights`, :mod:`repro.hd.mitm`), so the design is
ruled by the disabled-path cost:

* Collection is **off by default**.  The process-local active
  registry is :data:`NULL_METRICS`, whose methods are constant
  no-ops; hot code calls ``active().inc(...)`` unconditionally and
  pays two attribute lookups and an empty call -- nanoseconds against
  the microseconds-to-milliseconds of real work per candidate
  (``benchmarks/bench_observability.py`` holds this under 3% end to
  end, and ``tests/obs/test_metrics.py`` pins the no-op property).
* Aggregation is **per process**.  Each worker subprocess installs
  its own registry, measures locally, and ships a plain-dict
  :meth:`~MetricsRegistry.snapshot` back with its chunk result; the
  parallel pool merges snapshots into the parent registry at chunk
  completion (:meth:`~MetricsRegistry.merge`).  Merging is pure
  addition (counters/timers) or last-write (gauges), so the merged
  registry of a killed-and-resumed campaign equals the sum of its
  sessions.

Metric names are dotted strings (``"search.candidates"``); the
catalog lives in docs/OBSERVABILITY.md.  Four instrument kinds:
counters, gauges, timers (four-number summaries), and fixed-bucket
log2 latency histograms (:mod:`repro.obs.hist`), whose merge is
bucket-exact across processes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.hist import Histogram


class TimerStat:
    """Aggregate of observed durations: count / total / min / max.

    A four-number summary rather than a histogram: enough to read
    throughput and spot stragglers, cheap enough to merge by
    addition.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(
        self,
        count: int = 0,
        total: float = 0.0,
        min_: float = float("inf"),
        max_: float = 0.0,
    ) -> None:
        self.count = count
        self.total = total
        self.min = min_
        self.max = max_

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": round(self.total, 6),
            "min": round(self.min, 6) if self.count else 0.0,
            "max": round(self.max, 6),
        }

    @classmethod
    def from_dict(cls, d: dict[str, float]) -> "TimerStat":
        return cls(
            count=int(d["count"]),
            total=float(d["total"]),
            min_=float(d["min"]) if d["count"] else float("inf"),
            max_=float(d["max"]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimerStat):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"TimerStat(count={self.count}, total={self.total:.6f}, "
            f"min={self.min if self.count else 0.0:.6f}, max={self.max:.6f})"
        )


class NullMetrics:
    """The disabled registry: every operation is a constant no-op.

    Shared as :data:`NULL_METRICS` and installed by default, so the
    instrumented hot paths cost one empty method call when metrics
    are off (``tests/obs/test_metrics.py`` asserts nothing is ever
    recorded through it).
    """

    enabled = False

    def inc(self, name: str, by: int = 1) -> None:  # noqa: ARG002
        return None

    def gauge(self, name: str, value: float) -> None:  # noqa: ARG002
        return None

    def observe(self, name: str, seconds: float) -> None:  # noqa: ARG002
        return None

    def observe_hist(self, name: str, value: float) -> None:  # noqa: ARG002
        return None

    @contextmanager
    def time(self, name: str) -> Iterator[None]:  # noqa: ARG002
        yield

    @contextmanager
    def time_hist(self, name: str) -> Iterator[None]:  # noqa: ARG002
        yield

    def snapshot(self) -> dict[str, Any] | None:
        return None


#: Shared no-op registry; the process-wide default.
NULL_METRICS = NullMetrics()


class MetricsRegistry(NullMetrics):
    """Process-local metrics store with additive cross-process merge."""

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.timers: dict[str, TimerStat] = {}
        self.hists: dict[str, Histogram] = {}

    def inc(self, name: str, by: int = 1) -> None:
        """Add ``by`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + by

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to the latest observed ``value``."""
        self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration under timer ``name``."""
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = TimerStat()
        timer.observe(seconds)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager timing its body into :meth:`observe`."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - t0)

    def observe_hist(self, name: str, value: float) -> None:
        """Count one observation into log2 histogram ``name`` (see
        :mod:`repro.obs.hist`)."""
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = Histogram()
        hist.observe(value)

    @contextmanager
    def time_hist(self, name: str) -> Iterator[None]:
        """Context manager timing its body into :meth:`observe_hist`."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe_hist(name, time.perf_counter() - t0)

    # -- cross-process aggregation -------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-JSON/picklable dump, suitable for shipping across a
        process boundary or embedding in an event record."""
        snap: dict[str, Any] = {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {k: t.to_dict() for k, t in self.timers.items()},
        }
        if self.hists:
            snap["hists"] = {k: h.to_dict() for k, h in self.hists.items()}
        return snap

    def merge(self, snapshot: "dict[str, Any] | MetricsRegistry | None") -> None:
        """Fold another registry's snapshot into this one.

        Counters and timers add; gauges take the incoming value
        (last-write-wins -- gauges are instantaneous readings, not
        accumulations).  ``None`` merges as empty, so callers can pass
        a worker's snapshot through unconditionally.
        """
        if snapshot is None:
            return
        if isinstance(snapshot, MetricsRegistry):
            snapshot = snapshot.snapshot()
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, d in snapshot.get("timers", {}).items():
            incoming = TimerStat.from_dict(d)
            timer = self.timers.get(name)
            if timer is None:
                self.timers[name] = incoming
            else:
                timer.count += incoming.count
                timer.total += incoming.total
                timer.min = min(timer.min, incoming.min)
                timer.max = max(timer.max, incoming.max)
        for name, d in snapshot.get("hists", {}).items():
            hist = self.hists.get(name)
            if hist is None:
                self.hists[name] = Histogram.from_dict(d)
            else:
                hist.merge(d)

    def render(self) -> str:
        """Human-readable dump, one metric per line, sorted."""
        lines = []
        for name in sorted(self.counters):
            lines.append(f"  {name} = {self.counters[name]}")
        for name in sorted(self.gauges):
            lines.append(f"  {name} = {self.gauges[name]:g}")
        for name in sorted(self.timers):
            t = self.timers[name]
            lines.append(
                f"  {name}: n={t.count} total={t.total:.3f}s "
                f"mean={t.mean * 1000:.2f}ms max={t.max * 1000:.2f}ms"
            )
        for name in sorted(self.hists):
            h = self.hists[name]
            lines.append(
                f"  {name}: n={h.count} p50={h.p50 * 1000:.2f}ms "
                f"p95={h.p95 * 1000:.2f}ms p99={h.p99 * 1000:.2f}ms "
                f"max={h.max * 1000:.2f}ms"
            )
        return "\n".join(lines) if lines else "  (no metrics recorded)"


# -- the process-local active registry ---------------------------------
#
# Hot paths fetch the active registry through active() at call time
# (never cached at import time), so install() takes effect everywhere
# at once -- including in forked worker processes, which re-install
# their own registry on entry (repro.dist.pool._run_chunk).

_active: NullMetrics = NULL_METRICS


def install(registry: NullMetrics) -> NullMetrics:
    """Make ``registry`` the process-local active registry; returns
    the previous one so callers can restore it."""
    global _active
    previous = _active
    _active = registry
    return previous


def uninstall() -> None:
    """Reset the active registry to the disabled default."""
    install(NULL_METRICS)


def active() -> NullMetrics:
    """The registry hot paths record into (:data:`NULL_METRICS` unless
    :func:`install` was called in this process)."""
    return _active
