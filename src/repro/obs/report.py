"""Render an event log into a run report.

The inverse of :mod:`repro.obs.events`: given the JSONL a campaign
(or search) wrote, reconstruct what happened -- chunks completed,
lease churn, crash/recovery traffic, checkpoint cadence, filtering
efficiency -- and derive the numbers an operator steers by:

* **throughput** in polynomials (candidates) per second of observed
  wall time, aggregated across kill/resume sessions;
* **lease-expiry rate** (expiries per grant), the health signal the
  2001 farm would have watched for flaky machines;
* **bailout efficiency**: what fraction of candidates the
  increasing-length filter cascade killed before the expensive final
  length (the paper's §4.1 argument, measured);
* the :class:`~repro.dist.progress.ProgressTracker` estimator's view,
  replayed from the recorded completion times, so its ETA can be
  compared against what actually happened.

Two output forms: :meth:`RunReport.render` for humans, and
:meth:`RunReport.to_bench_dict` for machines -- the same envelope the
repo's ``BENCH_*.json`` perf-trajectory files use
(``{"bench": ..., "schema": 1, "config": ..., "metrics": ...}``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.obs.events import iter_events
from repro.obs.hist import Histogram
from repro.obs.metrics import MetricsRegistry

if False:  # import only for type checkers: repro.dist imports repro.obs
    from repro.dist.progress import ProgressTracker

#: Event names that mark a merged chunk completion, any backend.
_CHUNK_DONE = ("chunk.done", "search.chunk.done")


@dataclass
class RunReport:
    """Aggregated view of one event log (possibly many sessions)."""

    path: str = ""
    sessions: int = 0
    config: dict[str, Any] = field(default_factory=dict)
    total_chunks: int | None = None
    chunks_completed: int = 0
    chunks_resumed: int = 0
    candidates_examined: int = 0
    survivors: int = 0
    lease_grants: int = 0
    lease_renewals: int = 0
    lease_expiries: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    checkpoint_writes: int = 0
    checkpoint_corruptions: int = 0
    duplicate_deliveries: int = 0
    quarantined_chunks: int = 0
    retry_backoffs: int = 0
    interruptions: int = 0
    drain_forfeits: int = 0
    stage_kills: dict[int, int] = field(default_factory=dict)
    #: Per-kernel screening totals folded from ``search.batch.done``
    #: events: ``{kernel: {"batches", "candidates", "seconds"}}``.
    #: Lets a report attribute throughput to the scalar/batched/packed
    #: backend that actually produced it (events from before the
    #: kernel tag existed count as "batched" -- the only emitter then).
    kernel_stats: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Per-worker-host accounting folded from the farm coordinator's
    #: ``worker.*`` events and ``worker``-tagged completions:
    #: ``{worker: {"host", "chunks", "examined", "seconds",
    #: "connections", "reconnects", "lease_losses", "expiries",
    #: "benched"}}``.  Empty for pool/simulated campaigns, whose
    #: events carry no worker identity.
    workers: dict[str, dict[str, Any]] = field(default_factory=dict)
    active_seconds: float = 0.0
    busy_seconds: float = 0.0
    #: Per-chunk compute durations, folded from the ``seconds`` field
    #: of every (non-duplicate) chunk completion -- present even when
    #: the run collected no metrics, so percentiles never need a
    #: second flag.
    chunk_durations: Histogram = field(default_factory=Histogram)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    estimator_rate: float | None = None
    estimator_eta_seconds: float | None = None

    # -- derived -------------------------------------------------------

    @property
    def polys_per_second(self) -> float:
        """Candidates fully dispatched per observed wall second --
        directly comparable to the coordinator's own accounting and to
        the paper's "two polynomials per second per CPU"."""
        if self.active_seconds <= 0:
            return 0.0
        return self.candidates_examined / self.active_seconds

    @property
    def lease_expiry_rate(self) -> float:
        """Expiries per grant: 0.0 on a healthy fleet, climbing toward
        1.0 as workers die faster than they finish chunks."""
        if self.lease_grants == 0:
            return 0.0
        return self.lease_expiries / self.lease_grants

    @property
    def final_length(self) -> int | None:
        return self.config.get("final_length")

    @property
    def bailout_efficiency(self) -> float:
        """Fraction of examined candidates the cascade killed *before*
        the final length -- the measured value of the paper's
        increasing-length filtering."""
        if self.candidates_examined == 0:
            return 0.0
        final = self.final_length
        early = sum(
            kills
            for length, kills in self.stage_kills.items()
            if final is None or length < final
        )
        return early / self.candidates_examined

    @property
    def complete(self) -> bool:
        if self.total_chunks is None:
            return False
        return self.chunks_completed + self.chunks_resumed >= self.total_chunks

    # -- construction --------------------------------------------------

    @classmethod
    def from_events(
        cls, records: list[dict[str, Any]], path: str = ""
    ) -> "RunReport":
        """Fold a parsed event stream (see
        :func:`repro.obs.events.read_events`) into a report."""
        # Deferred: repro.dist instruments itself with repro.obs, so
        # the package-level import would be circular.
        from repro.dist.progress import ProgressTracker

        report = cls(path=path)

        def _worker(name: str) -> dict[str, Any]:
            return report.workers.setdefault(
                name,
                {
                    "host": "",
                    "chunks": 0,
                    "examined": 0,
                    "seconds": 0.0,
                    "connections": 0,
                    "reconnects": 0,
                    "lease_losses": 0,
                    "expiries": 0,
                    "benched": False,
                },
            )

        tracker: ProgressTracker | None = None
        session_last_t = 0.0
        session_elapsed: float | None = None
        done_in_log = 0

        def _close_session() -> None:
            # A session's active time is the coordinator's own elapsed
            # accounting when it reported one (``campaign.end``); only
            # a session that died without reaching campaign.end falls
            # back to its last event timestamp, which also counts the
            # pre-run setup (log open to campaign start) that the
            # coordinator's clock excludes.
            report.active_seconds += (
                session_elapsed if session_elapsed is not None
                else session_last_t
            )

        for rec in records:
            event = rec["event"]
            t = float(rec.get("t", 0.0))
            if event == "log.open":
                _close_session()
                report.sessions += 1
                session_last_t = 0.0
                session_elapsed = None
                continue
            session_last_t = max(session_last_t, t)
            if event == "campaign.start" or event == "search.start":
                for key in (
                    "width",
                    "target_hd",
                    "final_length",
                    "chunk_size",
                    "chunks",
                    "processes",
                    "workers",
                    "backend",
                ):
                    if key in rec:
                        report.config[key] = rec[key]
                if "chunks" in rec:
                    report.total_chunks = rec["chunks"]
                    tracker = ProgressTracker(total_chunks=rec["chunks"])
                    done_in_log = report.chunks_resumed
            elif event == "campaign.resume":
                report.chunks_resumed += rec.get("skipped", 0)
                done_in_log = report.chunks_resumed
            elif event in _CHUNK_DONE:
                if rec.get("duplicate"):
                    report.duplicate_deliveries += 1
                    continue
                if isinstance(rec.get("worker"), str):
                    w = _worker(rec["worker"])
                    w["chunks"] += 1
                    w["examined"] += rec.get("examined", 0)
                    w["seconds"] += rec.get("seconds", 0.0)
                report.chunks_completed += 1
                report.candidates_examined += rec.get("examined", 0)
                report.survivors += rec.get("survivors", 0)
                report.busy_seconds += rec.get("seconds", 0.0)
                report.chunk_durations.observe(rec.get("seconds", 0.0))
                for length, kills in rec.get("stage_kills", {}).items():
                    length = int(length)
                    report.stage_kills[length] = (
                        report.stage_kills.get(length, 0) + kills
                    )
                done_in_log += 1
                if tracker is not None:
                    try:
                        tracker.observe(t, done_in_log)
                    except ValueError:
                        # A fresh session restarts the clock; so does
                        # the estimator on the real coordinator.
                        tracker = ProgressTracker(
                            total_chunks=tracker.total_chunks
                        )
                        tracker.observe(t, done_in_log)
            elif event == "search.batch.done":
                kernel = rec.get("kernel", "batched")
                stats = report.kernel_stats.setdefault(
                    kernel,
                    {"batches": 0, "candidates": 0, "seconds": 0.0},
                )
                stats["batches"] += 1
                stats["candidates"] += rec.get("batch", 0)
                stats["seconds"] += rec.get("seconds", 0.0)
            elif event == "lease.grant":
                report.lease_grants += 1
            elif event == "lease.renew":
                report.lease_renewals += rec.get("chunks", 1)
            elif event == "lease.expire":
                report.lease_expiries += 1
                owner = rec.get("owner")
                if isinstance(owner, str) and owner in report.workers:
                    report.workers[owner]["expiries"] += 1
            elif event == "worker.hello":
                if isinstance(rec.get("worker"), str):
                    w = _worker(rec["worker"])
                    w["connections"] += 1
                    if rec.get("reconnect"):
                        w["reconnects"] += 1
                    if isinstance(rec.get("host"), str) and rec["host"]:
                        w["host"] = rec["host"]
            elif event == "worker.lease_lost":
                if isinstance(rec.get("worker"), str):
                    _worker(rec["worker"])["lease_losses"] += 1
            elif event == "worker.benched":
                if isinstance(rec.get("worker"), str):
                    _worker(rec["worker"])["benched"] = True
            elif event == "worker.crash":
                report.worker_crashes += 1
            elif event == "pool.rebuild":
                report.pool_rebuilds += 1
            elif event == "checkpoint.write":
                report.checkpoint_writes += 1
            elif event == "checkpoint.corrupt":
                report.checkpoint_corruptions += 1
            elif event == "chunk.quarantine":
                # A resumed session re-announces checkpoint-restored
                # quarantines with restored=True; count fresh verdicts
                # only, so multi-session logs don't double-count.
                if not rec.get("restored"):
                    report.quarantined_chunks += 1
            elif event == "lease.backoff":
                report.retry_backoffs += 1
            elif event == "shutdown.drain":
                report.interruptions += 1
                report.drain_forfeits += rec.get("forfeited", 0)
            elif event == "metrics.snapshot":
                report.metrics.merge(rec.get("metrics"))
            elif event in ("campaign.end", "campaign.interrupted") and (
                "elapsed" in rec
            ):
                session_elapsed = (session_elapsed or 0.0) + float(
                    rec["elapsed"]
                )
        _close_session()
        if tracker is not None:
            report.estimator_rate = tracker.rate
            if tracker.samples:
                report.estimator_eta_seconds = tracker.eta(
                    tracker.samples[-1][0]
                )
        return report

    @classmethod
    def from_path(cls, path: str | os.PathLike[str]) -> "RunReport":
        return cls.from_events(list(iter_events(path)), path=os.fspath(path))

    # -- output --------------------------------------------------------

    def render(self) -> str:
        """The human-readable run summary the CLI prints."""
        lines = [f"run report: {self.path or '(in-memory events)'}"]
        if self.config:
            cfg = ", ".join(
                f"{k}={v}" for k, v in sorted(self.config.items())
            )
            lines.append(f"  campaign: {cfg}")
        status = "complete" if self.complete else "incomplete"
        total = self.total_chunks if self.total_chunks is not None else "?"
        lines += [
            f"  sessions: {self.sessions} "
            f"({self.active_seconds:.1f}s observed wall time)",
            f"  chunks: {self.chunks_completed} computed"
            + (
                f" + {self.chunks_resumed} resumed from checkpoint"
                if self.chunks_resumed
                else ""
            )
            + f" of {total} ({status})",
            f"  candidates: {self.candidates_examined} examined, "
            f"{self.survivors} survivors",
            f"  throughput: {self.polys_per_second:.1f} polys/s observed "
            f"({self.busy_seconds:.1f} worker-busy seconds)",
            f"  chunk latency: p50={self.chunk_durations.p50 * 1000:.1f}ms "
            f"p95={self.chunk_durations.p95 * 1000:.1f}ms "
            f"p99={self.chunk_durations.p99 * 1000:.1f}ms "
            f"max={self.chunk_durations.max * 1000:.1f}ms "
            f"(n={self.chunk_durations.count})",
            f"  leases: {self.lease_grants} granted, "
            f"{self.lease_renewals} renewals, {self.lease_expiries} expired "
            f"(expiry rate {self.lease_expiry_rate:.1%})",
            f"  faults: {self.worker_crashes} worker crashes, "
            f"{self.pool_rebuilds} pool rebuilds, "
            f"{self.duplicate_deliveries} duplicate deliveries, "
            f"{self.retry_backoffs} retry backoffs",
            f"  checkpoints: {self.checkpoint_writes} written, "
            f"{self.checkpoint_corruptions} corruption fallbacks",
        ]
        if self.quarantined_chunks:
            lines.append(
                f"  quarantine: {self.quarantined_chunks} chunks exhausted "
                "their retry budget (campaign incomplete by design)"
            )
        if self.interruptions:
            lines.append(
                f"  shutdowns: {self.interruptions} graceful drains "
                f"({self.drain_forfeits} in-flight chunks forfeited)"
            )
        if self.stage_kills:
            final = self.final_length
            parts = []
            for length in sorted(self.stage_kills):
                mark = "" if final is None or length < final else " (final)"
                parts.append(f"{self.stage_kills[length]}@{length}b{mark}")
            lines.append(
                f"  filter cascade: {', '.join(parts)} killed; "
                f"bailout efficiency {self.bailout_efficiency:.1%} "
                "before the final length"
            )
        if self.workers:
            lines.append(f"  workers: {len(self.workers)} host(s)")
            for name in sorted(self.workers):
                w = self.workers[name]
                rate = (
                    w["examined"] / w["seconds"] if w["seconds"] > 0 else 0.0
                )
                line = f"    {name}"
                if w["host"] and w["host"] != name:
                    line += f" ({w['host']})"
                line += (
                    f": {w['chunks']} chunks, {w['examined']} candidates "
                    f"({rate:.0f}/s busy), {w['connections']} connection(s)"
                )
                if w["reconnects"]:
                    line += f", {w['reconnects']} reconnect(s)"
                if w["expiries"] or w["lease_losses"]:
                    line += (
                        f", {w['expiries']} lease(s) expired, "
                        f"{w['lease_losses']} lost"
                    )
                if w["benched"]:
                    line += " [benched]"
                lines.append(line)
        if self.kernel_stats:
            parts = []
            for kernel in sorted(self.kernel_stats):
                stats = self.kernel_stats[kernel]
                rate = (
                    stats["candidates"] / stats["seconds"]
                    if stats["seconds"] > 0
                    else 0.0
                )
                parts.append(
                    f"{kernel} {int(stats['batches'])} batches at "
                    f"{rate:.0f} cand/s ({stats['seconds']:.1f}s busy)"
                )
            lines.append(f"  kernels: {'; '.join(parts)}")
        if self.estimator_rate is not None:
            eta = self.estimator_eta_seconds
            eta_s = (
                "complete"
                if not eta
                else f"{eta:.1f}s of work remaining at that rate"
            )
            lines.append(
                f"  estimator: {self.estimator_rate:.2f} chunks/s over the "
                f"final window; {eta_s}"
            )
        metrics_text = self.metrics.render()
        if metrics_text != "  (no metrics recorded)":
            lines.append("  worker metrics (merged):")
            lines.append(
                "\n".join("  " + line for line in metrics_text.split("\n"))
            )
        return "\n".join(lines)

    def to_bench_dict(self, name: str = "campaign") -> dict[str, Any]:
        """The machine-readable summary, in the repo's ``BENCH_*.json``
        envelope: ``bench`` name, ``schema`` version, the campaign
        ``config``, and a flat ``metrics`` mapping."""
        return {
            "bench": name,
            "schema": 1,
            "config": dict(self.config),
            "metrics": {
                "sessions": self.sessions,
                "active_seconds": round(self.active_seconds, 3),
                "busy_seconds": round(self.busy_seconds, 3),
                "chunks_completed": self.chunks_completed,
                "chunks_resumed": self.chunks_resumed,
                "total_chunks": self.total_chunks,
                "candidates_examined": self.candidates_examined,
                "survivors": self.survivors,
                "polys_per_second": round(self.polys_per_second, 3),
                "lease_grants": self.lease_grants,
                "lease_expiries": self.lease_expiries,
                "lease_expiry_rate": round(self.lease_expiry_rate, 4),
                "worker_crashes": self.worker_crashes,
                "pool_rebuilds": self.pool_rebuilds,
                "checkpoint_writes": self.checkpoint_writes,
                "checkpoint_corruptions": self.checkpoint_corruptions,
                "duplicate_deliveries": self.duplicate_deliveries,
                "quarantined_chunks": self.quarantined_chunks,
                "retry_backoffs": self.retry_backoffs,
                "interruptions": self.interruptions,
                "drain_forfeits": self.drain_forfeits,
                "bailout_efficiency": round(self.bailout_efficiency, 4),
                "chunk_seconds_p50": round(self.chunk_durations.p50, 6),
                "chunk_seconds_p95": round(self.chunk_durations.p95, 6),
                "chunk_seconds_p99": round(self.chunk_durations.p99, 6),
                "chunk_seconds_max": round(self.chunk_durations.max, 6),
                "stage_kills": {
                    str(k): v for k, v in sorted(self.stage_kills.items())
                },
                "kernels": {
                    kernel: {
                        "batches": int(stats["batches"]),
                        "candidates": int(stats["candidates"]),
                        "seconds": round(stats["seconds"], 3),
                    }
                    for kernel, stats in sorted(self.kernel_stats.items())
                },
                "workers": {
                    name: dict(w, seconds=round(w["seconds"], 3))
                    for name, w in sorted(self.workers.items())
                },
            },
        }

    def write_bench_json(
        self, path: str | os.PathLike[str], name: str = "campaign"
    ) -> None:
        """Write :meth:`to_bench_dict` to ``path`` (atomic rename)."""
        tmp = os.fspath(path) + ".tmp"
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(self.to_bench_dict(name), f, indent=1, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)
