"""Constructive factorization-class generators.

Castagnoli's search (the paper's §3 baseline) did not enumerate the
whole space: polynomials were "carefully selected based on prime
factorization characteristics" -- i.e. constructed as products of
irreducibles with chosen degrees -- and only those were evaluated on
the special-purpose hardware.  This module reproduces that
methodology: enumerate or sample members of a class ``{d1,..,dk}``
by multiplying irreducible factors.

It also supports the paper's counter-lesson: factorization "suggests
potential capabilities, but specific evaluation is required" -- most
members of the winning {1,3,28} class do *not* achieve HD=6 at MTU
length (only 448 of ~19 million do); `bench_classes.py` measures that
rejection rate with this generator.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from itertools import combinations_with_replacement

from repro.gf2.irreducible import count_irreducibles, irreducibles, is_irreducible
from repro.gf2.poly import degree, gf2_mul


def class_size(signature: tuple[int, ...]) -> int:
    """Number of distinct polynomials in a factorization class.

    Multiset coefficient per repeated degree: choosing ``m`` factors of
    degree ``d`` from ``N_d`` irreducibles with repetition allowed
    gives ``C(N_d + m - 1, m)``.

    >>> class_size((1, 3, 28))     # (x+1) x deg-3 x deg-28 choices
    19172790
    """
    from math import comb

    total = 1
    for d in set(signature):
        m = signature.count(d)
        # degree 1: only (x+1) is usable -- a factor of x would kill
        # the +1 term every CRC generator needs.
        n_d = 1 if d == 1 else count_irreducibles(d)
        total *= comb(n_d + m - 1, m)
    return total


def class_members(
    signature: tuple[int, ...], *, limit: int | None = None
) -> Iterator[int]:
    """Enumerate class members (products of irreducible factors with
    the given degrees), deterministically.

    Practical when every degree in the signature is small enough to
    enumerate its irreducibles (``d <= ~20``); for the paper's
    degree-28/30/31 factors use :func:`sample_class_members`.
    """
    per_degree: dict[int, list[int]] = {}
    for d in set(signature):
        if d > 22:
            raise ValueError(
                f"degree-{d} irreducibles are too many to enumerate; "
                "use sample_class_members"
            )
        # exclude the factor x (it would kill the +1 term)
        per_degree[d] = [0b11] if d == 1 else list(irreducibles(d))
    yielded = 0

    def expand(degrees: list[int], acc: int) -> Iterator[int]:
        if not degrees:
            yield acc
            return
        d = degrees[0]
        m = degrees.count(d)
        rest = [x for x in degrees if x != d]
        for chosen in combinations_with_replacement(per_degree[d], m):
            product = acc
            for f in chosen:
                product = gf2_mul(product, f)
            yield from expand(rest, product)

    for p in expand(sorted(signature), 1):
        yield p
        yielded += 1
        if limit is not None and yielded >= limit:
            return


def random_irreducible(d: int, rng: random.Random, max_tries: int = 100_000) -> int:
    """A uniformly-ish random irreducible polynomial of degree ``d``
    (rejection sampling; the density is ~1/d so a few tries suffice)."""
    if d == 1:
        return 0b11  # x+1: the only degree-1 factor a CRC can carry
    for _ in range(max_tries):
        f = (1 << d) | (rng.getrandbits(d - 1) << 1) | 1
        if is_irreducible(f):
            return f
    raise RuntimeError(f"no irreducible of degree {d} found (bug)")


def sample_class_members(
    signature: tuple[int, ...], count: int, *, seed: int = 0
) -> list[int]:
    """Random members of a class, for classes too big to enumerate --
    the way a Castagnoli-style study would sample the {1,3,28} space.

    Deterministic given ``seed``; duplicates are filtered.

    >>> polys = sample_class_members((1, 3, 28), 3, seed=1)
    >>> from repro.gf2.factorize import factor_degrees
    >>> all(factor_degrees(p) == [1, 3, 28] for p in polys)
    True
    """
    rng = random.Random(seed)
    out: list[int] = []
    seen: set[int] = set()
    guard = 0
    while len(out) < count:
        guard += 1
        if guard > 100 * count:
            raise RuntimeError("class sampling failed to make progress")
        product = 1
        for d in signature:
            product = gf2_mul(product, random_irreducible(d, rng))
        if product in seen:
            continue
        seen.add(product)
        out.append(product)
    return out


def degree_of_class(signature: tuple[int, ...]) -> int:
    """Total degree of any member of the class."""
    return sum(signature)


def paper_class_shapes(width: int = 32) -> list[tuple[int, ...]]:
    """The factorization shapes of the paper's Table 2 (all classes
    that turned out to contain HD=6-at-MTU polynomials), parameterized
    by width for scaled studies."""
    if width == 32:
        return [
            (1, 1, 30), (1, 3, 28), (1, 1, 15, 15), (1, 1, 2, 28),
            (1, 3, 14, 14), (1, 1, 1, 1, 28), (1, 1, 2, 14, 14),
            (1, 1, 1, 1, 14, 14),
        ]
    # scaled analogues keep the "(x+1) plus large factors" structure
    big = width - 1
    half = (width - 2) // 2
    return [
        (1, big),
        (1, 1, width - 2),
        (1, 1, half, width - 2 - half),
    ]
