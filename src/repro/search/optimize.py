"""Length-customized polynomial selection -- the paper's closing idea.

    "The availability of a more efficient search capability ... opens
    up the possibility of identifying optimal polynomials that are
    customized to the particular message lengths of specific
    applications and special-purpose communication networks."

:func:`best_for_length` turns that into an API: exhaustively determine
the best achievable HD at a given message length for a given CRC
width, and return the polynomials that achieve it -- optionally ranked
the way the paper ranks (fewest undetected errors at the first
non-zero weight, then fewest feedback taps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gf2.poly import degree
from repro.hd.weights import weight_profile
from repro.search.census import fewest_taps
from repro.search.exhaustive import SearchConfig, search_all


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a best-polynomial-for-length search."""

    width: int
    data_word_bits: int
    best_hd: int
    achievers: tuple[int, ...]          # all polynomials achieving best_hd
    ranked: tuple[int, ...]             # achievers, best first
    candidates_examined: int

    @property
    def winner(self) -> int:
        """The top-ranked polynomial."""
        return self.ranked[0]


def _default_cascade(bits: int) -> tuple[int, ...]:
    lengths = sorted({max(8, bits // 8), max(12, bits // 2), bits})
    return tuple(lengths)


def rank_achievers(
    polys: list[int], data_word_bits: int, hd: int
) -> list[int]:
    """Rank polynomials that share the same HD at a length.

    Primary key: the first non-zero weight's value (lower = fewer
    undetected errors at the critical weight -- Castagnoli's
    "optimal (lowest-weight at the lowest HD)" criterion quoted in
    §3).  Secondary: fewer feedback taps (the paper's hardware
    criterion).  Tertiary: numeric value, for determinism.

    Only weights up to 4 are counted exactly (the library's counting
    envelope); for HD > 4 codes the critical-weight key is skipped and
    tap count leads -- matching the paper, which likewise found exact
    weights of HD=6 survivors impractical.
    """
    def key(p: int):
        if hd <= 4:
            w = weight_profile(p, data_word_bits, 4).get(hd, 0)
            return (w, p.bit_count(), p)
        return (0, p.bit_count(), p)

    return sorted(polys, key=key)


def best_for_length(
    width: int,
    data_word_bits: int,
    *,
    hd_ceiling: int = 10,
    confirm_weights: bool = False,
) -> OptimizationResult:
    """Exhaustively find the best achievable HD at ``data_word_bits``
    for CRCs of the given ``width``, and the polynomials achieving it.

    Walks candidate HD targets downward; the first target with
    survivors is optimal (HD targets are nested: achieving HD=h
    implies achieving every lower target).  Practical for widths
    through ~12-14 on one CPU -- the paper's point is precisely that
    width 32 needs a campaign (:mod:`repro.dist`).

    >>> res = best_for_length(8, 50)
    >>> res.best_hd
    4
    """
    if width > 16:
        raise ValueError(
            "exhaustive optimization beyond width 16 needs the "
            "distributed campaign (repro.dist)"
        )
    examined_total = 0
    for target in range(hd_ceiling, 2, -1):
        cfg = SearchConfig(
            width=width,
            target_hd=target,
            filter_lengths=_default_cascade(data_word_bits),
            confirm_weights=confirm_weights,
        )
        result = search_all(cfg)
        examined_total += result.examined
        if result.survivors:
            achievers = tuple(sorted(r.poly for r in result.survivors))
            ranked = tuple(
                rank_achievers(list(achievers), data_word_bits, target)
            )
            return OptimizationResult(
                width=width,
                data_word_bits=data_word_bits,
                best_hd=target,
                achievers=achievers,
                ranked=ranked,
                candidates_examined=examined_total,
            )
    # Every polynomial detects single-bit errors: HD >= 2 always.
    from repro.search.space import canonical_candidates

    achievers = tuple(canonical_candidates(width))
    return OptimizationResult(
        width=width,
        data_word_bits=data_word_bits,
        best_hd=2,
        achievers=achievers,
        ranked=tuple(fewest_taps(list(achievers), len(achievers))),
        candidates_examined=examined_total,
    )
