"""Exhaustive CRC polynomial search (paper §4).

The paper's contribution is not just the winning polynomials but the
demonstration that the *entire* 32-bit design space can be screened by
a filter cascade on commodity hardware.  This package implements that
search, parameterized by CRC width:

* :mod:`repro.search.space` -- candidate enumeration with the paper's
  reciprocal-pair deduplication (2**r -> ~2**(r-2) candidates).
* :mod:`repro.search.exhaustive` -- the filter-cascade driver: screen
  at increasing lengths, confirm survivors exactly, monitor the §4.5
  invariants throughout.
* :mod:`repro.search.census` -- factorization-class census of
  survivors (Table 2 machinery) and minimum-tap representative
  selection (how 0x90022004 / 0x80108400 were found).
* :mod:`repro.search.records` -- serializable result records so
  campaigns can be checkpointed, distributed and merged
  (:mod:`repro.dist`).

At width 32 a full run remains a farm-scale campaign (the paper used
~80 workstations for three months; see :mod:`repro.dist.farm` for the
faithful cost model).  At widths 8-16 the identical code path runs
exhaustively in seconds to minutes, which is how this reproduction
validates the methodology end to end (the paper itself validated
against exhaustive 8/16-bit searches, §4.5).
"""

from repro.search.space import (
    candidate_count,
    candidate_polys,
    canonical,
    canonical_candidates,
    is_canonical,
    index_to_poly,
    poly_to_index,
)
from repro.search.exhaustive import (
    SearchConfig,
    SearchResult,
    ScreenResult,
    screen_chunk,
    search_all,
    search_chunk,
)
from repro.search.census import ClassCensus, census_of, fewest_taps
from repro.search.records import PolyRecord, CampaignRecord

__all__ = [
    "candidate_count",
    "candidate_polys",
    "canonical",
    "canonical_candidates",
    "is_canonical",
    "index_to_poly",
    "poly_to_index",
    "SearchConfig",
    "SearchResult",
    "ScreenResult",
    "screen_chunk",
    "search_all",
    "search_chunk",
    "ClassCensus",
    "census_of",
    "fewest_taps",
    "PolyRecord",
    "CampaignRecord",
]
