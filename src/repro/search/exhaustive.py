"""The filter-cascade search driver (paper §4.1).

For every canonical candidate polynomial, screen for "HD >= target"
at a sequence of increasing data-word lengths.  A candidate that shows
any undetected error of weight < target at a short length is dead --
remove it before spending effort at longer lengths (the paper's
"filtering with increasing lengths", which it credits with making the
search tractable: screening at 1024 bits is ~17,500x cheaper than at
12112 bits and kills the overwhelming majority).

Survivors of the final length are then *confirmed*: exact HD, exact
low weights, and the §4.5 invariants (parity, monotonicity) checked
over the cascade's observations.

``search_chunk`` operates on a dense index range of the candidate
space so the distributed layer (:mod:`repro.dist`) can partition work
across unreliable workers, exactly as the 2001 campaign did across
~80 machines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.gf2.poly import degree, divisible_by_x_plus_1
from repro.gf2.order import order_of_x
from repro.hd.breakpoints import _refute_weights, refute_hd_at  # noqa: F401
from repro.hd.cost import DEFAULT_MEM_ELEMS, DEFAULT_STREAM_ELEMS
from repro.hd.hamming import hamming_distance
from repro.hd.invariants import WeightMonitor
from repro.hd.syndromes import extend_syndrome_table, syndrome_table
from repro.hd.weights import weight_profile
from repro.obs import metrics as obs_metrics
from repro.obs.events import NULL_EVENTS, NullEventLog
from repro.search.records import CampaignRecord, PolyRecord
from repro.search.space import candidate_count, canonical_candidates

#: Largest width the batched backend handles: the composite-key kernels
#: need the full generator encoding (width+1 bits) in a machine word.
BATCHED_MAX_WIDTH = 63


@dataclass(frozen=True)
class SearchConfig:
    """Parameters of an exhaustive search.

    ``filter_lengths`` is the increasing cascade; the last entry is
    the length at which the target HD must hold (e.g. the paper's
    12112).  Reasonable cascades start around 64-256 bits and double.

    ``confirm_weights`` controls whether survivors get exact
    W2..W4 computed at the final length (the paper computed exact
    weights for all 21,292 HD=6 survivors' *detection* but left
    precise weights impractical; at scaled widths we can afford them).

    ``backend`` selects the screening engine: ``"batched"`` (default)
    filters candidates in vectorized blocks of up to ``batch_size``
    (:mod:`repro.search.batched`); ``"packed"`` screens the same
    blocks as bit-planes and narrow composite keys
    (:mod:`repro.search.packed`) -- the fastest path for widths
    through :data:`~repro.hd.packed.PACKED_MAX_WIDTH`; ``"scalar"``
    is the one-at-a-time reference path, kept as the
    differential-test oracle.  All three produce identical records;
    ``"packed"`` silently falls back to the batched path beyond its
    width envelope, and both fall back to scalar beyond
    ``BATCHED_MAX_WIDTH``.
    """

    width: int
    target_hd: int
    filter_lengths: tuple[int, ...]
    confirm_weights: bool = True
    witness_window: int = 400
    mem_elems: int = DEFAULT_MEM_ELEMS
    stream_elems: int = DEFAULT_STREAM_ELEMS
    backend: str = "batched"
    batch_size: int = 4096

    def __post_init__(self) -> None:
        if self.width < 3:
            raise ValueError("width must be at least 3")
        if self.target_hd < 3:
            raise ValueError("target_hd must be at least 3")
        if not self.filter_lengths or list(self.filter_lengths) != sorted(
            self.filter_lengths
        ):
            raise ValueError("filter_lengths must be a non-empty ascending sequence")
        if self.backend not in ("batched", "packed", "scalar"):
            raise ValueError(
                "backend must be 'batched', 'packed' or 'scalar', "
                f"got {self.backend!r}"
            )
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")

    @property
    def final_length(self) -> int:
        """The data-word length the target HD is required at."""
        return self.filter_lengths[-1]

    @classmethod
    def for_bits(
        cls, width: int, target_hd: int, bits: int, **overrides
    ) -> "SearchConfig":
        """The standard screening config for a final length: a
        three-stage cascade (bits/8, bits/2, bits, floored at useful
        minimums) with weight confirmation off -- what the CLI's
        ``search`` and ``campaign`` commands run."""
        cascade = tuple(
            sorted({max(8, bits // 8), max(12, bits // 2), bits})
        )
        overrides.setdefault("confirm_weights", False)
        return cls(
            width=width,
            target_hd=target_hd,
            filter_lengths=cascade,
            **overrides,
        )


@dataclass
class SearchResult:
    """Outcome of (a chunk of) an exhaustive search.

    Chunk results cross process boundaries in the parallel campaign
    (:mod:`repro.dist.pool`), so this type and everything it contains
    must remain plain picklable dataclasses -- no open handles, no
    lambdas, no generators (``tests/dist/test_pool.py`` enforces it).
    """

    config: SearchConfig
    records: list[PolyRecord] = field(default_factory=list)
    examined: int = 0
    stage_kills: dict[int, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def survivors(self) -> list[PolyRecord]:
        return [r for r in self.records if r.survived]

    @property
    def filtering_rate(self) -> float:
        """Candidates fully dispatched per second -- comparable to the
        paper's "approximately two polynomials filtered per second per
        CPU" (on 2001 hardware)."""
        if self.elapsed_seconds == 0:
            return float("inf")
        return self.examined / self.elapsed_seconds


@dataclass
class ScreenResult:
    """Outcome of the *screening* phase of a chunk: every candidate
    either has a kill record or is a survivor awaiting confirmation.

    ``records`` is aligned with dense-candidate order and holds
    ``None`` at survivor slots; ``survivors`` carries
    ``(slot, poly, syn)`` where ``syn`` is the candidate's final-length
    syndrome table (screening already paid for it -- confirmation
    reuses it instead of rebuilding).  The table's dtype is whatever
    unsigned width the backend natively sweeps in (the packed kernel
    keeps ``r``-bit values narrow); :func:`confirm_survivor` widens at
    the point of use.
    """

    config: SearchConfig
    records: list[PolyRecord | None] = field(default_factory=list)
    survivors: list[tuple[int, int, "np.ndarray | None"]] = field(
        default_factory=list
    )
    examined: int = 0
    stage_kills: dict[int, int] = field(default_factory=dict)


def _screen_candidate(
    g: int, config: SearchConfig
) -> tuple[PolyRecord | None, "np.ndarray | None"]:
    """Scalar screening of one candidate: ``(kill_record, None)`` if a
    cascade stage refutes it, ``(None, syn)`` -- with the final-length
    syndrome table -- if it survives.

    One syndrome table is threaded through the whole cascade via
    :func:`~repro.hd.syndromes.extend_syndrome_table`: each stage pays
    only for the positions the previous stage didn't already cover.
    """
    r = degree(g)
    order = order_of_x(g)
    syn: np.ndarray | None = None
    for n in config.filter_lengths:
        N = n + r
        if order <= N - 1:
            return (
                PolyRecord(
                    poly=g,
                    width=config.width,
                    data_word_bits=config.final_length,
                    hd=2,
                    survived=False,
                    filtered_at_bits=n,
                    witness=(0, order),
                ),
                None,
            )
        syn = (
            syndrome_table(g, N)
            if syn is None
            else extend_syndrome_table(g, syn, N)
        )
        refutation = _refute_weights(
            g,
            config.target_hd,
            N,
            syn,
            witness_window=config.witness_window,
            mem_elems=config.mem_elems,
            stream_elems=config.stream_elems,
        )
        if refutation is not None:
            weight, witness = refutation
            return (
                PolyRecord(
                    poly=g,
                    width=config.width,
                    data_word_bits=config.final_length,
                    hd=weight,
                    survived=False,
                    filtered_at_bits=n,
                    witness=witness,
                ),
                None,
            )
    return None, syn


def confirm_survivor(
    g: int, config: SearchConfig, syn: "np.ndarray | None" = None
) -> PolyRecord:
    """Exact confirmation of a filter-cascade survivor: HD at the
    final length (optionally plus the exact low-weight profile),
    reusing the screening phase's syndrome table when provided."""
    n = config.final_length
    if syn is not None and syn.dtype != np.uint64:
        # Backends hand the table over in their native sweep width;
        # the weight searches below key on uint64.
        syn = syn.astype(np.uint64)
    hd = hamming_distance(
        g,
        n,
        k_max=max(config.target_hd + 4, 10),
        exploit_parity=False,  # validation stance: measure, don't assume
        mem_elems=config.mem_elems,
        stream_elems=config.stream_elems,
        syn=syn,
    )
    weights = None
    if config.confirm_weights:
        monitor = WeightMonitor(g)
        weights = weight_profile(g, n, 4, mem_elems=config.mem_elems)
        monitor.observe(n, weights)
    return PolyRecord(
        poly=g,
        width=config.width,
        data_word_bits=n,
        hd=hd,
        survived=hd >= config.target_hd,
        weights=weights,
    )


def effective_kernel(config: SearchConfig) -> str:
    """The screening kernel :func:`screen_chunk` will actually run
    after width fallbacks: the packed kernels cap at
    :data:`~repro.hd.packed.PACKED_MAX_WIDTH`, the batched ones at
    :data:`BATCHED_MAX_WIDTH`, and everything falls back to scalar.
    Instrumentation tags (``screen.stage`` spans, ``search.batch.*``
    metrics, ``search.chunk.done`` events) carry this value so reports
    attribute throughput to the kernel that produced it.
    """
    if config.backend == "packed":
        from repro.hd.packed import PACKED_MAX_WIDTH

        if config.width <= PACKED_MAX_WIDTH:
            return "packed"
    if (
        config.backend in ("batched", "packed")
        and config.width <= BATCHED_MAX_WIDTH
    ):
        return "batched"
    return "scalar"


def screen_chunk(
    config: SearchConfig,
    start_index: int,
    end_index: int,
    *,
    events: NullEventLog = NULL_EVENTS,
) -> ScreenResult:
    """Run the filter cascade (no survivor confirmation) over a dense
    index range, dispatching to the configured backend.

    The batched backend screens ``config.batch_size`` candidates per
    block of numpy ops (:mod:`repro.search.batched`); the packed
    backend screens the same blocks as bit-planes and narrow
    composite keys (:mod:`repro.search.packed`), falling back to the
    batched path above :data:`~repro.hd.packed.PACKED_MAX_WIDTH`; the
    scalar backend -- also the fallback above ``BATCHED_MAX_WIDTH``
    -- walks candidates one at a time and serves as the differential
    oracle.
    """
    kernel = effective_kernel(config)
    if kernel == "packed":
        from repro.search.packed import screen_chunk_packed

        return screen_chunk_packed(
            config, start_index, end_index, events=events
        )
    if kernel == "batched":
        from repro.search.batched import screen_chunk_batched

        return screen_chunk_batched(config, start_index, end_index, events=events)
    result = ScreenResult(config=config)
    for g in canonical_candidates(config.width, start_index, end_index):
        slot = len(result.records)
        record, syn = _screen_candidate(g, config)
        result.records.append(record)
        result.examined += 1
        if record is None:
            result.survivors.append((slot, g, syn))
        elif record.filtered_at_bits is not None:
            result.stage_kills[record.filtered_at_bits] = (
                result.stage_kills.get(record.filtered_at_bits, 0) + 1
            )
    return result


def search_chunk(
    config: SearchConfig,
    start_index: int,
    end_index: int,
    *,
    events: NullEventLog = NULL_EVENTS,
) -> SearchResult:
    """Evaluate the canonical candidates whose dense index falls in
    ``[start_index, end_index)`` -- the unit of distributed work.

    Two phases: *screening* (backend-dispatched, see
    :func:`screen_chunk`) kills the overwhelming majority cheaply;
    *confirmation* computes exact HD for the survivors.

    Observability (all off by default, see :mod:`repro.obs`): the
    chunk outcome -- candidates examined, filter-pass survivors, and
    kills per cascade length -- goes to ``events`` as one
    ``search.chunk.done`` record and to the process-local metrics
    registry; the batched backend additionally emits one
    ``search.batch.done`` record per block.  Instrumentation stays at
    chunk/batch granularity so the per-candidate hot loop is untouched.
    """
    t0 = time.perf_counter()
    screen = screen_chunk(config, start_index, end_index, events=events)
    result = SearchResult(config=config)
    result.examined = screen.examined
    result.stage_kills = dict(screen.stage_kills)
    records = list(screen.records)
    for slot, g, syn in screen.survivors:
        records[slot] = confirm_survivor(g, config, syn=syn)
    assert all(rec is not None for rec in records)
    result.records = records  # type: ignore[assignment]
    result.elapsed_seconds = time.perf_counter() - t0
    metrics = obs_metrics.active()
    if metrics.enabled:
        metrics.inc("search.candidates", result.examined)
        metrics.inc("search.survivors", len(result.survivors))
        for length, kills in result.stage_kills.items():
            metrics.inc(f"search.stage_kill.{length}", kills)
        metrics.observe("search.chunk_seconds", result.elapsed_seconds)
    events.emit(
        "search.chunk.done",
        start=start_index,
        end=end_index,
        examined=result.examined,
        survivors=len(result.survivors),
        seconds=round(result.elapsed_seconds, 6),
        stage_kills=result.stage_kills,
        kernel=effective_kernel(config),
    )
    return result


def search_all(
    config: SearchConfig, *, events: NullEventLog = NULL_EVENTS
) -> SearchResult:
    """Exhaustive search over the full canonical candidate space.

    Practical for widths through ~16 (the validation widths the paper
    itself used); at width 32 use the distributed campaign simulator
    instead -- this function would need the 2001 farm.
    """
    events.emit(
        "search.start",
        width=config.width,
        target_hd=config.target_hd,
        final_length=config.final_length,
        filter_lengths=list(config.filter_lengths),
        chunks=1,  # the whole space in one chunk, so reports close out
    )
    return search_chunk(config, 0, 1 << (config.width - 1), events=events)


def campaign_from_results(
    config: SearchConfig, chunk_results: dict[int, SearchResult]
) -> CampaignRecord:
    """Fold per-chunk results into an idempotent campaign record."""
    campaign = CampaignRecord(
        width=config.width,
        data_word_bits=config.final_length,
        target_hd=config.target_hd,
    )
    for chunk_id, res in sorted(chunk_results.items()):
        campaign.merge_chunk(chunk_id, res.records, res.examined)
    return campaign


def expected_examined(width: int) -> int:
    """Number of canonical candidates a full search visits (the
    paper's 1,073,774,592 at width 32)."""
    return candidate_count(width)["canonical"]
