"""Factorization-class census of search survivors (Table 2 machinery).

After the paper's cascade left 21,292 polynomials with HD=6 at MTU
length, the survivors were grouped by irreducible-factorization class
(Table 2: 658 of {1,1,30}, 448 of {1,3,28}, 9887 of {1,1,15,15}, ...),
which exposed the headline structural finding: *every* survivor is
divisible by (x+1).

This module reproduces that analysis for any survivor set: class
counting, the (x+1) law check, and minimum-coefficient representative
selection (the paper's criterion for recommending 0x90022004 and
0x80108400 as hardware-friendly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gf2.notation import class_signature, full_to_koopman
from repro.gf2.poly import divisible_by_x_plus_1
from repro.search.records import PolyRecord


@dataclass
class ClassCensus:
    """Survivor counts grouped by factorization class.

    ``classes`` maps signature tuples to the member polynomials; the
    rendering in :mod:`repro.analysis.tables` turns this into the
    paper's Table 2 layout.
    """

    total: int = 0
    classes: dict[tuple[int, ...], list[int]] = field(default_factory=dict)

    def add(self, poly: int) -> None:
        sig = class_signature(poly)
        self.classes.setdefault(sig, []).append(poly)
        self.total += 1

    @property
    def counts(self) -> dict[tuple[int, ...], int]:
        """Members per class, the Table 2 numbers."""
        return {sig: len(members) for sig, members in self.classes.items()}

    def all_divisible_by_x_plus_1(self) -> bool:
        """The paper's §4.2 discovery, as a checkable predicate: does
        every survivor carry the implicit parity bit?"""
        return all(
            divisible_by_x_plus_1(p)
            for members in self.classes.values()
            for p in members
        )

    def violators_of_x_plus_1(self) -> list[int]:
        """Survivors *not* divisible by (x+1) -- expected empty for
        HD>=6 censuses per the paper; meaningful for lower targets."""
        return [
            p
            for members in self.classes.values()
            for p in members
            if not divisible_by_x_plus_1(p)
        ]

    def sorted_rows(self) -> list[tuple[tuple[int, ...], int]]:
        """(signature, count) rows ordered like Table 2: by number of
        factors, then by the signature itself."""
        return sorted(
            self.counts.items(), key=lambda row: (len(row[0]), row[0])
        )


def census_of(survivors: list[PolyRecord] | list[int]) -> ClassCensus:
    """Build a census from survivor records (or raw polynomials).

    >>> census_of([0b101011]).counts   # (x+1)(x^4+x^3+1)
    {(1, 4): 1}
    """
    census = ClassCensus()
    for item in survivors:
        poly = item.poly if isinstance(item, PolyRecord) else item
        census.add(poly)
    return census


def fewest_taps(polys: list[int], count: int = 1) -> list[int]:
    """The ``count`` polynomials with the fewest non-zero coefficients.

    The paper singles out 0x90022004 (five non-zero coefficients,
    HD=6 to ~32K) and 0x80108400 (minimum coefficients with HD=5 to
    ~64K) because sparse feedback simplifies high-speed combinational
    logic.  Ties break toward the numerically smaller encoding for
    determinism.
    """
    return sorted(polys, key=lambda p: (p.bit_count(), p))[:count]


def koopman_summary(census: ClassCensus) -> list[str]:
    """Human-readable census lines, one per class, with the sparsest
    member called out -- the working summary the campaign would print.
    """
    lines = []
    for sig, members in sorted(census.classes.items(), key=lambda x: (len(x[0]), x[0])):
        sparsest = fewest_taps(members)[0]
        lines.append(
            "{{{}}}: {} polynomials (sparsest: {:#x}, {} terms)".format(
                ",".join(map(str, sig)),
                len(members),
                full_to_koopman(sparsest),
                sparsest.bit_count(),
            )
        )
    return lines
