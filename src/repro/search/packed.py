"""Packed screening driver: the bit-plane / composite-key cascade.

:func:`screen_chunk_packed` is the third interchangeable screening
backend beside the scalar and batched paths, built on the kernels of
:mod:`repro.hd.packed`:

* **One sweep per batch.**  A :class:`~repro.hd.packed.ValueSweep`
  fills a single position-major narrow-value buffer (uint16 for
  ``r <= 16``) incrementally as the stages ask for longer windows.
  Everything downstream is a slice of that buffer: under CPython the
  binding cost of the cascade is per-step numpy *dispatch*, so one
  4-op carried sweep beats the three sweeps the first packed driver
  ran (a bit-plane weight-2 sweep, per-stage composite rebuilds, a
  survivor-table sweep) -- see :class:`~repro.hd.packed.PlaneState`
  for the plane layout, which remains the better story per unit of
  arithmetic but not per unit of interpreter overhead.
* **Weight 2** is a compare: the sweep's per-segment min-scan records
  each lane's first ``register == 1`` position (= the order of
  ``x``), so the stage kill is ``first_one <= N - 1`` and the witness
  ``(0, order)`` is free.
* **Weight 3** runs only on the lanes that can still die of it
  (parity-immune and already-condemned lanes are excluded first).
  Their buffer columns are cast to ``(value << pos_bits) | position``
  composite keys (:func:`~repro.hd.packed.composite_from_values`,
  sub-batched to :data:`~repro.hd.packed.COMPOSITE_BUDGET`); one SIMD
  row sort makes partners adjacent, and witness positions ride in the
  key's low bits, so extraction re-reads the same sorted rows.
* **Weights 4/5 and the scalar tail** (``target_hd >= 5``) reuse the
  batched machinery verbatim on uint64 casts of the same buffer --
  these stages only run on the thin post-weight-3 remainder, so
  exactness is shared and speed is irrelevant.

Killed lanes stay in the buffer until a stage has condemned enough of
the batch (a quarter or more) to make one gather of the filled rows
cheaper than stepping the dead columns through the remaining stages;
in between, the alive bookkeeping just stops indexing them.

The output is record-for-record identical to both other backends --
same survivors, same per-stage kill counts, same witnesses -- which
``tests/search/test_packed.py`` asserts differentially on full
canonical spaces and ``tools/packed_gate.py`` gates in CI.
"""

from __future__ import annotations

import time

import numpy as np

from repro.hd import batched as hd_batched
from repro.hd.batched import BatchKeys, weight4_exists, weight5_exists
from repro.hd.breakpoints import _refute_weights
from repro.hd.cost import EnvelopeError, check_envelope
from repro.hd.packed import (
    COMPOSITE_BUDGET,
    ValueSweep,
    composite_from_values,
    weight3_rows_packed,
    weight3_witnesses_packed,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.events import NULL_EVENTS, NullEventLog
from repro.search.batched import _witness_for, _workspace_for
from repro.search.exhaustive import ScreenResult, SearchConfig
from repro.search.records import PolyRecord
from repro.search.space import canonical_mask, index_range_polys


def _screen_batch_packed(
    config: SearchConfig,
    g_all: np.ndarray,
    workspace: hd_batched.PositionMap | None = None,
) -> tuple[list[PolyRecord | None], list[tuple[int, int, np.ndarray]], dict[int, int]]:
    """Screen one batch of same-width candidates with the packed
    kernels.  Same contract as the batched ``_screen_batch``:
    ``(records, survivors, stage_kills)`` with ``records`` aligned to
    ``g_all`` and ``survivors`` holding
    ``(local_slot, poly, final_syndrome_row)``.
    """
    B = len(g_all)
    r = config.width
    hd = config.target_hd
    records: list[PolyRecord | None] = [None] * B
    kills: dict[int, int] = {}
    tracer = obs_trace.active()
    # (x+1) | g  <=>  even popcount: odd weights are immune (parity).
    immune = (np.bitwise_count(g_all) & np.uint64(1)) == np.uint64(0)
    alive_slot = np.arange(B)
    g_alive = g_all
    # One carried value sweep serves every stage of the cascade plus
    # the survivors' final tables; lanes map alive rows to its columns
    # (killed columns keep sweeping -- width is cheap, compaction
    # copies are not).
    capacity = max(
        [config.final_length + r] + [n + r for n in config.filter_lengths]
    )
    sweep = ValueSweep(g_all, r, capacity)
    lanes = np.arange(B)

    for n in config.filter_lengths:
        if len(alive_slot) == 0:
            break
        stage_span = tracer.start(
            "screen.stage", n=n, alive=len(alive_slot), kernel="packed"
        )
        N = n + r
        sweep.advance_to(N)
        n_alive = len(alive_slot)
        kill_weight = np.zeros(n_alive, dtype=np.int64)
        witnesses: list[tuple[int, ...] | None] = [None] * n_alive
        eligible = np.ones(n_alive, dtype=bool)

        # Weight 2: the sweep's segment scans already know each lane's
        # first "register == 1" position -- the order of x -- so the
        # kill is a compare and the witness (0, order) is free.
        first_one = sweep.first_one[lanes]
        dup = (first_one >= 0) & (first_one <= N - 1)
        if dup.any():
            for row in np.flatnonzero(dup).tolist():
                kill_weight[row] = 2
                witnesses[row] = (0, int(first_one[row]))
            eligible &= ~dup

        # Weights 3..5, ascending (the exactness precondition of every
        # screen below: lower even/odd weights already clean).
        tail_k_min = 6
        tables: np.ndarray | None = None
        for k in (3, 4, 5):
            if k >= hd or not eligible.any():
                break
            if k == 3:
                mask = eligible & ~immune
                cand = np.flatnonzero(mask)
                rows_per = max(1, COMPOSITE_BUDGET // max(N, 1))
                for c0 in range(0, len(cand), rows_per):
                    rows = cand[c0 : c0 + rows_per]
                    keys, pos_bits = composite_from_values(
                        sweep.values(lanes[rows], N), r, N
                    )
                    keys.sort(axis=1)
                    rh = weight3_rows_packed(keys, pos_bits)
                    if not rh.any():
                        continue
                    killed_rows = rows[rh]
                    wits = weight3_witnesses_packed(
                        keys[rh], pos_bits, config.witness_window
                    )
                    misses = [i for i, w in enumerate(wits) if w is None]
                    if misses:
                        # No witness within the window: the full-window
                        # extraction selects exactly what the scalar
                        # fallback (find_witness) would.
                        full = weight3_witnesses_packed(
                            keys[rh][misses], pos_bits, N
                        )
                        for i, w in zip(misses, full):
                            assert w is not None
                            wits[i] = w
                    for row, wit in zip(killed_rows.tolist(), wits):
                        kill_weight[row] = 3
                        witnesses[row] = wit
                    eligible[killed_rows] = False
            else:
                try:
                    check_envelope(N, k, config.mem_elems, config.stream_elems)
                except EnvelopeError:
                    # The scalar path would be envelope-bound here too;
                    # delegate this weight and everything above it to
                    # the per-row tail, which replicates it exactly.
                    tail_k_min = k
                    break
                if tables is None:
                    tables = sweep.values(lanes, N, np.uint64)
                keys_b = BatchKeys(tables, r, workspace=workspace)
                elig_k = eligible if k == 4 else (eligible & ~immune)
                exists = (
                    weight4_exists(keys_b, elig_k)
                    if k == 4
                    else weight5_exists(keys_b, elig_k)
                )
                mask = exists & elig_k
                if mask.any():
                    for row in np.flatnonzero(mask).tolist():
                        g = int(g_alive[row])
                        kill_weight[row] = k
                        witnesses[row] = _witness_for(
                            g, N, k, tables[row], config
                        )
                    eligible &= ~mask

        if tail_k_min < hd and eligible.any():
            if tables is None:
                tables = sweep.values(lanes, N, np.uint64)
            for row in np.flatnonzero(eligible).tolist():
                g = int(g_alive[row])
                refutation = _refute_weights(
                    g,
                    hd,
                    N,
                    tables[row],
                    witness_window=config.witness_window,
                    mem_elems=config.mem_elems,
                    stream_elems=config.stream_elems,
                    k_min=tail_k_min,
                )
                if refutation is not None:
                    kill_weight[row], witnesses[row] = refutation

        killed = kill_weight > 0
        if killed.any():
            kills[n] = int(killed.sum())
            final_length = config.final_length
            for row in np.flatnonzero(killed).tolist():
                wit = witnesses[row]
                assert wit is not None
                records[int(alive_slot[row])] = PolyRecord(
                    poly=int(g_alive[row]),
                    width=r,
                    data_word_bits=final_length,
                    hd=int(kill_weight[row]),
                    survived=False,
                    filtered_at_bits=n,
                    witness=tuple(map(int, wit)),
                )
            keep = ~killed
            alive_slot = alive_slot[keep]
            g_alive = g_alive[keep]
            immune = immune[keep]
            lanes = lanes[keep]
            # The sweep is bandwidth-bound: once a stage has killed a
            # real fraction of the batch, stepping the dead columns
            # through the remaining positions costs more than one
            # gather of the filled rows.  Compare the two -- dead
            # columns times positions still to sweep against the
            # filled-row gather (with a healthy factor for the
            # gather's cache-hostile access pattern) -- so the early
            # stages compact and the last stage, with nothing left to
            # sweep, never pays for a pointless copy.
            dead_work = (capacity - sweep.pos) * (sweep.B - len(lanes))
            if dead_work > 4 * sweep.pos * max(len(lanes), 1):
                sweep.compact(lanes)
                lanes = np.arange(len(alive_slot))
        stage_span.annotate(killed=kills.get(n, 0))
        stage_span.end()

    # Survivors get their final-length tables as slices of the sweep
    # buffer, value-identical to the uint64 tables the batched backend
    # carries through the cascade but kept in the narrow sweep dtype:
    # confirm_survivor widens at the point of use, so the screen phase
    # never pays for 4x the write traffic.
    if len(alive_slot):
        sweep.advance_to(config.final_length + r)
        final_tables = sweep.values(lanes, config.final_length + r)
    else:
        final_tables = np.empty((0, config.final_length + r), dtype=sweep.dtype)
    survivors = [
        (int(alive_slot[i]), int(g_alive[i]), final_tables[i])
        for i in range(len(alive_slot))
    ]
    return records, survivors, kills


def screen_chunk_packed(
    config: SearchConfig,
    start_index: int,
    end_index: int,
    *,
    events: NullEventLog = NULL_EVENTS,
) -> ScreenResult:
    """Packed screening of a dense candidate-index range.

    Emits the same per-block instrumentation as the batched driver
    (``search.batch.done`` events, ``search.batches`` /
    ``search.batch_kill.{length}`` metrics), tagged
    ``kernel="packed"`` so reports can attribute throughput per
    backend.
    """
    polys = index_range_polys(config.width, start_index, end_index)
    polys = polys[canonical_mask(config.width, polys)]
    # The weight-4/5 stages reuse the batched composite-key machinery,
    # whose keys pack the row index above the r syndrome bits.
    batch_size = min(config.batch_size, 1 << (64 - config.width))
    result = ScreenResult(config=config)
    metrics = obs_metrics.active()
    map_elems = min(batch_size, len(polys)) << config.width
    workspace = (
        _workspace_for(map_elems)
        if config.target_hd > 4 and 0 < map_elems <= hd_batched.BITMAP_BUDGET
        else None
    )
    for base in range(0, len(polys), batch_size):
        g_batch = polys[base : base + batch_size]
        t0 = time.perf_counter()
        records, survivors, kills = _screen_batch_packed(
            config, g_batch, workspace
        )
        seconds = time.perf_counter() - t0
        offset = len(result.records)
        result.records.extend(records)
        result.survivors.extend(
            (offset + slot, g, syn) for slot, g, syn in survivors
        )
        result.examined += len(g_batch)
        for length, count in kills.items():
            result.stage_kills[length] = (
                result.stage_kills.get(length, 0) + count
            )
        if metrics.enabled:
            metrics.inc("search.batches")
            metrics.inc("search.batches.packed")
            for length, count in kills.items():
                metrics.inc(f"search.batch_kill.{length}", count)
        events.emit(
            "search.batch.done",
            start=start_index,
            end=end_index,
            batch=len(g_batch),
            survivors=len(survivors),
            seconds=round(seconds, 6),
            stage_kills=kills,
            kernel="packed",
        )
    return result
