"""The candidate space of r-bit CRC generator polynomials.

A useful degree-r generator has its ``x**r`` term (by definition of
degree) and its ``+1`` term (otherwise it is ``x * G'`` and wastes a
bit), leaving ``2**(r-1)`` candidates.  Reciprocal polynomials have
identical weight distributions [Peterson72], so only one per pair need
be evaluated -- the paper's reduction to "approximately 2**30 distinct
32-bit CRC polynomials ... a few more than 2**30 because palindromes
are self-reciprocal".

This module provides dense integer indexing of the raw space (for
work partitioning across the distributed campaign) and canonical
filtering (each reciprocal pair surfaces exactly once).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.gf2.poly import reciprocal


def index_to_poly(index: int, width: int) -> int:
    """Map a dense index in ``[0, 2**(width-1))`` to the full
    polynomial encoding: bits 1..width-1 come from the index, the
    ``x**width`` and ``+1`` bits are fixed.

    >>> hex(index_to_poly(0x82608EDB & 0x7FFFFFFF, 32))
    '0x104c11db7'
    """
    if not 0 <= index < (1 << (width - 1)):
        raise ValueError(f"index {index} out of range for width {width}")
    return (1 << width) | (index << 1) | 1


def poly_to_index(p: int, width: int) -> int:
    """Inverse of :func:`index_to_poly`."""
    expected_top = 1 << width
    if p & 1 == 0 or not (p & expected_top) or p >> (width + 1):
        raise ValueError(f"{p:#x} is not a width-{width} candidate")
    return (p >> 1) & ((1 << (width - 1)) - 1)


def candidate_polys(width: int) -> Iterator[int]:
    """All ``2**(width-1)`` candidate generators of the given width,
    in dense-index order (no reciprocal dedup)."""
    for index in range(1 << (width - 1)):
        yield index_to_poly(index, width)


def canonical(p: int) -> int:
    """Canonical representative of a reciprocal pair: the numerically
    smaller encoding.  Self-reciprocal (palindromic) polynomials are
    their own representative.

    >>> canonical(0x104C11DB7) == min(0x104C11DB7, 0x1DB710641)
    True
    """
    return min(p, reciprocal(p))


def is_canonical(p: int) -> bool:
    """True iff ``p`` is its reciprocal pair's representative."""
    return p <= reciprocal(p)


def canonical_candidates(
    width: int, start_index: int = 0, end_index: int | None = None
) -> Iterator[int]:
    """Candidates in the dense-index range ``[start_index, end_index)``
    that are canonical -- the stream a search worker actually
    evaluates.  Partitioning by index range keeps chunk boundaries
    trivially disjoint across workers."""
    if end_index is None:
        end_index = 1 << (width - 1)
    for index in range(start_index, end_index):
        p = index_to_poly(index, width)
        if is_canonical(p):
            yield p


#: Bit-reversal of each byte value, for the vectorized reciprocal.
_REV8 = np.array(
    [int(f"{b:08b}"[::-1], 2) for b in range(256)], dtype=np.uint64
)


def index_range_polys(
    width: int, start_index: int, end_index: int
) -> np.ndarray:
    """The dense index range ``[start_index, end_index)`` as a uint64
    array of full polynomial encodings -- :func:`index_to_poly`
    vectorized (requires ``width <= 63`` so encodings fit uint64)."""
    if not 0 <= start_index <= end_index <= (1 << (width - 1)):
        raise ValueError(
            f"index range [{start_index}, {end_index}) out of bounds "
            f"for width {width}"
        )
    idx = np.arange(start_index, end_index, dtype=np.uint64)
    return (idx << np.uint64(1)) | np.uint64((1 << width) | 1)


def canonical_mask(width: int, polys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`is_canonical` over an array of width-``width``
    candidate encodings: True where the polynomial is its reciprocal
    pair's representative.

    The reciprocal of a degree-``width`` candidate is its bit-reversal
    over ``width + 1`` bits (both end bits are set, so the bit length
    is fixed); a byte-table compose reverses the whole batch without a
    Python-level loop.
    """
    rev = np.zeros_like(polys)
    for byte in range((width + 8) // 8 + 1):
        chunk = (polys >> np.uint64(8 * byte)) & np.uint64(0xFF)
        rev |= _REV8[chunk.astype(np.intp)] << np.uint64(56 - 8 * byte)
    rev >>= np.uint64(64 - (width + 1))
    return polys <= rev


def candidate_count(width: int) -> dict[str, int]:
    """Exact sizes of the width-r space: raw candidates, palindromes,
    and canonical representatives.

    Palindromes over ``width+1`` bits with both end bits set: the
    ``width-1`` interior bits are mirrored in pairs (with a free
    center bit when ``width`` is even), giving ``2**(width//2)`` of
    them.  Canonicals = (raw - palindromes)/2 + palindromes -- the
    paper's exact 1,073,774,592 ("a few more than 2**30") at width 32.

    >>> candidate_count(32)['canonical']
    1073774592
    """
    raw = 1 << (width - 1)
    palindromes = 1 << (width // 2)
    return {
        "raw": raw,
        "palindromes": palindromes,
        "canonical": (raw - palindromes) // 2 + palindromes,
    }
