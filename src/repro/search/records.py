"""Serializable result records for search campaigns.

A months-long distributed campaign (the paper's was May-September
2001) must checkpoint, merge partial results from unreliable workers,
and remain auditable afterwards.  These records are the wire/disk
format: plain dataclasses with lossless JSON round-trip, keyed so
that merging is idempotent (re-delivered results overwrite equal
values, never double-count).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, asdict
from typing import Any

from repro.gf2.notation import class_signature, full_to_koopman
from repro.gf2.poly import degree


@dataclass(frozen=True)
class PolyRecord:
    """Evaluation outcome for a single candidate polynomial.

    ``hd`` is the exact Hamming distance at ``data_word_bits`` for
    survivors; for filtered-out candidates it is the weight of the
    witness that killed them (an upper bound on HD) and
    ``filtered_at_bits`` records the (shorter) length where that
    happened -- mirroring the paper's cascade, which never wastes time
    computing exact values for losers.
    """

    poly: int
    width: int
    data_word_bits: int
    hd: int
    survived: bool
    filtered_at_bits: int | None = None
    witness: tuple[int, ...] | None = None
    weights: dict[int, int] | None = None

    @property
    def koopman(self) -> int:
        """Implicit-+1 representation."""
        return full_to_koopman(self.poly)

    @property
    def factor_class(self) -> tuple[int, ...]:
        """Factorization-class signature {d1,..,dk}."""
        return class_signature(self.poly)

    def to_json_dict(self) -> dict[str, Any]:
        d = asdict(self)
        d["poly"] = f"{self.poly:#x}"
        if self.witness is not None:
            d["witness"] = list(self.witness)
        if self.weights is not None:
            d["weights"] = {str(k): v for k, v in self.weights.items()}
        return d

    @classmethod
    def from_json_dict(cls, d: dict[str, Any]) -> "PolyRecord":
        return cls(
            poly=int(d["poly"], 16),
            width=d["width"],
            data_word_bits=d["data_word_bits"],
            hd=d["hd"],
            survived=d["survived"],
            filtered_at_bits=d.get("filtered_at_bits"),
            witness=tuple(d["witness"]) if d.get("witness") else None,
            weights=(
                {int(k): v for k, v in d["weights"].items()}
                if d.get("weights")
                else None
            ),
        )


@dataclass
class CampaignRecord:
    """Aggregated, idempotently-mergeable campaign state.

    ``results`` is keyed by polynomial; merging the same chunk twice
    (duplicate delivery from a crashed-then-recovered worker) is a
    no-op, which tests in ``tests/dist`` verify.
    """

    width: int
    data_word_bits: int
    target_hd: int
    results: dict[int, PolyRecord] = field(default_factory=dict)
    chunks_done: set[int] = field(default_factory=set)
    candidates_examined: int = 0

    def merge_chunk(
        self, chunk_id: int, records: list[PolyRecord], examined: int
    ) -> bool:
        """Merge one completed chunk.  Returns False (and changes
        nothing) if the chunk was already merged."""
        if chunk_id in self.chunks_done:
            return False
        for rec in records:
            self.results[rec.poly] = rec
        self.chunks_done.add(chunk_id)
        self.candidates_examined += examined
        return True

    @property
    def survivors(self) -> list[PolyRecord]:
        """Records that passed the full filter cascade."""
        return sorted(
            (r for r in self.results.values() if r.survived),
            key=lambda r: r.poly,
        )

    def to_json_dict(self) -> dict[str, Any]:
        # Results are serialized in polynomial order, not insertion
        # (= chunk completion) order: two campaigns that merged the
        # same chunks in different interleavings produce bit-identical
        # JSON, which the chaos harness asserts and the checkpoint
        # CRC-32 self-checksum depends on.
        return {
            "width": self.width,
            "data_word_bits": self.data_word_bits,
            "target_hd": self.target_hd,
            "chunks_done": sorted(self.chunks_done),
            "candidates_examined": self.candidates_examined,
            "results": [
                r.to_json_dict()
                for r in sorted(self.results.values(), key=lambda r: r.poly)
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=1)

    @classmethod
    def from_json_dict(cls, d: dict[str, Any]) -> "CampaignRecord":
        rec = cls(
            width=d["width"],
            data_word_bits=d["data_word_bits"],
            target_hd=d["target_hd"],
        )
        rec.chunks_done = set(d["chunks_done"])
        rec.candidates_examined = d["candidates_examined"]
        for rd in d["results"]:
            pr = PolyRecord.from_json_dict(rd)
            rec.results[pr.poly] = pr
        return rec

    @classmethod
    def from_json(cls, text: str) -> "CampaignRecord":
        return cls.from_json_dict(json.loads(text))


def describe_poly(p: int) -> str:
    """One-line human summary used in logs and reports."""
    return (
        f"{p:#x} (koopman {full_to_koopman(p):#x}, degree {degree(p)}, "
        f"class {{{','.join(map(str, class_signature(p)))}}})"
    )
