"""Batched screening driver: the alive-mask filter cascade.

:func:`screen_chunk_batched` is the vectorized counterpart of the
scalar screening loop in :mod:`repro.search.exhaustive`.  It walks the
chunk's candidates in blocks of up to ``config.batch_size``, builds
``(B, N)`` syndrome tables once per cascade stage
(:mod:`repro.hd.batched`), and narrows an *alive set* stage by stage:
each filter length kills its share of the batch with one round of
global-sort screens (weight 2 duplicates, weight 3/4/5 composite-key
matching), and only what's left flows into the next -- longer, more
expensive -- stage.  Target weights >= 6 (rare: ``target_hd >= 7``)
drop to the per-row scalar tail shared with
:func:`repro.hd.breakpoints.refute_hd_at`.

The output is record-for-record identical to the scalar backend --
same survivors, same per-stage kill counts, same witnesses -- which
the differential tests in ``tests/search/test_batched.py`` assert on
full canonical spaces.  Witness choices replicate the scalar
sequence exactly: weight 2 reports ``(0, order_of_x)``; weights 3-5
try the windowed extraction first (vectorized for weight 3) and fall
back to the full meet-in-the-middle witness search on a windowed
miss, just as the scalar path does.
"""

from __future__ import annotations

import time

import numpy as np

from repro.hd import batched as hd_batched
from repro.hd.batched import (
    BatchKeys,
    extend_syndrome_tables,
    syndrome_tables_batched,
    weight2_witnesses,
    weight4_exists,
    weight5_exists,
)
from repro.hd.breakpoints import _refute_weights
from repro.hd.cost import EnvelopeError, check_envelope
from repro.hd.mitm import find_witness, windowed_witness
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.events import NULL_EVENTS, NullEventLog
from repro.search.exhaustive import ScreenResult, SearchConfig
from repro.search.records import PolyRecord
from repro.search.space import canonical_mask, index_range_polys


def _witness_for(
    g: int, N: int, k: int, syn: np.ndarray, config: SearchConfig
) -> tuple[int, ...]:
    """Extract a weight-``k`` witness for a row the batch screens have
    proven killable, following the scalar path's exact sequence:
    windowed extraction first, full MITM witness search on a miss."""
    try:
        witness = windowed_witness(
            g, N, k, window=min(config.witness_window, N), syn=syn
        )
    except EnvelopeError:
        witness = None
    if witness is None:
        witness = find_witness(
            g,
            N,
            k,
            syn=syn,
            mem_elems=config.mem_elems,
            stream_elems=config.stream_elems,
        )
    assert witness is not None, "batch screen asserted existence"
    return witness


def _screen_batch(
    config: SearchConfig,
    g_all: np.ndarray,
    workspace: hd_batched.PositionMap | None = None,
) -> tuple[list[PolyRecord | None], list[tuple[int, int, np.ndarray]], dict[int, int]]:
    """Screen one batch of same-width candidates.

    Returns ``(records, survivors, stage_kills)`` where ``records`` is
    aligned with ``g_all`` (``None`` at survivor slots) and
    ``survivors`` holds ``(local_slot, poly, final_syndrome_row)``.
    """
    B = len(g_all)
    r = config.width
    hd = config.target_hd
    records: list[PolyRecord | None] = [None] * B
    kills: dict[int, int] = {}
    tracer = obs_trace.active()
    # (x+1) | g  <=>  even popcount: odd weights are immune (parity).
    immune = (np.bitwise_count(g_all) & np.uint64(1)) == np.uint64(0)
    alive_slot = np.arange(B)
    g_alive = g_all
    tables: np.ndarray | None = None

    for n in config.filter_lengths:
        if len(alive_slot) == 0:
            break
        # One span per cascade stage: n is the filter length, alive the
        # batch rows entering; killed annotated on close.
        stage_span = tracer.start(
            "screen.stage", n=n, alive=len(alive_slot), kernel="batched"
        )
        N = n + r
        tables = (
            syndrome_tables_batched(g_alive, N)
            if tables is None
            else extend_syndrome_tables(g_alive, tables, N)
        )
        keys = BatchKeys(tables, r, workspace=workspace)
        n_alive = len(alive_slot)
        kill_weight = np.zeros(n_alive, dtype=np.int64)
        witnesses: list[tuple[int, ...] | None] = [None] * n_alive
        eligible = np.ones(n_alive, dtype=bool)

        # Weight 2: a duplicate syndrome anywhere in the window is
        # exactly "order(x) <= N-1"; witness (0, order) matches the
        # scalar order-check kill.
        dup = keys.duplicate_rows()
        if dup.any():
            rows = np.flatnonzero(dup)
            for row, wit in zip(rows.tolist(), weight2_witnesses(tables[rows])):
                kill_weight[row] = 2
                witnesses[row] = wit
            eligible &= ~dup

        # Weights 3..5, ascending (the exactness precondition of every
        # screen below: lower even/odd weights already clean).
        tail_k_min = 6
        for k in (3, 4, 5):
            if k >= hd or not eligible.any():
                break
            if k == 3:
                mask = keys.weight3_rows() & eligible & ~immune
                if mask.any():
                    rows = np.flatnonzero(mask)
                    vec_wits = keys.weight3_witnesses(
                        rows, config.witness_window
                    )
                    for row, wit in zip(rows.tolist(), vec_wits):
                        g = int(g_alive[row])
                        if wit is None:
                            # No witness within the window: full MITM
                            # search, same as the scalar fallback.
                            wit = find_witness(
                                g,
                                N,
                                3,
                                syn=tables[row],
                                mem_elems=config.mem_elems,
                                stream_elems=config.stream_elems,
                            )
                            assert wit is not None
                        kill_weight[row] = 3
                        witnesses[row] = wit
                    eligible &= ~mask
            else:
                try:
                    check_envelope(N, k, config.mem_elems, config.stream_elems)
                except EnvelopeError:
                    # The scalar path would be envelope-bound here too;
                    # delegate this weight and everything above it to
                    # the per-row tail, which replicates it exactly.
                    tail_k_min = k
                    break
                elig_k = eligible if k == 4 else (eligible & ~immune)
                exists = (
                    weight4_exists(keys, elig_k)
                    if k == 4
                    else weight5_exists(keys, elig_k)
                )
                mask = exists & elig_k
                if mask.any():
                    for row in np.flatnonzero(mask).tolist():
                        g = int(g_alive[row])
                        kill_weight[row] = k
                        witnesses[row] = _witness_for(
                            g, N, k, tables[row], config
                        )
                    eligible &= ~mask

        if tail_k_min < hd and eligible.any():
            for row in np.flatnonzero(eligible).tolist():
                g = int(g_alive[row])
                refutation = _refute_weights(
                    g,
                    hd,
                    N,
                    tables[row],
                    witness_window=config.witness_window,
                    mem_elems=config.mem_elems,
                    stream_elems=config.stream_elems,
                    k_min=tail_k_min,
                )
                if refutation is not None:
                    kill_weight[row], witnesses[row] = refutation

        killed = kill_weight > 0
        if killed.any():
            kills[n] = int(killed.sum())
            final_length = config.final_length
            for row in np.flatnonzero(killed).tolist():
                wit = witnesses[row]
                assert wit is not None
                records[int(alive_slot[row])] = PolyRecord(
                    poly=int(g_alive[row]),
                    width=r,
                    data_word_bits=final_length,
                    hd=int(kill_weight[row]),
                    survived=False,
                    filtered_at_bits=n,
                    witness=tuple(map(int, wit)),
                )
            keep = ~killed
            alive_slot = alive_slot[keep]
            g_alive = g_alive[keep]
            immune = immune[keep]
            tables = tables[keep]
        stage_span.annotate(killed=kills.get(n, 0))
        stage_span.end()

    # After the last stage's compaction ``tables`` holds exactly the
    # survivor rows, so the views handed out share that one array.
    survivors = [
        (int(alive_slot[i]), int(g_alive[i]), tables[i])
        for i in range(len(alive_slot))
    ]
    return records, survivors, kills


#: Process-wide screening workspace, grown on demand and reused across
#: chunks: a fresh :class:`~repro.hd.batched.PositionMap` per chunk
#: would re-pay the page-fault cost of first-touching its pages on
#: every call (the epoch stamps make reuse free -- see PositionMap).
_workspace: hd_batched.PositionMap | None = None


def _workspace_for(elems: int) -> hd_batched.PositionMap:
    global _workspace
    if _workspace is None or len(_workspace.array) < elems:
        _workspace = hd_batched.PositionMap(elems)
    return _workspace


def screen_chunk_batched(
    config: SearchConfig,
    start_index: int,
    end_index: int,
    *,
    events: NullEventLog = NULL_EVENTS,
) -> ScreenResult:
    """Batched screening of a dense candidate-index range.

    Emits one ``search.batch.done`` event per block (batch size,
    survivors, per-stage kills, seconds) and bumps the
    ``search.batches`` / ``search.batch_kill.{length}`` metrics --
    chunk-level instrumentation stays with the caller.
    """
    polys = index_range_polys(config.width, start_index, end_index)
    polys = polys[canonical_mask(config.width, polys)]
    # Composite keys pack the row index above the r syndrome bits.
    batch_size = min(config.batch_size, 1 << (64 - config.width))
    result = ScreenResult(config=config)
    metrics = obs_metrics.active()
    # One dense position map serves every stage of every batch: each
    # BatchKeys stamps its writes with a fresh epoch, so the array is
    # never cleared between stages (see PositionMap).
    map_elems = min(batch_size, len(polys)) << config.width
    workspace = (
        _workspace_for(map_elems)
        if 0 < map_elems <= hd_batched.BITMAP_BUDGET
        else None
    )
    for base in range(0, len(polys), batch_size):
        g_batch = polys[base : base + batch_size]
        t0 = time.perf_counter()
        records, survivors, kills = _screen_batch(config, g_batch, workspace)
        seconds = time.perf_counter() - t0
        offset = len(result.records)
        result.records.extend(records)
        result.survivors.extend(
            (offset + slot, g, syn) for slot, g, syn in survivors
        )
        result.examined += len(g_batch)
        for length, count in kills.items():
            result.stage_kills[length] = (
                result.stage_kills.get(length, 0) + count
            )
        if metrics.enabled:
            metrics.inc("search.batches")
            metrics.inc("search.batches.batched")
            for length, count in kills.items():
                metrics.inc(f"search.batch_kill.{length}", count)
        events.emit(
            "search.batch.done",
            start=start_index,
            end=end_index,
            batch=len(g_batch),
            survivors=len(survivors),
            seconds=round(seconds, 6),
            stage_kills=kills,
            kernel="batched",
        )
    return result
