"""Irreducibility testing and enumeration of irreducible GF(2) polynomials.

The paper's factorization classes (``{1,3,28}`` etc.) are defined by the
degrees of a polynomial's irreducible factors, so a fast, exact
irreducibility test is foundational.  We use Rabin's test:

    ``f`` of degree ``d`` is irreducible over GF(2) iff
    (1) ``x**(2**d) == x (mod f)``, and
    (2) ``gcd(x**(2**(d/q)) - x, f) == 1`` for every prime ``q | d``.

Computing ``x**(2**k) mod f`` takes ``k`` modular squarings of ``x``,
so the test costs O(d) squarings of degree-<d polynomials -- instant
for CRC-sized degrees.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.gf2.poly import degree, gf2_gcd, gf2_mod, gf2_mulmod
from repro.gf2.intfactor import prime_factors

_X = 0b10


def _x_to_power_of_two(k: int, f: int) -> int:
    """Return ``x**(2**k) mod f`` via ``k`` repeated squarings."""
    t = gf2_mod(_X, f)
    for _ in range(k):
        t = gf2_mulmod(t, t, f)
    return t


def is_irreducible(f: int) -> bool:
    """Exact irreducibility test (Rabin) for ``f`` over GF(2).

    Degree-0 polynomials (constants) and the zero polynomial are not
    irreducible.  ``x`` and ``x+1`` are the two degree-1 irreducibles.

    >>> is_irreducible(0b111)      # x^2 + x + 1
    True
    >>> is_irreducible(0b101)      # x^2 + 1 == (x+1)^2
    False
    """
    d = degree(f)
    if d <= 0:
        return False
    if d == 1:
        return True
    # Any polynomial with zero constant term is divisible by x.
    if f & 1 == 0:
        return False
    # An even number of terms means divisible by (x+1).
    if f.bit_count() % 2 == 0:
        return False
    if _x_to_power_of_two(d, f) != _X:
        return False
    for q in prime_factors(d):
        h = _x_to_power_of_two(d // q, f) ^ _X
        if gf2_gcd(h, f) != 1:
            return False
    return True


def irreducibles(d: int) -> Iterator[int]:
    """Yield every irreducible polynomial of degree exactly ``d``.

    Used by the scaled exhaustive censuses (Table 2 analogue) to build
    factorization classes constructively.  The count follows the
    necklace formula ``(1/d) * sum_{e|d} mu(e) 2**(d/e)``; callers can
    sanity-check against it.

    Enumeration is brute force over the ``2**(d-1)`` candidates with the
    top and constant bits set (plus ``x`` and ``x+1`` for ``d == 1``),
    which is fine for the degrees (<= 16 or so) where enumeration is
    actually wanted.
    """
    if d < 1:
        return
    if d == 1:
        yield 0b10  # x
        yield 0b11  # x + 1
        return
    top = 1 << d
    for middle in range(0, 1 << (d - 1)):
        f = top | (middle << 1) | 1
        if is_irreducible(f):
            yield f


def count_irreducibles(d: int) -> int:
    """Number of irreducible polynomials of degree ``d`` over GF(2),
    by the Gauss/necklace counting formula (no enumeration).

    >>> count_irreducibles(3)
    2
    >>> count_irreducibles(28)
    9586395
    """
    from repro.gf2.intfactor import divisors, moebius

    if d < 1:
        raise ValueError("degree must be positive")
    total = 0
    for e in divisors(d):
        total += moebius(e) * (1 << (d // e))
    return total // d
