"""Integer factorization helpers.

The multiplicative order of ``x`` modulo an irreducible polynomial of
degree ``d`` divides ``2**d - 1``; computing it exactly requires the
prime factorization of ``2**d - 1`` (a Mersenne-style number up to
``2**64 - 1`` for this project).  Trial division plus Brent's variant
of Pollard rho with a Miller-Rabin primality test handles that range
in well under a second.
"""

from __future__ import annotations

import math
import random

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)

# Deterministic Miller-Rabin witness set for n < 3.3e24 (Sorenson/Webster).
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)


def is_prime(n: int) -> bool:
    """Deterministic primality for ``n < 3.3e24`` (Miller-Rabin with a
    proven witness set); probabilistic beyond that (ample for 2**d - 1
    with d <= 64, which is all this project needs).

    >>> is_prime(2**31 - 1)
    True
    >>> is_prime(2**32 - 1)
    False
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    witnesses = _MR_WITNESSES
    if n >= 3317044064679887385961981:  # fall back to random witnesses
        rng = random.Random(0xC0FFEE)
        witnesses = tuple(rng.randrange(2, n - 1) for _ in range(40))
    for a in witnesses:
        a %= n
        if a in (0, 1, n - 1):
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _pollard_brent(n: int, rng: random.Random) -> int:
    """Return a non-trivial factor of composite odd ``n`` (Brent 1980)."""
    if n % 2 == 0:
        return 2
    while True:
        y = rng.randrange(1, n)
        c = rng.randrange(1, n)
        m = 128
        g = r = q = 1
        x = ys = y
        while g == 1:
            x = y
            for _ in range(r):
                y = (y * y + c) % n
            k = 0
            while k < r and g == 1:
                ys = y
                for _ in range(min(m, r - k)):
                    y = (y * y + c) % n
                    q = q * abs(x - y) % n
                g = math.gcd(q, n)
                k += m
            r *= 2
        if g == n:
            g = 1
            while g == 1:
                ys = (ys * ys + c) % n
                g = math.gcd(abs(x - ys), n)
        if g != n:
            return g


def factorize_int(n: int) -> dict[int, int]:
    """Full prime factorization of ``n >= 1`` as ``{prime: exponent}``.

    >>> factorize_int(2**28 - 1) == {3: 1, 5: 1, 29: 1, 43: 1, 113: 1, 127: 1}
    True
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    factors: dict[int, int] = {}
    for p in _SMALL_PRIMES:
        while n % p == 0:
            factors[p] = factors.get(p, 0) + 1
            n //= p
    if n == 1:
        return factors
    rng = random.Random(0x5EED)
    stack = [n]
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_prime(m):
            factors[m] = factors.get(m, 0) + 1
            continue
        d = _pollard_brent(m, rng)
        stack.append(d)
        stack.append(m // d)
    return factors


def prime_factors(n: int) -> list[int]:
    """Sorted distinct prime factors of ``n``."""
    return sorted(factorize_int(n))


def divisors(n: int) -> list[int]:
    """All positive divisors of ``n``, sorted ascending."""
    divs = [1]
    for p, e in factorize_int(n).items():
        divs = [d * p**k for d in divs for k in range(e + 1)]
    return sorted(divs)


def moebius(n: int) -> int:
    """Moebius function: 0 if ``n`` has a squared prime factor, else
    ``(-1)**(number of prime factors)``."""
    mu = 1
    for _, e in factorize_int(n).items():
        if e > 1:
            return 0
        mu = -mu
    return mu
