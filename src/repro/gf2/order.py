"""Multiplicative order of ``x`` modulo a polynomial; primitivity.

The order of ``x`` mod ``G`` determines the exact HD=2 limit of a CRC:
the shortest undetectable 2-bit error is ``x**order + 1`` (bit flips
``order`` positions apart), so the CRC guarantees HD >= 3 for codewords
of up to ``order`` bits -- i.e. data words of up to ``order - r`` bits
for an ``r``-bit CRC.  This is how the bottom row of the paper's
Table 1 ("HD=2 at 114664+ bits" etc.) is computed here, with no search
at all.

For irreducible ``f`` of degree ``d``, ``ord(x)`` divides ``2**d - 1``;
``f`` is *primitive* iff the order equals ``2**d - 1``.  For a general
``G = prod f_i**e_i`` (with ``G(0) == 1`` so that ``x`` is invertible),

    ``ord(x mod G) = lcm_i( ord(x mod f_i) * 2**ceil(log2 e_i) )``.
"""

from __future__ import annotations

import math

from repro.gf2.poly import degree, gf2_mod, x_pow_mod
from repro.gf2.intfactor import factorize_int
from repro.gf2.factorize import factorize


def order_mod_irreducible(f: int) -> int:
    """Order of ``x`` in GF(2)[x]/(f) for irreducible ``f != x``.

    Starts from ``2**d - 1`` and strips each prime factor while the
    power remains 1 -- the standard group-order descent.

    >>> order_mod_irreducible(0b111)   # x^2+x+1 is primitive
    3
    """
    d = degree(f)
    if d < 1 or f == 0b10:
        raise ValueError("x is not invertible modulo this polynomial")
    if d == 1:  # f == x + 1: x == 1 (mod f)
        return 1
    n = (1 << d) - 1
    order = n
    for p in factorize_int(n):
        while order % p == 0 and x_pow_mod(order // p, f) == 1:
            order //= p
    return order


def is_primitive(f: int) -> bool:
    """True iff ``f`` is a primitive polynomial over GF(2).

    The paper notes the 802.3 polynomial is "irreducible, but not
    primitive" and that Castagnoli's 0xD419CC15 is likewise irreducible
    non-primitive; this predicate reproduces those classifications.
    """
    from repro.gf2.irreducible import is_irreducible

    d = degree(f)
    if d < 1:
        return False
    if not is_irreducible(f):
        return False
    if d == 1:
        return f == 0b11  # x + 1 generates the trivial group; x does not
    return order_mod_irreducible(f) == (1 << d) - 1


def order_of_x(g: int) -> int:
    """Order of ``x`` modulo an arbitrary ``g`` with ``g(0) == 1``.

    Factors ``g`` and combines per-factor orders:
    ``lcm_i(ord_i * 2**ceil(log2 e_i))`` where ``e_i`` is the factor's
    multiplicity (repeated factors multiply the order by the smallest
    power of two at least the multiplicity, a GF(2) specialty).

    >>> order_of_x(0b101011)  # (x+1)(x^4+x^3+1), primitive deg-4 factor
    15
    """
    if g & 1 == 0:
        raise ValueError("x is not invertible modulo g (g has zero constant term)")
    if degree(g) < 1:
        raise ValueError("order undefined for constant polynomials")
    result = 1
    for f, mult in factorize(g):
        base = order_mod_irreducible(f)
        lift = 1
        while lift < mult:
            lift <<= 1
        result = math.lcm(result, base * lift)
    return result


def hd2_data_word_limit(g: int) -> int:
    """Largest data-word length (in bits) for which ``g`` still detects
    all 2-bit errors, i.e. the last length with HD >= 3.

    A 2-bit error ``x**a (x**order + 1)`` first fits in a codeword of
    ``order + 1`` bits, i.e. a data word of ``order + 1 - r`` bits.
    The guarantee therefore holds through data words of
    ``order - r`` bits.  This reproduces the paper's Table 1 bottom
    row: e.g. 0xBA0DC66B has order 114695 and r=32, so HD=2 starts at
    data word length 114664 and HD>=3 holds through 114663.
    """
    r = degree(g)
    return order_of_x(g) - r


def verify_order(g: int, order: int) -> bool:
    """Cross-check: ``x**order == 1 (mod g)`` and no proper divisor of
    ``order`` satisfies it.  Used by tests and the validation bench."""
    if x_pow_mod(order, g) != gf2_mod(1, g):
        return False
    for p in factorize_int(order):
        if x_pow_mod(order // p, g) == gf2_mod(1, g):
            return False
    return True
