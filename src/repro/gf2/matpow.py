"""GF(2) matrix powers: O(r^2 log n) length-jumping for LFSR state.

The syndrome sequence ``syn[j] = x**j mod g`` is a linear recurrence:
one LFSR step is multiplication by the companion matrix of ``g`` over
GF(2).  Squaring that matrix ``log2(n)`` times therefore jumps the
state *n* positions in ``O(r**2 log n)`` bit operations -- no matter
how large ``n`` is -- where a plain sweep pays ``O(n)`` steps.  That
asymmetry is what makes breakpoint *bisection* practical: probing
"does a weight-k codeword fit in 2**20 bits?" no longer requires
walking 2**20 LFSR steps first.

Representation
--------------
An ``r x r`` matrix over GF(2) is a numpy array of ``r`` ``uint64``
words; word ``i`` is row ``i``'s bitmask over columns (bit ``j`` set
means ``M[i][j] == 1``).  State vectors stay in the project's native
syndrome encoding -- a Python int whose bit ``i`` is the coefficient
of ``x**i`` -- so jump outputs drop straight into syndrome tables.
The row-bitmask layout caps the width at 64 columns, which covers
every CRC this reproduction handles (the paper stops at 32).

A matrix--vector product is one vectorized popcount-parity::

    out_bit[i] = parity(popcount(row[i] & v))

and a matrix--matrix product XOR-accumulates the rows of ``B``
selected by each row of ``A`` -- ``r**2`` word operations, at most
4096 for ``r == 64``.

:class:`PowerLadder` caches the squarings ``C**(2**t)`` per
polynomial (see :func:`ladder_for`), so repeated jumps for the same
``g`` -- the access pattern of breakpoint bisection -- pay the ladder
construction once and ``O(r**2)`` per set bit of ``n`` afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.gf2.poly import degree

#: Widest polynomial the row-bitmask layout supports (columns per word).
MATPOW_MAX_DEGREE = 64


def _check_degree(r: int) -> None:
    if not 1 <= r <= MATPOW_MAX_DEGREE:
        raise ValueError(
            f"matrix width {r} outside [1, {MATPOW_MAX_DEGREE}]"
        )


def identity_matrix(r: int) -> np.ndarray:
    """The ``r x r`` identity as packed row bitmasks.

    >>> identity_matrix(3)
    array([1, 2, 4], dtype=uint64)
    """
    _check_degree(r)
    return np.uint64(1) << np.arange(r, dtype=np.uint64)


def companion_matrix(g: int) -> np.ndarray:
    """Companion matrix of ``g``: one LFSR step as a linear map.

    Multiplication by ``x`` modulo ``g`` sends state ``s`` to
    ``(s << 1) ^ (g if s[r-1] else 0)`` truncated to ``r`` bits, so
    output bit ``b`` reads input bit ``b - 1`` and, when ``g`` has the
    ``x**b`` term, input bit ``r - 1``:

    >>> [int(row) for row in companion_matrix(0b1011)]  # x^3 + x + 1
    [4, 5, 2]
    >>> from repro.gf2.matpow import mat_vec
    >>> mat_vec(companion_matrix(0b1011), 0b100)  # x * x^2 = x + 1
    3
    """
    r = degree(g)
    _check_degree(r)
    rows = np.zeros(r, dtype=np.uint64)
    rows[1:] = np.uint64(1) << np.arange(r - 1, dtype=np.uint64)
    top = np.uint64(1) << np.uint64(r - 1)
    g_low = np.uint64(g & ((1 << r) - 1))  # top bit of g is implicit
    g_bits = (g_low >> np.arange(r, dtype=np.uint64)) & np.uint64(1)
    rows |= g_bits * top
    return rows


def mat_vec(m: np.ndarray, v: int) -> int:
    """Apply ``m`` to the state bitmask ``v``; returns the new bitmask.

    >>> mat_vec(identity_matrix(4), 0b1010)
    10
    """
    r = len(m)
    bits = np.bitwise_count(m & np.uint64(v)) & np.uint64(1)
    packed = np.bitwise_or.reduce(
        bits << np.arange(r, dtype=np.uint64)
    )
    return int(packed)


def mat_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Product ``a @ b`` over GF(2) on packed row bitmasks.

    Row ``i`` of the product XORs together the rows of ``b`` selected
    by the set bits of ``a``'s row ``i``.

    >>> c = companion_matrix(0b1011)
    >>> np.array_equal(mat_mul(c, identity_matrix(3)), c)
    True
    """
    r = len(a)
    select = (
        (a[:, None] >> np.arange(r, dtype=np.uint64)[None, :])
        & np.uint64(1)
    )
    return np.bitwise_xor.reduce(select * b[None, :], axis=1)


def mat_square(m: np.ndarray) -> np.ndarray:
    """``m @ m`` over GF(2) -- one rung of the power ladder."""
    return mat_mul(m, m)


def mat_pow(m: np.ndarray, e: int) -> np.ndarray:
    """``m**e`` over GF(2) by square-and-multiply.

    >>> from repro.gf2.poly import x_pow_mod
    >>> g = 0b1011011
    >>> mat_vec(mat_pow(companion_matrix(g), 1000), 1) == x_pow_mod(1000, g)
    True
    """
    if e < 0:
        raise ValueError("negative exponent")
    result = identity_matrix(len(m))
    base = m
    while e:
        if e & 1:
            result = mat_mul(result, base)
        base = mat_square(base)
        e >>= 1
    return result


class PowerLadder:
    """Cached squarings of a companion matrix for repeated jumps.

    The ladder lazily extends ``C**(2**t)`` as far as the largest jump
    ever requested, so a sequence of bisection probes against the same
    polynomial shares one set of squarings.

    >>> from repro.gf2.poly import x_pow_mod
    >>> lad = PowerLadder(0x104C11DB7)  # CRC-32, degree 32
    >>> lad.syndrome_at(0)
    1
    >>> lad.syndrome_at(12_000_000) == x_pow_mod(12_000_000, 0x104C11DB7)
    True
    """

    def __init__(self, g: int) -> None:
        self.g = g
        self.r = degree(g)
        _check_degree(self.r)
        self._squares: list[np.ndarray] = [companion_matrix(g)]

    def _square_upto(self, t: int) -> None:
        while len(self._squares) <= t:
            self._squares.append(mat_square(self._squares[-1]))

    def jump(self, state: int, n: int) -> int:
        """Advance ``state`` by ``n`` LFSR steps in ``O(r**2 log n)``."""
        if n < 0:
            raise ValueError("cannot jump backwards")
        if n:
            self._square_upto(n.bit_length() - 1)
        t = 0
        while n:
            if n & 1:
                state = mat_vec(self._squares[t], state)
            t += 1
            n >>= 1
        return state

    def syndrome_at(self, n: int) -> int:
        """``x**n mod g`` -- the syndrome of a lone bit at position ``n``."""
        return self.jump(1, n)


_LADDERS: dict[int, PowerLadder] = {}
_LADDER_CACHE_MAX = 256


def ladder_for(g: int) -> PowerLadder:
    """Shared per-polynomial :class:`PowerLadder` (bounded cache)."""
    ladder = _LADDERS.get(g)
    if ladder is None:
        if len(_LADDERS) >= _LADDER_CACHE_MAX:
            _LADDERS.clear()
        ladder = _LADDERS[g] = PowerLadder(g)
    return ladder
