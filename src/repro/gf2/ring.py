"""An ergonomic polynomial class over GF(2).

The computational core of this library works on raw integers for
speed; :class:`GF2Poly` wraps them with operator overloading for
interactive use and readable application code::

    >>> from repro.gf2.ring import GF2Poly
    >>> g = GF2Poly.from_exponents([3, 1, 0])     # x^3 + x + 1
    >>> x = GF2Poly.x()
    >>> (x**3 + x + GF2Poly.one()) == g
    True
    >>> (g * g).degree
    6
    >>> divmod(x**5, g)
    (GF2Poly('x^2 + 1'), GF2Poly('x^2 + x + 1'))

Instances are immutable and hashable; all arithmetic delegates to
:mod:`repro.gf2.poly`.
"""

from __future__ import annotations

from functools import total_ordering

from repro.gf2 import poly as _p
from repro.gf2.notation import exponents, from_exponents, poly_str


@total_ordering
class GF2Poly:
    """An immutable polynomial over GF(2).

    Ordering is by integer encoding (degree-then-lexicographic on
    coefficients), which makes sorted containers deterministic.
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: int) -> None:
        if bits < 0:
            raise ValueError("polynomial encoding must be non-negative")
        object.__setattr__(self, "_bits", bits)

    def __setattr__(self, *_args) -> None:
        raise AttributeError("GF2Poly is immutable")

    # -- constructors ---------------------------------------------------

    @classmethod
    def zero(cls) -> "GF2Poly":
        return cls(0)

    @classmethod
    def one(cls) -> "GF2Poly":
        return cls(1)

    @classmethod
    def x(cls) -> "GF2Poly":
        return cls(0b10)

    @classmethod
    def from_exponents(cls, exps: list[int]) -> "GF2Poly":
        """Build from a list of exponents with non-zero coefficients."""
        return cls(from_exponents(exps))

    @classmethod
    def from_koopman(cls, value: int, width: int = 32) -> "GF2Poly":
        """Build from the paper's implicit-+1 hex notation."""
        from repro.gf2.notation import koopman_to_full

        return cls(koopman_to_full(value, width))

    # -- accessors ------------------------------------------------------

    @property
    def bits(self) -> int:
        """Raw integer encoding (bit i = coefficient of x^i)."""
        return self._bits

    @property
    def degree(self) -> int:
        return _p.degree(self._bits)

    @property
    def weight(self) -> int:
        """Number of non-zero coefficients."""
        return self._bits.bit_count()

    @property
    def exponents(self) -> list[int]:
        return exponents(self._bits)

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other: "GF2Poly") -> "GF2Poly":
        return GF2Poly(_p.gf2_add(self._bits, other._bits))

    __sub__ = __add__  # characteristic 2

    def __mul__(self, other: "GF2Poly") -> "GF2Poly":
        return GF2Poly(_p.gf2_mul(self._bits, other._bits))

    def __divmod__(self, other: "GF2Poly") -> tuple["GF2Poly", "GF2Poly"]:
        q, r = _p.gf2_divmod(self._bits, other._bits)
        return GF2Poly(q), GF2Poly(r)

    def __floordiv__(self, other: "GF2Poly") -> "GF2Poly":
        return divmod(self, other)[0]

    def __mod__(self, other: "GF2Poly") -> "GF2Poly":
        return GF2Poly(_p.gf2_mod(self._bits, other._bits))

    def __pow__(self, exp: int) -> "GF2Poly":
        if exp < 0:
            raise ValueError("negative exponent")
        result = GF2Poly.one()
        base = self
        while exp:
            if exp & 1:
                result = result * base
            base = base * base
            exp >>= 1
        return result

    def pow_mod(self, exp: int, modulus: "GF2Poly") -> "GF2Poly":
        return GF2Poly(_p.gf2_powmod(self._bits, exp, modulus._bits))

    def gcd(self, other: "GF2Poly") -> "GF2Poly":
        return GF2Poly(_p.gf2_gcd(self._bits, other._bits))

    def reciprocal(self) -> "GF2Poly":
        return GF2Poly(_p.reciprocal(self._bits))

    def derivative(self) -> "GF2Poly":
        return GF2Poly(_p.derivative(self._bits))

    # -- predicates & analysis -------------------------------------------

    def is_irreducible(self) -> bool:
        from repro.gf2.irreducible import is_irreducible

        return is_irreducible(self._bits)

    def is_primitive(self) -> bool:
        from repro.gf2.order import is_primitive

        return is_primitive(self._bits)

    def factor(self) -> list[tuple["GF2Poly", int]]:
        from repro.gf2.factorize import factorize

        return [(GF2Poly(f), m) for f, m in factorize(self._bits)]

    def order_of_x(self) -> int:
        from repro.gf2.order import order_of_x

        return order_of_x(self._bits)

    def divides(self, other: "GF2Poly") -> bool:
        if self._bits == 0:
            return other._bits == 0
        return _p.gf2_mod(other._bits, self._bits) == 0

    def __call__(self, value: int) -> int:
        """Evaluate at a GF(2) point (0 or 1)."""
        if value == 0:
            return self._bits & 1
        if value == 1:
            return self._bits.bit_count() & 1
        raise ValueError("GF(2) has only the points 0 and 1")

    # -- dunder plumbing --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GF2Poly) and self._bits == other._bits

    def __lt__(self, other: "GF2Poly") -> bool:
        return self._bits < other._bits

    def __hash__(self) -> int:
        return hash(("GF2Poly", self._bits))

    def __bool__(self) -> bool:
        return self._bits != 0

    def __str__(self) -> str:
        return poly_str(self._bits)

    def __repr__(self) -> str:
        return f"GF2Poly('{poly_str(self._bits)}')"
