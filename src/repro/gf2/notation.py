"""Polynomial notation conversions.

The paper writes a degree-32 CRC polynomial as a 32-bit hex number with
an *implicit +1 term*: bit ``i`` of the hex value is the coefficient of
``x**(i+1)`` and the ``x**32`` coefficient occupies bit 31.  For example
IEEE 802.3's generator

    x^32+x^26+x^23+x^22+x^16+x^12+x^11+x^10+x^8+x^7+x^5+x^4+x^2+x+1

is written ``0x82608EDB`` in the paper but ``0x04C11DB7`` in the usual
MSB-first convention (implicit ``x**32``, explicit ``+1``) and
``0xEDB88320`` in the reflected (LSB-first) convention used by
software table implementations.

This module converts between all of these and the full integer
encoding used everywhere else in the library (bit ``i`` == coefficient
of ``x**i``; the 802.3 generator is ``0x104C11DB7``).

It also renders the paper's factorization-class signatures such as
``{1,3,28}``.
"""

from __future__ import annotations

from repro.gf2.poly import degree, reciprocal
from repro.gf2.factorize import factor_degrees, factorize


def koopman_to_full(k: int, width: int = 32) -> int:
    """Convert the paper's implicit-+1 representation to a full
    polynomial encoding.

    ``k`` must have bit ``width-1`` set (the ``x**width`` term).  The
    result always has both the ``x**width`` and constant terms set.

    >>> hex(koopman_to_full(0x82608EDB))
    '0x104c11db7'
    >>> hex(koopman_to_full(0xBA0DC66B))
    '0x1741b8cd7'
    """
    if not 0 < k < (1 << width):
        raise ValueError(f"representation {k:#x} does not fit in {width} bits")
    if not k >> (width - 1) & 1:
        raise ValueError(
            f"{k:#x} lacks the x^{width} term (top bit) required of a "
            f"{width}-bit CRC polynomial in implicit-+1 notation"
        )
    return (k << 1) | 1


def full_to_koopman(p: int, width: int | None = None) -> int:
    """Inverse of :func:`koopman_to_full`.

    >>> hex(full_to_koopman(0x104C11DB7))
    '0x82608edb'
    """
    d = degree(p)
    if width is not None and d != width:
        raise ValueError(f"polynomial has degree {d}, expected {width}")
    if p & 1 == 0:
        raise ValueError(
            "polynomial lacks the +1 term; it has no implicit-+1 representation"
        )
    return p >> 1


def full_to_normal(p: int, width: int | None = None) -> int:
    """Conventional MSB-first representation (implicit ``x**width``).

    >>> hex(full_to_normal(0x104C11DB7))
    '0x4c11db7'
    """
    d = degree(p)
    if width is not None and d != width:
        raise ValueError(f"polynomial has degree {d}, expected {width}")
    return p & ((1 << d) - 1)


def normal_to_full(n: int, width: int) -> int:
    """Convert MSB-first (implicit top term) representation to full.

    >>> hex(normal_to_full(0x4C11DB7, 32))
    '0x104c11db7'
    """
    if n >> width:
        raise ValueError(f"{n:#x} does not fit in {width} bits")
    return n | (1 << width)


def full_to_reflected(p: int, width: int | None = None) -> int:
    """Reflected (LSB-first) representation, as used by table-driven
    software CRCs: bit-reverse of the normal representation.

    >>> hex(full_to_reflected(0x104C11DB7))
    '0xedb88320'
    """
    d = degree(p)
    if width is not None and d != width:
        raise ValueError(f"polynomial has degree {d}, expected {width}")
    n = full_to_normal(p)
    return int(format(n, f"0{d}b")[::-1], 2)


def exponents(p: int) -> list[int]:
    """Exponents with non-zero coefficients, descending.

    >>> exponents(0b1011)
    [3, 1, 0]
    """
    return [i for i in range(degree(p), -1, -1) if (p >> i) & 1]


def from_exponents(exps: list[int]) -> int:
    """Build a polynomial from a list of exponents.

    >>> hex(from_exponents([32, 26, 23, 22, 16, 12, 11, 10, 8, 7, 5, 4, 2, 1, 0]))
    '0x104c11db7'
    """
    p = 0
    for e in exps:
        if e < 0:
            raise ValueError("negative exponent")
        if (p >> e) & 1:
            raise ValueError(f"duplicate exponent {e}")
        p |= 1 << e
    return p


def poly_str(p: int) -> str:
    """Human-readable polynomial, matching the paper's style.

    >>> poly_str(0b1011)
    'x^3 + x + 1'
    """
    if p == 0:
        return "0"
    terms = []
    for e in exponents(p):
        if e == 0:
            terms.append("1")
        elif e == 1:
            terms.append("x")
        else:
            terms.append(f"x^{e}")
    return " + ".join(terms)


def class_signature(p: int) -> tuple[int, ...]:
    """Factorization-class signature: the multiset of irreducible-factor
    degrees, ascending, as a tuple usable as a dict key.

    >>> class_signature(koopman_to_full(0xBA0DC66B))
    (1, 3, 28)
    """
    return tuple(factor_degrees(p))


def class_signature_str(p: int) -> str:
    """The paper's ``{d1,..,dk}`` rendering of the class signature.

    >>> class_signature_str(koopman_to_full(0xBA0DC66B))
    '{1,3,28}'
    """
    return "{" + ",".join(str(d) for d in class_signature(p)) + "}"


def factor_strs(p: int) -> list[str]:
    """Render each irreducible factor (with multiplicity expanded) as a
    polynomial string -- e.g. the paper's
    ``(x+1)(x^3+x^2+1)(x^28+...+1)`` for 0xBA0DC66B."""
    out = []
    for f, mult in factorize(p):
        out.extend([poly_str(f)] * mult)
    return out


def reciprocal_koopman(k: int, width: int = 32) -> int:
    """Implicit-+1 representation of the reciprocal polynomial.

    Reciprocal pairs have identical weight distributions; the search
    engine canonicalizes on ``min(poly, reciprocal)``.
    """
    return full_to_koopman(reciprocal(koopman_to_full(k, width)), width)
