"""Complete factorization in GF(2)[x].

Implements the classical three-stage pipeline:

1. **Squarefree decomposition** -- over GF(2) a polynomial with zero
   derivative is a perfect square (``p(x) = q(x)**2``), handled by
   recursive square-root extraction; otherwise ``gcd(p, p')`` splits
   off repeated factors.
2. **Distinct-degree factorization (DDF)** -- ``x**(2**d) - x`` is the
   product of all irreducibles of degree dividing ``d``, so successive
   gcds bucket the squarefree part by factor degree.
3. **Equal-degree factorization (EDF)** -- Cantor-Zassenhaus adapted to
   characteristic 2 using the trace map
   ``T(a) = a + a^2 + a^4 + ... + a^(2^(d-1)) mod f``:
   ``gcd(T(a), f)`` is a non-trivial splitter with probability ~1/2
   for random ``a``.

The driver is deterministic (seeded RNG) so factorizations -- and thus
class censuses -- are reproducible run to run.

This module is what turns 0xBA0DC66B into the paper's
``(x+1)(x^3+x^2+1)(x^28+...+1)`` = class ``{1,3,28}``.
"""

from __future__ import annotations

import random

from repro.gf2.poly import (
    degree,
    derivative,
    gf2_gcd,
    gf2_divmod,
    gf2_mod,
    gf2_mulmod,
    gf2_sqrt,
)

_X = 0b10


def _odd_multiplicity_part(p: int) -> int:
    """Return the (squarefree) product of the distinct irreducible
    factors of ``p`` that appear with *odd* multiplicity.

    Over GF(2), for ``p = prod f_i**e_i`` the derivative kills terms
    with even ``e_i`` entirely, so ``p / gcd(p, p') == prod_{e_i odd} f_i``.
    Requires ``p' != 0``.
    """
    d = derivative(p)
    g = gf2_gcd(p, d)
    quotient, rem = gf2_divmod(p, g)
    assert rem == 0
    return quotient


def _distinct_degree(f: int) -> list[tuple[int, int]]:
    """DDF of a squarefree ``f``: list of ``(product, factor_degree)``."""
    result = []
    h = gf2_mod(_X, f)
    remaining = f
    d = 0
    while degree(remaining) > 2 * d:
        d += 1
        h = gf2_mulmod(h, h, remaining)
        g = gf2_gcd(h ^ _X, remaining)
        if degree(g) >= 1:
            result.append((g, d))
            remaining, rem = gf2_divmod(remaining, g)
            assert rem == 0
            h = gf2_mod(h, remaining)
    if degree(remaining) >= 1:
        result.append((remaining, degree(remaining)))
    return result


def _trace_map(a: int, f: int, d: int) -> int:
    """Trace of ``a`` from GF(2^d) down to GF(2), computed mod ``f``."""
    t = a
    s = a
    for _ in range(d - 1):
        s = gf2_mulmod(s, s, f)
        t ^= s
    return t


def _equal_degree(f: int, d: int, rng: random.Random) -> list[int]:
    """Split squarefree ``f``, all of whose irreducible factors have
    degree exactly ``d``, into those factors (Cantor-Zassenhaus, char 2).
    """
    n = degree(f)
    if n == d:
        return [f]
    while True:
        a = rng.getrandbits(n) | 1
        a = gf2_mod(a, f)
        if degree(a) < 1:
            continue
        g = gf2_gcd(a, f)
        if 1 <= degree(g) < n:
            split = g
        else:
            t = _trace_map(a, f, d)
            split = gf2_gcd(t, f)
            if not (1 <= degree(split) < n):
                continue
        other, rem = gf2_divmod(f, split)
        assert rem == 0
        return _equal_degree(split, d, rng) + _equal_degree(other, d, rng)


def factorize(p: int) -> list[tuple[int, int]]:
    """Factor ``p`` into irreducibles over GF(2).

    Returns a list of ``(irreducible_factor, multiplicity)`` sorted by
    (degree, encoding).  The product of ``factor**multiplicity`` always
    reconstructs ``p`` exactly (tests enforce this).

    >>> factorize(0b101)            # x^2 + 1 == (x+1)^2
    [(3, 2)]
    >>> sorted(d for f, m in factorize(0x104C11DB7) for d in [f.bit_length()-1])
    [32]
    """
    if p == 0:
        raise ValueError("cannot factor the zero polynomial")
    if degree(p) < 1:
        return []
    rng = random.Random(0xD5_2002)  # deterministic: DSN 2002
    # Pull out powers of x first so the rest has unit constant term.
    factors: dict[int, int] = {}
    while p & 1 == 0:
        factors[_X] = factors.get(_X, 0) + 1
        p >>= 1
    _factor_into(p, 1, factors, rng)
    return sorted(factors.items(), key=lambda fm: (degree(fm[0]), fm[0]))


def _factor_into(
    p: int, outer_mult: int, factors: dict[int, int], rng: random.Random
) -> None:
    """Accumulate the factorization of ``p`` (each factor's multiplicity
    scaled by ``outer_mult``) into ``factors``.

    Strategy: the odd-multiplicity part (squarefree) is split with
    DDF/EDF; each found irreducible is divided out *completely* so its
    exact multiplicity is counted by construction.  What remains has
    only even multiplicities, hence zero derivative, hence is a perfect
    square -- recurse on its square root with doubled ``outer_mult``.
    """
    if degree(p) < 1:
        return
    d = derivative(p)
    if d == 0:
        _factor_into(gf2_sqrt(p), outer_mult * 2, factors, rng)
        return
    squarefree = _odd_multiplicity_part(p)
    for product, deg_d in _distinct_degree(squarefree):
        for irred in _equal_degree(product, deg_d, rng):
            mult = 0
            while True:
                quotient, rem = gf2_divmod(p, irred)
                if rem != 0:
                    break
                p = quotient
                mult += 1
            factors[irred] = factors.get(irred, 0) + mult * outer_mult
    _factor_into(p, outer_mult, factors, rng)


def factor_degrees(p: int) -> list[int]:
    """Degrees of the irreducible factors of ``p`` with multiplicity,
    sorted ascending -- the paper's class notation ``{d1, .., dk}``.

    >>> factor_degrees(0b101)  # (x+1)^2
    [1, 1]
    """
    degs: list[int] = []
    for f, mult in factorize(p):
        degs.extend([degree(f)] * mult)
    return sorted(degs)


def is_squarefree(p: int) -> bool:
    """True iff ``p`` has no repeated irreducible factor."""
    d = derivative(p)
    if d == 0:
        return degree(p) < 1
    return degree(gf2_gcd(p, d)) < 1
