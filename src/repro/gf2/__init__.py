"""Polynomial algebra over GF(2).

This subpackage is the mathematical substrate of the reproduction: CRC
generator polynomials are binary polynomials, and everything the paper
does -- factorization classes such as ``{1,3,28}``, primitivity, the
order of ``x`` (which fixes the HD=2 breakpoint), reciprocal-pair
deduplication of the search space -- reduces to arithmetic in GF(2)[x].

Polynomials are represented as Python integers where bit ``i`` is the
coefficient of ``x**i``.  The integer ``0b1011`` is therefore
``x^3 + x + 1``.  Python's arbitrary-precision integers make this exact
for any degree.

Modules
-------
``poly``
    Core arithmetic: multiply, divmod, gcd, modular exponentiation.
``irreducible``
    Rabin irreducibility test and irreducible-polynomial enumeration.
``intfactor``
    Integer factorization (Miller-Rabin + Pollard rho) used to factor
    ``2**d - 1`` when computing multiplicative orders.
``order``
    Multiplicative order of ``x`` modulo a polynomial; primitivity.
``factorize``
    Full factorization in GF(2)[x] (squarefree / distinct-degree /
    equal-degree splitting).
``notation``
    Conversions between the paper's implicit-+1 hex notation, the
    conventional MSB-first notation, reflected notation, exponent
    lists, and factorization-class signatures.
``matpow``
    GF(2) matrix powers of the companion matrix: ``O(r**2 log n)``
    jumps along the syndrome sequence (length-jumping for breakpoint
    bisection and cross-validation).
"""

from repro.gf2.poly import (
    degree,
    gf2_add,
    gf2_mul,
    gf2_divmod,
    gf2_mod,
    gf2_gcd,
    gf2_mulmod,
    gf2_powmod,
    x_pow_mod,
    reciprocal,
    is_palindrome,
)
from repro.gf2.irreducible import is_irreducible, irreducibles
from repro.gf2.matpow import (
    PowerLadder,
    companion_matrix,
    identity_matrix,
    ladder_for,
    mat_mul,
    mat_pow,
    mat_square,
    mat_vec,
)
from repro.gf2.order import order_of_x, is_primitive
from repro.gf2.factorize import factorize, factor_degrees
from repro.gf2.notation import (
    koopman_to_full,
    full_to_koopman,
    full_to_normal,
    normal_to_full,
    full_to_reflected,
    exponents,
    from_exponents,
    poly_str,
    class_signature,
    class_signature_str,
)

__all__ = [
    "degree",
    "gf2_add",
    "gf2_mul",
    "gf2_divmod",
    "gf2_mod",
    "gf2_gcd",
    "gf2_mulmod",
    "gf2_powmod",
    "x_pow_mod",
    "reciprocal",
    "is_palindrome",
    "is_irreducible",
    "irreducibles",
    "PowerLadder",
    "companion_matrix",
    "identity_matrix",
    "ladder_for",
    "mat_mul",
    "mat_pow",
    "mat_square",
    "mat_vec",
    "order_of_x",
    "is_primitive",
    "factorize",
    "factor_degrees",
    "koopman_to_full",
    "full_to_koopman",
    "full_to_normal",
    "normal_to_full",
    "full_to_reflected",
    "exponents",
    "from_exponents",
    "poly_str",
    "class_signature",
    "class_signature_str",
]
