"""Core arithmetic in GF(2)[x] on integer-encoded polynomials.

A polynomial is a non-negative Python ``int`` whose bit ``i`` is the
coefficient of ``x**i``.  Addition is XOR, so polynomials form a vector
space over GF(2); multiplication is carry-less.  These operations are
exact at any degree thanks to Python's big integers.

The zero polynomial is ``0`` and has degree ``-1`` by convention.
"""

from __future__ import annotations


def degree(p: int) -> int:
    """Return the degree of ``p``, or ``-1`` for the zero polynomial.

    >>> degree(0b1011)  # x^3 + x + 1
    3
    >>> degree(1)
    0
    >>> degree(0)
    -1
    """
    return p.bit_length() - 1


def gf2_add(a: int, b: int) -> int:
    """Add (equivalently, subtract) two polynomials over GF(2).

    GF(2) addition of coefficients is XOR, so polynomial addition is a
    bitwise XOR of the encodings.
    """
    return a ^ b


def gf2_mul(a: int, b: int) -> int:
    """Carry-less (polynomial) product of ``a`` and ``b``.

    Runs in O(weight(a)) big-integer shifts; fine for the degrees this
    project handles (a few hundred at most outside of tests).

    >>> gf2_mul(0b11, 0b11)  # (x+1)^2 == x^2 + 1 over GF(2)
    5
    """
    if a == 0 or b == 0:
        return 0
    # Iterate over the set bits of the sparser operand.
    if a.bit_count() > b.bit_count():
        a, b = b, a
    result = 0
    while a:
        low = a & -a
        result ^= b << (low.bit_length() - 1)
        a ^= low
    return result


def gf2_divmod(a: int, b: int) -> tuple[int, int]:
    """Return ``(quotient, remainder)`` of polynomial division ``a / b``.

    Raises ``ZeroDivisionError`` if ``b`` is the zero polynomial.

    The invariant ``a == gf2_add(gf2_mul(quotient, b), remainder)`` and
    ``degree(remainder) < degree(b)`` always holds.
    """
    if b == 0:
        raise ZeroDivisionError("polynomial division by zero")
    db = degree(b)
    quotient = 0
    remainder = a
    while True:
        shift = degree(remainder) - db
        if shift < 0:
            return quotient, remainder
        quotient |= 1 << shift
        remainder ^= b << shift


def gf2_mod(a: int, b: int) -> int:
    """Return ``a mod b`` in GF(2)[x]."""
    if b == 0:
        raise ZeroDivisionError("polynomial division by zero")
    db = degree(b)
    while True:
        shift = degree(a) - db
        if shift < 0:
            return a
        a ^= b << shift


def gf2_gcd(a: int, b: int) -> int:
    """Greatest common divisor of two polynomials (monic; GF(2) polys
    are automatically monic so no normalization is needed).

    >>> gf2_gcd(0b101, 0b11)  # gcd(x^2+1, x+1) == x+1
    3
    """
    while b:
        a, b = b, gf2_mod(a, b)
    return a


def gf2_mulmod(a: int, b: int, m: int) -> int:
    """Return ``(a * b) mod m`` without materializing huge intermediates
    beyond ``degree(a) + degree(b)``."""
    return gf2_mod(gf2_mul(a, b), m)


def gf2_powmod(base: int, exp: int, m: int) -> int:
    """Return ``base**exp mod m`` by square-and-multiply.

    ``exp`` is an ordinary non-negative integer (repetition count), not
    a polynomial.
    """
    if exp < 0:
        raise ValueError("negative exponent")
    result = gf2_mod(1, m)
    base = gf2_mod(base, m)
    while exp:
        if exp & 1:
            result = gf2_mulmod(result, base, m)
        base = gf2_mulmod(base, base, m)
        exp >>= 1
    return result


def x_pow_mod(exp: int, m: int) -> int:
    """Return ``x**exp mod m`` -- the syndrome of a single bit error at
    position ``exp``.

    This is the workhorse of order computation (HD=2 breakpoints): the
    first undetectable 2-bit error spans exactly ``order_of_x(m)`` bit
    positions.
    """
    return gf2_powmod(0b10, exp, m)


def gf2_sqrt(p: int) -> int:
    """Square root of a perfect-square polynomial over GF(2).

    Over GF(2), ``q(x)**2 == q(x**2)``; a perfect square therefore has
    coefficients only at even exponents, and its root is obtained by
    compressing those even-position bits.  Raises ``ValueError`` if
    ``p`` has any odd-exponent coefficient.
    """
    root = 0
    i = 0
    while p:
        if p & 1:
            root |= 1 << i
        if p & 2:
            raise ValueError("polynomial is not a perfect square")
        p >>= 2
        i += 1
    return root


def derivative(p: int) -> int:
    """Formal derivative of ``p`` over GF(2).

    The derivative of ``x**i`` is ``i * x**(i-1)``, and ``i`` reduces
    mod 2: even-exponent terms vanish, odd-exponent terms shift down.
    """
    if p == 0:
        return 0
    # Keep odd-exponent coefficients, shifted down one position.
    mask = int("10" * ((p.bit_length() + 1) // 2), 2)
    return (p & mask) >> 1


def reciprocal(p: int) -> int:
    """Return the reciprocal polynomial ``x**deg(p) * p(1/x)``.

    The encoding is simply the bit-reversal of ``p`` over ``deg(p)+1``
    bits.  Reciprocal pairs have identical error-detection weight
    distributions (Peterson & Weldon), which the paper exploits to
    halve the search space.

    >>> hex(reciprocal(0x104C11DB7))  # CRC-32 <-> its reciprocal
    '0x1db710641'
    """
    if p == 0:
        return 0
    return int(format(p, "b")[::-1], 2)


def is_palindrome(p: int) -> bool:
    """True if ``p`` is self-reciprocal (a bit-palindrome).

    Palindromic polynomials are their own reciprocal and therefore do
    not pair off during reciprocal deduplication -- the reason the
    32-bit search space is "a few more than 2**30" candidates.
    """
    return p == reciprocal(p)


def evaluate_at_one(p: int) -> int:
    """Evaluate ``p(1)`` over GF(2): the parity of the coefficient count.

    ``p(1) == 0`` iff ``(x+1)`` divides ``p`` -- the paper's parity
    property (all polynomials with HD=6 at MTU length turn out to be
    divisible by ``x+1``).
    """
    return p.bit_count() & 1


def divisible_by_x_plus_1(p: int) -> bool:
    """True iff ``(x+1)`` divides ``p`` (even number of non-zero terms)."""
    return p.bit_count() % 2 == 0
