"""Shared NDJSON wire plumbing for every network front end.

Both servers this repo ships -- the CRC service (``repro serve-crc``,
:mod:`repro.service.server`) and the campaign work coordinator
(``repro serve``, :mod:`repro.dist.net`) -- speak the same framing:
one JSON object per ``\\n``-terminated line, UTF-8, no length prefix.
This module is the single home for the parts that used to be
duplicated per server:

* the readline limit (:data:`MAX_LINE`) and its coded violation
  (:class:`FrameError` with code ``oversized-frame``),
* JSON encode/decode with coded parse failures (``bad-json``),
* the drain-aware read (:func:`next_line`): after a drain signal a
  connection keeps listening for :data:`DRAIN_LINGER` seconds so
  requests already on the wire still get answered,
* the port-0 discovery line (:func:`announce`) wrappers parse to
  find an ephemerally bound port.

Transport-level connection classes live in
:mod:`repro.dist.transport`; protocol vocabularies live with their
servers.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

#: Hard per-line byte budget.  A line that exceeds it is a protocol
#: violation (``oversized-frame``), not a bigger buffer: every frame
#: either protocol sends fits comfortably, so an overrun is a peer
#: bug or an attack, and the bound keeps one connection from holding
#: unbounded memory.
MAX_LINE = 1 << 20

#: Seconds a draining connection keeps listening for requests that
#: were already on the wire when the signal landed -- a drain must
#: answer everything the peer sent before it, not just everything
#: the handler happened to have read.
DRAIN_LINGER = 0.25


class FrameError(Exception):
    """A wire-level framing violation.

    ``code`` is the machine-readable discriminant (``bad-json``,
    ``oversized-frame``, ``bad-frame``); the message is for humans.
    ``recoverable`` says whether the stream is still usable: a
    non-JSON line was fully consumed (answer with an error and keep
    reading), an oversized line poisons the buffer (answer and
    close).
    """

    def __init__(self, code: str, message: str, *, recoverable: bool = True) -> None:
        super().__init__(message)
        self.code = code
        self.recoverable = recoverable


def encode_frame(obj: Any) -> bytes:
    """One protocol object -> one compact NDJSON line (with newline)."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode_frame(raw: bytes | str) -> Any:
    """One wire line -> the parsed JSON value.

    Raises :class:`FrameError` (``bad-json``) on undecodable bytes or
    invalid JSON; returns whatever JSON value the line held -- callers
    enforce "must be an object" at their dispatch layer so the error
    can carry protocol context.
    """
    if isinstance(raw, bytes):
        text = raw.decode("utf-8", errors="replace")
    else:
        text = raw
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise FrameError("bad-json", f"not JSON: {exc}") from None


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """The stream's next raw line.

    Returns ``None`` on a clean EOF *or* an EOF that truncated a
    frame mid-line (the peer died while writing -- there is nobody
    left to answer, so both are a close).  Raises :class:`FrameError`
    (``oversized-frame``, unrecoverable) when the peer exceeds the
    reader's line limit.
    """
    try:
        line = await reader.readline()
    except ValueError:  # asyncio's LimitOverrunError surface
        raise FrameError(
            "oversized-frame",
            f"frame exceeds the {MAX_LINE}-byte line limit",
            recoverable=False,
        ) from None
    if not line or not line.endswith(b"\n"):
        return None
    return line


async def next_line(
    reader: asyncio.StreamReader,
    draining: asyncio.Event | None = None,
    *,
    linger: float = DRAIN_LINGER,
) -> bytes | None:
    """The connection's next request line; ``None`` at EOF or once a
    drain has given in-flight data its last chance to arrive.

    With no ``draining`` event this is just :func:`read_frame`.  With
    one, the read races the drain: when the drain fires first the
    read gets ``linger`` seconds to complete before the connection
    gives up -- data the peer sent before the signal deserves an
    answer, data sent after does not block shutdown.
    """
    read = asyncio.ensure_future(read_frame(reader))
    if draining is None:
        return await read
    if not draining.is_set():
        drain = asyncio.ensure_future(draining.wait())
        await asyncio.wait({read, drain}, return_when=asyncio.FIRST_COMPLETED)
        drain.cancel()
    if not read.done():
        try:
            await asyncio.wait_for(read, linger)
        except asyncio.TimeoutError:
            return None
    return read.result()


def announce(kind: str, host: str, port: int) -> None:
    """Print the discovery line wrappers parse (bind port 0, read
    ``<kind>.listening host=H port=P`` from stdout)."""
    print(f"{kind}.listening host={host} port={port}", flush=True)
