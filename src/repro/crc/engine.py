"""CRC computation engines.

Three interchangeable engines over a :class:`~repro.crc.spec.CRCSpec`:

``crc_bitwise``
    The textbook shift-register, one bit at a time.  Slow but obviously
    correct; the reference the faster engines are validated against.
``crc_table``
    Classic byte-at-a-time table lookup (256-entry table).
``crc_slice4``
    Slice-by-4: processes four bytes per step using four tables, the
    technique high-throughput software stacks (and iSCSI initiators)
    actually deploy.

All three produce identical results for every spec (property-tested);
the benchmark ``bench_crc_engines.py`` measures their relative
throughput, standing in for the paper's concern that CRC choice must
remain cheap to compute at line rate.

There is also :class:`BitSerialRegister`, a stateful model of the
hardware LFSR with explicit feedback taps, used to demonstrate the
paper's observation that polynomials with few non-zero coefficients
(0x90022004, 0x80108400) need fewer XOR gates.
"""

from __future__ import annotations

from functools import lru_cache

from repro.crc.spec import CRCSpec


def _reflect(value: int, nbits: int) -> int:
    """Bit-reverse ``value`` over ``nbits`` bits."""
    result = 0
    for _ in range(nbits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def crc_bitwise(spec: CRCSpec, data: bytes) -> int:
    """Compute the CRC of ``data`` one bit at a time.

    This is the direct realization of polynomial division: the register
    holds the running remainder; each message bit enters at the top and
    a set top bit triggers subtraction (XOR) of the generator.
    """
    register = spec.init
    top = spec.topbit
    mask = spec.mask
    for byte in data:
        if spec.refin:
            byte = _reflect(byte, 8)
        for bit_index in range(7, -1, -1):
            in_bit = (byte >> bit_index) & 1
            feedback = ((register >> (spec.width - 1)) & 1) ^ in_bit
            register = (register << 1) & mask
            if feedback:
                register ^= spec.poly
    _ = top
    if spec.refout:
        register = _reflect(register, spec.width)
    return register ^ spec.xorout


def crc_bits(spec: CRCSpec, bits: list[int]) -> int:
    """CRC of an arbitrary *bit sequence* (not byte-aligned).

    The paper reasons about data words of arbitrary bit length (e.g.
    12112 bits); this entry point supports those directly.  Reflection
    parameters are ignored -- bit streams have no byte structure.
    """
    register = spec.init
    mask = spec.mask
    for in_bit in bits:
        feedback = ((register >> (spec.width - 1)) & 1) ^ (in_bit & 1)
        register = (register << 1) & mask
        if feedback:
            register ^= spec.poly
    return register ^ spec.xorout


@lru_cache(maxsize=128)
def make_table(width: int, poly: int, refin: bool) -> tuple[int, ...]:
    """Build the 256-entry lookup table for byte-at-a-time computation.

    For reflected specs the table is built over the reflected
    polynomial so the inner loop needs no per-byte reflection.
    """
    table = []
    if refin:
        poly_r = _reflect(poly, width)
        for byte in range(256):
            crc = byte
            for _ in range(8):
                crc = (crc >> 1) ^ poly_r if crc & 1 else crc >> 1
            table.append(crc)
    else:
        if width < 8:
            raise ValueError("table method requires width >= 8")
        mask = (1 << width) - 1
        top = 1 << (width - 1)
        for byte in range(256):
            crc = byte << (width - 8)
            for _ in range(8):
                crc = ((crc << 1) & mask) ^ (poly if crc & top else 0)
            table.append(crc)
    return tuple(table)


def crc_table(spec: CRCSpec, data: bytes) -> int:
    """Byte-at-a-time table-driven CRC.

    Supports ``width >= 8``.  Matches :func:`crc_bitwise` exactly
    (property-tested in ``tests/crc/test_engines.py``).
    """
    if spec.width < 8:
        # Table method needs at least a byte-wide register here; fall
        # back to the reference engine for narrow CRCs.
        return crc_bitwise(spec, data)
    table = make_table(spec.width, spec.poly, spec.refin)
    mask = spec.mask
    if spec.refin:
        register = _reflect(spec.init, spec.width)
        for byte in data:
            register = (register >> 8) ^ table[(register ^ byte) & 0xFF]
        if not spec.refout:
            register = _reflect(register, spec.width)
    else:
        register = spec.init
        shift = spec.width - 8
        for byte in data:
            register = ((register << 8) & mask) ^ table[((register >> shift) ^ byte) & 0xFF]
        if spec.refout:
            register = _reflect(register, spec.width)
    return register ^ spec.xorout


@lru_cache(maxsize=32)
def _make_slice_tables(
    width: int, poly: int, refin: bool, nslices: int
) -> tuple[tuple[int, ...], ...]:
    """Tables T0..T{n-1} where T{k}[b] advances byte ``b`` through
    ``k`` additional zero bytes -- the slice-by-N construction."""
    t0 = make_table(width, poly, refin)
    tables = [t0]
    for _ in range(nslices - 1):
        prev = tables[-1]
        nxt = []
        if refin:
            for b in range(256):
                c = prev[b]
                nxt.append((c >> 8) ^ t0[c & 0xFF])
        else:
            mask = (1 << width) - 1
            shift = width - 8
            for b in range(256):
                c = prev[b]
                nxt.append(((c << 8) & mask) ^ t0[(c >> shift) & 0xFF])
        tables.append(tuple(nxt))
    return tuple(tables)


def crc_slice4(spec: CRCSpec, data: bytes) -> int:
    """Slice-by-4 CRC for 32-bit reflected specs; falls back to
    :func:`crc_table` otherwise.

    Processes 4 input bytes per iteration with 4 parallel table
    lookups, the standard software technique for multi-gigabit rates.
    """
    if not (spec.width == 32 and spec.refin):
        return crc_table(spec, data)
    t = _make_slice_tables(spec.width, spec.poly, spec.refin, 4)
    t0, t1, t2, t3 = t
    register = _reflect(spec.init, 32)
    n = len(data)
    i = 0
    while i + 4 <= n:
        register ^= data[i] | (data[i + 1] << 8) | (data[i + 2] << 16) | (data[i + 3] << 24)
        register = (
            t3[register & 0xFF]
            ^ t2[(register >> 8) & 0xFF]
            ^ t1[(register >> 16) & 0xFF]
            ^ t0[(register >> 24) & 0xFF]
        )
        i += 4
    table = t0
    while i < n:
        register = (register >> 8) ^ table[(register ^ data[i]) & 0xFF]
        i += 1
    if not spec.refout:
        register = _reflect(register, 32)
    return register ^ spec.xorout


class BitSerialRegister:
    """Explicit hardware-style LFSR model with named feedback taps.

    The paper highlights 0x90022004 and 0x80108400 as having the
    minimum number of non-zero coefficients among the HD=6 / HD=5
    classes, "potentially simplifying high-speed hardware
    implementations".  This class makes that concrete: the
    :attr:`xor_gate_count` of a Galois-configuration LFSR equals the
    number of interior feedback taps.
    """

    def __init__(self, spec: CRCSpec) -> None:
        self.spec = spec
        self.register = spec.init
        # Galois taps: one XOR gate per set coefficient below x^width.
        self.taps = [i for i in range(spec.width) if (spec.poly >> i) & 1]

    @property
    def xor_gate_count(self) -> int:
        """XOR gates of a Galois LFSR realization (interior taps)."""
        return len(self.taps)

    def reset(self) -> None:
        """Return the register to the spec's initial value."""
        self.register = self.spec.init

    def shift_bit(self, in_bit: int) -> None:
        """Clock a single message bit through the register."""
        feedback = ((self.register >> (self.spec.width - 1)) & 1) ^ (in_bit & 1)
        self.register = (self.register << 1) & self.spec.mask
        if feedback:
            self.register ^= self.spec.poly

    def shift_bits(self, bits: list[int]) -> int:
        """Clock a bit sequence; return the current register value."""
        for b in bits:
            self.shift_bit(b)
        return self.register

    def value(self) -> int:
        """Current register contents after output transformations."""
        register = self.register
        if self.spec.refout:
            register = _reflect(register, self.spec.width)
        return register ^ self.spec.xorout
