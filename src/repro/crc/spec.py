"""CRC parameterization.

A CRC in the wild is more than a generator polynomial: initial register
value, input/output bit reflection, and final XOR all vary between
standards (the "Rocksoft model" parameters).  :class:`CRCSpec` captures
them; the engines in :mod:`repro.crc.engine` interpret them uniformly.

Note that none of these presentation parameters affect *error
detection* capability: reflection is a fixed bit permutation and
init/xorout are constant offsets, so the set of undetectable error
patterns is determined by the generator polynomial alone.  That is why
the paper -- and :mod:`repro.hd` -- can ignore them.  A unit test
(``tests/crc/test_presentation_invariance.py``) verifies this claim
empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gf2.poly import degree


@dataclass(frozen=True)
class CRCSpec:
    """Full parameterization of a CRC algorithm (Rocksoft model).

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"CRC-32/IEEE-802.3"``).
    width:
        Number of FCS bits, equal to the generator's degree.
    poly:
        Generator polynomial in *normal* (MSB-first, implicit top term)
        form: bit ``i`` is the coefficient of ``x**i`` for ``i < width``.
        E.g. ``0x04C11DB7`` for IEEE 802.3.
    init:
        Initial shift-register value (e.g. ``0xFFFFFFFF`` for 802.3).
    refin:
        If true, each input byte is processed least-significant-bit
        first (as 802.3 serializes bits on the wire).
    refout:
        If true, the final register is bit-reversed before ``xorout``.
    xorout:
        Final XOR constant (e.g. ``0xFFFFFFFF`` for 802.3).
    check:
        Expected CRC of the ASCII bytes ``b"123456789"`` -- the
        conventional cross-implementation test vector, or ``None`` if
        unknown.
    """

    name: str
    width: int
    poly: int
    init: int = 0
    refin: bool = False
    refout: bool = False
    xorout: int = 0
    check: int | None = None

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be positive")
        mask = (1 << self.width) - 1
        for field in ("poly", "init", "xorout"):
            value = getattr(self, field)
            if value & ~mask:
                raise ValueError(f"{field}={value:#x} exceeds width {self.width}")
        if self.poly & 1 == 0:
            # A generator without the +1 term is x * G'(x); the factor x
            # contributes nothing to error detection and wastes a bit.
            raise ValueError(
                f"poly={self.poly:#x} lacks the +1 term; "
                "not a sensible CRC generator"
            )

    @property
    def mask(self) -> int:
        """Bit mask of ``width`` ones."""
        return (1 << self.width) - 1

    @property
    def topbit(self) -> int:
        """The register's most significant bit."""
        return 1 << (self.width - 1)

    @property
    def kernel_key(self) -> tuple[int, int, bool]:
        """``(width, poly, refin)`` -- the part of the spec that
        determines the raw register recurrence.  Generated kernels
        (:mod:`repro.crc.backends`) are cached under this key: specs
        differing only in ``init``/``refout``/``xorout`` (presentation
        constants applied outside the inner loop) share kernels."""
        return (self.width, self.poly, self.refin)

    @property
    def full_poly(self) -> int:
        """Generator with the implicit ``x**width`` term made explicit,
        as used by :mod:`repro.gf2` and :mod:`repro.hd`."""
        return self.poly | (1 << self.width)

    @property
    def koopman(self) -> int:
        """The paper's implicit-+1 representation."""
        return self.full_poly >> 1

    def plain(self) -> "CRCSpec":
        """The mathematically bare variant: same generator, zero init,
        no reflection, zero xorout.  Its codewords are exactly the
        multiples of the generator polynomial, matching the model the
        HD analysis uses."""
        return CRCSpec(
            name=f"{self.name}/plain",
            width=self.width,
            poly=self.poly,
        )

    def __str__(self) -> str:
        return (
            f"{self.name}: width={self.width} poly={self.poly:#x} "
            f"init={self.init:#x} refin={self.refin} refout={self.refout} "
            f"xorout={self.xorout:#x}"
        )


def spec_from_full_poly(full: int, name: str | None = None, **kwargs) -> CRCSpec:
    """Build a bare :class:`CRCSpec` from a full polynomial encoding.

    >>> spec_from_full_poly(0x104C11DB7).width
    32
    """
    width = degree(full)
    return CRCSpec(
        name=name or f"CRC-{width}/{full & ((1 << width) - 1):#x}",
        width=width,
        poly=full & ((1 << width) - 1),
        **kwargs,
    )
