"""Streaming and compositional CRC computation.

Real protocol stacks rarely see a message as one buffer: they update
CRCs incrementally, splice pre-computed CRCs of fragments together
(scatter/gather, packet coalescing), and patch CRCs after in-place
header rewrites.  This module provides those operations for any
:class:`~repro.crc.spec.CRCSpec`:

* :class:`StreamingCrc` -- the classic ``update()/digest()`` interface,
  running on a generated registry kernel
  (:mod:`repro.crc.backends`) rather than its own copy of the inner
  loop.  (The seed's hand-copied narrow-path loop held a real
  orientation bug: reflected specs with ``width < 8`` stored the
  register in reflected orientation but advanced it through the
  *normal*-orientation reference, then skipped the output reflection
  entirely -- wrong CRCs for any non-palindromic register.)
* :func:`crc_combine` -- zlib-style ``crc32_combine``: merge
  ``crc(A)`` and ``crc(B)`` into ``crc(A || B)`` in O(log len(B))
  using GF(2) matrix exponentiation of the shift operator;
* :func:`shift_operator` / :func:`advance` -- the underlying linear
  algebra: the register-evolution matrix for feeding ``k`` zero bits,
  exposed because the hardware analysis (:mod:`repro.crc.parallel`)
  and the combine trick share it.

All operations agree bit-for-bit with one-shot computation
(property-tested in ``tests/crc/test_stream.py`` and
``tests/crc/test_backends.py``).  The engine-orientation conventions
-- what "raw register" means per spec, and how init/refout/xorout
dress it -- live in :mod:`repro.crc.backends`; this module only adds
the linear-algebra layer on top.
"""

from __future__ import annotations

from functools import lru_cache

from repro.crc.backends import dress, engine_init, get_kernel, undress
from repro.crc.engine import _reflect
from repro.crc.spec import CRCSpec

# Engine-orientation helpers: single implementation in backends; the
# old private names remain as aliases for the linear-algebra callers.
_engine_init = engine_init
_dress = dress
_undress = undress

Matrix = tuple[int, ...]  # column-major: matrix[i] = column i as a bitmask


def mat_vec(matrix: Matrix, vector: int) -> int:
    """Multiply a GF(2) matrix (column bitmasks) by a bit-vector."""
    out = 0
    col = 0
    while vector:
        if vector & 1:
            out ^= matrix[col]
        vector >>= 1
        col += 1
    return out


def mat_mul(a: Matrix, b: Matrix) -> Matrix:
    """GF(2) matrix product ``a @ b`` (both column-major)."""
    return tuple(mat_vec(a, col) for col in b)


def identity(n: int) -> Matrix:
    """The n x n identity."""
    return tuple(1 << i for i in range(n))


def mat_pow(matrix: Matrix, exp: int) -> Matrix:
    """Matrix power by squaring."""
    if exp < 0:
        raise ValueError("negative exponent")
    result = identity(len(matrix))
    base = matrix
    while exp:
        if exp & 1:
            result = mat_mul(base, result)
        base = mat_mul(base, base)
        exp >>= 1
    return result


@lru_cache(maxsize=64)
def shift_operator(width: int, poly: int, refin: bool = False) -> Matrix:
    """The one-zero-bit register evolution matrix, in the engine's own
    orientation: for normal specs the register shifts up with top-bit
    feedback; for reflected specs it shifts down with low-bit feedback
    of the reflected polynomial.  Column ``i`` is the image of basis
    state ``1 << i``."""
    mask = (1 << width) - 1
    cols = []
    if refin:
        poly_r = _reflect(poly, width)
        for i in range(width):
            state = 1 << i
            state = (state >> 1) ^ (poly_r if state & 1 else 0)
            cols.append(state)
    else:
        top = 1 << (width - 1)
        for i in range(width):
            state = 1 << i
            state = ((state << 1) & mask) ^ (poly if state & top else 0)
            cols.append(state)
    return tuple(cols)


def advance(spec: CRCSpec, register: int, zero_bits: int) -> int:
    """Evolve an engine-orientation register through ``zero_bits``
    zero input bits in O(log zero_bits) matrix work."""
    op = mat_pow(shift_operator(spec.width, spec.poly, spec.refin), zero_bits)
    return mat_vec(op, register)


def crc_combine(spec: CRCSpec, crc_a: int, crc_b: int, len_b_bytes: int) -> int:
    """CRC of the concatenation ``A || B`` from ``crc(A)``, ``crc(B)``
    and ``len(B)`` -- without touching the data (zlib's
    ``crc32_combine``, generalized to any spec).

    Linearity argument: for fixed data ``B`` the register map is
    affine, ``out = L(in) ^ c_B`` with ``L`` the advance-by-len(B)
    operator.  ``crc(B)`` gives ``c_B = raw_B ^ L(init)``, so
    ``raw(A||B) = L(raw_A) ^ raw_B ^ L(init)``.

    >>> from repro.crc.catalog import get_spec
    >>> from repro.crc.engine import crc_bitwise
    >>> s = get_spec("CRC-32/IEEE-802.3")
    >>> crc_combine(s, crc_bitwise(s, b"hello "), crc_bitwise(s, b"world"), 5) \\
    ...     == crc_bitwise(s, b"hello world")
    True
    """
    if len_b_bytes < 0:
        raise ValueError("negative length")
    if len_b_bytes == 0:
        return crc_a
    raw_a = undress(spec, crc_a)
    raw_b = undress(spec, crc_b)
    combined = (
        advance(spec, raw_a, 8 * len_b_bytes)
        ^ raw_b
        ^ advance(spec, engine_init(spec), 8 * len_b_bytes)
    )
    return dress(spec, combined)


class StreamingCrc:
    """Incremental CRC with the familiar update()/digest() shape.

    The state is one raw engine-orientation register advanced by a
    generated registry kernel -- the same kernels the one-shot facades
    use, so the streaming path cannot drift from them.  ``backend``
    selects the kernel by registry name (default: the registry's
    table-driven default).

    ``digest()`` may be called at any point; the stream can continue
    afterwards.  ``copy()`` forks the state (useful for trial
    checksums of speculative suffixes).

    >>> from repro.crc.catalog import get_spec
    >>> s = get_spec("CRC-32/IEEE-802.3")
    >>> h = StreamingCrc(s)
    >>> h.update(b"123"); h.update(b"456789")
    >>> h.digest() == 0xCBF43926
    True
    """

    def __init__(self, spec: CRCSpec, backend: str = "auto") -> None:
        self.spec = spec
        self._process = get_kernel(spec, backend).process
        self._register = engine_init(spec)
        self.length = 0

    def update(self, data: bytes) -> None:
        """Absorb more message bytes."""
        self._register = self._process(self._register, data)
        self.length += len(data)

    def digest(self) -> int:
        """CRC of everything absorbed so far."""
        return dress(self.spec, self._register)

    def copy(self) -> "StreamingCrc":
        clone = StreamingCrc.__new__(StreamingCrc)
        clone.spec = self.spec
        clone._process = self._process
        clone._register = self._register
        clone.length = self.length
        return clone
