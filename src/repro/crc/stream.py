"""Streaming and compositional CRC computation.

Real protocol stacks rarely see a message as one buffer: they update
CRCs incrementally, splice pre-computed CRCs of fragments together
(scatter/gather, packet coalescing), and patch CRCs after in-place
header rewrites.  This module provides those operations for any
:class:`~repro.crc.spec.CRCSpec`:

* :class:`StreamingCrc` -- the classic ``update()/digest()`` interface;
* :func:`crc_combine` -- zlib-style ``crc32_combine``: merge
  ``crc(A)`` and ``crc(B)`` into ``crc(A || B)`` in O(log len(B))
  using GF(2) matrix exponentiation of the shift operator;
* :func:`shift_operator` / :func:`advance` -- the underlying linear
  algebra: the register-evolution matrix for feeding ``k`` zero bits,
  exposed because the hardware analysis (:mod:`repro.crc.parallel`)
  and the combine trick share it.

All operations agree bit-for-bit with one-shot computation
(property-tested in ``tests/crc/test_stream.py``).
"""

from __future__ import annotations

from functools import lru_cache

from repro.crc.engine import _reflect, crc_bitwise, crc_table
from repro.crc.spec import CRCSpec

Matrix = tuple[int, ...]  # column-major: matrix[i] = column i as a bitmask


def mat_vec(matrix: Matrix, vector: int) -> int:
    """Multiply a GF(2) matrix (column bitmasks) by a bit-vector."""
    out = 0
    col = 0
    while vector:
        if vector & 1:
            out ^= matrix[col]
        vector >>= 1
        col += 1
    return out


def mat_mul(a: Matrix, b: Matrix) -> Matrix:
    """GF(2) matrix product ``a @ b`` (both column-major)."""
    return tuple(mat_vec(a, col) for col in b)


def identity(n: int) -> Matrix:
    """The n x n identity."""
    return tuple(1 << i for i in range(n))


def mat_pow(matrix: Matrix, exp: int) -> Matrix:
    """Matrix power by squaring."""
    if exp < 0:
        raise ValueError("negative exponent")
    result = identity(len(matrix))
    base = matrix
    while exp:
        if exp & 1:
            result = mat_mul(base, result)
        base = mat_mul(base, base)
        exp >>= 1
    return result


@lru_cache(maxsize=64)
def shift_operator(width: int, poly: int, refin: bool = False) -> Matrix:
    """The one-zero-bit register evolution matrix, in the engine's own
    orientation: for normal specs the register shifts up with top-bit
    feedback; for reflected specs it shifts down with low-bit feedback
    of the reflected polynomial.  Column ``i`` is the image of basis
    state ``1 << i``."""
    mask = (1 << width) - 1
    cols = []
    if refin:
        poly_r = _reflect(poly, width)
        for i in range(width):
            state = 1 << i
            state = (state >> 1) ^ (poly_r if state & 1 else 0)
            cols.append(state)
    else:
        top = 1 << (width - 1)
        for i in range(width):
            state = 1 << i
            state = ((state << 1) & mask) ^ (poly if state & top else 0)
            cols.append(state)
    return tuple(cols)


def advance(spec: CRCSpec, register: int, zero_bits: int) -> int:
    """Evolve an engine-orientation register through ``zero_bits``
    zero input bits in O(log zero_bits) matrix work."""
    op = mat_pow(shift_operator(spec.width, spec.poly, spec.refin), zero_bits)
    return mat_vec(op, register)


def _engine_init(spec: CRCSpec) -> int:
    """The initial register value in engine orientation."""
    return _reflect(spec.init, spec.width) if spec.refin else spec.init


def _undress(spec: CRCSpec, crc: int) -> int:
    """Invert xorout/refout to recover the engine-orientation register."""
    register = crc ^ spec.xorout
    if spec.refout != spec.refin:
        register = _reflect(register, spec.width)
    return register


def _dress(spec: CRCSpec, register: int) -> int:
    """Apply refout/xorout to an engine-orientation register."""
    if spec.refout != spec.refin:
        register = _reflect(register, spec.width)
    return register ^ spec.xorout


def crc_combine(spec: CRCSpec, crc_a: int, crc_b: int, len_b_bytes: int) -> int:
    """CRC of the concatenation ``A || B`` from ``crc(A)``, ``crc(B)``
    and ``len(B)`` -- without touching the data (zlib's
    ``crc32_combine``, generalized to any spec).

    Linearity argument: for fixed data ``B`` the register map is
    affine, ``out = L(in) ^ c_B`` with ``L`` the advance-by-len(B)
    operator.  ``crc(B)`` gives ``c_B = raw_B ^ L(init)``, so
    ``raw(A||B) = L(raw_A) ^ raw_B ^ L(init)``.

    >>> from repro.crc.catalog import get_spec
    >>> s = get_spec("CRC-32/IEEE-802.3")
    >>> crc_combine(s, crc_bitwise(s, b"hello "), crc_bitwise(s, b"world"), 5) \\
    ...     == crc_bitwise(s, b"hello world")
    True
    """
    if len_b_bytes < 0:
        raise ValueError("negative length")
    if len_b_bytes == 0:
        return crc_a
    raw_a = _undress(spec, crc_a)
    raw_b = _undress(spec, crc_b)
    combined = (
        advance(spec, raw_a, 8 * len_b_bytes)
        ^ raw_b
        ^ advance(spec, _engine_init(spec), 8 * len_b_bytes)
    )
    return _dress(spec, combined)


class StreamingCrc:
    """Incremental CRC with the familiar update()/digest() shape.

    ``digest()`` may be called at any point; the stream can continue
    afterwards.  ``copy()`` forks the state (useful for trial
    checksums of speculative suffixes).

    >>> from repro.crc.catalog import get_spec
    >>> s = get_spec("CRC-32/IEEE-802.3")
    >>> h = StreamingCrc(s)
    >>> h.update(b"123"); h.update(b"456789")
    >>> h.digest() == 0xCBF43926
    True
    """

    def __init__(self, spec: CRCSpec) -> None:
        self.spec = spec
        self._register = (
            _reflect(spec.init, spec.width) if spec.refin else spec.init
        )
        self.length = 0

    def update(self, data: bytes) -> None:
        """Absorb more message bytes."""
        spec = self.spec
        if spec.width < 8:
            # keep narrow CRCs on the bit-serial path
            plain = CRCSpec(
                name=spec.name, width=spec.width, poly=spec.poly,
                init=self._register, refin=spec.refin,
            )
            raw = crc_bitwise(plain, data)
            self._register = raw
            self.length += len(data)
            return
        from repro.crc.engine import make_table

        table = make_table(spec.width, spec.poly, spec.refin)
        register = self._register
        if spec.refin:
            for byte in data:
                register = (register >> 8) ^ table[(register ^ byte) & 0xFF]
        else:
            shift = spec.width - 8
            mask = spec.mask
            for byte in data:
                register = ((register << 8) & mask) ^ table[
                    ((register >> shift) ^ byte) & 0xFF
                ]
        self._register = register
        self.length += len(data)

    def digest(self) -> int:
        """CRC of everything absorbed so far."""
        spec = self.spec
        register = self._register
        if spec.refin and not spec.refout:
            register = _reflect(register, spec.width)
        elif spec.refout and not spec.refin:
            register = _reflect(register, spec.width)
        return register ^ spec.xorout

    def copy(self) -> "StreamingCrc":
        clone = StreamingCrc(self.spec)
        clone._register = self._register
        clone.length = self.length
        return clone
