"""CRC computation substrate.

Implements parameterized CRC calculation the way real network stacks
do -- bit-serial, table-driven, and slice-by-4 engines over a common
:class:`~repro.crc.spec.CRCSpec` -- plus Frame Check Sequence (FCS)
handling and codeword membership tests.

The HD analysis in :mod:`repro.hd` reasons about the *codeword set*
{ M(x)*x^r + FCS(M) }, which by CRC linearity is exactly the set of
polynomial multiples of the generator; this package provides the
concrete encoders whose behaviour those theorems describe, and the
catalog of the paper's polynomials.
"""

from repro.crc.spec import CRCSpec
from repro.crc.engine import (
    crc_bitwise,
    crc_table,
    crc_slice4,
    make_table,
    BitSerialRegister,
)
from repro.crc.codeword import (
    append_fcs,
    check_fcs,
    is_codeword,
    codeword_from_message,
    syndrome_of_bits,
)
from repro.crc.catalog import (
    CATALOG,
    PAPER_POLYS,
    PaperPoly,
    get_spec,
    paper_poly,
)

__all__ = [
    "CRCSpec",
    "crc_bitwise",
    "crc_table",
    "crc_slice4",
    "make_table",
    "BitSerialRegister",
    "append_fcs",
    "check_fcs",
    "is_codeword",
    "codeword_from_message",
    "syndrome_of_bits",
    "CATALOG",
    "PAPER_POLYS",
    "PaperPoly",
    "get_spec",
    "paper_poly",
]
