"""CRC computation substrate.

Implements parameterized CRC calculation the way real network stacks
do -- a bit-serial reference plus per-spec *generated* table,
slice-by-N and numpy kernels (:mod:`repro.crc.backends`) over a common
:class:`~repro.crc.spec.CRCSpec` -- plus Frame Check Sequence (FCS)
handling and codeword membership tests.

The HD analysis in :mod:`repro.hd` reasons about the *codeword set*
{ M(x)*x^r + FCS(M) }, which by CRC linearity is exactly the set of
polynomial multiples of the generator; this package provides the
concrete encoders whose behaviour those theorems describe, and the
catalog of the paper's polynomials.
"""

from repro.crc.spec import CRCSpec
from repro.crc.engine import (
    crc_bitwise,
    crc_table,
    crc_slice4,
    crc_slice8,
    make_table,
    BitSerialRegister,
)
from repro.crc.backends import (
    BackendMismatch,
    available_backends,
    crc_compute,
    get_kernel,
    kernels_for,
    register_backend,
)
from repro.crc.codeword import (
    append_fcs,
    check_fcs,
    is_codeword,
    codeword_from_message,
    syndrome_of_bits,
)
from repro.crc.catalog import (
    CATALOG,
    PAPER_POLYS,
    PaperPoly,
    get_spec,
    paper_poly,
)

__all__ = [
    "CRCSpec",
    "crc_bitwise",
    "crc_table",
    "crc_slice4",
    "crc_slice8",
    "make_table",
    "BitSerialRegister",
    "BackendMismatch",
    "available_backends",
    "crc_compute",
    "get_kernel",
    "kernels_for",
    "register_backend",
    "append_fcs",
    "check_fcs",
    "is_codeword",
    "codeword_from_message",
    "syndrome_of_bits",
    "CATALOG",
    "PAPER_POLYS",
    "PaperPoly",
    "get_spec",
    "paper_poly",
]
