"""Spec-driven CRC kernel codegen and the backend registry.

The paper's premise is that polynomial *choice* must stay decoupled
from implementation cost: any generator should run at line rate
through table/slice kernels.  Hand-maintaining one inner loop per
engine per orientation (the seed's ``crc_table`` / ``crc_slice4`` /
``StreamingCrc.update`` triplication) is how orientation bugs breed,
so this module *generates* the kernels instead -- the software analog
of amaranth's per-spec derivation of parallel CRC update logic.

Given any :class:`~repro.crc.spec.CRCSpec`, the registry builds, at
first use and cached per ``(width, poly, refin)``:

``bitwise``
    The bit-serial reference loop, emitted in the register's own
    orientation (reflected registers shift down, normal shift up).
``bytewise``
    Classic 256-entry byte-table kernel.  *Any* width: narrow normal
    registers (width < 8) are kept left-aligned in a byte-wide working
    register internally, so the table method no longer has a width
    floor.
``slice4`` / ``slice8``
    Slice-by-N: N input bytes per iteration through N tables, for
    *every* spec -- not just 32-bit reflected ones.  The generator is
    unrolled with the spec's shifts and masks baked in as constants.
``wordwise``
    A numpy kernel (registered only when numpy is importable) that
    folds the whole buffer in ``O(log n)`` vectorized rounds: per-byte
    contributions are gathered through the byte table in one shot,
    then adjacent blocks are combined with byte-sliced applications of
    the advance-by-2^t-bytes operator -- the Fast-CRCs decomposition
    (Nguyen) driven entirely by precomputed lookup planes.

Every generated kernel is **differential-tested against the bit-serial
reference on construction** (several data vectors, several register
values, plus a chunk-split consistency check); a kernel that disagrees
raises :class:`BackendMismatch` instead of ever being served.

All kernels share one state convention, the *engine orientation*: the
raw register is bit-reversed for ``refin`` specs and natural
otherwise, matching :func:`repro.crc.stream.shift_operator`.  The
helpers :func:`engine_init` / :func:`dress` / :func:`undress` move
between that raw state and the dressed (init/refout/xorout) CRC value;
``StreamingCrc``, ``crc_combine`` and the one-shot facades in
:mod:`repro.crc.engine` all build on them, so there is exactly one
place where orientation decisions live.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from repro.crc.engine import _reflect, crc_bitwise
from repro.crc.spec import CRCSpec

try:  # numpy is optional for the crc package; gate, don't require
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None


class BackendMismatch(RuntimeError):
    """A generated kernel disagreed with the bit-serial reference.

    Raised at *construction* time -- a kernel is differential-tested
    before it is ever served, so consumers can assume every registered
    backend is exact.
    """


class Kernel:
    """One generated CRC kernel: a raw engine-orientation update.

    ``process(register, data) -> register`` advances a raw register
    (engine orientation, see module docstring) through ``data``; it is
    pure and restartable, so streaming, combining and one-shot use are
    all the same call.  ``source`` keeps the generated code for
    introspection and tests.
    """

    __slots__ = ("name", "process", "source")

    def __init__(
        self,
        name: str,
        process: Callable[[int, bytes], int],
        source: str,
    ) -> None:
        self.name = name
        self.process = process
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel {self.name}>"


# ---------------------------------------------------------------------------
# orientation helpers (the single home of dress/undress decisions)
# ---------------------------------------------------------------------------


def engine_init(spec: CRCSpec) -> int:
    """The spec's initial register value in engine orientation."""
    return _reflect(spec.init, spec.width) if spec.refin else spec.init


def dress(spec: CRCSpec, register: int) -> int:
    """Apply refout/xorout to an engine-orientation register."""
    if spec.refout != spec.refin:
        register = _reflect(register, spec.width)
    return register ^ spec.xorout


def undress(spec: CRCSpec, crc: int) -> int:
    """Invert xorout/refout to recover the engine-orientation register."""
    register = crc ^ spec.xorout
    if spec.refout != spec.refin:
        register = _reflect(register, spec.width)
    return register


# ---------------------------------------------------------------------------
# table construction (any width, both orientations)
# ---------------------------------------------------------------------------


def _aligned(width: int) -> tuple[int, int]:
    """Working width and left-alignment shift for normal registers.

    Narrow normal registers (width < 8) are computed left-aligned in a
    byte-wide working register over ``poly << (8 - width)`` -- the
    standard technique that makes byte-table and slice kernels
    width-uniform.  Reflected registers never need alignment.
    """
    work = max(width, 8)
    return work, work - width


@lru_cache(maxsize=256)
def _byte_table(width: int, poly: int, refin: bool) -> tuple[int, ...]:
    """The 256-entry byte table in engine orientation, any width."""
    table = []
    if refin:
        poly_r = _reflect(poly, width)
        for byte in range(256):
            crc = byte
            for _ in range(8):
                crc = (crc >> 1) ^ poly_r if crc & 1 else crc >> 1
            table.append(crc)
    else:
        work, align = _aligned(width)
        poly_w = poly << align
        mask = (1 << work) - 1
        top = 1 << (work - 1)
        for byte in range(256):
            crc = byte << (work - 8)
            for _ in range(8):
                crc = ((crc << 1) & mask) ^ (poly_w if crc & top else 0)
            table.append(crc)
    return tuple(table)


@lru_cache(maxsize=64)
def _slice_tables(
    width: int, poly: int, refin: bool, nslices: int
) -> tuple[tuple[int, ...], ...]:
    """Tables T0..T{n-1}: T{k}[b] advances byte ``b`` through ``k``
    additional zero bytes -- the slice-by-N construction, built over
    the (working-width) byte table."""
    t0 = _byte_table(width, poly, refin)
    tables = [t0]
    if refin:
        for _ in range(nslices - 1):
            prev = tables[-1]
            tables.append(
                tuple((c >> 8) ^ t0[c & 0xFF] for c in prev)
            )
    else:
        work, _ = _aligned(width)
        mask = (1 << work) - 1
        shift = work - 8
        for _ in range(nslices - 1):
            prev = tables[-1]
            tables.append(
                tuple(((c << 8) & mask) ^ t0[(c >> shift) & 0xFF] for c in prev)
            )
    return tuple(tables)


# ---------------------------------------------------------------------------
# kernel codegen
# ---------------------------------------------------------------------------


def _compile(name: str, source: str, namespace: dict) -> Kernel:
    """Compile generated kernel source and wrap it as a :class:`Kernel`."""
    scope = dict(namespace)
    exec(compile(source, f"<crc-kernel:{name}>", "exec"), scope)
    return Kernel(name, scope["_process"], source)


def _gen_bitwise(width: int, poly: int, refin: bool) -> Kernel:
    """The bit-serial loop in engine orientation (the reference's twin,
    emitted so the registry's slowest backend shares the raw-register
    calling convention of the fast ones)."""
    if refin:
        poly_r = _reflect(poly, width)
        source = (
            "def _process(register, data):\n"
            "    for byte in data:\n"
            "        for _ in range(8):\n"
            "            feedback = (register ^ byte) & 1\n"
            "            register >>= 1\n"
            "            byte >>= 1\n"
            "            if feedback:\n"
            f"                register ^= {poly_r:#x}\n"
            "    return register\n"
        )
    else:
        source = (
            "def _process(register, data):\n"
            "    for byte in data:\n"
            "        for i in range(7, -1, -1):\n"
            f"            feedback = ((register >> {width - 1}) ^ (byte >> i)) & 1\n"
            f"            register = (register << 1) & {(1 << width) - 1:#x}\n"
            "            if feedback:\n"
            f"                register ^= {poly:#x}\n"
            "    return register\n"
        )
    return _compile("bitwise", source, {})


def _gen_bytewise(width: int, poly: int, refin: bool) -> Kernel:
    """Byte-at-a-time table kernel, any width."""
    table = _byte_table(width, poly, refin)
    if refin:
        step = (
            "register = _t[register ^ byte]"
            if width <= 8
            else "register = (register >> 8) ^ _t[(register ^ byte) & 0xFF]"
        )
        source = (
            "def _process(register, data, _t=_T0):\n"
            "    for byte in data:\n"
            f"        {step}\n"
            "    return register\n"
        )
    else:
        work, align = _aligned(width)
        mask = (1 << work) - 1
        if work == 8:
            step = "register = _t[register ^ byte]"
        else:
            step = (
                f"register = ((register << 8) & {mask:#x}) "
                f"^ _t[((register >> {work - 8}) ^ byte) & 0xFF]"
            )
        enter = f"    register <<= {align}\n" if align else ""
        leave = f"register >> {align}" if align else "register"
        source = (
            "def _process(register, data, _t=_T0):\n"
            f"{enter}"
            "    for byte in data:\n"
            f"        {step}\n"
            f"    return {leave}\n"
        )
    return _compile("bytewise", source, {"_T0": table})


def _gen_slice(width: int, poly: int, refin: bool, n: int) -> Kernel:
    """Slice-by-``n`` kernel: ``n`` bytes per iteration through ``n``
    tables, any width and orientation.  Correctness rests on linearity:
    the one-byte step applied ``n`` times expands into one table term
    per input byte plus the register's own advance, which the
    generator unrolls with all shifts baked in."""
    tables = _slice_tables(width, poly, refin, n)
    names = {f"_t{k}": tables[k] for k in range(n)}
    if refin:
        terms = []
        for k in range(n):
            reg = "register" if k == 0 else f"(register >> {8 * k})"
            terms.append(f"_t{n - 1 - k}[({reg} ^ data[i + {k}]) & 0xFF]")
        if width > 8 * n:
            terms.insert(0, f"(register >> {8 * n})")
        body = (
            f"        register = ({' ^ '.join(terms)})\n"
        )
        tail = (
            "    while i < n:\n"
            "        register = (register >> 8) ^ _t0[(register ^ data[i]) & 0xFF]\n"
            "        i += 1\n"
        )
        enter = leave = None
    else:
        work, align = _aligned(width)
        mask = (1 << work) - 1
        d = work - 8 * n
        if d > 0:
            lead = [f"((register << {8 * n}) & {mask:#x})"]
            v = f"(register >> {d})"
        else:
            lead = []
            v = "register" if d == 0 else f"(register << {-d})"
        terms = list(lead)
        for k in range(n):
            shift = 8 * (n - 1 - k)
            vk = v if shift == 0 else f"({v} >> {shift})"
            terms.append(f"_t{n - 1 - k}[({vk} ^ data[i + {k}]) & 0xFF]")
        body = f"        register = ({' ^ '.join(terms)})\n"
        if work == 8:
            tail_step = "register = _t0[register ^ data[i]]"
        else:
            tail_step = (
                f"register = ((register << 8) & {mask:#x}) "
                f"^ _t0[((register >> {work - 8}) ^ data[i]) & 0xFF]"
            )
        tail = (
            "    while i < n:\n"
            f"        {tail_step}\n"
            "        i += 1\n"
        )
        enter = f"    register <<= {align}\n" if align else None
        leave = f"    return register >> {align}\n" if align else None
    source = (
        f"def _process(register, data, {', '.join(f'{k}={k}' for k in names)}):\n"
        + (enter or "")
        + "    n = len(data)\n"
        "    i = 0\n"
        f"    while i + {n} <= n:\n"
        + body
        + f"        i += {n}\n"
        + tail
        + (leave or "    return register\n")
    )
    return _compile(f"slice{n}", source, names)


def _gen_wordwise(width: int, poly: int, refin: bool, bytewise: Kernel):
    """Numpy log-fold kernel: per-byte contributions in one gather,
    then ``O(log n)`` rounds of vectorized block combining.

    Linearity gives ``raw(M) = A_len(register) ^ C(M)`` where ``A_k``
    advances through ``k`` zero bytes and ``C`` is the zero-register
    contribution of the data.  ``C`` is computed by a binary reduction:
    adjacent blocks combine as ``A_s(left) ^ right``, with ``A_{2^t}``
    applied to a whole *array* of states via ``ceil(width/8)``
    byte-sliced 256-entry lookup planes (built once per level by
    composing the previous level with itself).  Zero bytes contribute
    nothing, so buffers pad at the *front* for free.
    """
    if _np is None or width > 64:
        return None
    np = _np
    nb = (width + 7) // 8
    mask = (1 << width) - 1
    process_byte = bytewise.process

    contrib = np.array(
        [process_byte(0, bytes([b])) for b in range(256)], dtype=np.uint64
    )
    # level t holds the byte-sliced planes of A_{2^t} (advance 2^t bytes)
    level0 = [
        np.array(
            [process_byte((b << (8 * k)) & mask, b"\x00") for b in range(256)],
            dtype=np.uint64,
        )
        for k in range(nb)
    ]
    levels = [level0]
    shifts = [np.uint64(8 * k) for k in range(nb)]
    low = np.uint64(0xFF)

    def _apply_vec(planes, states):
        out = planes[0][states & low]
        for k in range(1, nb):
            out ^= planes[k][(states >> shifts[k]) & low]
        return out

    def _level(t: int):
        while len(levels) <= t:
            prev = levels[-1]
            levels.append([_apply_vec(prev, prev[k]) for k in range(nb)])
        return levels[t]

    def _process(register: int, data: bytes) -> int:
        n = len(data)
        if n == 0:
            return register
        vals = contrib[np.frombuffer(data, dtype=np.uint8)]
        size = 1 << (n - 1).bit_length()
        if size != n:
            padded = np.zeros(size, dtype=np.uint64)
            padded[size - n:] = vals
            vals = padded
        t = 0
        while len(vals) > 1:
            planes = _level(t)
            vals = _apply_vec(planes, vals[0::2]) ^ vals[1::2]
            t += 1
        out = int(vals[0])
        # advance the incoming register through n bytes, binary-split
        t = 0
        while n:
            if n & 1:
                planes = _level(t)
                acc = 0
                for k in range(nb):
                    acc ^= int(planes[k][(register >> (8 * k)) & 0xFF])
                register = acc
            n >>= 1
            t += 1
        return register ^ out

    source = (
        "# numpy log-fold kernel: contrib gather + per-level byte-sliced\n"
        f"# application planes of A_(2^t) for width={width} poly={poly:#x} "
        f"refin={refin} (see _gen_wordwise)\n"
    )
    return Kernel("wordwise", _process, source)


# ---------------------------------------------------------------------------
# construction-time differential testing
# ---------------------------------------------------------------------------

#: Data vectors every generated kernel must agree on with the
#: bit-serial reference before it is served.
_PROBE_VECTORS = (
    b"",
    b"\x00",
    b"123456789",
    bytes(range(64)),
    bytes((i * 131 + 89) & 0xFF for i in range(251)),
)


def _probe_inits(width: int) -> tuple[int, ...]:
    """Register values the differential test starts from: zero, all
    ones, and a bit-asymmetric constant so orientation mistakes cannot
    hide behind palindromic registers."""
    mask = (1 << width) - 1
    return tuple({0, mask, 0x5C17_93A6_5C17_93A6 & mask})


def _reference(width: int, poly: int, refin: bool) -> dict:
    """Expected raw registers per (init, vector), from the bit-serial
    reference: a probe spec with ``refout == refin`` and zero xorout
    makes ``crc_bitwise`` return the engine-orientation register."""
    out = {}
    for init in _probe_inits(width):
        probe = CRCSpec(
            name="probe", width=width, poly=poly,
            init=init, refin=refin, refout=refin,
        )
        start = _reflect(init, width) if refin else init
        for data in _PROBE_VECTORS:
            out[(start, data)] = crc_bitwise(probe, data)
    return out


def _verify(width: int, poly: int, refin: bool, kernel: Kernel, ref: dict) -> Kernel:
    """Differential-test a kernel against the reference; raise
    :class:`BackendMismatch` on the first disagreement."""
    for (start, data), want in ref.items():
        got = kernel.process(start, data)
        if got != want:
            raise BackendMismatch(
                f"{kernel.name} kernel for width={width} poly={poly:#x} "
                f"refin={refin} computed {got:#x}, reference says {want:#x} "
                f"(register {start:#x}, {len(data)} bytes)"
            )
    # restartability: split processing must equal one-shot
    long = _PROBE_VECTORS[-1]
    start = next(iter(_probe_inits(width)))
    mid = kernel.process(start, long[:97])
    if kernel.process(mid, long[97:]) != kernel.process(start, long):
        raise BackendMismatch(
            f"{kernel.name} kernel for width={width} poly={poly:#x} "
            f"refin={refin} is not restartable across a chunk boundary"
        )
    return kernel


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

#: Builders in canonical order; each maps (width, poly, refin) to a
#: Kernel or ``None`` when the backend cannot serve the spec (e.g. the
#: numpy kernel without numpy).  Extendable via :func:`register_backend`.
_BUILDERS: dict[str, Callable[[int, int, bool], "Kernel | None"]] = {
    "bitwise": _gen_bitwise,
    "bytewise": _gen_bytewise,
    "slice4": lambda w, p, r: _gen_slice(w, p, r, 4),
    "slice8": lambda w, p, r: _gen_slice(w, p, r, 8),
    "wordwise": lambda w, p, r: _gen_wordwise(w, p, r, _gen_bytewise(w, p, r)),
}

_KERNELS: dict[tuple[int, int, bool], dict[str, Kernel]] = {}

#: Table-driven default for streaming and small one-shot inputs.
DEFAULT_BACKEND = "slice8"
#: One-shot buffers at least this long prefer the numpy kernel.
WORDWISE_CUTOVER = 512


def register_backend(
    name: str, builder: Callable[[int, int, bool], "Kernel | None"]
) -> None:
    """Register an additional kernel builder.  The builder receives
    ``(width, poly, refin)`` and returns a :class:`Kernel` (raw
    engine-orientation ``process``) or ``None`` if unsupported; its
    output is differential-tested like the built-ins.  Registering
    invalidates the per-spec kernel cache."""
    _BUILDERS[name] = builder
    _KERNELS.clear()


def kernels_for(spec: CRCSpec) -> dict[str, Kernel]:
    """All kernels generated (and differential-tested) for a spec's
    :attr:`~repro.crc.spec.CRCSpec.kernel_key`, keyed by backend name.
    Specs differing only in presentation constants share kernels."""
    key = spec.kernel_key
    cached = _KERNELS.get(key)
    if cached is None:
        ref = _reference(*key)
        cached = {}
        for name, builder in _BUILDERS.items():
            kernel = builder(*key)
            if kernel is not None:
                cached[name] = _verify(*key, kernel, ref)
        _KERNELS[key] = cached
    return cached


def available_backends(spec: CRCSpec) -> tuple[str, ...]:
    """Backend names the registry can serve for this spec, in
    canonical order."""
    return tuple(kernels_for(spec))


def get_kernel(spec: CRCSpec, backend: str = "auto") -> Kernel:
    """Look up one generated kernel.  ``"auto"`` selects the default
    table-driven kernel (:data:`DEFAULT_BACKEND`), which is the right
    choice for streaming; one-shot large-buffer callers should prefer
    :func:`crc_compute`, which also considers the numpy kernel."""
    kernels = kernels_for(spec)
    if backend == "auto":
        backend = DEFAULT_BACKEND if DEFAULT_BACKEND in kernels else "bytewise"
    try:
        return kernels[backend]
    except KeyError:
        raise KeyError(
            f"no {backend!r} backend for {spec.name}; "
            f"available: {sorted(kernels)}"
        ) from None


def crc_compute(spec: CRCSpec, data: bytes, backend: str = "auto") -> int:
    """One-shot dressed CRC through a registry kernel.

    ``"auto"`` picks the numpy word-at-a-time kernel for buffers of at
    least :data:`WORDWISE_CUTOVER` bytes when numpy is present, the
    default table kernel otherwise.

    >>> from repro.crc.catalog import get_spec
    >>> crc_compute(get_spec("CRC-32/IEEE-802.3"), b"123456789") == 0xCBF43926
    True
    """
    kernels = kernels_for(spec)
    if backend == "auto":
        if len(data) >= WORDWISE_CUTOVER and "wordwise" in kernels:
            backend = "wordwise"
        else:
            backend = DEFAULT_BACKEND if DEFAULT_BACKEND in kernels else "bytewise"
    kernel = get_kernel(spec, backend)
    return dress(spec, kernel.process(engine_init(spec), data))


# ---------------------------------------------------------------------------
# batched raw-register primitive (shared with the screening kernels)
# ---------------------------------------------------------------------------


def lfsr_sweep_batched(out, acc, g_arr, r: int, start: int, stop: int) -> None:
    """Fill ``out[:, start:stop]`` from ``acc`` -- the raw MSB-first
    LFSR recurrence ``acc = (acc << 1) ^ (top_set ? g : 0)`` run across
    a whole batch of generators per position.

    This is the registry's raw numpy register primitive: the batched
    screening syndrome builder (:mod:`repro.hd.batched`) routes its
    ``(B, N)`` table construction through it, so the screening path and
    the CRC kernels share one implementation of the recurrence.  The
    recurrence is branch-free: after the shift the only bit at or above
    ``r`` is bit ``r`` itself, so the feedback predicate needs no mask.
    """
    if _np is None:  # pragma: no cover - numpy-less installs
        raise RuntimeError("lfsr_sweep_batched requires numpy")
    np = _np
    r_u = np.uint64(r)
    one = np.uint64(1)
    tmp = np.empty_like(acc)
    for i in range(start, stop):
        out[:, i] = acc
        np.left_shift(acc, one, out=acc)
        np.right_shift(acc, r_u, out=tmp)
        np.multiply(tmp, g_arr, out=tmp)
        np.bitwise_xor(acc, tmp, out=acc)
