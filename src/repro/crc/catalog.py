"""Catalog of CRC specifications and the paper's eight polynomials.

Two things live here:

* ``CATALOG`` -- deployed CRC algorithms with their full Rocksoft
  parameters and standard check values (CRC of ``b"123456789"``),
  so the engines can be validated against independent ground truth.
* ``PAPER_POLYS`` -- the eight 32-bit generator polynomials of the
  paper's Figure 1 / Table 1, with the exact properties the paper
  claims for each (factorization class and the HD-breakpoint table,
  including the 2014 erratum for 0x992C1A4C).  These records are the
  expected values the benchmark harness compares measurements against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crc.spec import CRCSpec
from repro.gf2.notation import koopman_to_full


CATALOG: dict[str, CRCSpec] = {
    # The Ethernet / 802.3 CRC as actually deployed.
    "CRC-32/IEEE-802.3": CRCSpec(
        name="CRC-32/IEEE-802.3",
        width=32,
        poly=0x04C11DB7,
        init=0xFFFFFFFF,
        refin=True,
        refout=True,
        xorout=0xFFFFFFFF,
        check=0xCBF43926,
    ),
    # iSCSI adopted the Castagnoli polynomial (the paper's 0x8F6E37A0
    # discussion concerns the *other* Castagnoli candidate; deployed
    # iSCSI/CRC-32C uses 0x1EDC6F41).
    "CRC-32C/Castagnoli": CRCSpec(
        name="CRC-32C/Castagnoli",
        width=32,
        poly=0x1EDC6F41,
        init=0xFFFFFFFF,
        refin=True,
        refout=True,
        xorout=0xFFFFFFFF,
        check=0xE3069283,
    ),
    "CRC-32/BZIP2": CRCSpec(
        name="CRC-32/BZIP2",
        width=32,
        poly=0x04C11DB7,
        init=0xFFFFFFFF,
        refin=False,
        refout=False,
        xorout=0xFFFFFFFF,
        check=0xFC891918,
    ),
    "CRC-32/POSIX-CKSUM": CRCSpec(
        name="CRC-32/POSIX-CKSUM",
        width=32,
        poly=0x04C11DB7,
        init=0,
        refin=False,
        refout=False,
        xorout=0xFFFFFFFF,
        check=0x765E7680,
    ),
    "CRC-16/CCITT-FALSE": CRCSpec(
        name="CRC-16/CCITT-FALSE",
        width=16,
        poly=0x1021,
        init=0xFFFF,
        check=0x29B1,
    ),
    "CRC-16/ARC": CRCSpec(
        name="CRC-16/ARC",
        width=16,
        poly=0x8005,
        refin=True,
        refout=True,
        check=0xBB3D,
    ),
    "CRC-16/XMODEM": CRCSpec(
        name="CRC-16/XMODEM",
        width=16,
        poly=0x1021,
        check=0x31C3,
    ),
    "CRC-8/ATM-HEC": CRCSpec(
        name="CRC-8/ATM-HEC",
        width=8,
        poly=0x07,
        check=0xF4,
    ),
    "CRC-8/MAXIM": CRCSpec(
        name="CRC-8/MAXIM",
        width=8,
        poly=0x31,
        refin=True,
        refout=True,
        check=0xA1,
    ),
    # Narrower than a byte AND reflected: the combination that exposed
    # the seed's StreamingCrc orientation bug (reflected register
    # advanced through the normal-orientation reference, output
    # reflection skipped).  USB token CRC.
    "CRC-5/USB": CRCSpec(
        name="CRC-5/USB",
        width=5,
        poly=0x05,
        init=0x1F,
        refin=True,
        refout=True,
        xorout=0x1F,
        check=0x19,
    ),
    # The only deployed-catalog entry with refin != refout: 3GPP TS
    # 25.212 attaches the CRC MSB-first but transmits it bit-reversed,
    # so the conditional reflection in dress/undress and the
    # engine-orientation handoffs cannot go untested.
    "CRC-12/UMTS": CRCSpec(
        name="CRC-12/UMTS",
        width=12,
        poly=0x80F,
        init=0x000,
        refin=False,
        refout=True,
        xorout=0x000,
        check=0xDAF,
    ),
}


@dataclass(frozen=True)
class PaperPoly:
    """One of the paper's eight studied polynomials and its claimed
    properties (Figure 1 / Table 1 / errata).

    Attributes
    ----------
    label:
        Name used in the paper ("IEEE 802.3", "Koopman 0xBA0DC66B", ...).
    koopman:
        The paper's implicit-+1 hex representation.
    attribution:
        Who identified/characterized the polynomial in the paper.
    factor_class:
        The paper's factorization class signature, ascending degrees.
    hd_breaks:
        ``{hd: max_data_word_bits}``: the largest data word length (in
        bits, CRC excluded) at which this Hamming distance is still
        achieved, per Table 1 columns (with the 2014 erratum applied).
        Only HDs whose upper limit is listed in the paper appear.
    """

    label: str
    koopman: int
    attribution: str
    factor_class: tuple[int, ...]
    hd_breaks: dict[int, int] = field(default_factory=dict)

    @property
    def full(self) -> int:
        """Full polynomial encoding (with x^32 and +1 terms)."""
        return koopman_to_full(self.koopman, 32)

    @property
    def spec(self) -> CRCSpec:
        """A bare CRCSpec for this generator."""
        return CRCSpec(
            name=self.label,
            width=32,
            poly=self.full & 0xFFFFFFFF,
        )

    def hd_at(self, data_word_bits: int, floor: int = 2) -> int:
        """Expected HD at a given data word length per the paper's
        Table 1 (the ground truth the harness compares against)."""
        best = floor
        for hd, limit in self.hd_breaks.items():
            if data_word_bits <= limit and hd > best:
                best = hd
        return best


# Table 1 of the paper, transcribed as {HD: last data-word length with
# that HD}.  The PDF-extracted table is column-garbled, so only cells
# that are (a) stated in the running text or (b) uniquely recoverable
# by chaining a column's consecutive ranges (each band must start one
# past the previous band's end) are recorded here; the benchmark
# harness *measures* every cell fresh and EXPERIMENTS.md records the
# full measured table.  HD=2 rows are open-ended ("65507+") and the
# HD=2 onset equals the HD>=3 limit + 1, independently computed from
# order_of_x in gf2 (tests cross-check).
PAPER_POLYS: dict[str, PaperPoly] = {
    "802.3": PaperPoly(
        label="IEEE 802.3",
        koopman=0x82608EDB,
        attribution="IEEE 802.3 standard",
        factor_class=(32,),
        # Chain: 15:8-10, 12:11-12, 11:13-21, 10:22-34, 9:35-57,
        # 8:58-91, 7:92-171, 6:172-268, 5:269-2974, 4:2975-91607.
        hd_breaks={
            15: 10, 12: 12, 11: 21, 10: 34, 9: 57, 8: 91,
            7: 171, 6: 268, 5: 2974, 4: 91607, 3: 4294967263,
        },
    ),
    "8F6E37A0": PaperPoly(
        label="Castagnoli 0x8F6E37A0 (draft iSCSI)",
        koopman=0x8F6E37A0,
        attribution="Castagnoli 1993; recommended by Sheinwald 2000",
        factor_class=(1, 31),
        # Chain: 12:9-20, 10:21-47, 8:48-177, 6:178-5243, 4:5244-....
        # HD=4 persists to order - 32 = 2147483615 data-word bits.
        hd_breaks={
            12: 20, 10: 47, 8: 177, 6: 5243, 4: 2147483615,
        },
    ),
    "BA0DC66B": PaperPoly(
        label="Koopman 0xBA0DC66B",
        koopman=0xBA0DC66B,
        attribution="new in this paper (best combined design point)",
        factor_class=(1, 3, 28),
        # Chain: 12:8-16, 10:17-18, 8:19-152, 6:153-16360, 4:...-114663.
        hd_breaks={
            12: 16, 10: 18, 8: 152, 6: 16360, 4: 114663,
        },
    ),
    "FA567D89": PaperPoly(
        label="Castagnoli 0xFA567D89",
        koopman=0xFA567D89,
        attribution="Castagnoli 1993 (published with a one-bit typo)",
        factor_class=(1, 1, 15, 15),
        # Chain: 12:8-11, 10:12-24, 8:25-274, 6:275-32736, 4:...-65502.
        hd_breaks={
            12: 11, 10: 24, 8: 274, 6: 32736, 4: 65502,
        },
    ),
    "992C1A4C": PaperPoly(
        label="Koopman 0x992C1A4C",
        koopman=0x992C1A4C,
        attribution="new in this paper (representative {1,1,30})",
        factor_class=(1, 1, 30),
        # Chain: 12:8-16, 10:17-26, 8:27-134, 6:135-32738 (2014
        # erratum; original said 32737), 4:32739-65506.
        hd_breaks={
            12: 16, 10: 26, 8: 134, 6: 32738, 4: 65506,
        },
    ),
    "90022004": PaperPoly(
        label="Koopman 0x90022004",
        koopman=0x90022004,
        attribution="new in this paper (fewest taps with HD=6 to ~32K)",
        factor_class=(1, 1, 30),
        # Single band 6:8-32738 (the generator itself is a weight-6
        # codeword, so HD=6 holds from the shortest lengths), then
        # 4:32739-65506.  Measurement resolved the garbled cell.
        hd_breaks={
            6: 32738, 4: 65506,
        },
    ),
    "D419CC15": PaperPoly(
        label="Castagnoli 0xD419CC15",
        koopman=0xD419CC15,
        attribution="Castagnoli 1993 (irreducible, not primitive)",
        factor_class=(32,),
        # Chain: 11:18-21, 10:22-27, 8:28-58, 7:59-81, 6:82-1060,
        # 5:1061-65505.  The top of this column is garbled in the PDF
        # extraction; measurement (EXPERIMENTS.md) shows HD=12 for
        # 8..17 (first weight-12 failure at length 4), so the "12"
        # row's "8-17" cell belongs here.
        hd_breaks={
            12: 17, 11: 21, 10: 27, 8: 58,
            7: 81, 6: 1060, 5: 65505,
        },
    ),
    "80108400": PaperPoly(
        label="Koopman 0x80108400",
        koopman=0x80108400,
        attribution="new in this paper (fewest taps with HD=5 to ~64K)",
        factor_class=(32,),
        # Single band in the table: 5:8-65505.
        hd_breaks={
            5: 65505,
        },
    ),
}

# The erroneous Castagnoli publication value the paper's validation
# uncovered: 0x1F6ACFB13 (full encoding) was printed where 0x1F4ACFB13
# (= koopman 0xFA567D89) was meant.  The wrong polynomial keeps HD=6
# only to 382 bits.
CASTAGNOLI_TYPO_FULL = 0x1F6ACFB13
CASTAGNOLI_CORRECT_FULL = 0x1F4ACFB13


def get_spec(name: str) -> CRCSpec:
    """Look up a deployed CRC by catalog name.

    >>> get_spec("CRC-32/IEEE-802.3").poly == 0x04C11DB7
    True
    """
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown CRC {name!r}; known: {sorted(CATALOG)}"
        ) from None


def paper_poly(key: str) -> PaperPoly:
    """Look up one of the paper's eight polynomials by short key
    (e.g. ``"BA0DC66B"`` or ``"802.3"``)."""
    try:
        return PAPER_POLYS[key]
    except KeyError:
        raise KeyError(
            f"unknown paper polynomial {key!r}; known: {sorted(PAPER_POLYS)}"
        ) from None
