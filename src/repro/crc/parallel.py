"""Parallel (wide-datapath) CRC realization and its hardware cost.

The paper's recommendation of 0x90022004 / 0x80108400 rests on a
hardware argument: "having only five non-zero coefficients may help in
creating high-speed combinational logic implementations of CRCs by
reducing logic synthesis minterms."  This module makes that claim
measurable.

A w-bits-per-cycle CRC circuit computes
``next = F * state  ^  G * input_w`` where ``F`` (r x r) and ``G``
(r x w) are GF(2) matrices determined by the generator.  The XOR-gate
cost of the flattened combinational network is (to first order) the
number of ones in ``[F | G]`` minus one per output row -- the metric
:func:`xor_term_count` reports and the paper's sparse polynomials
minimize.

The construction is validated against the bit-serial engine for every
spec and datapath width (``tests/crc/test_parallel.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crc.spec import CRCSpec
from repro.crc.stream import Matrix, mat_mul, mat_pow, mat_vec, shift_operator


def input_operator(width: int, poly: int, datapath: int) -> Matrix:
    """The ``G`` matrix: contribution of ``datapath`` message bits
    (MSB first) to the next register state, for a non-reflected
    register.

    The bit-serial recurrence is ``state' = F(state) ^ b * poly``
    (a set input bit XORs into the incoming top position, triggering
    one polynomial subtraction as it shifts out), so an input bit with
    ``j`` cycles still to go lands as ``F^j(poly)``.  Column ``j`` is
    that image; bit 0 of the input word is the *last* bit to enter.
    """
    base = shift_operator(width, poly)
    return tuple(mat_vec(mat_pow(base, j), poly) for j in range(datapath))


@dataclass(frozen=True)
class ParallelCrc:
    """A w-bit-per-cycle CRC next-state network for a bare spec."""

    spec: CRCSpec
    datapath: int
    state_matrix: Matrix    # F: r x r
    input_matrix: Matrix    # G: r x w (column j = input bit j)

    @classmethod
    def build(cls, spec: CRCSpec, datapath: int) -> "ParallelCrc":
        if datapath < 1:
            raise ValueError("datapath must be at least one bit")
        if spec.refin or spec.refout:
            raise ValueError("parallel construction models bare registers; "
                             "use spec.plain()")
        F = mat_pow(shift_operator(spec.width, spec.poly), datapath)
        G = input_operator(spec.width, spec.poly, datapath)
        return cls(spec=spec, datapath=datapath, state_matrix=F,
                   input_matrix=G)

    def step(self, state: int, input_bits: int) -> int:
        """One clock: absorb ``datapath`` message bits (MSB-first
        within the word; bit 0 of ``input_bits`` is the last bit)."""
        if input_bits >> self.datapath:
            raise ValueError("input wider than datapath")
        return mat_vec(self.state_matrix, state) ^ mat_vec(
            self.input_matrix, input_bits
        )

    def run(self, message_bits: list[int]) -> int:
        """Process a whole message (length must be a multiple of the
        datapath width); returns the final register."""
        if len(message_bits) % self.datapath:
            raise ValueError("message length not a multiple of datapath")
        state = self.spec.init
        for i in range(0, len(message_bits), self.datapath):
            word = 0
            for b in message_bits[i : i + self.datapath]:
                word = (word << 1) | (b & 1)
            state = self.step(state, word)
        return state ^ self.spec.xorout

    def xor_term_count(self) -> int:
        """Total ones in ``[F | G]`` -- the flattened minterm count the
        paper's sparse-polynomial argument concerns.  Each output bit
        needs ``(ones in its row) - 1`` 2-input XORs, so this is a
        faithful relative cost metric across polynomials."""
        total = 0
        for col in self.state_matrix + self.input_matrix:
            total += col.bit_count()
        return total

    def max_fanin(self) -> int:
        """Largest XOR fan-in over output bits -- bounds the logic
        depth of the synthesized network."""
        rows = [0] * self.spec.width
        for col in self.state_matrix + self.input_matrix:
            for i in range(self.spec.width):
                if (col >> i) & 1:
                    rows[i] += 1
        return max(rows)


def compare_hardware_cost(
    polys: dict[str, int], datapath: int = 8
) -> dict[str, dict[str, int]]:
    """XOR-term and fan-in comparison across generators at a datapath
    width -- the quantified version of the paper's §4.2 hardware
    remark."""
    out = {}
    for name, full in polys.items():
        width = full.bit_length() - 1
        spec = CRCSpec(name=name, width=width, poly=full & ((1 << width) - 1))
        pc = ParallelCrc.build(spec, datapath)
        out[name] = {
            "xor_terms": pc.xor_term_count(),
            "max_fanin": pc.max_fanin(),
            "generator_terms": full.bit_count(),
        }
    return out
