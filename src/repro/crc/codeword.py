"""Frame Check Sequence handling and codeword membership.

A *codeword* is a data word with its FCS appended.  For a bare CRC
(zero init/xorout, no reflection) the codeword, read as a polynomial,
is exactly ``M(x) * x**r + (M(x) * x**r mod G(x))``, i.e. a multiple of
``G`` -- which is why an error pattern is undetectable iff the pattern
itself is a multiple of ``G`` (paper §3, the linearity argument).

Bit-position convention (used across :mod:`repro.hd` too): a codeword
of ``N = n + r`` bits maps to a polynomial of degree ``< N`` where the
*last transmitted* FCS bit is ``x**0`` and the first data bit is
``x**(N-1)``.  The FCS therefore occupies positions ``0 .. r-1`` --
the "FCS field" whose bit flips the paper's search heuristic tries
first.
"""

from __future__ import annotations

from repro.crc.spec import CRCSpec
from repro.crc.engine import crc_bitwise, crc_bits
from repro.gf2.poly import gf2_mod


def append_fcs(spec: CRCSpec, data: bytes) -> bytes:
    """Return ``data`` with its FCS appended (big-endian for normal
    specs, little-endian byte order for reflected specs, matching how
    802.3 puts the complemented CRC on the wire).

    Requires a byte-multiple width.
    """
    if spec.width % 8:
        raise ValueError("append_fcs requires a byte-multiple CRC width")
    fcs = crc_bitwise(spec, data)
    nbytes = spec.width // 8
    order = "little" if spec.refout else "big"
    return data + fcs.to_bytes(nbytes, order)


def check_fcs(spec: CRCSpec, frame: bytes) -> bool:
    """Verify a frame produced by :func:`append_fcs`.

    Recomputes the CRC over the data portion and compares with the
    trailing FCS -- the receive-side procedure the paper describes.
    """
    nbytes = spec.width // 8
    if len(frame) < nbytes:
        return False
    data, fcs_bytes = frame[:-nbytes], frame[-nbytes:]
    order = "little" if spec.refout else "big"
    return crc_bitwise(spec, data) == int.from_bytes(fcs_bytes, order)


def codeword_from_message(spec: CRCSpec, message_bits: list[int]) -> list[int]:
    """Build the ``n + r`` bit codeword for an ``n``-bit message using
    the *bare* form of the spec (codewords are then multiples of G).

    >>> from repro.crc.spec import CRCSpec
    >>> s = CRCSpec(name="toy", width=3, poly=0b011)  # x^3 + x + 1
    >>> codeword_from_message(s, [1, 0, 1])   # == (x^3+x+1) * x^2
    [1, 0, 1, 1, 0, 0]
    """
    bare = spec.plain()
    fcs = crc_bits(bare, message_bits)
    fcs_bits = [(fcs >> i) & 1 for i in range(spec.width - 1, -1, -1)]
    return list(message_bits) + fcs_bits


def is_codeword(spec: CRCSpec, bits: list[int]) -> bool:
    """True iff the bit sequence is a valid (bare) codeword, i.e. the
    polynomial it spells is divisible by the generator.

    The sequence is read MSB-first: ``bits[0]`` is the highest-order
    coefficient.
    """
    value = 0
    for b in bits:
        value = (value << 1) | (b & 1)
    return gf2_mod(value, spec.full_poly) == 0


def syndrome_of_bits(spec: CRCSpec, positions: list[int]) -> int:
    """Syndrome (remainder mod G) of an error pattern given by bit
    positions (position 0 = last FCS bit, per the module convention).

    Zero syndrome == undetectable error.  This is the scalar reference
    for the vectorized machinery in :mod:`repro.hd.syndromes`.
    """
    pattern = 0
    for p in positions:
        if p < 0:
            raise ValueError("negative bit position")
        pattern ^= 1 << p
    return gf2_mod(pattern, spec.full_poly)
