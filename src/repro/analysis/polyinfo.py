"""Single-polynomial property reports.

Gathers, for one generator, every static property the paper discusses:
all four notations, the irreducible factorization and its class
signature, order of x (hence the exact HD=2 onset), primitivity, the
(x+1) parity property, and the feedback tap count that motivated
0x90022004 / 0x80108400.  Dynamic properties (HD bands) attach via a
:class:`~repro.hd.breakpoints.BreakpointTable`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gf2.factorize import factorize
from repro.gf2.irreducible import is_irreducible
from repro.gf2.notation import (
    class_signature,
    class_signature_str,
    exponents,
    full_to_koopman,
    full_to_normal,
    full_to_reflected,
    poly_str,
)
from repro.gf2.order import is_primitive, order_of_x
from repro.gf2.poly import degree, divisible_by_x_plus_1, reciprocal
from repro.hd.breakpoints import BreakpointTable


@dataclass
class PolyReport:
    """Static properties of one generator polynomial."""

    full: int
    width: int
    koopman: int
    normal: int
    reflected: int
    reciprocal_full: int
    polynomial: str
    factors: list[tuple[str, int]]
    factor_class: tuple[int, ...]
    irreducible: bool
    primitive: bool
    parity: bool
    order: int
    hd2_onset: int
    taps: int
    breakpoints: BreakpointTable | None = None

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"polynomial      {self.polynomial}",
            f"  full          {self.full:#x}",
            f"  paper/koopman {self.koopman:#x}",
            f"  normal        {self.normal:#x}",
            f"  reflected     {self.reflected:#x}",
            f"  reciprocal    {self.reciprocal_full:#x}"
            + ("  (self-reciprocal)" if self.reciprocal_full == self.full else ""),
            f"  class         {{{','.join(map(str, self.factor_class))}}}",
            "  factors       "
            + " * ".join(
                f"({s})" + (f"^{m}" if m > 1 else "") for s, m in self.factors
            ),
            f"  irreducible   {self.irreducible}   primitive {self.primitive}",
            f"  (x+1) parity  {self.parity}",
            f"  order of x    {self.order}  => HD=2 from data-word length {self.hd2_onset}",
            f"  feedback taps {self.taps} non-zero coefficients",
        ]
        if self.breakpoints is not None:
            lines.append("  HD bands (data-word bits):")
            sentinel = max(self.breakpoints.first_failure) + 1
            for hd, lo, hi in self.breakpoints.bands:
                hi_s = str(hi) if hi is not None else f">= {self.breakpoints.n_max}"
                # Only the sentinel band ("better than every tested
                # weight") is a lower bound; measured bands are exact.
                prefix = (
                    f"    HD >= {hd}" if hd >= sentinel else f"    HD  = {hd}"
                )
                lines.append(f"{prefix}: {lo} .. {hi_s}")
        return "\n".join(lines)


def report_for(full: int, breakpoints: BreakpointTable | None = None) -> PolyReport:
    """Build the report for a full-encoded generator.

    >>> report_for(0x104C11DB7).factor_class
    (32,)
    """
    width = degree(full)
    order = order_of_x(full)
    return PolyReport(
        full=full,
        width=width,
        koopman=full_to_koopman(full),
        normal=full_to_normal(full),
        reflected=full_to_reflected(full),
        reciprocal_full=reciprocal(full),
        polynomial=poly_str(full),
        factors=[(poly_str(f), m) for f, m in factorize(full)],
        factor_class=class_signature(full),
        irreducible=is_irreducible(full),
        primitive=is_primitive(full),
        parity=divisible_by_x_plus_1(full),
        order=order,
        hd2_onset=order - width + 1,
        taps=full.bit_count(),
        breakpoints=breakpoints,
    )


def exponent_string(full: int) -> str:
    """The paper's exponent-sum rendering, e.g. for checking its
    expansion of 0xBA0DC66B in §5."""
    return poly_str(full)


def paper_exponents(full: int) -> list[int]:
    """Exponents with non-zero coefficients, high to low."""
    return exponents(full)
