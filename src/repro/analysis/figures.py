"""Figure 1: error-detection capability curves.

The paper's Figure 1 plots HD (y) against data-word length (x, log
scale, 64 .. 128K bits) for eight polynomials, with vertical marks at
the canonical Internet message sizes.  Given measured breakpoint
tables the stepped curves are fully determined; this module samples
them on a log grid, exports CSV, and renders an ASCII plot faithful
enough to eyeball against the original.
"""

from __future__ import annotations

from repro.hd.breakpoints import BreakpointTable


def log2_grid(lo: int = 64, hi: int = 131072) -> list[int]:
    """Powers of two between lo and hi inclusive -- Figure 1's x ticks."""
    grid = []
    n = lo
    while n <= hi:
        grid.append(n)
        n *= 2
    return grid


def figure1_series(
    columns: list[tuple[str, BreakpointTable]],
    lengths: list[int] | None = None,
) -> dict[str, list[tuple[int, int]]]:
    """Sample each polynomial's HD curve at the given lengths.

    Returns ``{label: [(length, hd), ...]}``.  Lengths beyond a
    table's ``n_max`` are skipped (they would be extrapolation).
    """
    if lengths is None:
        lengths = log2_grid()
    series: dict[str, list[tuple[int, int]]] = {}
    for label, table in columns:
        pts = [(n, table.hd_at(n)) for n in lengths if n <= table.n_max]
        series[label] = pts
    return series


def series_to_csv(series: dict[str, list[tuple[int, int]]]) -> str:
    """CSV export: one row per length, one column per polynomial."""
    lengths = sorted({n for pts in series.values() for n, _ in pts})
    labels = list(series)
    lookup = {label: dict(pts) for label, pts in series.items()}
    lines = ["data_word_bits," + ",".join(labels)]
    for n in lengths:
        cells = [str(lookup[label].get(n, "")) for label in labels]
        lines.append(f"{n}," + ",".join(cells))
    return "\n".join(lines)


def render_figure1_ascii(
    series: dict[str, list[tuple[int, int]]],
    *,
    hd_min: int = 2,
    hd_max: int = 8,
) -> str:
    """ASCII rendering of Figure 1: HD rows (descending) by length
    columns; each cell shows how many polynomials hold that exact HD
    at that length, and which (by single-letter key)."""
    labels = list(series)
    keys = "ABCDEFGHIJKLMNOP"[: len(labels)]
    lengths = sorted({n for pts in series.values() for n, _ in pts})
    lookup = {label: dict(pts) for label, pts in series.items()}
    # column width fits the largest possible cell (every key at once)
    col_w = max(6, len(labels) + 2)
    header = "HD".rjust(4) + " " + "".join(
        _short_len(n).rjust(col_w) for n in lengths
    )
    lines = [header, "-" * len(header)]
    for hd in range(hd_max, hd_min - 1, -1):
        row = [f"{hd:>4} "]
        for n in lengths:
            cell = "".join(
                keys[i]
                for i, label in enumerate(labels)
                if lookup[label].get(n) == hd
            )
            row.append((cell or ".").rjust(col_w))
        lines.append("".join(row))
    lines.append("-" * len(header))
    for i, label in enumerate(labels):
        lines.append(f"  {keys[i]} = {label}")
    return "\n".join(lines)


def _short_len(n: int) -> str:
    if n % 1024 == 0:
        return f"{n // 1024}K"
    return str(n)
