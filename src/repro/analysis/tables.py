"""Renderers for the paper's tables.

``render_table1`` lays out HD bands per polynomial exactly like the
paper's Table 1: rows are HD values, cells are the data-word length
range over which that HD holds.  ``render_table2`` is the class
census (factorization signature vs survivor count).
"""

from __future__ import annotations

from repro.hd.breakpoints import BreakpointTable
from repro.search.census import ClassCensus


def _bands_by_hd(table: BreakpointTable) -> dict[int, tuple[int, int | None]]:
    return {hd: (lo, hi) for hd, lo, hi in table.bands}


def render_table1(
    columns: list[tuple[str, BreakpointTable]],
    *,
    title: str = "Message lengths in bits (exclusive of CRC field) for which "
    "the specified HD is achieved",
) -> str:
    """ASCII Table 1 from measured breakpoint tables.

    ``columns`` pairs a label (e.g. ``"IEEE 802.3"``) with its
    measured :class:`BreakpointTable`.  Only HD rows that appear in at
    least one column are printed, descending, like the paper.
    """
    per_column = [(label, _bands_by_hd(t)) for label, t in columns]
    all_hds = sorted({hd for _, bands in per_column for hd in bands}, reverse=True)
    label_width = max(12, *(len(label) for label, _ in per_column))
    header = "HD".rjust(4) + " | " + " | ".join(
        label.center(label_width) for label, _ in per_column
    )
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for hd in all_hds:
        cells = []
        for _, bands in per_column:
            if hd in bands:
                lo, hi = bands[hd]
                cell = f"{lo}-{hi}" if hi is not None else f"{lo}+"
            else:
                cell = ""
            cells.append(cell.center(label_width))
        lines.append(f"{hd:>4} | " + " | ".join(cells))
    lines.append(rule)
    return "\n".join(lines)


def render_table2(
    census: ClassCensus,
    *,
    title: str = "Number of polynomials having the target HD for different "
    "irreducible factorizations",
) -> str:
    """ASCII Table 2 from a measured class census.

    Matches the paper's layout: number of factors, factor-degree
    signature, count of distinct polynomials -- with the (x+1) law
    noted underneath when it holds.
    """
    lines = [
        title,
        "-" * 64,
        f"{'# factors':>10}  {'size of factors':<24} {'# distinct polys':>18}",
        "-" * 64,
    ]
    for sig, count in census.sorted_rows():
        sig_s = "{" + ",".join(map(str, sig)) + "}"
        lines.append(f"{len(sig):>10}  {sig_s:<24} {count:>18,}")
    lines.append("-" * 64)
    lines.append(f"{'total':>10}  {'':<24} {census.total:>18,}")
    if census.total:
        if census.all_divisible_by_x_plus_1():
            lines.append("all survivors are divisible by (x+1)  [paper's §4.2 law]")
        else:
            bad = len(census.violators_of_x_plus_1())
            lines.append(f"{bad} survivors NOT divisible by (x+1)")
    return "\n".join(lines)


def render_comparison(
    rows: list[tuple[str, dict[str, object]]], columns: list[str]
) -> str:
    """Generic labeled-rows table used by the benchmark harness for
    paper-vs-measured summaries."""
    widths = {c: max(len(c), *(len(str(v.get(c, ""))) for _, v in rows)) for c in columns}
    label_w = max(len(label) for label, _ in rows)
    header = " " * label_w + "  " + "  ".join(c.rjust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for label, values in rows:
        lines.append(
            label.ljust(label_w)
            + "  "
            + "  ".join(str(values.get(c, "")).rjust(widths[c]) for c in columns)
        )
    return "\n".join(lines)
