"""Pairwise polynomial comparison: who dominates where.

Figure 1 exists to answer "which polynomial should I use?"  This
module turns the measured breakpoint tables into direct answers:
where one candidate dominates another, where they cross over, and a
recommendation for a target length range -- the §4.3 argument
("0xBA0DC66B is at least as good as 0x8F6E37A0 everywhere that
matters, and strictly better at MTU lengths") as reusable analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hd.breakpoints import BreakpointTable


@dataclass(frozen=True)
class Dominance:
    """Comparison of two candidates over a length range."""

    label_a: str
    label_b: str
    n_min: int
    n_max: int
    a_better: list[tuple[int, int]]   # maximal runs where HD_a > HD_b
    b_better: list[tuple[int, int]]
    ties: list[tuple[int, int]]

    @property
    def a_dominates(self) -> bool:
        """A is never worse and somewhere better."""
        return not self.b_better and bool(self.a_better)

    @property
    def b_dominates(self) -> bool:
        return not self.a_better and bool(self.b_better)

    @property
    def crossover_lengths(self) -> list[int]:
        """Lengths at which the better candidate changes."""
        events = sorted(
            [(lo, "a") for lo, _ in self.a_better]
            + [(lo, "b") for lo, _ in self.b_better]
        )
        out = []
        prev = None
        for lo, who in events:
            if who != prev:
                out.append(lo)
                prev = who
        return out

    def render(self) -> str:
        def runs(rs: list[tuple[int, int]]) -> str:
            return ", ".join(f"{lo}-{hi}" for lo, hi in rs) or "nowhere"

        lines = [
            f"{self.label_a} vs {self.label_b} over {self.n_min}..{self.n_max} bits:",
            f"  {self.label_a} better: {runs(self.a_better)}",
            f"  {self.label_b} better: {runs(self.b_better)}",
        ]
        if self.a_dominates:
            lines.append(f"  => {self.label_a} dominates")
        elif self.b_dominates:
            lines.append(f"  => {self.label_b} dominates")
        else:
            lines.append("  => neither dominates (workload-dependent)")
        return "\n".join(lines)


def _collapse(points: list[int]) -> list[tuple[int, int]]:
    """Collapse a sorted list of integers into maximal runs."""
    runs: list[tuple[int, int]] = []
    for p in points:
        if runs and p == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], p)
        else:
            runs.append((p, p))
    return runs


def compare(
    label_a: str,
    table_a: BreakpointTable,
    label_b: str,
    table_b: BreakpointTable,
    *,
    n_min: int = 8,
    n_max: int | None = None,
) -> Dominance:
    """Compare two measured breakpoint tables length by length.

    Evaluation is over every integer length in range -- cheap, because
    ``hd_at`` is a table lookup, and exact, because the tables are.
    """
    if n_max is None:
        n_max = min(table_a.n_max, table_b.n_max)
    a_pts: list[int] = []
    b_pts: list[int] = []
    tie_pts: list[int] = []
    for n in range(n_min, n_max + 1):
        ha = table_a.hd_at(n)
        hb = table_b.hd_at(n)
        if ha > hb:
            a_pts.append(n)
        elif hb > ha:
            b_pts.append(n)
        else:
            tie_pts.append(n)
    return Dominance(
        label_a=label_a,
        label_b=label_b,
        n_min=n_min,
        n_max=n_max,
        a_better=_collapse(a_pts),
        b_better=_collapse(b_pts),
        ties=_collapse(tie_pts),
    )


def recommend(
    candidates: dict[str, BreakpointTable],
    *,
    n_min: int,
    n_max: int,
) -> list[tuple[str, int]]:
    """Rank candidates for a target length range by worst-case HD over
    the range (ties broken by HD at the longest length, then name).

    This is the paper's implicit selection rule: guarantee first.
    """
    scored = []
    for label, table in candidates.items():
        worst = min(table.hd_at(n) for n in range(n_min, n_max + 1))
        at_top = table.hd_at(n_max)
        scored.append((label, worst, at_top))
    scored.sort(key=lambda t: (-t[1], -t[2], t[0]))
    return [(label, worst) for label, worst, _ in scored]
