"""Reporting: regenerate the paper's exhibits from measured data.

* :mod:`repro.analysis.polyinfo` -- everything the paper says about a
  polynomial, in one report (notations, factorization, order,
  primitivity, tap count, HD profile).
* :mod:`repro.analysis.tables` -- Table 1 (HD bands per polynomial)
  and Table 2 (class census) renderers.
* :mod:`repro.analysis.figures` -- Figure 1 series (HD vs data-word
  length) with CSV export and an ASCII rendering of the stepped
  curves.
"""

from repro.analysis.polyinfo import PolyReport, report_for
from repro.analysis.tables import render_table1, render_table2
from repro.analysis.figures import figure1_series, render_figure1_ascii, series_to_csv

__all__ = [
    "PolyReport",
    "report_for",
    "render_table1",
    "render_table2",
    "figure1_series",
    "render_figure1_ascii",
    "series_to_csv",
]
