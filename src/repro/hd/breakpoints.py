"""HD breakpoints: where a polynomial's Hamming distance degrades.

Table 1 of the paper is a breakpoint table: for each polynomial, the
ranges of data-word lengths over which each HD holds.  The natural
quantity is the *first failure length*

    ``f(k) = min { n : some weight-k error is undetected at length n }``

because ``HD(n) = min { k : f(k) <= n }``.  This module computes
``f(k)`` exactly using the paper's own search strategy -- probing at
increasing lengths until the breakpoint is straddled (paper §4.1's
"filtering with increasing lengths") and then binary-searching the
straddled interval.  The engine lives in :mod:`repro.hd.jump`: every
probe of one polynomial reads a prefix of a single extend-only
syndrome table (:class:`~repro.hd.jump.SpanCache`), geometric probes
early-exit on their first verified witness, and the final breakpoint
comes from windowed-witness bisection plus one collect-all scan at
the tightened window (:func:`~repro.hd.jump.refine_span`).

Inverse filtering (the paper's tool for proving that *no* polynomial
achieves an HD at a length) appears here as :func:`refute_hd_at`,
which produces a concrete undetected-error witness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gf2.poly import degree, divisible_by_x_plus_1
from repro.gf2.order import order_of_x
from repro.hd.cost import (
    DEFAULT_MEM_ELEMS,
    DEFAULT_STREAM_ELEMS,
    EnvelopeError,
)
from repro.hd.jump import SpanCache, first_failure_jump
from repro.hd.mitm import exists_weight_k, find_witness, windowed_witness
from repro.hd.syndromes import extend_syndrome_table, syndrome_table

import numpy as np


@dataclass(frozen=True)
class FirstFailure:
    """Outcome of a first-failure search for one weight.

    ``n`` -- the exact first failing data-word length, or ``None``.
    ``cleared`` -- when ``n`` is None, every length through ``cleared``
    is *verified* failure-free (``cleared == n_max`` for a complete
    scan; smaller when the work envelope capped the probe).
    ``capped`` -- True when the envelope, not ``n_max``, ended the
    search; ``None`` then means "unknown beyond ``cleared``", not
    "never".
    """

    n: int | None
    cleared: int
    capped: bool = False


def first_failure_detailed(
    g: int,
    k: int,
    *,
    n_max: int,
    exploit_parity: bool = True,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
    cache: SpanCache | None = None,
) -> FirstFailure:
    """Exact first-failure search with explicit envelope accounting.

    ``k == 2`` comes from the order of ``x`` (no search); odd ``k`` for
    (x+1)-divisible generators never fails (parity theorem; the
    shortcut can be disabled for validation runs).  Everything else is
    the jump engine: verified early-exit straddle probes and span
    bisection on a shared syndrome table
    (:func:`repro.hd.jump.first_failure_jump`).  Pass a
    :class:`~repro.hd.jump.SpanCache` to reuse that table across
    weights of the same polynomial.
    """
    r = degree(g)
    if k < 2:
        raise ValueError("weights are defined for k >= 2")
    if exploit_parity and k % 2 == 1 and divisible_by_x_plus_1(g):
        return FirstFailure(None, n_max)
    if k == 2:
        n = order_of_x(g) + 1 - r
        return FirstFailure(n if n <= n_max else None, n_max)
    n, cleared, capped = first_failure_jump(
        g, k,
        n_max=n_max,
        mem_elems=mem_elems,
        stream_elems=stream_elems,
        cache=cache,
    )
    return FirstFailure(n, cleared, capped=capped)


def first_failure_length(
    g: int,
    k: int,
    *,
    n_max: int,
    exploit_parity: bool = True,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
    cache: SpanCache | None = None,
) -> int | None:
    """Exact smallest data-word length at which some weight-``k`` error
    goes undetected, or ``None`` if that never happens through
    ``n_max``.  Raises :class:`EnvelopeError` rather than silently
    capping (use :func:`first_failure_detailed` for capped scans).

    >>> from repro.gf2.notation import koopman_to_full
    >>> first_failure_length(koopman_to_full(0x82608EDB), 4, n_max=4000)
    2975
    """
    out = first_failure_detailed(
        g, k,
        n_max=n_max,
        exploit_parity=exploit_parity,
        mem_elems=mem_elems,
        stream_elems=stream_elems,
        cache=cache,
    )
    if out.capped:
        raise EnvelopeError(
            f"weight-{k} first-failure search capped at {out.cleared} "
            f"(< n_max={n_max}) by the work envelope"
        )
    return out.n


@dataclass
class BreakpointTable:
    """Exact HD bands for one polynomial -- one column of Table 1.

    ``first_failure[k]`` maps each weight to its first failing length
    (``None`` = no failure found).  ``cleared[k]`` is the length
    through which weight ``k`` is *verified* failure-free when no
    failure was found -- equal to ``n_max`` for complete scans,
    smaller when the work envelope capped a high-weight probe (those
    cells never bind the HD anyway, but :meth:`hd_at` refuses to
    overstate the sentinel band).  ``bands`` lists ``(hd, n_lo, n_hi)``
    with ``n_hi = None`` for the final open band.
    """

    g: int
    n_max: int
    first_failure: dict[int, int | None] = field(default_factory=dict)
    cleared: dict[int, int] = field(default_factory=dict)

    @property
    def bands(self) -> list[tuple[int, int, int | None]]:
        """HD bands ``(hd, n_lo, n_hi)`` covering ``r+1 .. n_max``.

        The minimum representable data-word length is 1; bands start at
        the smallest length where the HD is defined by our table
        (lengths below the smallest recorded failure get the sentinel
        HD ``max(k)+1``, rendered by callers as ">=k+1").
        """
        fails = sorted(
            (n, k) for k, n in self.first_failure.items() if n is not None
        )
        bands: list[tuple[int, int, int | None]] = []
        pos = 1
        best = max(self.first_failure) + 1  # "better than all tested k"
        for n, k in fails:
            if k >= best:
                continue  # a later, higher-weight failure never lowers HD
            if n > pos:
                bands.append((best, pos, n - 1))
            pos = n
            best = k
        bands.append((best, pos, None))
        return bands

    def _cleared_for(self, k: int) -> int:
        return self.cleared.get(k, self.n_max)

    def hd_at(self, n: int) -> int:
        """HD at data-word length ``n`` (must be <= n_max).  Raises
        :class:`EnvelopeError` if an envelope-capped weight could bind
        at this length (never the case for the weights that matter in
        practice, since low weights always complete)."""
        if n > self.n_max:
            raise ValueError(f"table only covers lengths through {self.n_max}")
        best = max(self.first_failure) + 1
        for k, fn in self.first_failure.items():
            if fn is not None and fn <= n and k < best:
                best = k
        for k, fn in self.first_failure.items():
            if k < best and fn is None and self._cleared_for(k) < n:
                raise EnvelopeError(
                    f"weight {k} only verified through {self._cleared_for(k)} "
                    f"bits; HD at {n} cannot be stated exactly"
                )
        return best

    def max_length_for(self, hd: int) -> int | None:
        """Largest length *verified* to have HD >= hd: ``None`` if HD <
        hd even at length 1, ``n_max`` when the guarantee extends
        through the whole table.  Envelope-capped weights below ``hd``
        conservatively clamp the answer to their cleared length."""
        limit = self.n_max
        for k, fn in self.first_failure.items():
            if k >= hd:
                continue
            if fn is not None:
                limit = min(limit, fn - 1)
            else:
                limit = min(limit, self._cleared_for(k))
        if limit < 1:
            return None
        return limit


def hd_breakpoint_table(
    g: int,
    *,
    hd_max: int = 6,
    n_max: int = 131072,
    exploit_parity: bool = True,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
) -> BreakpointTable:
    """Compute a polynomial's exact breakpoint table (one Table 1
    column) for weights ``2 .. hd_max`` through length ``n_max``.

    Cost note: the expensive cells are weight-4 first-failures beyond
    ~16K bits (minutes); everything else is seconds.  Choose ``hd_max``
    / ``n_max`` to taste -- e.g. Figure 1 uses hd_max=8 with modest
    lengths, the full Table 1 needs ``REPRO_FULL``-sized envelopes.
    """
    table = BreakpointTable(g=g, n_max=n_max)
    cache = SpanCache(g)  # one LFSR sweep feeds every weight's probes
    for k in range(2, hd_max + 1):
        out = first_failure_detailed(
            g, k,
            n_max=n_max,
            exploit_parity=exploit_parity,
            mem_elems=mem_elems,
            stream_elems=stream_elems,
            cache=cache,
        )
        table.first_failure[k] = out.n
        if out.n is None:
            table.cleared[k] = out.cleared
    return table


def max_length_for_hd(
    g: int,
    hd: int,
    *,
    n_max: int = 131072,
    exploit_parity: bool = True,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
) -> int | None:
    """Largest data-word length at which ``g`` still guarantees the
    requested HD: ``min_k<hd f(k) - 1`` (None if unachievable even at
    length 1; ``n_max`` if it holds through the whole range).

    >>> from repro.gf2.notation import koopman_to_full
    >>> max_length_for_hd(koopman_to_full(0x82608EDB), 5, n_max=4000)
    2974
    """
    limit = n_max
    cache = SpanCache(g)
    for k in range(2, hd):
        fn = first_failure_length(
            g, k,
            n_max=limit,
            exploit_parity=exploit_parity,
            mem_elems=mem_elems,
            stream_elems=stream_elems,
            cache=cache,
        )
        if fn is not None:
            limit = min(limit, fn - 1)
            if limit < 1:
                return None
    return limit


def _refute_weights(
    g: int,
    hd: int,
    N: int,
    syn: "np.ndarray",
    *,
    witness_window: int = 400,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
    k_min: int = 3,
) -> tuple[int, tuple[int, ...]] | None:
    """The ascending-``k`` refutation loop over weights
    ``k_min .. hd-1``, given a ready length-``N`` syndrome table.

    Shared between :func:`refute_hd_at` (from ``k_min=3``) and the
    batched screening backend, whose vectorized kernels handle the
    weights below ``k_min`` and delegate the tail here.
    """
    for k in range(k_min, hd):
        if k % 2 == 1 and divisible_by_x_plus_1(g):
            continue
        try:
            witness = windowed_witness(
                g, N, k, window=min(witness_window, N), syn=syn
            )
        except EnvelopeError:
            witness = None
        if witness is None:
            if exists_weight_k(
                g, N, k, syn=syn, mem_elems=mem_elems, stream_elems=stream_elems
            ):
                witness = find_witness(
                    g, N, k, syn=syn, mem_elems=mem_elems, stream_elems=stream_elems
                )
        if witness is not None:
            return k, witness
    return None


def refute_hd_at(
    g: int,
    hd: int,
    data_word_bits: int,
    *,
    witness_window: int = 400,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
    syn: "np.ndarray | None" = None,
) -> tuple[int, tuple[int, ...]] | None:
    """Inverse filtering: try to *refute* "HD >= hd at this length" by
    exhibiting an undetected error of weight < hd.

    Returns ``(weight, positions)`` of a verified witness, or ``None``
    if no such error exists (i.e. the HD claim stands -- exact).

    This mirrors the paper's use of fast early-out runs at long
    lengths to prove upper bounds on achievable HD: a witness is a
    constructive proof that the HD is not achieved.

    ``syn`` may carry a previously computed syndrome table for ``g``
    (any length); it is extended -- not rebuilt -- to the ``N`` this
    call needs, which is what lets the filter cascade pay the LFSR
    cost of each prefix once across all its lengths.
    """
    r = degree(g)
    N = data_word_bits + r
    order = order_of_x(g)
    if order <= N - 1:
        return 2, (0, order)
    if syn is None:
        syn = syndrome_table(g, N)
    elif len(syn) != N:
        syn = extend_syndrome_table(g, syn, N)
    return _refute_weights(
        g,
        hd,
        N,
        syn,
        witness_window=witness_window,
        mem_elems=mem_elems,
        stream_elems=stream_elems,
    )


def increasing_length_filter(
    candidates: list[int],
    lengths: list[int],
    hd_target: int,
    *,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
) -> tuple[list[int], list[tuple[int, int]]]:
    """The paper's filter cascade: screen candidate polynomials for
    "HD >= hd_target" at each length in ascending order, discarding
    failures before moving to the (more expensive) next length.

    Returns ``(survivors, stage_counts)`` where ``stage_counts`` is
    ``[(length, survivors_after_stage), ...]`` -- the measurement the
    §4.1 discussion is about (most candidates die cheaply at short
    lengths).

    Each surviving candidate carries its syndrome table (and its
    order of ``x``) from stage to stage: ascending lengths *extend*
    the table rather than rebuild it, so the LFSR cost of each prefix
    is paid once per candidate, and killed candidates release their
    tables immediately.  Peak memory is ``8 * (n_last + r)`` bytes per
    candidate still alive at the final length.
    """
    lengths = sorted(lengths)
    survivors = list(candidates)
    stage_counts: list[tuple[int, int]] = []
    syn_by_g: dict[int, "np.ndarray"] = {}
    order_by_g: dict[int, int] = {}
    for n in lengths:
        still: list[int] = []
        for g in survivors:
            N = n + degree(g)
            order = order_by_g.get(g)
            if order is None:
                order = order_by_g[g] = order_of_x(g)
            if order <= N - 1:
                refuted = True
            else:
                syn = syn_by_g.get(g)
                syn = (
                    syndrome_table(g, N)
                    if syn is None
                    else extend_syndrome_table(g, syn, N)
                )
                syn_by_g[g] = syn
                refuted = _refute_weights(
                    g, hd_target, N, syn,
                    mem_elems=mem_elems, stream_elems=stream_elems,
                ) is not None
            if refuted:
                syn_by_g.pop(g, None)
                order_by_g.pop(g, None)
            else:
                still.append(g)
        survivors = still
        stage_counts.append((n, len(survivors)))
        if not survivors:
            break
    return survivors, stage_counts
