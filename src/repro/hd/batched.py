"""Batched (vectorized) screening kernels: B candidates per numpy op.

The filter cascade's cost structure is uniform across generators: every
candidate runs the same LFSR recurrence, the same duplicate-syndrome
check, the same low-weight matching -- only the tap constants differ.
This module exploits that uniformity by evaluating a *batch* of B
candidates as ``(B, N)`` uint64 arrays:

* :func:`syndrome_tables_batched` runs the recurrence
  ``acc = (acc << 1) ^ (top_set ? g : 0)`` once per *position* across
  the whole batch -- one numpy op per position instead of one Python
  iteration per candidate x position; :func:`extend_syndrome_tables`
  grows the tables between cascade stages so prefixes are never
  recomputed (the batched analogue of
  :func:`repro.hd.syndromes.extend_syndrome_table`).
* Weight-2 and weight-3 refutation read off one row-wise sort: a
  duplicate syndrome is an *equal* adjacent pair, and -- since the
  weight-3 condition ``syn[p] ^ syn[q] == 1`` forces the two values to
  be consecutive integers -- a weight-3 codeword is an adjacent pair
  XORing to 1.  No per-candidate search at all.
* Weight-4/5 existence uses **composite sort keys** -- candidate (row)
  index in the high bits, syndrome in the low ``r`` bits -- so a
  single global ``searchsorted`` over pair-XOR keys services the
  entire batch.

Exactness contract: identical to the scalar engines.  Every existence
answer is exact for rows that passed the lower-weight screens first
(the same ascending-``k`` precondition :mod:`repro.hd.mitm` relies
on), and witness extraction replicates the scalar selection rule, so
records match the scalar backend bit for bit.

Requirements: all generators in a batch share one degree ``r`` with
``r <= 63`` (so ``g`` itself fits a machine word), and
``r + ceil(log2(B))`` must not exceed 64 so the composite keys fit
uint64 -- the search driver (:mod:`repro.search.batched`) caps its
batch size accordingly and falls back to the scalar path otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.crc.backends import lfsr_sweep_batched
from repro.hd.cost import EnvelopeError

#: Elements of pair-XOR workspace materialized at once by the
#: weight-4/5 kernels (~64 MB of uint64); rows are sub-batched to fit.
PAIR_BUDGET = 8_000_000

#: Largest dense presence-map (``B << r`` elements, one byte each) the
#: batch screens may allocate.  Within it, every screen is a
#: scatter/gather over the 2**r possible syndrome values -- no sorting
#: at all; beyond it (large degree x large batch) the sorted-key
#: screens take over.
BITMAP_BUDGET = 1 << 26


class PositionMap:
    """Reusable presence-map workspace for the dense batch screens.

    One uint8 array marks which ``(row << r) | syndrome`` slots are
    occupied *this stage*: a slot is present iff it holds the current
    epoch stamp.  A new screening stage *bumps the epoch* instead of
    clearing the map -- entries written by earlier stages simply stop
    matching -- so the allocation (``np.zeros``, lazily paged) and the
    invalidation are both free; only the ``B * N`` slots actually
    present are ever written.  One byte per slot keeps the hot
    footprint small enough to stay cache-resident for the random
    scatter/gather traffic.
    """

    MAX_EPOCH = (1 << 8) - 1

    def __init__(self, elems: int) -> None:
        self.array = np.zeros(elems, dtype=np.uint8)
        self._positions: np.ndarray | None = None
        self._epoch = 0

    @property
    def positions(self) -> np.ndarray:
        """Companion uint16 plane for witness extraction: position of
        the syndrome occupying a slot.  Never cleared -- a slot's value
        is meaningful only where ``array`` carries the current epoch
        *and* the caller re-scattered the rows it queries this stage --
        so ``np.empty`` suffices, allocated on first use (screens that
        never extract witnesses never pay for it)."""
        if self._positions is None:
            self._positions = np.empty(len(self.array), dtype=np.uint16)
        return self._positions

    def next_epoch(self) -> int:
        self._epoch += 1
        if self._epoch > self.MAX_EPOCH:
            # One full clear every 255 stages: amortized to nothing.
            self.array.fill(0)
            self._epoch = 1
        return self._epoch


def _as_batch(gs) -> np.ndarray:
    """Coerce a generator batch to a uint64 array."""
    try:
        return np.asarray(gs, dtype=np.uint64)
    except OverflowError:
        raise EnvelopeError(
            "batched kernels require generators that fit 64 bits"
        ) from None


def _common_degree(g_arr: np.ndarray) -> int:
    """The shared degree of a batch (all generators must agree)."""
    if len(g_arr) == 0:
        raise ValueError("empty batch")
    r = int(g_arr.max()).bit_length() - 1
    if not ((g_arr >> np.uint64(r)) == np.uint64(1)).all():
        raise ValueError("batched kernels require a same-degree batch")
    if not 1 <= r <= 63:
        raise EnvelopeError(f"batched kernels support degrees 1..63, got {r}")
    return r


def syndrome_tables_batched(gs, n_positions: int) -> np.ndarray:
    """Return ``(B, n)`` uint64 array ``S`` with ``S[b, i] = x**i mod
    gs[b]`` -- B scalar :func:`~repro.hd.syndromes.syndrome_table`
    calls fused into one vectorized LFSR sweep.

    >>> syndrome_tables_batched([0b1011, 0b1101], 4).tolist()
    [[1, 2, 4, 3], [1, 2, 4, 5]]
    """
    g_arr = _as_batch(gs)
    r = _common_degree(g_arr)
    if n_positions < 0:
        raise ValueError("n_positions must be non-negative")
    out = np.empty((len(g_arr), n_positions), dtype=np.uint64)
    acc = np.ones(len(g_arr), dtype=np.uint64)
    _advance(out, acc, g_arr, r, 0, n_positions)
    return out


#: The vectorized LFSR recurrence itself lives in the backend registry
#: (:func:`repro.crc.backends.lfsr_sweep_batched`) -- the syndrome
#: builder and the CRC kernel codegen share one implementation of the
#: raw MSB-first register step.
_advance = lfsr_sweep_batched


def extend_syndrome_tables(gs, tables: np.ndarray, new_len: int) -> np.ndarray:
    """Grow ``(B, old)`` tables to ``(B, new_len)`` without recomputing
    the prefix -- the cascade reuses each stage's work at the next one.
    ``new_len <= old`` returns a (view of the) prefix, mirroring
    :func:`repro.hd.syndromes.extend_syndrome_table`."""
    B, old = tables.shape
    if new_len <= old:
        return tables[:, :new_len]
    g_arr = _as_batch(gs)
    r = _common_degree(g_arr)
    out = np.empty((B, new_len), dtype=np.uint64)
    out[:, :old] = tables
    if old == 0:
        acc = np.ones(B, dtype=np.uint64)
    else:
        # advance one step past the last stored column
        acc = tables[:, old - 1].copy()
        acc <<= np.uint64(1)
        acc ^= ((acc >> np.uint64(r)) & np.uint64(1)) * g_arr
    _advance(out, acc, g_arr, r, old, new_len)
    return out


# ---------------------------------------------------------------------------
# batch screening primitives
# ---------------------------------------------------------------------------


class BatchKeys:
    """Screening state for one ``(B, N)`` syndrome batch.

    Two interchangeable engines answer the same exact questions:

    *Dense presence map* (borrowed :class:`PositionMap` workspace,
    fitting ``B << r`` slots): slot ``(row << r) | value`` carries the
    stage's epoch stamp iff the value occurs in the row --
    construction scatters the ``B * N`` present slots and nothing is
    ever cleared.  Weight-3 existence (``syn[p] ^ syn[q] == 1``) is a
    gather at ``value ^ 1`` and the pair screens query membership with
    one gather each -- no sorting anywhere.  (Witness *extraction*
    needs positions, not just presence, so it runs the sorted-key
    machinery -- on the already-condemned rows only.)

    *Sorted keys* (fallback above :data:`BITMAP_BUDGET`): a row-wise
    sort makes duplicates *equal* adjacent entries and weight-3
    partners -- consecutive integers -- *adjacent* entries XORing
    to 1; the pair screens lift rows into composite keys
    ``(row << r) | syndrome``, whose row-major flattening is globally
    sorted, so one ``searchsorted`` serves the whole batch.
    """

    def __init__(
        self,
        tables: np.ndarray,
        r: int,
        workspace: "PositionMap | None" = None,
    ) -> None:
        B, N = tables.shape
        if B and r + max((B - 1).bit_length(), 1) > 64:
            raise EnvelopeError(
                f"composite keys for batch of {B} rows at degree {r} "
                "exceed 64 bits; shrink the batch"
            )
        self.B, self.N, self.r = B, N, r
        self.tables = tables
        self._workspace = workspace
        self._inv: np.ndarray | None = None
        self._epoch = np.uint8(0)
        self._idx: np.ndarray | None = None
        self._w3_hit: np.ndarray | None = None
        self._sorted_syn: np.ndarray | None = None
        self._adj: np.ndarray | None = None
        self._flat: np.ndarray | None = None
        if workspace is not None and B and N and (B << r) <= len(
            workspace.array
        ):
            self._epoch = np.uint8(workspace.next_epoch())
            # intp composite indices, built once and reused by the
            # partner gather (`idx ^ 1`): fancy indexing then skips the
            # internal uint64 -> intp cast on every access.
            self._idx = (np.arange(B, dtype=np.intp) << r)[
                :, None
            ] | tables.view(np.int64).astype(np.intp, copy=False)
            inv = workspace.array
            inv[self._idx.reshape(-1)] = self._epoch
            self._inv = inv

    # -- sorted-key fallback state (built on demand) -------------------

    @property
    def sorted_syn(self) -> np.ndarray:
        if self._sorted_syn is None:
            self._sorted_syn = np.sort(self.tables, axis=1)
        return self._sorted_syn

    @property
    def _adjacent_xor(self) -> np.ndarray:
        if self._adj is None:
            if self.N >= 2:
                self._adj = self.sorted_syn[:, 1:] ^ self.sorted_syn[:, :-1]
            else:
                self._adj = np.empty((self.B, 0), dtype=np.uint64)
        return self._adj

    def flat_keys(self) -> np.ndarray:
        """The globally sorted composite-key array (built on demand)."""
        if self._flat is None:
            rows = np.arange(self.B, dtype=np.uint64) << np.uint64(self.r)
            self._flat = (rows[:, None] | self.sorted_syn).ravel()
        return self._flat

    def contains(self, query_keys: np.ndarray) -> np.ndarray:
        """Element-wise membership of ``query_keys`` (composite keys,
        any shape) in their own row's syndrome set."""
        if self._inv is not None:
            return self._inv[query_keys] == self._epoch
        flat = self.flat_keys()
        q = query_keys.ravel()
        if len(flat) == 0 or len(q) == 0:
            return np.zeros(query_keys.shape, dtype=bool)
        idx = np.searchsorted(flat, q)
        np.minimum(idx, len(flat) - 1, out=idx)
        return (flat[idx] == q).reshape(query_keys.shape)

    # -- screens -------------------------------------------------------

    def duplicate_rows(self) -> np.ndarray:
        """(B,) bool: rows containing a duplicate syndrome -- i.e.
        ``order(x mod g) <= N - 1``, the weight-2 refutation.

        Because each row is a genuine syndrome sequence starting at
        ``syn[0] == 1``, "some syndrome repeats within the window" is
        *equivalent* to "syndrome 1 reappears": ``syn[i] == syn[j]``
        (``i < j``) means ``g`` divides ``x**(j-i) - 1``, so
        ``syn[j-i] == 1``.  One elementwise compare, no map or sort.
        """
        if self.N < 2:
            return np.zeros(self.B, dtype=bool)
        return (self.tables[:, 1:] == np.uint64(1)).any(axis=1)

    def weight3_rows(self) -> np.ndarray:
        """(B,) bool: rows where some ``syn[p] ^ syn[q] == 1`` -- i.e.
        ``{0, p, q}`` is a weight-3 codeword (anchored form; position 0
        can never participate, since its syndrome is 1 and a partner
        would need the never-occurring syndrome 0).  Exact on rows
        without duplicate syndromes -- the cascade's ascending-weight
        precondition."""
        if self._inv is not None:
            assert self._idx is not None
            if self._w3_hit is None:
                self._w3_hit = (
                    np.take(self._inv, self._idx ^ 1) == self._epoch
                )
            return self._w3_hit.any(axis=1)
        return (self._adjacent_xor == np.uint64(1)).any(axis=1)

    def weight3_witnesses(
        self, rows: np.ndarray, window: int
    ) -> list[tuple[int, int, int] | None]:
        """Weight-3 witnesses for the given (weight-2-clean) rows,
        replicating the scalar :func:`~repro.hd.mitm.windowed_witness`
        choice exactly; ``None`` where every match needs a partner at
        or beyond ``window`` (callers fall back to the full search).

        With the presence map active, positions come from a companion
        uint16 plane scattered for just the requested rows -- presence
        proves a partner exists, the plane says *where*; a gathered
        position is trusted only where presence holds, so the plane is
        never cleared.  Without the map (or with positions overflowing
        uint16) the sorted-key extraction runs on the requested rows.
        """
        m = len(rows)
        if (
            self._inv is None
            or self._w3_hit is None
            or self.N > 0xFFFF
            or m == 0
        ):
            return weight3_witnesses(self.tables[rows], window)
        assert self._idx is not None and self._workspace is not None
        w = min(window, self.N)
        idx_r = self._idx[rows]
        pos = self._workspace.positions
        pos[idx_r] = np.arange(self.N, dtype=np.uint16)[None, :]
        p = np.take(pos, idx_r ^ 1)
        ok = self._w3_hit[rows] & (p < w)
        has = ok.any(axis=1)
        b = ok.argmax(axis=1)
        pp = p[np.arange(m), b]
        return [
            tuple(sorted((0, int(pp[i]), int(b[i])))) if has[i] else None
            for i in range(m)
        ]


def weight2_witnesses(tables: np.ndarray) -> list[tuple[int, int]]:
    """Witness ``(0, order)`` per row of a duplicate-carrying batch:
    the first position ``j >= 1`` with ``syn[j] == 1`` is exactly the
    order of ``x`` (which the duplicate guarantees is ``<= N - 1``),
    matching the scalar :func:`~repro.hd.breakpoints.refute_hd_at`."""
    hit = tables[:, 1:] == np.uint64(1)
    assert hit.any(axis=1).all(), "weight-2 witness requires order <= N-1"
    orders = hit.argmax(axis=1) + 1
    return [(0, int(j)) for j in orders]


def weight3_witnesses(
    tables: np.ndarray, window: int
) -> list[tuple[int, int, int] | None]:
    """Extract a weight-3 witness per row, replicating the scalar
    :func:`~repro.hd.mitm.windowed_witness` choice exactly: the first
    position ``b`` (ascending) whose syndrome matches some
    ``syn[p] ^ 1`` with ``p < window``.  Rows whose only matches need
    ``p >= window`` get ``None`` (the caller falls back to the full
    witness search, like the scalar cascade does).

    All partner pairs fall out of one argsort per row: partners are
    consecutive integers, hence adjacent in sort order.  ``p`` is
    unique per ``b`` because the rows are weight-2 clean (distinct
    syndromes) -- the precondition the ascending-weight cascade
    guarantees.
    """
    R, N = tables.shape
    w = min(window, N)
    order = np.argsort(tables, axis=1, kind="stable")
    sv = np.take_along_axis(tables, order, axis=1)
    adj = (sv[:, 1:] ^ sv[:, :-1]) == np.uint64(1)
    hit_row, hit_col = np.nonzero(adj)
    pos_a = order[hit_row, hit_col]
    pos_b = order[hit_row, hit_col + 1]
    best_b: list[int | None] = [None] * R
    best_p: list[int] = [0] * R
    for i, pa, pb in zip(hit_row.tolist(), pos_a.tolist(), pos_b.tolist()):
        for b, p in ((pa, pb), (pb, pa)):
            # b >= 1 and p >= 1 hold automatically: position 0 has
            # syndrome 1, whose partner would be syndrome 0, which
            # never occurs.
            bb = best_b[i]
            if p < w and (bb is None or b < bb):
                best_b[i], best_p[i] = b, p
    return [
        None if b is None else tuple(sorted((0, best_p[i], b)))
        for i, b in enumerate(best_b)
    ]


_PAIR_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}
_PAIR_CACHE_SLOTS = 8


def _pair_indices(N: int) -> tuple[np.ndarray, np.ndarray]:
    """All pairs ``1 <= a < b < N`` as two index arrays.

    Memoized: a cascade re-enters each stage length once per batch, and
    ``np.triu_indices`` rebuilds cost as much as a whole pair sweep.
    Pair sets above :data:`PAIR_BUDGET` elements are returned uncached
    rather than pinned (callers chunk by the same budget anyway).
    Callers must treat the arrays as read-only.
    """
    hit = _PAIR_CACHE.get(N)
    if hit is not None:
        return hit
    a, b = np.triu_indices(N - 1, k=1)
    a += 1
    b += 1
    if len(a) <= PAIR_BUDGET:
        while len(_PAIR_CACHE) >= _PAIR_CACHE_SLOTS:
            _PAIR_CACHE.pop(next(iter(_PAIR_CACHE)))
        _PAIR_CACHE[N] = (a, b)
    return a, b


_W5_SCRATCH = np.empty(0, dtype=np.uint8)
_W5_EPOCH = 0


def _w5_present_buffer(size: int) -> tuple[np.ndarray, np.uint8]:
    """Reusable presence plane for the weight-5 bitmap match.

    The buffer is epoch-stamped instead of re-zeroed (same trick as
    :class:`PositionMap`): an entry is "present" iff it holds the
    current epoch, so consecutive cascade stages and batches reuse one
    allocation with no clearing scatter; a bulk wipe happens only when
    the ``uint8`` epoch wraps.
    """
    global _W5_SCRATCH, _W5_EPOCH
    if len(_W5_SCRATCH) < size:
        _W5_SCRATCH = np.zeros(size, dtype=np.uint8)
        _W5_EPOCH = 0
    _W5_EPOCH += 1
    if _W5_EPOCH == 256:
        _W5_SCRATCH[:] = 0
        _W5_EPOCH = 1
    return _W5_SCRATCH, np.uint8(_W5_EPOCH)


def weight4_exists(keys: BatchKeys, rows_mask: np.ndarray) -> np.ndarray:
    """(B,) bool (meaningful where ``rows_mask``): does a weight-4
    codeword fit the window?  Anchored form: pair XOR
    ``syn[a] ^ syn[b]`` equals ``syn[p] ^ 1`` for some single ``p`` --
    exact for rows with no weight-2 codeword in the window (a
    degenerate ``p in {a, b}`` match would need a duplicate syndrome).
    """
    tables = keys.tables
    B, N = tables.shape
    out = np.zeros(B, dtype=bool)
    idx = np.flatnonzero(rows_mask)
    if len(idx) == 0 or N < 4:
        return out
    a, b = _pair_indices(N)
    rows_per = max(1, PAIR_BUDGET // max(len(a), 1))
    r_u = np.uint64(keys.r)
    for i0 in range(0, len(idx), rows_per):
        sub = idx[i0 : i0 + rows_per]
        vals = tables[sub][:, a] ^ tables[sub][:, b]
        qk = (sub.astype(np.uint64) << r_u)[:, None] | (vals ^ np.uint64(1))
        out[sub] = keys.contains(qk).any(axis=1)
    return out


def weight5_exists(keys: BatchKeys, rows_mask: np.ndarray) -> np.ndarray:
    """(B,) bool (meaningful where ``rows_mask``): weight-5 existence
    by (2,2)-split matching ``syn[a] ^ syn[b] ^ 1 == syn[c] ^ syn[d]``.
    Exact for rows already clean of weights 2 and 3 (a shared position
    would collapse the match to a weight-3 codeword)."""
    tables = keys.tables
    B, N = tables.shape
    out = np.zeros(B, dtype=bool)
    idx = np.flatnonzero(rows_mask)
    if len(idx) == 0 or N < 5:
        return out
    a, b = _pair_indices(N)
    P = len(a)
    rows_per = max(1, PAIR_BUDGET // max(P, 1))
    r_u = np.uint64(keys.r)
    use_bitmap = keys._inv is not None
    for i0 in range(0, len(idx), rows_per):
        sub = idx[i0 : i0 + rows_per]
        m = len(sub)
        vals = tables[sub][:, a] ^ tables[sub][:, b]
        pk = (np.arange(m, dtype=np.uint64) << r_u)[:, None] | vals
        if use_bitmap:
            # Pair values live in the same 2**r space as singles: one
            # scatter of the pair set, one gather at ``value ^ 1``.
            present, epoch = _w5_present_buffer(m << keys.r)
            present[pk.ravel()] = epoch
            out[sub] = (
                present[(pk ^ np.uint64(1)).ravel()] == epoch
            ).reshape(m, P).any(axis=1)
        else:
            flat = np.sort(pk, axis=1).ravel()
            q = (pk ^ np.uint64(1)).ravel()
            pos = np.searchsorted(flat, q)
            np.minimum(pos, len(flat) - 1, out=pos)
            out[sub] = (flat[pos] == q).reshape(m, P).any(axis=1)
    return out
