"""Syndrome sequences ``r_i = x**i mod G``.

An error pattern flipping bit positions ``P = {p1..pk}`` of a codeword
is undetectable iff ``sum_{p in P} x**p`` is divisible by ``G`` --
equivalently iff the XOR of the per-position syndromes ``r_p`` is zero
(paper §3: undetectable errors are themselves codewords).  Every
algorithm in this package therefore starts from the syndrome table.

Positions follow the convention of :mod:`repro.crc.codeword`:
position 0 is the last FCS bit, positions ``0..r-1`` are the FCS
field, positions ``r..n+r-1`` are data bits.
"""

from __future__ import annotations

import numpy as np

from repro.gf2.poly import degree, gf2_mod


def syndrome_table(g: int, n_positions: int) -> np.ndarray:
    """Return ``uint64`` array ``S`` with ``S[i] = x**i mod g``.

    Requires ``degree(g) <= 64`` so remainders fit a machine word (any
    CRC width through 64 bits -- the paper's r=32 comfortably, and
    also the degree-64 *combined* generators of stacked link+app CRC
    analysis).  Computed with the standard LFSR recurrence
    ``r_{i+1} = (r_i << 1) ^ (g if top bit set)``.

    >>> syndrome_table(0b1011, 4).tolist()   # x^3+x+1
    [1, 2, 4, 3]
    """
    r = degree(g)
    if not 1 <= r <= 64:
        raise ValueError(f"generator degree {r} outside supported range 1..64")
    if n_positions < 0:
        raise ValueError("n_positions must be non-negative")
    low = g & ((1 << r) - 1)  # generator without its top term
    top = 1 << (r - 1)
    out = np.empty(n_positions, dtype=np.uint64)
    acc = 1
    for i in range(n_positions):
        out[i] = acc
        if acc & top:
            acc = ((acc ^ top) << 1) ^ low
        else:
            acc <<= 1
    return out


def extend_syndrome_table(g: int, table: np.ndarray, new_len: int) -> np.ndarray:
    """Grow an existing syndrome table to ``new_len`` positions without
    recomputing the prefix (used by increasing-length filtering)."""
    old_len = len(table)
    if new_len <= old_len:
        return table[:new_len]
    r = degree(g)
    low = g & ((1 << r) - 1)
    top = 1 << (r - 1)
    out = np.empty(new_len, dtype=np.uint64)
    out[:old_len] = table
    acc = int(table[old_len - 1]) if old_len else 1
    if old_len:
        # advance one step past the last stored syndrome
        if acc & top:
            acc = ((acc ^ top) << 1) ^ low
        else:
            acc <<= 1
    for i in range(old_len, new_len):
        out[i] = acc
        if acc & top:
            acc = ((acc ^ top) << 1) ^ low
        else:
            acc <<= 1
    return out


def syndrome_of_positions(g: int, positions: list[int] | tuple[int, ...]) -> int:
    """Exact (big-int) syndrome of an error pattern given by positions.

    Independent of :func:`syndrome_table` -- used to re-verify every
    witness the fast engines produce, and as the oracle in
    property-based tests.

    >>> syndrome_of_positions(0b1011, [0, 1, 3])  # x^3+x+1 itself
    0
    """
    pattern = 0
    for p in positions:
        if p < 0:
            raise ValueError("negative position")
        pattern ^= 1 << p
    return gf2_mod(pattern, g)


def is_undetected_pattern(g: int, positions: list[int] | tuple[int, ...]) -> bool:
    """True iff flipping exactly these codeword positions is an
    undetectable error for generator ``g`` (i.e. the pattern is a
    codeword)."""
    return syndrome_of_positions(g, positions) == 0
