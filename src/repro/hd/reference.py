"""The paper's enumeration engine, reproduced faithfully.

§4.1 of the paper describes "very carefully optimized and tuned C++"
that examines all combinations of k bit errors across the (n+r)-bit
codeword, with three orthogonal optimizations:

* **early bailout** -- stop as soon as the first undetected pattern is
  found (sufficient for filtering);
* **FCS-first ordering** -- because "the majority of polynomials had at
  least one undetected error that involved bits in the FCS field",
  patterns with one or two bits in the r low-order (FCS) positions are
  tried before the rest;
* **increasing-length filtering** -- handled one level up, in
  :mod:`repro.hd.breakpoints`.

This module reimplements that engine directly (same O(C(n+r, k))
pattern walk) so that (a) the fast MITM engine has an independent
reference to be validated against, and (b) the optimization effects
the paper reports can be measured (benchmark E6).  It is meant for
small windows; use :mod:`repro.hd.mitm` for real work.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from collections.abc import Iterator

from repro.gf2.poly import degree
from repro.hd.syndromes import syndrome_table


def _pattern_order_lex(N: int, k: int) -> Iterator[tuple[int, ...]]:
    """Plain lexicographic enumeration of k-subsets of [0, N)."""
    yield from combinations(range(N), k)


def _pattern_order_fcs_first(N: int, k: int, r: int) -> Iterator[tuple[int, ...]]:
    """The paper's heuristic order: patterns with exactly one FCS bit
    first, then exactly two, then none, then three or more.

    Positions ``0..r-1`` are the FCS field.  Every k-subset is yielded
    exactly once.
    """
    data = range(min(r, N), N)
    fcs = range(min(r, N))

    def with_fcs_bits(f: int) -> Iterator[tuple[int, ...]]:
        if f > len(fcs) or k - f < 0 or k - f > len(data):
            return
        for fcs_part in combinations(fcs, f):
            for data_part in combinations(data, k - f):
                yield tuple(sorted(fcs_part + data_part))

    for f in (1, 2, 0):
        yield from with_fcs_bits(f)
    for f in range(3, min(k, r) + 1):
        yield from with_fcs_bits(f)


@dataclass
class ReferenceResult:
    """Outcome of a reference-engine run.

    ``weights`` has exact counts when ``early_out`` was off; with
    ``early_out`` it is truncated at the first undetected pattern.
    ``patterns_examined`` is the number of syndrome evaluations -- the
    quantity the paper's optimization discussion is about.
    """

    weights: dict[int, int]
    first_witness: tuple[int, ...] | None
    first_witness_weight: int | None
    patterns_examined: int
    bailed_out: bool


def enumerate_weights_reference(
    g: int,
    data_word_bits: int,
    k_max: int,
    *,
    order: str = "lex",
    early_out: bool = False,
    hard_limit: int = 50_000_000,
) -> ReferenceResult:
    """Walk k-bit error patterns exactly as the paper's engine does.

    Parameters mirror the paper's knobs: ``order`` is ``"lex"`` or
    ``"fcs_first"``; ``early_out`` stops at the first undetected
    pattern (the filtering mode).  ``hard_limit`` guards against
    accidentally requesting the intractable (this engine exists for
    validation and methodology benchmarks, not production searches).
    """
    r = degree(g)
    N = data_word_bits + r
    if order not in ("lex", "fcs_first"):
        raise ValueError(f"unknown order {order!r}")
    syn = [int(s) for s in syndrome_table(g, N)]
    weights: dict[int, int] = {}
    examined = 0
    for k in range(2, k_max + 1):
        weights[k] = 0
        patterns = (
            _pattern_order_lex(N, k)
            if order == "lex"
            else _pattern_order_fcs_first(N, k, r)
        )
        for combo in patterns:
            examined += 1
            if examined > hard_limit:
                raise RuntimeError(
                    f"reference engine exceeded hard limit of {hard_limit} patterns"
                )
            acc = 0
            for p in combo:
                acc ^= syn[p]
            if acc == 0:
                weights[k] += 1
                if early_out:
                    return ReferenceResult(
                        weights=weights,
                        first_witness=combo,
                        first_witness_weight=k,
                        patterns_examined=examined,
                        bailed_out=True,
                    )
    return ReferenceResult(
        weights=weights,
        first_witness=None,
        first_witness_weight=None,
        patterns_examined=examined,
        bailed_out=False,
    )


def first_undetected_reference(
    g: int,
    data_word_bits: int,
    k_max: int,
    *,
    order: str = "fcs_first",
    hard_limit: int = 50_000_000,
) -> ReferenceResult:
    """Filtering mode: the paper's inner loop.  Equivalent to
    :func:`enumerate_weights_reference` with ``early_out=True``; named
    separately because it is the operation whose speed §4.1's
    optimizations target."""
    return enumerate_weights_reference(
        g, data_word_bits, k_max,
        order=order, early_out=True, hard_limit=hard_limit,
    )
