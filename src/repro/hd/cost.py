"""Cost models for weight evaluation, and the envelope guard.

The paper's §4.1 reasons explicitly about evaluation cost -- e.g. that
filtering for HD>4 at 1024 bits is "almost 17,500 times faster" than at
12112 bits because the work grows as ``(n+r)**4``.  These estimators
reproduce that cost model for the reference engine, give the
corresponding model for the meet-in-the-middle engine, and provide the
:class:`EnvelopeError` raised when an exact computation would exceed
the configured memory/work envelope (so the library never silently
approximates).
"""

from __future__ import annotations

from math import comb


class EnvelopeError(RuntimeError):
    """Raised when an exact computation would exceed the configured
    work/memory envelope.

    The library's exactness contract forbids silently degrading to an
    approximation; callers catch this and either raise the envelope
    (e.g. ``REPRO_FULL=1`` benchmarks) or report the cell as
    not-computed.
    """


def enumeration_cost(codeword_bits: int, k: int) -> int:
    """Number of k-bit patterns the paper's enumeration engine examines
    in the worst case: ``C(n+r, k)`` (paper §3's combinatorial count).

    >>> enumeration_cost(12144, 4)   # the paper's "906 10^12"
    905776814103876
    """
    return comb(codeword_bits, k)


def enumeration_speedup(short_bits: int, long_bits: int, k: int = 4) -> float:
    """Cost ratio of filtering at a longer vs shorter length -- the
    paper's "filtering at 1024 bits is ~17,500x faster than at 12112
    bits" claim (data words; +32 FCS bits each).

    >>> round(enumeration_speedup(1024 + 32, 12112 + 32, 4))
    17581
    """
    return enumeration_cost(long_bits, k) / enumeration_cost(short_bits, k)


def mitm_cost(codeword_bits: int, k: int) -> int:
    """Work of the anchored meet-in-the-middle check for weight ``k``:
    the size of the streamed (larger) side, ``C(N-1, ceil((k-1)/2))``.
    """
    if k <= 2:
        return codeword_bits
    return comb(codeword_bits - 1, (k - 1 + 1) // 2)


def mitm_sorted_side(codeword_bits: int, k: int) -> int:
    """Memory (in elements) of the materialized, sorted smaller side:
    ``C(N-1, (k-1)//2)``."""
    if k <= 2:
        return codeword_bits
    return comb(codeword_bits - 1, (k - 1) // 2)


# Default envelopes, tuned for a ~15 GB machine.  The sorted side is
# held in RAM (8 bytes/element plus sort workspace); the streamed side
# is pure compute time.
DEFAULT_MEM_ELEMS = 700_000_000       # ~5.6 GB sorted side
DEFAULT_STREAM_ELEMS = 30_000_000_000  # a few minutes of searchsorted

# Largest fully-materialized combination-XOR array (elements) for the
# level-wise generator; streaming sides deeper than s=3 must fit this.
LEVELWISE_CAP = 60_000_000


def _stream_depth(k: int) -> int:
    """Subset size of the streamed (large) side for a weight-k check."""
    return (k - 1) - (k - 1) // 2


def max_affordable_window(
    k: int,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
) -> int:
    """Largest codeword window (bits) at which an exact weight-k check
    fits the envelope -- used by breakpoint probes to extract the most
    information before capping a high-weight scan."""
    depth = _stream_depth(k)

    def fits(n: int) -> bool:
        if mitm_sorted_side(n, k) > mem_elems:
            return False
        if mitm_cost(n, k) > stream_elems:
            return False
        # Deep streamed sides (s >= 4) are generated group-by-max from
        # a materialized level s-1, which must fit its own cap.
        if depth >= 4 and comb(n - 1, depth - 1) > LEVELWISE_CAP:
            return False
        return True

    lo, hi = k, 1 << 24
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


def check_envelope(
    codeword_bits: int,
    k: int,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
) -> None:
    """Raise :class:`EnvelopeError` if an exact weight-k check at this
    window size exceeds the envelope."""
    mem = mitm_sorted_side(codeword_bits, k)
    if mem > mem_elems:
        raise EnvelopeError(
            f"weight-{k} check at {codeword_bits} bits needs a sorted side of "
            f"{mem:.3g} elements (> {mem_elems:.3g} allowed)"
        )
    work = mitm_cost(codeword_bits, k)
    if work > stream_elems:
        raise EnvelopeError(
            f"weight-{k} check at {codeword_bits} bits streams {work:.3g} "
            f"elements (> {stream_elems:.3g} allowed)"
        )
