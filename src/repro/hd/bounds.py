"""Theoretical limits on achievable Hamming distance.

The paper's abstract asserts that for an Ethernet MTU "the theoretical
maximum is detection of five independent bit errors (HD=6)".  That is
the **Hamming (sphere-packing) bound** applied to a shortened code
with 32 check bits: the 2^r syndrome values must be able to
distinguish all correctable error patterns,

    sum_{i=0}^{t} C(n + r, i)  <=  2^r,      t = floor((d-1)/2),

plus the parity refinement for even distances (an even-distance code
can additionally detect one more error beyond what it corrects).
This module computes the bound, so the paper's statement becomes a
checkable corollary rather than folklore -- and the gap between the
bound and what the exhaustive search actually found (no polynomial
with HD=6 beyond 32,738 bits) is measurable.

Also included: the Singleton bound (d <= r + 1, binding only at tiny
lengths) -- together they cap Table 1's top rows.
"""

from __future__ import annotations

from math import comb


def hamming_bound_ok(r: int, data_word_bits: int, d: int) -> bool:
    """Can a code with ``r`` check bits and the given data-word length
    possibly have minimum distance ``d``?  (Necessary condition only.)

    Uses the sphere-packing bound on ``t = floor((d-1)/2)``-error
    correction; for even ``d`` the standard refinement applies the
    bound for ``d - 1`` to the code shortened by one position (an even
    code extends an odd one).
    """
    if d < 1:
        raise ValueError("distance must be positive")
    n_total = data_word_bits + r
    if d == 1:
        return True
    if d % 2 == 0:
        # even-distance code of length n <=> odd-distance d-1 code of
        # length n-1 (puncture/extend duality)
        return hamming_bound_ok(r, data_word_bits - 1, d - 1) if data_word_bits >= 1 else True
    t = (d - 1) // 2
    volume = sum(comb(n_total, i) for i in range(t + 1))
    return volume <= (1 << r)


def singleton_bound_ok(r: int, d: int) -> bool:
    """Singleton bound: ``d <= r + 1`` for any code with r check bits."""
    return d <= r + 1


def max_theoretical_hd(r: int, data_word_bits: int, *, hd_cap: int = 64) -> int:
    """Largest ``d`` permitted by both bounds at this length.

    >>> max_theoretical_hd(32, 12112)    # the abstract's "HD=6 is possible"
    6
    """
    best = 1
    for d in range(2, min(hd_cap, r + 1) + 1):
        if hamming_bound_ok(r, data_word_bits, d) and singleton_bound_ok(r, d):
            best = d
    return best


def max_length_for_theoretical_hd(r: int, d: int, *, n_cap: int = 1 << 34) -> int:
    """Largest data-word length at which the bounds still allow
    minimum distance ``d`` (binary search on the monotone bound)."""
    if not singleton_bound_ok(r, d):
        return 0
    lo, hi = 0, n_cap
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if hamming_bound_ok(r, mid, d):
            lo = mid
        else:
            hi = mid - 1
    return lo


def bound_vs_achieved(r: int = 32) -> list[tuple[int, int, int | None]]:
    """The paper's empirical global limits against the sphere-packing
    ceiling: rows of ``(hd, bound_max_length, search_max_length)``.

    The search column carries the §4.2 inverse-filtering results: no
    32-bit polynomial achieves HD=6 at or above 32,739 data-word bits,
    none HD=5 at or above 65,507; HD=4's limit is the best order
    (0x8F6E37A0's 2^31 - 33).  ``None`` marks rows the paper did not
    bound globally.
    """
    search_limits: dict[int, int | None] = {
        6: 32738, 5: 65506, 4: 2**31 - 33, 3: 2**32 - 33,
    }
    rows = []
    for hd in (6, 5, 4, 3):
        rows.append(
            (hd, max_length_for_theoretical_hd(r, hd), search_limits.get(hd))
        )
    return rows
