"""Hamming-distance determination.

``hamming_distance(g, n)`` returns the exact minimum Hamming distance
of the code formed by appending ``g``'s r-bit CRC to n-bit data words:
the smallest ``k`` such that some weight-k error pattern within the
``(n+r)``-bit codeword is undetected.  This single number is the
paper's figure of merit (Figure 1's y-axis, Table 1's row labels).

Strategy per candidate ``k`` (ascending, so the MITM precondition
holds):

1. ``k == 2``: exact via the order of ``x`` (a theorem, no search).
2. odd ``k`` with ``(x+1) | g``: weight is 0 (parity theorem); the
   shortcut can be disabled to mirror the paper's validation runs,
   which deliberately did not exploit it.
3. a *windowed witness* probe -- cheap, and conclusive when it finds
   (and re-verifies) a codeword, which it does almost immediately in
   dense regimes;
4. the full anchored meet-in-the-middle check, which is exact in both
   directions but subject to the work envelope.

If neither 3 nor 4 can decide (envelope exceeded and no witness), an
:class:`EnvelopeError` propagates -- the library never guesses.
"""

from __future__ import annotations

import numpy as np

from repro.gf2.poly import degree, divisible_by_x_plus_1
from repro.gf2.order import order_of_x
from repro.hd.cost import (
    DEFAULT_MEM_ELEMS,
    DEFAULT_STREAM_ELEMS,
    EnvelopeError,
    mitm_sorted_side,
    mitm_cost,
)
from repro.hd.mitm import exists_weight_k, windowed_witness
from repro.hd.syndromes import syndrome_table


def hamming_distance(
    g: int,
    data_word_bits: int,
    *,
    k_max: int = 16,
    exploit_parity: bool = True,
    witness_window: int = 400,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
    syn: np.ndarray | None = None,
) -> int:
    """Exact minimum Hamming distance at the given data-word length.

    Returns the smallest ``k`` (2 <= k <= k_max) for which an
    undetected k-bit error exists; raises ``ValueError`` if the HD
    exceeds ``k_max`` (choose a larger ``k_max``) and
    :class:`EnvelopeError` if exactness would exceed the envelope.

    >>> from repro.gf2.notation import koopman_to_full
    >>> hamming_distance(koopman_to_full(0x82608EDB), 12112)
    4
    """
    r = degree(g)
    N = data_word_bits + r
    if data_word_bits < 1:
        raise ValueError("data word must have at least one bit")
    parity = divisible_by_x_plus_1(g) if exploit_parity else False
    # k = 2 via order (exact, instant).
    if order_of_x(g) <= N - 1:
        return 2
    if syn is None:
        syn = syndrome_table(g, N)
    for k in range(3, k_max + 1):
        if parity and k % 2 == 1:
            continue
        if _weight_k_exists(
            g, N, k,
            syn=syn,
            witness_window=witness_window,
            mem_elems=mem_elems,
            stream_elems=stream_elems,
        ):
            return k
    raise ValueError(
        f"HD exceeds k_max={k_max} at n={data_word_bits}; raise k_max"
    )


def _weight_k_exists(
    g: int,
    N: int,
    k: int,
    *,
    syn: np.ndarray,
    witness_window: int,
    mem_elems: int,
    stream_elems: int,
) -> bool:
    """Decide weight-k existence exactly, trying cheap proofs first."""
    # Cheap positive proof: windowed witness (verified, hence exact).
    full_is_cheap = (
        mitm_sorted_side(N, k) <= 2_000_000 and mitm_cost(N, k) <= 20_000_000
    )
    if not full_is_cheap and k >= 3:
        window = min(witness_window, N)
        # Keep the windowed side within a small memory budget by
        # shrinking the window for larger k.
        while window > k:
            from math import comb

            if comb(window - 1, k - 2) <= 30_000_000:
                break
            window //= 2
        try:
            witness = windowed_witness(g, N, k, window=window, syn=syn)
        except EnvelopeError:
            witness = None
        if witness is not None:
            return True
    # Exact two-sided answer.
    return exists_weight_k(
        g, N, k, syn=syn, mem_elems=mem_elems, stream_elems=stream_elems
    )


def hamming_distance_bound(
    g: int,
    data_word_bits: int,
    *,
    k_max: int = 16,
    exploit_parity: bool = True,
    witness_window: int = 400,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
) -> tuple[int, bool]:
    """Like :func:`hamming_distance`, but degrades gracefully: returns
    ``(hd, True)`` when the exact HD was determined, or
    ``(bound, False)`` where ``bound`` is a *verified lower bound*
    (all weights below ``bound`` proven zero) when the work envelope
    or ``k_max`` cut the search off.

    The degree-64 combined generators of stacked-CRC analysis land
    here routinely: their joint HD often exceeds what is exactly
    computable, and a verified "HD >= 8" is the useful answer.
    """
    r = degree(g)
    N = data_word_bits + r
    if data_word_bits < 1:
        raise ValueError("data word must have at least one bit")
    parity = divisible_by_x_plus_1(g) if exploit_parity else False
    if order_of_x(g) <= N - 1:
        return 2, True
    syn = syndrome_table(g, N)
    verified_below = 3
    for k in range(3, k_max + 1):
        if parity and k % 2 == 1:
            verified_below = k + 1
            continue
        try:
            exists = _weight_k_exists(
                g, N, k,
                syn=syn,
                witness_window=witness_window,
                mem_elems=mem_elems,
                stream_elems=stream_elems,
            )
        except EnvelopeError:
            return verified_below, False
        if exists:
            return k, True
        verified_below = k + 1
    return verified_below, False


def hd_profile(
    g: int,
    lengths: list[int],
    *,
    k_max: int = 16,
    exploit_parity: bool = True,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
) -> dict[int, int]:
    """HD at each of several data-word lengths -- one Figure 1 series.

    Computes each length independently; for dense Figure-1-style grids
    prefer :func:`repro.hd.breakpoints.hd_breakpoint_table`, which
    derives the whole curve from the (few) breakpoints instead.
    """
    out: dict[int, int] = {}
    for n in sorted(lengths):
        out[n] = hamming_distance(
            g, n,
            k_max=k_max,
            exploit_parity=exploit_parity,
            mem_elems=mem_elems,
            stream_elems=stream_elems,
        )
    return out
