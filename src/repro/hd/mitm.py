"""Anchored meet-in-the-middle weight-k codeword search.

The paper's engine enumerates all ``C(n+r, k)`` k-bit patterns.  This
module exploits two structural facts to do exponentially better while
remaining exact:

1. **Anchoring.**  ``x`` is invertible mod ``G`` (``G(0)=1``), so any
   weight-k codeword can be shifted down until its lowest set bit is
   position 0 while remaining a codeword inside the same window.  A
   weight-k codeword exists within an ``N``-bit window iff there are
   distinct positions ``0 < b_1 < .. < b_{k-1} < N`` whose syndromes
   XOR to ``r_0 == 1``.
2. **Meet in the middle.**  Split ``k-1 = s + t`` (``s <= t``).
   Materialize and sort the ``C(N-1, s)`` XORs of the small side
   (pre-XORed with the target 1); run the ``C(N-1, t)`` XORs of the
   large side through ``searchsorted``.  A match is a codeword --
   *provided* the two sides use disjoint positions, which is
   guaranteed whenever no codeword of weight ``k - 2m`` exists in the
   window (overlapping positions cancel pairwise).  The drivers in
   :mod:`repro.hd.hamming` always test ``k`` in increasing order, so
   this precondition holds by construction; witness extraction also
   re-verifies every candidate against the exact big-int syndrome.

Cost: ``O(C(N, ceil((k-1)/2)))`` versus the paper's ``O(C(N, k))``.
Concretely, confirming HD=6 for 0xBA0DC66B at 16,360 bits -- 19 days
of compute in the paper -- is a ~1.3e8-element stream here (seconds).

Two generation strategies, chosen by shape:

* **row streaming** (s <= 3, large windows): iterate (s-1)-prefixes in
  Python, vectorize the innermost index.  Overhead O(C(N, s-1)) rows,
  amortized when rows are long.
* **level-wise materialization** (s >= 2, small windows): build all
  s-subset XORs bottom-up grouped by maximum position -- O(s*N)
  Python iterations regardless of s, with closed-form unranking to
  recover positions.  This is what makes weight-14 checks at 40-bit
  windows (Table 1's top rows) instantaneous.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from collections.abc import Iterator, Callable

import numpy as np

from repro.hd.cost import (
    DEFAULT_MEM_ELEMS,
    DEFAULT_STREAM_ELEMS,
    LEVELWISE_CAP,
    EnvelopeError,
    check_envelope,
)
from repro.hd.syndromes import syndrome_table, syndrome_of_positions
from repro.obs import metrics as obs_metrics

DEFAULT_CHUNK = 1 << 22  # streamed elements per searchsorted batch


# ---------------------------------------------------------------------------
# generation: row streaming
# ---------------------------------------------------------------------------


@dataclass
class _Row:
    """One streamed row: XORs of ``prefix`` with each single position
    ``j_start .. j_start+len-1`` (positions, not offsets)."""

    prefix: tuple[int, ...]
    j_start: int
    values: np.ndarray


def _rows(
    syn: np.ndarray, s: int, lo: int, hi: int, prefix: tuple[int, ...], acc: int
) -> Iterator[_Row]:
    """Yield all XORs of ``acc`` with s-subsets of positions [lo, hi),
    one row per (s-1)-prefix, innermost dimension vectorized.

    Python-level overhead is one iteration per (s-1)-prefix, i.e.
    O(C(hi-lo, s-1)) -- fine for s <= 3 where rows are long, ruinous
    beyond (use :func:`_levelwise` there).
    """
    if s == 1:
        if lo < hi:
            yield _Row(prefix, lo, np.bitwise_xor(syn[lo:hi], np.uint64(acc)))
        return
    for i in range(lo, hi - (s - 1)):
        yield from _rows(syn, s - 1, i + 1, hi, prefix + (i,), acc ^ int(syn[i]))


# ---------------------------------------------------------------------------
# generation: level-wise materialization
# ---------------------------------------------------------------------------


def _levelwise(
    syn: np.ndarray, s: int, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray]:
    """All XORs of s-subsets of positions [lo, hi), fully materialized.

    Returns ``(values, maxpos)`` ordered by maximum position (grouped),
    and within a group recursively by the same rule -- the order that
    :func:`_unrank_levelwise` inverts in closed form.

    The t-subsets with maximum ``j`` are ``syn[j] ^`` every
    (t-1)-subset drawn from positions below ``j``; grouping makes
    "below j" a prefix slice, so each level is one pass of vectorized
    XORs with O(hi - lo) Python iterations.
    """
    m = hi - lo
    if s < 1 or m < s:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    if comb(m, s) > LEVELWISE_CAP:
        raise EnvelopeError(
            f"level-wise side C({m},{s}) exceeds materialization cap"
        )
    vals = syn[lo:hi].astype(np.uint64, copy=True)
    for t in range(2, s + 1):
        parts = []
        for j in range(lo + t - 1, hi):
            cnt = comb(j - lo, t - 1)  # (t-1)-subsets entirely below j
            parts.append(np.bitwise_xor(vals[:cnt], syn[j]))
        vals = np.concatenate(parts) if parts else np.empty(0, np.uint64)
    # maxpos of the final level, rebuilt from group sizes (cheap).
    sizes = [comb(j - lo, s - 1) for j in range(lo + s - 1, hi)]
    maxpos = np.repeat(
        np.arange(lo + s - 1, hi, dtype=np.int64), sizes
    ) if sizes else np.empty(0, np.int64)
    return vals, maxpos


def _unrank_levelwise(index: int, s: int, lo: int) -> tuple[int, ...]:
    """Positions of the ``index``-th entry of :func:`_levelwise` output.

    The group of subsets with maximum ``j`` starts at offset
    ``C(j - lo, t)`` (the count of subsets entirely below ``j``), so
    each position is recovered arithmetically, largest first.
    """
    positions = []
    for t in range(s, 0, -1):
        j = t - 1 + lo
        while comb(j + 1 - lo, t) <= index:
            j += 1
        positions.append(j)
        index -= comb(j - lo, t)
    assert index == 0
    return tuple(sorted(positions))


# ---------------------------------------------------------------------------
# sides
# ---------------------------------------------------------------------------


@dataclass
class _SortedSide:
    """The materialized, sorted small side of a MITM check."""

    values: np.ndarray                 # sorted ascending
    s: int
    lo: int
    maxpos: np.ndarray | None = None   # aligned with values
    orig_index: np.ndarray | None = None  # aligned; unranking handle

    def positions_at(self, i: int) -> tuple[int, ...]:
        assert self.orig_index is not None
        return _unrank_levelwise(int(self.orig_index[i]), self.s, self.lo)

    def max_at(self, i: int) -> int:
        assert self.maxpos is not None
        return int(self.maxpos[i])


def _materialize_side(
    syn: np.ndarray,
    s: int,
    lo: int,
    hi: int,
    target: int,
    with_positions: bool,
) -> _SortedSide:
    """Build the sorted small side: all s-subset XORs of [lo, hi),
    each pre-XORed with ``target``."""
    if s == 1:
        values = np.bitwise_xor(syn[lo:hi], np.uint64(target))
        maxpos = np.arange(lo, hi, dtype=np.int64)
        orig = np.arange(hi - lo, dtype=np.int64)
    else:
        values, maxpos = _levelwise(syn, s, lo, hi)
        values = np.bitwise_xor(values, np.uint64(target))
        orig = np.arange(len(values), dtype=np.int64)
    if not with_positions:
        values.sort(kind="stable")
        return _SortedSide(values=values, s=s, lo=lo)
    order = np.argsort(values, kind="stable")
    return _SortedSide(
        values=values[order],
        s=s,
        lo=lo,
        maxpos=maxpos[order],
        orig_index=orig[order],
    )


@dataclass
class _Chunk:
    """One streamed chunk of the large side."""

    values: np.ndarray
    elem_max: np.ndarray | None            # per-element max position
    resolve: Callable[[int], tuple[int, ...]]  # offset -> positions


def _stream_side(
    syn: np.ndarray,
    s: int,
    lo: int,
    hi: int,
    chunk_elems: int,
    *,
    want_max: bool = False,
) -> Iterator[_Chunk]:
    """Stream the large side in chunks.

    Preferred strategy (any ``s >= 2``): materialize level ``s-1``
    once (``C(N, s-1)`` elements) and stream the final level grouped
    by its maximum position ``j`` -- group ``j`` is
    ``syn[j] ^ level[:C(j-lo, s-1)]``, a prefix slice.  When even
    level ``s-1`` exceeds the cap (huge windows), fall back to row
    streaming, which only ``s <= 3`` can afford.
    """
    m = hi - lo
    total = comb(m, s) if m >= s else 0
    if total == 0:
        return
    if s == 1:
        for base in range(lo, hi, chunk_elems):
            end = min(base + chunk_elems, hi)
            yield _Chunk(
                values=syn[base:end],
                elem_max=(
                    np.arange(base, end, dtype=np.int64) if want_max else None
                ),
                resolve=(lambda off, base=base: (base + off,)),
            )
        return
    if comb(m, s - 1) <= LEVELWISE_CAP:
        base_vals, _ = _levelwise(syn, s - 1, lo, hi)
        groups: list[tuple[int, np.ndarray]] = []
        size = 0

        def emit(groups: list[tuple[int, np.ndarray]]) -> _Chunk:
            values = (
                np.concatenate([v for _, v in groups])
                if len(groups) > 1
                else groups[0][1]
            )
            elem_max = None
            if want_max:
                elem_max = np.concatenate(
                    [np.full(len(v), j, dtype=np.int64) for j, v in groups]
                )

            def resolve(offset: int, groups=groups) -> tuple[int, ...]:
                for j, v in groups:
                    if offset < len(v):
                        inner = _unrank_levelwise(offset, s - 1, lo)
                        return tuple(sorted(inner + (j,)))
                    offset -= len(v)
                raise IndexError("offset out of chunk range")

            return _Chunk(values=values, elem_max=elem_max, resolve=resolve)

        for j in range(lo + s - 1, hi):
            cnt = comb(j - lo, s - 1)
            vals = np.bitwise_xor(base_vals[:cnt], syn[j])
            groups.append((j, vals))
            size += cnt
            if size >= chunk_elems:
                yield emit(groups)
                groups = []
                size = 0
        if groups:
            yield emit(groups)
        return
    if s > 3:
        raise EnvelopeError(
            f"streaming side C({m},{s}) needs level C({m},{s - 1}) "
            "materialized, which exceeds the cap"
        )
    batch: list[_Row] = []
    size = 0

    def emit_rows(batch: list[_Row]) -> _Chunk:
        values = (
            np.concatenate([row.values for row in batch])
            if len(batch) > 1
            else batch[0].values
        )
        elem_max = None
        if want_max:
            elem_max = np.concatenate(
                [
                    np.arange(row.j_start, row.j_start + len(row.values), dtype=np.int64)
                    for row in batch
                ]
            )

        def resolve(offset: int, batch=batch) -> tuple[int, ...]:
            for row in batch:
                if offset < len(row.values):
                    return tuple(sorted(row.prefix + (row.j_start + offset,)))
                offset -= len(row.values)
            raise IndexError("offset out of chunk range")

        return _Chunk(values=values, elem_max=elem_max, resolve=resolve)

    for row in _rows(syn, s, lo, hi, (), 0):
        batch.append(row)
        size += len(row.values)
        if size >= chunk_elems:
            yield emit_rows(batch)
            batch = []
            size = 0
    if batch:
        yield emit_rows(batch)


def _hits(side_values: np.ndarray, chunk_values: np.ndarray) -> np.ndarray:
    """Offsets within ``chunk_values`` whose value occurs in the sorted
    side."""
    if len(side_values) == 0 or len(chunk_values) == 0:
        return np.empty(0, dtype=np.intp)
    idx = np.searchsorted(side_values, chunk_values)
    np.minimum(idx, len(side_values) - 1, out=idx)
    return np.flatnonzero(side_values[idx] == chunk_values)


# ---------------------------------------------------------------------------
# public checks
# ---------------------------------------------------------------------------


def _split(k: int) -> tuple[int, int]:
    s_total = k - 1
    s_small = s_total // 2
    return s_small, s_total - s_small


def exists_weight_k(
    g: int,
    codeword_bits: int,
    k: int,
    *,
    syn: np.ndarray | None = None,
    chunk_elems: int = DEFAULT_CHUNK,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
) -> bool:
    """Exact test: does any weight-``k`` codeword of ``g`` fit within a
    window of ``codeword_bits`` bits?

    Precondition (drivers test ``k`` ascending): no codeword of weight
    ``j`` with ``2 <= j < k`` and ``j == k (mod 2)`` exists in the
    window; otherwise a cross-side position overlap could masquerade
    as a weight-k hit.

    Raises :class:`EnvelopeError` rather than exceeding the configured
    memory/stream envelope.

    >>> exists_weight_k(0b10011, 8, 3)   # x^4+x+1: the generator itself
    True
    """
    N = codeword_bits
    if k < 2 or N < k:
        return False
    if syn is None:
        syn = syndrome_table(g, N)
    metrics = obs_metrics.active()
    metrics.inc("mitm.exists.calls")
    if k == 2:
        # Duplicate syndromes <=> x^(j-i) == 1 <=> order(x) <= N-1.
        return len(np.unique(syn)) < N
    check_envelope(N, k, mem_elems, stream_elems)
    s_small, s_large = _split(k)
    side = _materialize_side(syn, s_small, 1, N, target=1, with_positions=False)
    for chunk in _stream_side(syn, s_large, 1, N, chunk_elems):
        metrics.inc("mitm.chunks_streamed")
        metrics.inc("mitm.elements_streamed", len(chunk.values))
        if len(_hits(side.values, chunk.values)):
            # Early bailout: a hit ends the scan without streaming the
            # rest of the C(N-1, t) side -- the savings the filter
            # cascade banks on in the dense regime.
            metrics.inc("mitm.early_bailouts")
            return True
    return False


def find_witness(
    g: int,
    codeword_bits: int,
    k: int,
    *,
    syn: np.ndarray | None = None,
    chunk_elems: int = DEFAULT_CHUNK,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
) -> tuple[int, ...] | None:
    """Like :func:`exists_weight_k` but returns the positions of a
    weight-``k`` codeword (anchored at 0), or ``None``.

    Every witness is re-verified against the exact big-int syndrome
    before being returned; candidate matches whose sides share a
    position (possible only when the ascending-``k`` precondition was
    violated) are rejected and the scan continues.
    """
    N = codeword_bits
    if k < 2 or N < k:
        return None
    if syn is None:
        syn = syndrome_table(g, N)
    if k == 2:
        values, counts = np.unique(syn, return_counts=True)
        dup = values[counts > 1]
        if len(dup) == 0:
            return None
        where = np.flatnonzero(syn == dup[0])[:2]
        return (int(where[0]), int(where[1]))
    check_envelope(N, k, mem_elems, stream_elems)
    s_small, s_large = _split(k)
    side = _materialize_side(syn, s_small, 1, N, target=1, with_positions=True)
    for chunk in _stream_side(syn, s_large, 1, N, chunk_elems):
        for flat in _hits(side.values, chunk.values):
            flat = int(flat)
            large_part = chunk.resolve(flat)
            value = chunk.values[flat]
            lo_i = int(np.searchsorted(side.values, value, side="left"))
            hi_i = int(np.searchsorted(side.values, value, side="right"))
            for si in range(lo_i, hi_i):
                small_part = side.positions_at(si)
                flat_set = set(small_part) | set(large_part) | {0}
                if len(flat_set) != k:
                    continue
                positions = tuple(sorted(flat_set))
                if syndrome_of_positions(g, positions) == 0:
                    return positions
    return None


def windowed_witness(
    g: int,
    codeword_bits: int,
    k: int,
    *,
    window: int = 400,
    syn: np.ndarray | None = None,
    mem_elems: int = DEFAULT_MEM_ELEMS,
) -> tuple[int, ...] | None:
    """Cheap *existence proof* for dense regimes: look for a weight-k
    codeword of the restricted shape ``{0, b, c_1..c_{k-2}}`` with the
    ``c_i`` confined to the first ``window`` positions and ``b``
    ranging over the whole window of ``codeword_bits``.

    Far above a breakpoint the number of weight-k codewords grows like
    ``C(N, k) / 2**r``, so even this thin slice of the search space
    contains many -- a hit is returned (verified) almost immediately.
    A ``None`` result proves nothing; callers must fall back to
    :func:`exists_weight_k`.
    """
    N = codeword_bits
    if k < 3 or N < k:
        return None
    window = min(window, N)
    if comb(window - 1, k - 2) > min(mem_elems, LEVELWISE_CAP):
        raise EnvelopeError(
            f"windowed witness side C({window - 1},{k - 2}) exceeds memory envelope"
        )
    if syn is None:
        syn = syndrome_table(g, N)
    metrics = obs_metrics.active()
    metrics.inc("mitm.windowed.calls")
    side = _materialize_side(syn, k - 2, 1, window, target=1, with_positions=True)
    queries = syn[1:N]
    for flat in _hits(side.values, queries):
        b = int(flat) + 1
        value = queries[int(flat)]
        lo_i = int(np.searchsorted(side.values, value, side="left"))
        hi_i = int(np.searchsorted(side.values, value, side="right"))
        for si in range(lo_i, hi_i):
            small_part = side.positions_at(si)
            flat_set = {0, b} | set(small_part)
            if len(flat_set) != k:
                continue
            positions = tuple(sorted(flat_set))
            if syndrome_of_positions(g, positions) == 0:
                # The cheap existence proof landed: the candidate dies
                # without a full meet-in-the-middle scan.
                metrics.inc("mitm.windowed.hits")
                return positions
    return None


def minimal_codeword_span(
    g: int,
    probe_bits: int,
    k: int,
    *,
    syn: np.ndarray | None = None,
    chunk_elems: int = DEFAULT_CHUNK,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
) -> int | None:
    """Exact minimal span (in bits) of any weight-``k`` codeword, found
    by a single full scan of a ``probe_bits`` window.

    The span of a codeword is ``highest position + 1`` after anchoring
    at 0; the first data-word length at which weight-k errors become
    undetectable is ``span - r``.  Returns ``None`` if no weight-k
    codeword fits the probe window (caller should widen it).

    Unlike repeated bisection this costs one scan: every anchored
    codeword inside the window is observed, and the minimum of
    ``max(position)`` over hits is exactly the minimal span, because
    any codeword of smaller span would itself appear (anchored) inside
    the window.
    """
    N = probe_bits
    if k < 2 or N < k:
        return None
    if syn is None:
        syn = syndrome_table(g, N)
    if k == 2:
        from repro.gf2.order import order_of_x

        order = order_of_x(g)
        return order + 1 if order + 1 <= N else None
    check_envelope(N, k, mem_elems, stream_elems)
    s_small, s_large = _split(k)
    side = _materialize_side(syn, s_small, 1, N, target=1, with_positions=True)
    assert side.maxpos is not None
    best: int | None = None
    for chunk in _stream_side(syn, s_large, 1, N, chunk_elems, want_max=True):
        hit_offsets = _hits(side.values, chunk.values)
        if len(hit_offsets) == 0:
            continue
        assert chunk.elem_max is not None
        # Sort hits by a *lower bound* on their span (the large side's
        # max position alone); the early break below is then safe even
        # when duplicate side entries give one hit several true spans.
        spans_lb = chunk.elem_max[hit_offsets] + 1
        order = np.argsort(spans_lb, kind="stable")
        for oi in order:
            flat = int(hit_offsets[oi])
            candidate_lb = int(spans_lb[oi])
            if best is not None and candidate_lb >= best:
                break
            large_part = chunk.resolve(flat)
            value = chunk.values[flat]
            lo_i = int(np.searchsorted(side.values, value, side="left"))
            hi_i = int(np.searchsorted(side.values, value, side="right"))
            for si in range(lo_i, hi_i):
                small_part = side.positions_at(si)
                flat_set = {0} | set(small_part) | set(large_part)
                if len(flat_set) != k:
                    continue
                span = max(max(large_part), side.max_at(si)) + 1
                if best is not None and span >= best:
                    continue
                if syndrome_of_positions(g, tuple(sorted(flat_set))) == 0:
                    best = span
    return best
