"""Hamming-distance and weight evaluation of CRC polynomials.

This package is the reproduction of the paper's core contribution: the
machinery that decides, for a generator polynomial ``G`` and data-word
length ``n``, the minimum Hamming distance of the resulting code and
the undetected-error weights ``W_k``.

Three engines are provided:

* :mod:`repro.hd.reference` -- the paper's own approach: enumerate
  k-bit error patterns with early bailout and FCS-bits-first ordering.
  O(C(n+r, k)) per polynomial; kept as the independently-validated
  reference and to reproduce the paper's §4.1 optimization studies.
* :mod:`repro.hd.mitm` -- an anchored meet-in-the-middle search over
  syndrome combinations, O(C(n+r, ceil((k-1)/2))).  This is the
  algorithmic substitution that lets a single 2026 CPU verify
  breakpoints (HD=6 to 16,360 bits, etc.) that took the paper's
  workstation farm days; results are bit-identical where both run.
* :mod:`repro.hd.batched` -- vectorized screening kernels evaluating a
  whole batch of generators as ``(B, N)`` numpy arrays (batched LFSR
  syndrome tables, presence-map weight-2/3 screens, composite-key
  weight-4/5 matching) -- the engine behind the search's default
  ``backend="batched"``; record-identical to the scalar cascade.
* :mod:`repro.hd.packed` -- bit-plane kernels one level down: syndrome
  *bit-planes* packed 64 candidates per ``uint64`` word (one masked
  XOR advances the whole batch one LFSR step) plus composite-key row
  sorts for the weight-3 screen; the search's ``backend="packed"``,
  again record-identical.

Breakpoint extraction (:mod:`repro.hd.breakpoints`) runs on the
:mod:`repro.hd.jump` engine: shared extend-only syndrome tables,
verified early-exit straddle probes, and windowed-witness bisection,
with GF(2) companion-matrix power ladders
(:mod:`repro.gf2.matpow`) providing ``O(r**2 log n)`` random access
to the syndrome sequence as an independent cross-check oracle.

Exactness contract: every public result is exact.  Shortcuts (parity
of (x+1)-divisible polynomials, order-of-x for weight 2) are theorems,
not heuristics; the windowed witness search only ever *proves*
existence (witnesses are re-verified), never non-existence.
"""

from repro.hd.syndromes import syndrome_table, syndrome_of_positions
from repro.hd.batched import (
    BatchKeys,
    PositionMap,
    extend_syndrome_tables,
    syndrome_tables_batched,
)
from repro.hd.jump import (
    SpanCache,
    first_failure_jump,
    refine_span,
    syndrome_at,
    syndrome_window,
)
from repro.hd.mitm import (
    exists_weight_k,
    find_witness,
    windowed_witness,
    minimal_codeword_span,
)
from repro.hd.packed import (
    PlaneState,
    composite_tables,
    syndrome_tables_packed,
)
from repro.hd.weights import (
    count_weight_2,
    count_weight_3,
    count_weight_4,
    count_weight_5,
    count_weight_6,
    brute_force_weights,
    weight_profile,
)
from repro.hd.hamming import (
    hamming_distance,
    hamming_distance_bound,
    hd_profile,
    EnvelopeError,
)
from repro.hd.breakpoints import (
    FirstFailure,
    first_failure_detailed,
    first_failure_length,
    max_length_for_hd,
    hd_breakpoint_table,
    refute_hd_at,
    increasing_length_filter,
)
from repro.hd.bounds import max_theoretical_hd, hamming_bound_ok
from repro.hd.reference import (
    enumerate_weights_reference,
    first_undetected_reference,
)
from repro.hd.invariants import (
    check_parity_invariant,
    check_monotonic_weights,
)

__all__ = [
    "syndrome_table",
    "syndrome_of_positions",
    "BatchKeys",
    "PositionMap",
    "extend_syndrome_tables",
    "syndrome_tables_batched",
    "SpanCache",
    "first_failure_jump",
    "refine_span",
    "syndrome_at",
    "syndrome_window",
    "exists_weight_k",
    "find_witness",
    "windowed_witness",
    "minimal_codeword_span",
    "PlaneState",
    "composite_tables",
    "syndrome_tables_packed",
    "count_weight_2",
    "count_weight_3",
    "count_weight_4",
    "count_weight_5",
    "count_weight_6",
    "brute_force_weights",
    "weight_profile",
    "hamming_distance",
    "hamming_distance_bound",
    "hd_profile",
    "EnvelopeError",
    "FirstFailure",
    "first_failure_detailed",
    "first_failure_length",
    "max_theoretical_hd",
    "hamming_bound_ok",
    "max_length_for_hd",
    "hd_breakpoint_table",
    "refute_hd_at",
    "increasing_length_filter",
    "enumerate_weights_reference",
    "first_undetected_reference",
    "check_parity_invariant",
    "check_monotonic_weights",
]
