"""Bit-packed screening kernels: 64 candidates per machine word.

The batched kernels (:mod:`repro.hd.batched`) spend one uint64 *per
candidate per position*.  But the quantities the cascade's cheap
screens actually consume are single *bits* per candidate: "did
syndrome 1 reappear?" (weight 2) and "is some ``syn[p] ^ syn[q] == 1``?"
(weight 3).  This module flips the layout to **bit planes**: the LFSR
register state of B candidates is stored as ``r`` words of
``ceil(B/64)`` uint64 each -- plane ``b`` holds bit ``b`` of every
candidate's register -- so one whole-register XOR/AND advances 64
candidates at once and the weight-2 predicate (``register == 1``) is a
plane-wise AND/AND-NOT word op (:class:`PlaneState`).

Weight 3 needs syndrome *values*, not just predicates (a collision
``syn[p] ^ syn[q] == 1`` cannot be observed plane-wise without
cross-position comparisons), so the second kernel compresses the other
axis instead: for widths ``r <= 16`` a syndrome is a uint16 and
``(value << 16) | position`` packs a *composite key* into one uint32
(:func:`composite_tables`).  One SIMD row sort then makes weight-3
partners -- consecutive integer values -- adjacent entries whose XOR's
high half is exactly 1, and the position payload rides along for free,
so witness extraction never re-sorts (:func:`weight3_witnesses_packed`).
Narrow-register sweeps exploit dtype wraparound: with ``g`` truncated
to the value dtype, ``acc = (acc << 1) ^ (top * g)`` cancels the
``x**r`` term either explicitly (``r`` < dtype bits: ``g``'s top bit
is in range) or by overflow (``r`` == dtype bits), bit-identical to
the uint64 recurrence.

Exactness contract: identical to :mod:`repro.hd.batched` -- same
screens, same witness selection rules, same ascending-weight
preconditions.  The packed search driver
(:mod:`repro.search.packed`) is differentially tested against both
other backends on full canonical spaces.

Envelope: ``r <= 32`` (:data:`PACKED_MAX_WIDTH`) so values fit uint32
composites; the search driver falls back to the batched path beyond.
"""

from __future__ import annotations

import numpy as np

from repro.hd.batched import _common_degree
from repro.hd.cost import EnvelopeError

#: Largest degree the packed kernels accept: syndrome values must fit
#: the uint32 half of a 64-bit composite key.
PACKED_MAX_WIDTH = 32

#: Elements of composite-key workspace materialized at once by the
#: weight-3 screen (uint32/uint64 each); the search driver sub-batches
#: candidate rows to fit.
COMPOSITE_BUDGET = 1 << 26


def _pack_lanes(bits: np.ndarray) -> np.ndarray:
    """Pack ``(rows, B)`` 0/1 uint8 into ``(rows, ceil(B/64))`` uint64
    bit-plane words, lane ``l`` of word ``w`` holding candidate
    ``64*w + l`` (little-endian lanes)."""
    rows, B = bits.shape
    W = max(1, (B + 63) // 64)
    padded = np.zeros((rows, W * 64), dtype=np.uint8)
    padded[:, :B] = bits
    return np.packbits(padded, axis=1, bitorder="little").view(np.uint64)


def _unpack_lanes(planes: np.ndarray, n_lanes: int) -> np.ndarray:
    """Inverse of :func:`_pack_lanes`: ``(rows, W)`` uint64 back to
    ``(rows, n_lanes)`` 0/1 uint8."""
    return np.unpackbits(planes.view(np.uint8), axis=1, bitorder="little")[
        :, :n_lanes
    ]


def _lanes_of(words: np.ndarray) -> np.ndarray:
    """Lane indices of the set bits in a ``(W,)`` uint64 word row."""
    return np.flatnonzero(np.unpackbits(words.view(np.uint8), bitorder="little"))


class PlaneState:
    """Bit-plane LFSR state for one batch of same-degree generators.

    ``P[b]`` holds bit ``b`` of every candidate's register; one step is

        ``P'[b] = P[b-1] ^ (t & G[b])``,   ``t = P[r-1]``

    i.e. a whole-batch shift plus a feedback XOR masked by the plane of
    generator taps ``G`` -- ``2r`` word ops advance 64 candidates per
    word.  Along the way the state tracks, per lane, the first position
    ``j >= 1`` whose register equals 1 (:attr:`first_one`): that
    position *is* the order of ``x`` mod ``g``, so after
    ``advance_to(N)`` the weight-2 screen is the compare
    ``first_one <= N - 1`` and the witness is ``(0, first_one)`` --
    no syndrome values ever materialized.

    :meth:`compact` drops killed lanes between cascade stages (a cheap
    unpack/repack of ``r`` bit rows), so later -- longer -- stages
    sweep only the lanes still alive.
    """

    def __init__(self, gs: np.ndarray, r: int) -> None:
        g_arr = np.asarray(gs, dtype=np.uint64)
        if not 1 <= r <= 63:
            raise EnvelopeError(f"plane kernels support degrees 1..63, got {r}")
        self.B = len(g_arr)
        self.r = r
        gbits = (
            (g_arr[None, :] >> np.arange(r, dtype=np.uint64)[:, None])
            & np.uint64(1)
        ).astype(np.uint8)
        self.G = _pack_lanes(gbits)
        self.W = self.G.shape[1]
        init = np.zeros((r, self.B), dtype=np.uint8)
        if self.B:
            init[0, :] = 1  # register starts at syn[0] == 1
        self.P = _pack_lanes(init)
        self._P2 = np.empty_like(self.P)
        self.first_one = np.full(self.B, -1, dtype=np.int64)
        self._seen = np.zeros(self.W, dtype=np.uint64)
        self._or = np.empty(self.W, dtype=np.uint64)
        self.pos = 0  # P holds the register at this position

    def advance_to(self, n_positions: int) -> None:
        """Advance so every position ``0 .. n_positions-1`` has been
        visited, recording first ``register == 1`` sightings."""
        P, P2, G = self.P, self._P2, self.G
        seen, orbuf, r = self._seen, self._or, self.r
        for j in range(self.pos + 1, n_positions):
            t = P[r - 1]
            P2[1:] = P[:-1]
            P2[0] = 0
            P2 ^= t[None, :] & G
            P, P2 = P2, P
            # register == 1: plane-0 bit set, every other plane clear.
            np.bitwise_or.reduce(P[1:], axis=0, out=orbuf)
            ones = P[0] & ~orbuf
            new = ones & ~seen
            if new.any():
                self.first_one[_lanes_of(new)] = j
                seen |= new
        self.P, self._P2 = P, P2
        self.pos = max(self.pos, n_positions - 1)

    def compact(self, keep: np.ndarray) -> None:
        """Drop lanes where ``keep`` is False (bool mask over lanes)."""
        self.P = _pack_lanes(_unpack_lanes(self.P, self.B)[:, keep])
        self.G = _pack_lanes(_unpack_lanes(self.G, self.B)[:, keep])
        self.first_one = self.first_one[keep]
        self.B = int(keep.sum())
        self.W = self.G.shape[1]
        self._P2 = np.empty_like(self.P)
        self._or = np.empty(self.W, dtype=np.uint64)
        self._seen = _pack_lanes(
            (self.first_one >= 0).astype(np.uint8)[None, :]
        )[0]


#: Independent position slices the carried sweep advances in lockstep.
#: Each slice's start state is jump-started with vectorized GF(2)
#: exponentiation, so a segment of ``seg`` positions costs
#: ``ceil(seg / _SWEEP_SLICES)`` interpreter-dispatched steps instead
#: of ``seg`` -- under CPython the dispatch count, not the arithmetic,
#: is the binding cost of the whole cascade.
_SWEEP_SLICES = 16

#: Rows per block of the weight-2 first-one scan: the segment min-scan
#: runs block-wise so hit extraction only re-reads the one block that
#: contains a lane's first ``register == 1``, not the whole segment.
_DETECT_BLOCK = 256

#: Segments at or below this length skip the slice machinery: the
#: exponentiation overhead (~a couple ms) outweighs the saved steps.
_SLICE_MIN_SEGMENT = 256

#: Rows per tile of the transposing :meth:`ValueSweep.values` copy --
#: sized so a tile stays cache-resident while its columns scatter.
_TILE_ROWS = 256


def _reduce_vec(prod: np.ndarray, g64: np.ndarray, r: int) -> np.ndarray:
    """Reduce per-lane GF(2) products of degree ``< 2r - 1`` mod each
    lane's ``g`` (uint64 lanes, ``r <= 32``)."""
    for i in range(2 * r - 2, r - 1, -1):
        prod ^= ((prod >> np.uint64(i)) & np.uint64(1)) * (g64 << np.uint64(i - r))
    return prod


def _mulmod_vec(a: np.ndarray, b: np.ndarray, g64: np.ndarray, r: int) -> np.ndarray:
    """Per-lane ``(a * b) mod g`` for degree-``< r`` operands."""
    prod = np.zeros_like(a)
    for i in range(r):
        prod ^= ((a >> np.uint64(i)) & np.uint64(1)) * (b << np.uint64(i))
    return _reduce_vec(prod, g64, r)


def _square_vec(a: np.ndarray, g64: np.ndarray, r: int) -> np.ndarray:
    """Per-lane ``a**2 mod g``: squaring over GF(2) is ``a(x^2)``, a
    bit spread, so no cross products are needed."""
    v = a.copy()
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return _reduce_vec(v, g64, r)


def _x_pow_mod_vec(e: int, g64: np.ndarray, r: int) -> np.ndarray:
    """Per-lane ``x**e mod g`` by square-and-multiply (uint64 lanes).

    The lane-parallel cousin of :func:`repro.gf2.poly.x_pow_mod`: a
    few hundred whole-batch word ops regardless of ``e``.
    """
    acc = np.ones_like(g64)
    for bit in format(e, "b") if e else "":
        acc = _square_vec(acc, g64, r)
        if bit == "1":
            acc <<= np.uint64(1)
            acc ^= ((acc >> np.uint64(r)) & np.uint64(1)) * g64
    return acc


class ValueSweep:
    """Carried narrow-register value sweep for one batch: the
    ``(capacity, B)`` position-major syndrome value table, filled
    incrementally as the cascade's stages ask for longer windows, with
    weight-2 detection amortized over whole segments.

    This is what the packed search driver actually runs
    (:mod:`repro.search.packed`).  Profiling the cascade under CPython
    shows per-step *dispatch*, not arithmetic, is the binding cost: a
    bit-plane step (:class:`PlaneState`) is ~7 small numpy calls per
    position, a value step is 4 in-place calls on narrow rows, and
    everything downstream -- weight-2 first-one detection, composite
    keys, weight-4/5 tables, survivor tables -- can be sliced out of
    the one materialized buffer instead of re-sweeping.  One sweep per
    batch replaces three (planes, per-stage composite rebuilds, a
    survivor-table sweep), and each segment is advanced as
    :data:`_SWEEP_SLICES` independent position ranges in lockstep --
    their start states jump-started by :func:`_x_pow_mod_vec` -- so
    the dispatched step count drops by that factor again.

    Weight-2 detection exploits that syndromes are never 0 (``g`` is
    odd, so ``x`` is invertible mod ``g`` and ``x^j mod g != 0``): a
    segment's column-wise *minimum* equals 1 exactly on the lanes
    whose register revisited 1 inside it, one contiguous pass instead
    of a compare per step.  :attr:`first_one` then holds, per lane,
    the first position ``j >= 1`` with ``syn[j] == 1`` -- the order of
    ``x`` mod ``g`` -- or -1 while unseen, and the weight-2 witness
    ``(0, first_one)`` is free.
    """

    def __init__(self, gs: np.ndarray, r: int, capacity: int) -> None:
        g_arr = np.asarray(gs, dtype=np.uint64)
        self.r = r
        self.B = len(g_arr)
        self.dtype = value_dtype(r)
        self._g64 = g_arr
        # Truncation to the value dtype is exact: see _narrow_sweep.
        self.g = (g_arr & np.uint64(np.iinfo(self.dtype).max)).astype(self.dtype)
        # + _SWEEP_SLICES pad rows: the lockstep slices may overhang
        # the requested fill by up to a slice-length remainder; the
        # overhang rows hold garbage until the next segment overwrites
        # them, and no read ever goes past ``pos``.
        self.buf = np.empty(
            (max(capacity, 1) + _SWEEP_SLICES, max(self.B, 1)), dtype=self.dtype
        )
        self.buf[0] = 1  # register starts at syn[0] == 1
        self.pos = 1  # rows [0, pos) are filled
        self.first_one = np.full(self.B, -1, dtype=np.int64)

    def advance_to(self, n_positions: int) -> None:
        """Fill rows up to ``n_positions`` and scan the new segment for
        first ``register == 1`` sightings."""
        start = self.pos
        if n_positions <= start or self.B == 0:
            return
        seg = n_positions - start
        if seg <= _SLICE_MIN_SEGMENT:
            self._advance_serial(start, n_positions)
        else:
            self._advance_sliced(start, n_positions)
        self.pos = n_positions
        self._detect(start, n_positions)

    def _advance_serial(self, a: int, stop: int) -> None:
        buf, g = self.buf, self.g
        t = np.empty(self.B, dtype=self.dtype)
        sh = self.dtype(self.r - 1)
        one = self.dtype(1)
        for j in range(a, stop):
            prev = buf[j - 1]
            np.right_shift(prev, sh, out=t)
            np.multiply(t, g, out=t)
            np.left_shift(prev, one, out=buf[j])
            np.bitwise_xor(buf[j], t, out=buf[j])

    def _advance_sliced(self, a: int, stop: int) -> None:
        seg = stop - a
        S = _SWEEP_SLICES
        C = -(-seg // S)
        r, g64 = self.r, self._g64
        # Slice q owns rows [a + q*C, a + (q+1)*C); its start state is
        # x^(a + q*C) mod g, exactly the value the serial sweep would
        # put there: chain syn[a] (one serial step) with x^C jumps.
        s0 = np.empty((1, self.B), dtype=self.dtype)
        prev = self.buf[a - 1]
        np.left_shift(prev, self.dtype(1), out=s0[0])
        s0[0] ^= (prev >> self.dtype(r - 1)) * self.g
        starts = np.empty((S, self.B), dtype=np.uint64)
        starts[0] = s0[0]
        # Log-doubling chain: starts[q + i] = starts[i] * x^(q*C), with
        # the jump polynomial squared alongside -- log2(S) lane-wide
        # mulmods instead of S - 1 (S is a power of two).
        pq = _x_pow_mod_vec(C, g64, r)
        q = 1
        while q < S:
            starts[q : 2 * q] = _mulmod_vec(starts[:q], pq, g64, r)
            q *= 2
            if q < S:
                pq = _mulmod_vec(pq, pq, g64, r)
        buf = self.buf
        buf[a : a + S * C : C] = starts.astype(self.dtype)
        t = np.empty((S, self.B), dtype=self.dtype)
        g = self.g
        sh = self.dtype(self.r - 1)
        one = self.dtype(1)
        for j in range(a + 1, a + C):
            prev = buf[j - 1 : j - 1 + S * C : C]
            cur = buf[j : j + S * C : C]
            np.right_shift(prev, sh, out=t)
            np.multiply(t, g, out=t)
            np.left_shift(prev, one, out=cur)
            np.bitwise_xor(cur, t, out=cur)

    def compact(self, cols: np.ndarray) -> None:
        """Shrink the sweep to the given buffer columns.

        After a cascade stage kills most of a batch, every further
        position would still be stepped for the dead columns (width is
        vector-cheap, but not free: the sweep is bandwidth-bound).  A
        one-off gather of the filled rows re-bases the sweep on the
        survivors; the caller's lane indices become ``arange(len(cols))``.
        """
        new = np.empty((self.buf.shape[0], max(len(cols), 1)), dtype=self.dtype)
        new[: self.pos, : len(cols)] = self.buf[: self.pos, cols]
        self.buf = new
        self.B = len(cols)
        self.g = self.g[cols]
        self._g64 = self._g64[cols]
        self.first_one = self.first_one[cols]

    def _detect(self, start: int, stop: int) -> None:
        lo = max(start, 1)
        if lo >= stop or self.B == 0:
            return
        one = self.dtype(1)
        unseen = self.first_one < 0
        # Block-wise: min-scan each _DETECT_BLOCK-row block, and
        # extract a lane's exact first-one position only inside the
        # first block whose min hit 1 for it -- the extraction gather
        # then touches _DETECT_BLOCK rows per hit lane, not the whole
        # segment.
        for b0 in range(lo, stop, _DETECT_BLOCK):
            blk = self.buf[b0 : min(b0 + _DETECT_BLOCK, stop), : self.B]
            hits = np.flatnonzero(unseen & (blk.min(axis=0) == one))
            if len(hits):
                eq = blk[:, hits] == one
                self.first_one[hits] = b0 + eq.argmax(axis=0)
                unseen[hits] = False

    def values(
        self, lanes: np.ndarray, n_positions: int, dtype: type | None = None
    ) -> np.ndarray:
        """``(len(lanes), n_positions)`` contiguous value tables for
        the given buffer columns (filled up to at least that depth),
        in ``dtype`` (default: the narrow sweep dtype).

        The transpose out of the position-major buffer is tiled
        (:data:`_TILE_ROWS` rows at a time) so the strided reads stay
        cache-resident -- measurably faster than a flat
        ``buf[:, lanes].T`` copy at survivor-table sizes.
        """
        assert n_positions <= self.pos
        out = np.empty((len(lanes), n_positions), dtype or self.dtype)
        for j0 in range(0, n_positions, _TILE_ROWS):
            tile = self.buf[j0 : min(j0 + _TILE_ROWS, n_positions), lanes]
            out[:, j0 : j0 + tile.shape[0]] = tile.T
        return out


def value_dtype(r: int) -> type:
    """Narrowest unsigned dtype holding a degree-``r`` syndrome."""
    if r > PACKED_MAX_WIDTH:
        raise EnvelopeError(
            f"packed kernels support degrees 1..{PACKED_MAX_WIDTH}, got {r}"
        )
    return np.uint16 if r <= 16 else np.uint32


def composite_spec(r: int, n_positions: int) -> tuple[type, int]:
    """Composite-key layout ``(dtype, pos_bits)`` for degree ``r``
    tables of ``n_positions``: value in the high bits, position in the
    low ``pos_bits``."""
    if r <= 16 and n_positions <= (1 << 16):
        return np.uint32, 16
    if n_positions > (1 << 32):
        raise EnvelopeError("composite positions exceed 32 bits")
    value_dtype(r)  # validates r
    return np.uint64, 32


def _narrow_sweep(gs: np.ndarray, r: int, n_positions: int, out: np.ndarray) -> None:
    """Run the LFSR recurrence for all lanes into ``out`` --
    ``(n_positions, B)``, position-major -- in the narrow value dtype.

    The narrow register is exact: ``g`` truncated to the dtype keeps
    its top term when ``r`` is below the dtype width (the feedback XOR
    clears bit ``r`` explicitly) and loses it exactly when ``r`` equals
    the dtype width (the left shift's wraparound clears it instead).
    """
    dtype = value_dtype(r)
    g_n = (np.asarray(gs, dtype=np.uint64) & np.uint64(np.iinfo(dtype).max)).astype(
        dtype
    )
    acc = np.ones(len(g_n), dtype=dtype)
    t = np.empty(len(g_n), dtype=dtype)
    sh = dtype(r - 1)
    one = dtype(1)
    # In-place ops, and in the *narrow* dtype throughout: the shift
    # wraparound that stands in for the x**r cancellation at r == dtype
    # width only happens at the narrow width.
    for j in range(n_positions):
        out[j] = acc
        np.right_shift(acc, sh, out=t)
        np.multiply(t, g_n, out=t)
        np.left_shift(acc, one, out=acc)
        np.bitwise_xor(acc, t, out=acc)


def composite_tables(gs: np.ndarray, r: int, n_positions: int) -> tuple[np.ndarray, int]:
    """Composite-key syndrome tables ``(keys, pos_bits)`` for a batch:
    ``keys[b, j] = (syn_b[j] << pos_bits) | j``, rows contiguous.

    Sorting a row orders by (value, position); weight-3 partners --
    values XORing to 1 -- are then adjacent entries whose key XOR,
    shifted down ``pos_bits``, is exactly 1, with both positions in
    hand.  ``>>`` ``pos_bits`` recovers values, masking recovers
    positions.
    """
    cdtype, pos_bits = composite_spec(r, n_positions)
    B = len(gs)
    buf = np.empty((n_positions, B), dtype=cdtype)
    _narrow_sweep(gs, r, n_positions, buf)
    buf <<= cdtype(pos_bits)
    buf |= np.arange(n_positions, dtype=cdtype)[:, None]
    return np.ascontiguousarray(buf.T), pos_bits


def composite_from_values(
    values: np.ndarray, r: int, n_positions: int
) -> tuple[np.ndarray, int]:
    """Composite keys from an already-materialized ``(rows, n)`` narrow
    value table (a :meth:`ValueSweep.values` slice): same layout as
    :func:`composite_tables`, no re-sweep."""
    cdtype, pos_bits = composite_spec(r, n_positions)
    keys = values.astype(cdtype)
    keys <<= cdtype(pos_bits)
    keys |= np.arange(n_positions, dtype=cdtype)[None, :]
    return keys, pos_bits


def weight3_rows_packed(sorted_keys: np.ndarray, pos_bits: int) -> np.ndarray:
    """(B,) bool: rows of a *row-sorted* composite-key batch containing
    some ``syn[p] ^ syn[q] == 1`` -- adjacent sorted values XORing
    to 1.  Exact on weight-2-clean rows (distinct values), the
    cascade's ascending-weight precondition."""
    if sorted_keys.shape[1] < 2:
        return np.zeros(len(sorted_keys), dtype=bool)
    x = sorted_keys[:, 1:] ^ sorted_keys[:, :-1]
    return (x >> sorted_keys.dtype.type(pos_bits) == sorted_keys.dtype.type(1)).any(
        axis=1
    )


def weight3_witnesses_packed(
    sorted_keys: np.ndarray, pos_bits: int, window: int
) -> list[tuple[int, int, int] | None]:
    """Weight-3 witnesses from row-sorted composite keys, replicating
    the scalar :func:`~repro.hd.mitm.windowed_witness` choice exactly
    (same rule as :func:`repro.hd.batched.weight3_witnesses`): the
    first position ``b`` (ascending) whose partner sits below
    ``window``; ``None`` where every match needs a partner at or
    beyond it.  Positions fall straight out of the sorted keys -- the
    existence scan already paid for the sort, so extraction costs one
    pass over the adjacent-pair hits."""
    R, N = sorted_keys.shape
    w = min(window, N)
    if N < 2:
        return [None] * R
    dt = sorted_keys.dtype.type
    x = sorted_keys[:, 1:] ^ sorted_keys[:, :-1]
    hit_row, hit_col = np.nonzero((x >> dt(pos_bits)) == dt(1))
    pmask = dt((1 << pos_bits) - 1)
    pos_a = sorted_keys[hit_row, hit_col] & pmask
    pos_b = sorted_keys[hit_row, hit_col + 1] & pmask
    best_b: list[int | None] = [None] * R
    best_p: list[int] = [0] * R
    for i, pa, pb in zip(hit_row.tolist(), pos_a.tolist(), pos_b.tolist()):
        for b, p in ((pa, pb), (pb, pa)):
            # b >= 1 and p >= 1 hold automatically: position 0 has
            # syndrome 1, whose partner would be syndrome 0, which
            # never occurs.
            bb = best_b[i]
            if p < w and (bb is None or b < bb):
                best_b[i], best_p[i] = b, p
    return [
        None if b is None else tuple(sorted((0, best_p[i], b)))
        for i, b in enumerate(best_b)
    ]


def syndrome_tables_packed(gs, n_positions: int) -> np.ndarray:
    """``(B, n)`` uint64 syndrome tables via the narrow-register sweep,
    bit-identical to :func:`repro.hd.batched.syndrome_tables_batched`
    (used by the packed driver to hand survivors their final tables
    without a uint64 sweep).

    >>> syndrome_tables_packed([0b1011, 0b1101], 4).tolist()
    [[1, 2, 4, 3], [1, 2, 4, 5]]
    """
    g_arr = np.asarray(gs, dtype=np.uint64)
    if len(g_arr) == 0:
        return np.empty((0, n_positions), dtype=np.uint64)
    r = _common_degree(g_arr)
    buf = np.empty((n_positions, len(g_arr)), dtype=value_dtype(r))
    _narrow_sweep(g_arr, r, n_positions, buf)
    return buf.T.astype(np.uint64)
