"""The paper's §4.5 validation invariants.

Two implementation-independent checks were monitored throughout the
2001 search campaign:

1. **Parity invariant**: polynomials divisible by ``(x+1)`` must show
   zero for every odd-numbered weight (the software did not exploit
   this during evaluation, so a violation indicates a bug).
2. **Monotonicity**: each weight ``W_k(n)`` is non-decreasing in the
   data-word length ``n``.  (This check caught a 32-bit counter
   overflow in the paper's early code.)

These are exposed both as assertion helpers for tests and as a
:class:`WeightMonitor` that the search/census drivers feed results
through, mirroring how the paper ran them continuously.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gf2.poly import divisible_by_x_plus_1


class InvariantViolation(AssertionError):
    """An implementation-independent CRC invariant failed -- indicates
    a bug in whichever engine produced the numbers."""


def check_parity_invariant(g: int, weights: dict[int, int]) -> None:
    """Raise :class:`InvariantViolation` if ``g`` is divisible by
    ``(x+1)`` but any odd weight is non-zero.

    >>> check_parity_invariant(0b101011, {2: 0, 3: 0, 4: 5})  # (x+1)(...)
    """
    if not divisible_by_x_plus_1(g):
        return
    for k, w in weights.items():
        if k % 2 == 1 and w != 0:
            raise InvariantViolation(
                f"poly {g:#x} is divisible by (x+1) but W{k}={w} != 0"
            )


def check_monotonic_weights(
    profiles: list[tuple[int, dict[int, int]]]
) -> None:
    """Raise :class:`InvariantViolation` unless every weight is
    non-decreasing across the given ``(length, weights)`` profiles.

    >>> check_monotonic_weights([(100, {4: 1}), (200, {4: 5})])
    """
    ordered = sorted(profiles)
    for (n_prev, w_prev), (n_next, w_next) in zip(ordered, ordered[1:]):
        for k in set(w_prev) & set(w_next):
            if w_next[k] < w_prev[k]:
                raise InvariantViolation(
                    f"W{k} decreased from {w_prev[k]} at n={n_prev} "
                    f"to {w_next[k]} at n={n_next}"
                )


@dataclass
class WeightMonitor:
    """Continuous invariant monitoring, as run during the paper's
    campaign.  Feed it every computed profile; it raises on the first
    violation and keeps simple statistics otherwise."""

    g: int
    history: list[tuple[int, dict[int, int]]] = field(default_factory=list)
    checks_passed: int = 0

    def observe(self, data_word_bits: int, weights: dict[int, int]) -> None:
        """Record a weight profile and re-check both invariants."""
        check_parity_invariant(self.g, weights)
        self.history.append((data_word_bits, dict(weights)))
        check_monotonic_weights(self.history)
        self.checks_passed += 1

    def saturating_observe(
        self, data_word_bits: int, weights: dict[int, int], bits: int = 32
    ) -> None:
        """Variant reproducing the paper's war story: counters stored
        in ``bits``-bit registers would have wrapped; this checks the
        true values still fit, surfacing the overflow the paper's
        monotonicity check caught.
        """
        limit = 1 << bits
        for k, w in weights.items():
            if w >= limit:
                raise InvariantViolation(
                    f"W{k}={w} at n={data_word_bits} would overflow a "
                    f"{bits}-bit counter (the bug class the paper's "
                    "monitoring caught)"
                )
        self.observe(data_word_bits, weights)
