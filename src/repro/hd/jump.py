"""Length-jumping breakpoint search: shared tables + span bisection.

The old first-failure loop in :mod:`repro.hd.breakpoints` paid three
avoidable costs per weight: every geometric probe rebuilt its syndrome
table from position 0, every probe was a *collect-all* span scan even
when the window held nothing (or held thousands of codewords it did
not need to enumerate), and nothing was shared between weights of the
same polynomial.  This module replaces that engine:

* :class:`SpanCache` keeps **one** extend-only syndrome table per
  polynomial.  Geometric probes, bisection probes, and all weights of
  a breakpoint-table build read prefixes of the same array -- the LFSR
  cost of each length is paid once.
* :func:`first_failure_jump` keeps the exact geometric window schedule
  of the old loop (so envelope-capped outcomes are unchanged) but
  leads each probe with a **budgeted windowed-witness check**
  (:func:`~repro.hd.mitm.windowed_witness` with a per-weight window
  sized so the materialized side stays under
  :data:`_WINDOWED_SIDE_BUDGET` elements).  Hits are re-verified
  against the exact big-int syndrome, so a hit is proof; a miss costs
  one bounded sort and falls back to the *same* collect-all scan the
  old engine ran at the same window -- the worst case is the old
  engine plus a rounding error.
* On a windowed hit, :func:`refine_span` **binary-searches** the
  minimal span instead of collect-all-scanning the overshot window:
  each windowed hit at the midpoint shrinks the upper bound to that
  witness's own span for nearly free; the first inconclusive midpoint
  stops the cheap phase and one
  :func:`~repro.hd.mitm.minimal_codeword_span` scan at the tightened
  window settles the exact answer.  In the dense regime (the window
  overshot the breakpoint by up to ``growth == 2``) this scans up to
  ``growth**2 == 4`` times fewer pairs for weight 4.

:func:`syndrome_at` / :func:`syndrome_window` expose the underlying
:mod:`repro.gf2.matpow` machinery: companion-matrix power ladders jump
the LFSR ``n`` positions in ``O(r**2 log n)``, so a far window of
syndromes costs ``O(r**2 log start + count)`` instead of
``O(start + count)``.  MITM probes inherently read the whole prefix
(every position below the window is a potential error position), so
the production cascade keeps linear tables; the jump is the
*independent oracle* -- tests and :mod:`tools.packed_gate` use it to
cross-validate sweep-built tables at randomly chosen far positions,
and it serves any caller that needs a distant syndrome slice without
the prefix.
"""

from __future__ import annotations

from math import comb

import numpy as np

from repro.gf2.matpow import ladder_for
from repro.gf2.poly import degree
from repro.hd.cost import (
    DEFAULT_MEM_ELEMS,
    DEFAULT_STREAM_ELEMS,
    EnvelopeError,
    max_affordable_window,
)
from repro.hd.mitm import minimal_codeword_span, windowed_witness
from repro.hd.syndromes import extend_syndrome_table, syndrome_table


def syndrome_at(g: int, n: int) -> int:
    """``x**n mod g`` in ``O(r**2 log n)`` via the cached power ladder.

    >>> from repro.hd.syndromes import syndrome_table
    >>> g = 0x104C11DB7
    >>> syndrome_at(g, 9999) == int(syndrome_table(g, 10000)[9999])
    True
    """
    return ladder_for(g).syndrome_at(n)


def syndrome_window(g: int, start: int, count: int) -> np.ndarray:
    """``syndrome_table(g, start + count)[start:]`` without the prefix.

    One matrix jump lands on position ``start``; a local LFSR sweep
    emits the ``count`` positions after it.  Exact for any ``start``
    (the ladder is exact arithmetic), and the only way to reach a far
    window in sublinear time.

    >>> from repro.hd.syndromes import syndrome_table
    >>> g = 0b1011
    >>> syndrome_window(g, 3, 2).tolist() == syndrome_table(g, 5)[3:].tolist()
    True
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    r = degree(g)
    low = g & ((1 << r) - 1)
    top = 1 << (r - 1)
    out = np.empty(count, dtype=np.uint64)
    acc = ladder_for(g).syndrome_at(start)
    for i in range(count):
        out[i] = acc
        if acc & top:
            acc = ((acc ^ top) << 1) ^ low
        else:
            acc <<= 1
    return out


class SpanCache:
    """One extend-only syndrome table shared by every probe of ``g``.

    All meet-in-the-middle entry points accept a table *longer* than
    the window they scan (they only read positions below the window),
    so one monotonically growing array serves geometric probes,
    bisection midpoints, and all weights of a breakpoint-table build.
    """

    def __init__(self, g: int) -> None:
        self.g = g
        self._syn: np.ndarray | None = None

    def table(self, n_positions: int) -> np.ndarray:
        """A syndrome table covering at least ``n_positions``."""
        if self._syn is None:
            self._syn = syndrome_table(self.g, n_positions)
        elif len(self._syn) < n_positions:
            self._syn = extend_syndrome_table(self.g, self._syn, n_positions)
        return self._syn


#: Cap on the materialized windowed-witness side, C(window-1, k-2).
#: Keeps every windowed probe to one bounded sort: the default
#: 400-bit window is fine for k <= 4 but balloons to C(399, 3) at
#: weight 5, which would dwarf the collect-all scan it tries to skip.
_WINDOWED_SIDE_BUDGET = 100_000


def _probe_window(k: int, n: int) -> int:
    """Largest windowed-witness restriction window (<= 400, <= n)
    whose side stays within :data:`_WINDOWED_SIDE_BUDGET`."""
    w = min(400, n)
    while w > k + 2 and comb(w - 1, k - 2) > _WINDOWED_SIDE_BUDGET:
        w -= max(1, w // 8)
    return w


def _windowed_probe(
    g: int,
    window: int,
    k: int,
    syn: np.ndarray,
    *,
    mem_elems: int,
) -> tuple[int, ...] | None:
    """Budgeted windowed-witness probe: a verified weight-``k``
    witness within ``window`` bits, or an *inconclusive* ``None``."""
    try:
        return windowed_witness(
            g, window, k,
            window=_probe_window(k, window), syn=syn, mem_elems=mem_elems,
        )
    except EnvelopeError:
        return None


def refine_span(
    g: int,
    k: int,
    hi_span: int,
    lo: int,
    syn: np.ndarray,
    *,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
) -> int:
    """Exact minimal weight-``k`` codeword span in ``(lo, hi_span]``.

    Preconditions: a verified codeword of span ``hi_span`` exists, and
    no weight-``k`` codeword fits in ``lo`` bits.

    Binary search with windowed-witness midpoint probes: a hit shrinks
    the upper bound to the found witness's span (not just the
    midpoint) at near-zero cost; a miss proves nothing, so the first
    inconclusive midpoint ends the cheap phase and a single
    collect-all scan of the tightened window delivers the exact
    minimum.  Every avoided collect-all at a loose window saves
    ``O(C(window, k-2))`` streamed elements.
    """
    hi = hi_span
    while hi > lo + 1:
        mid = (lo + hi) // 2
        witness = _windowed_probe(g, mid, k, syn, mem_elems=mem_elems)
        if witness is None:
            break
        hi = max(witness) + 1
    if hi == lo + 1:
        return hi
    span = minimal_codeword_span(
        g, hi, k, syn=syn, mem_elems=mem_elems, stream_elems=stream_elems
    )
    assert span is not None  # a codeword of span <= hi is in hand
    return span


def first_failure_jump(
    g: int,
    k: int,
    *,
    n_max: int,
    mem_elems: int = DEFAULT_MEM_ELEMS,
    stream_elems: int = DEFAULT_STREAM_ELEMS,
    cache: SpanCache | None = None,
) -> tuple[int | None, int, bool]:
    """First-failure search for one weight ``k >= 3``.

    Returns ``(n, cleared, capped)`` with the exact semantics of
    :class:`repro.hd.breakpoints.FirstFailure` (which wraps it): the
    geometric window schedule, envelope capping, and cleared-length
    bookkeeping replicate the old collect-all loop outcome for
    outcome, while the probes themselves early-exit and the straddled
    breakpoint is bisected (:func:`refine_span`).

    Pass a :class:`SpanCache` to share the syndrome table across
    weights (a breakpoint-table build probes ``k = 2..hd_max`` against
    prefixes of one array).
    """
    if k < 3:
        raise ValueError("first_failure_jump handles k >= 3 (k == 2 is order-based)")
    r = degree(g)
    n_limit = n_max + r
    affordable = max_affordable_window(k, mem_elems, stream_elems)
    # The schedule is part of the contract: capped/cleared outcomes
    # must match the previous engine exactly.
    if k >= 12:
        window = max(2 * k, r + 8)
        growth = 1.25
    elif k >= 9:
        window = max(2 * k, r + 8)
        growth = 1.5
    else:
        window = max(64, 2 * k, r + 2)
        growth = 2.0
    cleared = 0
    if cache is None:
        cache = SpanCache(g)
    while True:
        capped_here = window >= min(affordable, n_limit) and affordable < n_limit
        window = min(window, affordable, n_limit)
        if window - r <= cleared and cleared > 0:
            # no new ground affordable: cap
            return None, cleared, True
        syn = cache.table(window)
        witness = _windowed_probe(g, window, k, syn, mem_elems=mem_elems)
        if witness is not None:
            # The previous window (cleared + r bits) was verified
            # empty, so the minimal span lies in (lo, span(witness)];
            # with no previous window, k positions need k bits.
            lo = cleared + r if cleared > 0 else k - 1
            span = refine_span(
                g, k, max(witness) + 1, lo, syn,
                mem_elems=mem_elems, stream_elems=stream_elems,
            )
        else:
            # Inconclusive windowed probe: the old engine's collect-all
            # scan at the same window, on the shared table.
            try:
                span = minimal_codeword_span(
                    g, window, k,
                    syn=syn, mem_elems=mem_elems, stream_elems=stream_elems,
                )
            except EnvelopeError:  # pragma: no cover - affordable bound guards this
                return None, cleared, True
        if span is not None:
            n = span - r
            if n <= n_max:
                return n, n - 1, False
            return None, n_max, False
        cleared = max(window - r, 0)
        if window >= n_limit:
            return None, min(cleared, n_max), False
        if capped_here:
            return None, cleared, True
        window = int(window * growth) + 1
