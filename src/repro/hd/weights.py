"""Exact undetected-error weight counting.

A weight ``W_k(n)`` is the number of distinct k-bit error patterns in
an ``(n+r)``-bit codeword that a polynomial fails to detect (paper §3:
e.g. the 802.3 CRC at n=12112 has ``{W2=0, W3=0, W4=223059, ...}``).

Counting (as opposed to existence, :mod:`repro.hd.mitm`) cannot use
anchoring -- each codeword must be counted once per *placement* -- so
the algorithms here work over all ``C(N, k)`` position subsets, but
still avoid enumerating them:

* ``W2``: duplicate syndromes (``C(m,2)`` summed over multiplicities).
* ``W3``: number of (pair, single) syndrome matches / 3 -- every
  weight-3 codeword {i,j,k} is found once per choice of the "single".
* ``W4``: number of colliding unordered pairs-of-pairs / 3 -- every
  weight-4 codeword {i,j,k,l} splits into 3 pairings, each colliding.

Both W3 and W4 require ``N <= order(x mod g)`` so that all single
syndromes are distinct (no degenerate collisions); the functions check
this and raise otherwise.  That condition holds for every length the
paper evaluates (Table 1 stops at or before each polynomial's order).
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.gf2.poly import degree
from repro.gf2.order import order_of_x
from repro.hd.cost import DEFAULT_MEM_ELEMS, EnvelopeError
from repro.hd.syndromes import syndrome_table, syndrome_of_positions
from repro.obs import metrics as obs_metrics

_PAIR_CHUNK = 1 << 22


def _pair_block_indices(
    i0: int, i1: int, N: int
) -> tuple[np.ndarray, np.ndarray]:
    """Index arrays ``(left, right)`` enumerating every pair ``(i, j)``
    with ``i0 <= i < i1`` and ``i < j < N`` in row-major order -- the
    vectorized replacement for the per-row ``syn[i] ^ syn[i+1:]``
    Python loop.  ``syn[right] ^ syn[left]`` yields the pair syndromes
    in exactly the order the scalar loop produced them."""
    rows = np.arange(i0, i1, dtype=np.intp)
    lens = N - 1 - rows
    total = int(lens.sum())
    left = np.repeat(rows, lens)
    starts = np.cumsum(lens) - lens
    right = left + 1 + (
        np.arange(total, dtype=np.intp) - np.repeat(starts, lens)
    )
    return left, right


def count_weight_2(g: int, codeword_bits: int, syn: np.ndarray | None = None) -> int:
    """Exact ``W2``: undetectable 2-bit errors within the window.

    >>> count_weight_2(0b111, 4)   # x^2+x+1 has order 3: x^3+1 fits in 4 bits
    1
    """
    if syn is None:
        syn = syndrome_table(g, codeword_bits)
    _, counts = np.unique(syn, return_counts=True)
    return int((counts * (counts - 1) // 2).sum())


def _require_distinct_singles(g: int, codeword_bits: int) -> None:
    if order_of_x(g) < codeword_bits:
        raise EnvelopeError(
            f"W3/W4 counting requires window <= order(x) = {order_of_x(g)}; "
            f"got {codeword_bits}"
        )


def count_weight_3(
    g: int,
    codeword_bits: int,
    syn: np.ndarray | None = None,
    chunk_rows: int = 2048,
) -> int:
    """Exact ``W3`` by pair-vs-single syndrome matching.

    O(N^2) work, chunked; practical through N ~ 131K (one to two
    minutes at the top end, seconds through a few 10K).
    """
    N = codeword_bits
    _require_distinct_singles(g, N)
    if syn is None:
        syn = syndrome_table(g, N)
    metrics = obs_metrics.active()
    singles_sorted = np.sort(syn, kind="stable")
    total = 0
    for i0 in range(0, N - 1, chunk_rows):
        i1 = min(i0 + chunk_rows, N - 1)
        # Rows i0..i1: XORs syn[i] ^ syn[i+1:], one vectorized gather.
        left, right = _pair_block_indices(i0, i1, N)
        values = syn[right] ^ syn[left]
        left = np.searchsorted(singles_sorted, values, side="left")
        right = np.searchsorted(singles_sorted, values, side="right")
        total += int((right - left).sum())
        metrics.inc("weights.w3.chunks")
        metrics.inc("weights.w3.pair_syndromes", len(values))
    # Each codeword {i,j,k} is counted once per role assignment of the
    # "single" (3 ways); matches where the single coincides with a pair
    # member are impossible (would need a zero syndrome).
    assert total % 3 == 0, "W3 accounting violated"
    return total // 3


def count_weight_4(
    g: int,
    codeword_bits: int,
    syn: np.ndarray | None = None,
    mem_elems: int = DEFAULT_MEM_ELEMS,
) -> int:
    """Exact ``W4`` by pair-collision counting.

    Materializes all ``C(N,2)`` pair syndromes (the envelope allows
    N ~ 37K in ~5.6 GB; the paper's headline W4(12112)=223,059 for
    802.3 needs 7.4e7 elements, well inside).
    """
    N = codeword_bits
    _require_distinct_singles(g, N)
    npairs = comb(N, 2)
    if npairs > mem_elems:
        raise EnvelopeError(
            f"W4 counting at N={N} needs {npairs:.3g} pair syndromes in memory"
        )
    if syn is None:
        syn = syndrome_table(g, N)
    pairs = np.empty(npairs, dtype=np.uint64)
    fill = 0
    # Row-blocked so the gather index arrays stay within the pair
    # chunk budget rather than tripling peak memory.
    rows_per_block = max(1, _PAIR_CHUNK // max(N - 1, 1))
    for i0 in range(0, N - 1, rows_per_block):
        i1 = min(i0 + rows_per_block, N - 1)
        left, right = _pair_block_indices(i0, i1, N)
        np.bitwise_xor(
            syn[right], syn[left], out=pairs[fill : fill + len(left)]
        )
        fill += len(left)
    assert fill == npairs
    obs_metrics.active().inc("weights.w4.pair_syndromes", npairs)
    pairs.sort(kind="stable")
    # Sum C(m,2) over equal-value runs, vectorized.
    boundaries = np.flatnonzero(pairs[1:] != pairs[:-1])
    run_starts = np.concatenate(([0], boundaries + 1))
    run_ends = np.concatenate((boundaries + 1, [npairs]))
    runs = run_ends - run_starts
    collisions = int((runs * (runs - 1) // 2).sum())
    # Distinct singles => colliding pairs never share an index, so each
    # collision is a genuine weight-4 codeword, counted once per each
    # of its 3 pair-pairings.
    assert collisions % 3 == 0, "W4 accounting violated"
    return collisions // 3


def count_weight_5(
    g: int,
    codeword_bits: int,
    syn: np.ndarray | None = None,
    mem_elems: int = DEFAULT_MEM_ELEMS,
) -> int:
    """Exact ``W5`` by (2,3)-split syndrome matching.

    Every weight-5 codeword is counted once per (pair, triple)
    partition of its positions -- ``C(5,2) = 10`` times.  Matches with
    a shared position collapse to a weight-3 codeword plus a free
    repeated position, contributing ``3 * (N-3) * W3`` spurious
    matches (pair {a,p} vs triple {b,c,p} with {a,b,c} a codeword;
    3 choices of the pair's codeword member, N-3 choices of p); these
    are subtracted exactly.  Requires distinct single syndromes
    (``N <= order``) like the other counters.

    Memory: materializes the ``C(N,3)`` triple XORs -- practical to
    N ~ 700 under the default envelope, which covers every length at
    which W5 is interesting for 32-bit codes (W5 != 0 only below the
    HD=5 limit's neighbourhood or for non-parity generators).
    """
    from math import comb as _comb

    from repro.hd.mitm import _levelwise

    N = codeword_bits
    _require_distinct_singles(g, N)
    if _comb(N, 3) > min(mem_elems, 60_000_000):
        raise EnvelopeError(
            f"W5 counting at N={N} materializes C({N},3) triple syndromes"
        )
    if syn is None:
        syn = syndrome_table(g, N)
    triples, _ = _levelwise(syn, 3, 0, N)
    triples.sort(kind="stable")
    matches = 0
    for i in range(N - 1):
        pair_vals = np.bitwise_xor(syn[i + 1 :], syn[i])
        left = np.searchsorted(triples, pair_vals, side="left")
        right = np.searchsorted(triples, pair_vals, side="right")
        matches += int((right - left).sum())
    w3 = count_weight_3(g, N, syn)
    spurious = 3 * (N - 3) * w3
    assert (matches - spurious) % 10 == 0, "W5 accounting violated"
    return (matches - spurious) // 10


def count_weight_6(
    g: int,
    codeword_bits: int,
    syn: np.ndarray | None = None,
    mem_elems: int = DEFAULT_MEM_ELEMS,
) -> int:
    """Exact ``W6`` by (3,3)-split matching.

    Unordered pairs of distinct triples with equal syndromes arise
    from: weight-6 codewords (``C(6,3)/2 = 10`` pairings each) and
    weight-4 codewords with one shared position
    (``3 * (N-4)`` pairings each: 3 balanced splits of the 4
    positions, N-4 choices of the shared extra).  Weight-2
    contributions require duplicate singles, excluded by the
    ``N <= order`` precondition.

    Same materialization envelope as :func:`count_weight_5`.
    """
    from math import comb as _comb

    from repro.hd.mitm import _levelwise

    N = codeword_bits
    _require_distinct_singles(g, N)
    if _comb(N, 3) > min(mem_elems, 60_000_000):
        raise EnvelopeError(
            f"W6 counting at N={N} materializes C({N},3) triple syndromes"
        )
    if syn is None:
        syn = syndrome_table(g, N)
    triples, _ = _levelwise(syn, 3, 0, N)
    triples.sort(kind="stable")
    boundaries = np.flatnonzero(triples[1:] != triples[:-1])
    run_starts = np.concatenate(([0], boundaries + 1))
    run_ends = np.concatenate((boundaries + 1, [len(triples)]))
    runs = run_ends - run_starts
    pairs_of_triples = int((runs * (runs - 1) // 2).sum())
    w4 = count_weight_4(g, N, syn, mem_elems=mem_elems)
    spurious = 3 * (N - 4) * w4
    assert (pairs_of_triples - spurious) % 10 == 0, "W6 accounting violated"
    return (pairs_of_triples - spurious) // 10


def brute_force_weights(
    g: int, data_word_bits: int, k_max: int, *, hard_limit: int = 30_000_000
) -> dict[int, int]:
    """Reference weights ``{k: W_k}`` for ``k = 2..k_max`` by direct
    enumeration of all position subsets.

    Deliberately naive -- this is the oracle the fast paths are tested
    against.  Refuses workloads beyond ``hard_limit`` patterns.
    """
    r = degree(g)
    N = data_word_bits + r
    total = sum(comb(N, k) for k in range(2, k_max + 1))
    if total > hard_limit:
        raise EnvelopeError(
            f"brute force would enumerate {total:.3g} patterns (> {hard_limit:.3g})"
        )
    syn = [int(s) for s in syndrome_table(g, N)]
    weights: dict[int, int] = {}
    for k in range(2, k_max + 1):
        count = 0
        for combo in combinations(range(N), k):
            acc = 0
            for p in combo:
                acc ^= syn[p]
            if acc == 0:
                count += 1
        weights[k] = count
    return weights


def weight_profile(
    g: int,
    data_word_bits: int,
    k_max: int = 4,
    *,
    mem_elems: int = DEFAULT_MEM_ELEMS,
) -> dict[int, int]:
    """Exact weights ``{2: W2, ..., k_max: W_k}`` (``k_max <= 6``) for
    a data word of ``data_word_bits`` bits.

    This is the quantity the paper reports as
    ``{W2=0; W3=0; W4=223059; ...}`` for 802.3 at 12112 bits.  W5/W6
    counting materializes the triple-syndrome table and is therefore
    limited to short windows (N ~ 700); W2..W4 reach the full Figure 1
    range.
    """
    if not 2 <= k_max <= 6:
        raise ValueError("weight_profile computes k=2..6 exactly; use "
                         "brute_force_weights for higher k at tiny lengths")
    r = degree(g)
    N = data_word_bits + r
    with obs_metrics.active().time("weights.profile_seconds"):
        syn = syndrome_table(g, N)
        profile: dict[int, int] = {2: count_weight_2(g, N, syn)}
        if k_max >= 3:
            profile[3] = count_weight_3(g, N, syn)
        if k_max >= 4:
            profile[4] = count_weight_4(g, N, syn, mem_elems=mem_elems)
        if k_max >= 5:
            profile[5] = count_weight_5(g, N, syn, mem_elems=mem_elems)
        if k_max >= 6:
            profile[6] = count_weight_6(g, N, syn, mem_elems=mem_elems)
    return profile


def undetected_fraction(weight: int, codeword_bits: int, k: int) -> float:
    """Fraction of all k-bit errors that go undetected -- the paper's
    "slightly more than 1 out of every 2**32" observation for 802.3
    at MTU length."""
    return weight / comb(codeword_bits, k)
