"""repro: a reproduction of Koopman, "32-Bit Cyclic Redundancy Codes
for Internet Applications" (DSN 2002).

The library answers the paper's two questions for any CRC polynomial:

* *How good is it?* -- exact Hamming distance and undetected-error
  weights at any data-word length
  (:func:`~repro.hd.hamming.hamming_distance`,
  :func:`~repro.hd.weights.weight_profile`,
  :func:`~repro.hd.breakpoints.hd_breakpoint_table`).
* *Which is best?* -- exhaustive search over the design space with the
  paper's filter-cascade methodology
  (:func:`~repro.search.exhaustive.search_all`), distributable across
  unreliable workers (:mod:`repro.dist`).

Quick taste::

    >>> from repro import hamming_distance, koopman_to_full
    >>> hamming_distance(koopman_to_full(0x82608EDB), 12112)   # 802.3 at MTU
    4
    >>> hamming_distance(koopman_to_full(0xBA0DC66B), 12112)   # the paper's pick
    6

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.gf2 import (
    koopman_to_full,
    full_to_koopman,
    class_signature,
    class_signature_str,
    order_of_x,
    is_primitive,
    factorize,
)
from repro.crc import CRCSpec, CATALOG, PAPER_POLYS, get_spec, paper_poly
from repro.hd import (
    hamming_distance,
    weight_profile,
    hd_breakpoint_table,
    max_length_for_hd,
    refute_hd_at,
)
from repro.search import SearchConfig, search_all, census_of
from repro.search.optimize import best_for_length
from repro.analysis import report_for, render_table1, render_table2
from repro.gf2.ring import GF2Poly
from repro.crc.stream import StreamingCrc, crc_combine
from repro.network.stacked import stacked_hd
from repro.service import AdviceStore, CrcSession, residue_value

# The single source of truth for the release version: pyproject.toml
# declares ``version`` dynamic and reads this attribute at build time,
# and the CLI's ``--version`` prints it.  Bump here and nowhere else.
__version__ = "1.2.0"

__all__ = [
    "koopman_to_full",
    "full_to_koopman",
    "class_signature",
    "class_signature_str",
    "order_of_x",
    "is_primitive",
    "factorize",
    "CRCSpec",
    "CATALOG",
    "PAPER_POLYS",
    "get_spec",
    "paper_poly",
    "hamming_distance",
    "weight_profile",
    "hd_breakpoint_table",
    "max_length_for_hd",
    "refute_hd_at",
    "SearchConfig",
    "search_all",
    "census_of",
    "best_for_length",
    "report_for",
    "render_table1",
    "render_table2",
    "GF2Poly",
    "StreamingCrc",
    "crc_combine",
    "stacked_hd",
    "AdviceStore",
    "CrcSession",
    "residue_value",
    "__version__",
]
