"""The multi-host campaign tier: ``repro serve`` / ``repro work``.

The paper's numbers came from ~80 workstations grinding for three
months; this module is the coordinator that shape of campaign needs.
A :class:`WorkServer` owns the one :class:`~repro.dist.queue.TaskQueue`
and :class:`~repro.search.records.CampaignRecord`; remote
:class:`WorkClient` processes lease chunks over the ``repro-work/1``
NDJSON protocol, compute them with the same
:func:`~repro.search.exhaustive.search_chunk` the pool backend uses,
and mail the results -- plus their obs snapshots -- home.

Protocol (one JSON object per line, framing from
:mod:`repro.net_common`, transports from :mod:`repro.dist.transport`;
full spec in docs/FARM.md).  Client requests carry ``op``, ``seq``
(echoed in the reply, so duplicated/delayed replies are discardable)
and ``worker``; the verbs are:

``hello``    version handshake; the reply carries the campaign's
             :class:`~repro.search.exhaustive.SearchConfig`, chunk
             size and lease duration, so workers need zero local
             configuration.
``lease``    claim the next chunk (reply: bounds + lease ``epoch``),
             or learn the queue is ``idle`` (retry later),
             ``draining`` (coordinator is shutting down) or ``done``.
``renew``    heartbeat an in-flight lease.  A definitive ``lost``
             verdict (:class:`~repro.dist.queue.LeaseLost`) tells the
             worker to abandon the chunk.
``complete`` deliver a chunk result.  Idempotent: replays and
             duplicates are acknowledged but merge nothing
             (``merged: false``).
``snapshot`` mail obs metrics/spans home outside a completion.
``bye``      clean goodbye (reply, then close).

Robustness model -- every failure is somebody's everyday:

* a worker that vanishes mid-chunk stops heartbeating; the server's
  reaper sweep expires the lease and the chunk re-pends (with the
  queue's usual backoff/quarantine budgets);
* a worker that *reconnects* resends its unacknowledged completion;
  the merge is keyed by chunk id, so the replay is a no-op if the
  chunk was completed elsewhere meanwhile;
* duplicated frames are absorbed by the same idempotence; delayed
  replies are discarded by ``seq`` matching;
* a drain signal (SIGTERM/SIGINT) stops leasing, answers in-flight
  completions for ``drain_grace`` seconds, checkpoints (format 3),
  and exits; ``resume`` picks the campaign back up;
* per-worker fault budgets bench a host whose leases keep expiring,
  so one flaky machine cannot burn every chunk's retry budget.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import signal as signal_module
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.dist import checkpoint as checkpoint_io
from repro.dist.checkpoint import CheckpointMismatch
from repro.dist.faults import FaultPlan, corrupt_file
from repro.dist.progress import ProgressTracker
from repro.dist.queue import LeaseLost, TaskQueue
from repro.dist.tasks import SearchTask, partition_space
from repro.dist.transport import Connection, ConnectionLost, Transport
from repro.net_common import FrameError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.events import NULL_EVENTS, NullEventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACE, Tracer
from repro.search.exhaustive import SearchConfig, SearchResult, search_chunk
from repro.search.records import CampaignRecord, PolyRecord

#: Protocol identifier exchanged in ``hello``; bump on wire changes.
PROTOCOL = "repro-work/1"


class WorkProtocolError(Exception):
    """A malformed or unserviceable work-protocol request; ``code``
    is the machine-readable discriminant carried on the wire."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class WorkerKilled(RuntimeError):
    """Raised inside a :class:`WorkClient` when the fault plan says
    this worker dies abruptly now (no ``bye``, no cleanup)."""


# -- wire codecs -------------------------------------------------------


def config_to_wire(config: SearchConfig) -> dict[str, Any]:
    d = dataclasses.asdict(config)
    d["filter_lengths"] = list(config.filter_lengths)
    return d


def config_from_wire(d: dict[str, Any]) -> SearchConfig:
    d = dict(d)
    d["filter_lengths"] = tuple(d["filter_lengths"])
    return SearchConfig(**d)


def result_to_wire(result: SearchResult) -> dict[str, Any]:
    return {
        "records": [r.to_json_dict() for r in result.records],
        "examined": result.examined,
        "stage_kills": {str(k): v for k, v in result.stage_kills.items()},
        "elapsed": result.elapsed_seconds,
    }


def result_from_wire(d: Any, config: SearchConfig) -> SearchResult:
    """Parse a ``complete`` frame's result payload; raises
    :class:`WorkProtocolError` (``bad-field``) on anything that does
    not decode -- remote input is untrusted."""
    if not isinstance(d, dict):
        raise WorkProtocolError("bad-field", "field 'result' must be an object")
    try:
        records = [PolyRecord.from_json_dict(r) for r in d.get("records", [])]
        examined = int(d.get("examined", 0))
        stage_kills = {
            int(k): int(v) for k, v in dict(d.get("stage_kills", {})).items()
        }
        elapsed = float(d.get("elapsed", 0.0))
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise WorkProtocolError(
            "bad-field", f"undecodable result payload: {exc}"
        ) from None
    return SearchResult(
        config=config,
        records=records,
        examined=examined,
        stage_kills=stage_kills,
        elapsed_seconds=elapsed,
    )


def _int_field(req: dict, name: str, minimum: int = 0) -> int:
    value = req.get(name)
    if isinstance(value, bool) or not isinstance(value, int):
        raise WorkProtocolError("bad-field", f"missing integer field {name!r}")
    if value < minimum:
        raise WorkProtocolError("bad-field", f"field {name!r} must be >= {minimum}")
    return value


# -- the coordinator ---------------------------------------------------


@dataclass
class WorkerBook:
    """Per-worker-host accounting the server keeps (and the
    ``worker.*`` events publish for :class:`~repro.obs.report.RunReport`)."""

    worker: str
    host: str = ""
    connections: int = 0
    chunks: int = 0
    examined: int = 0
    seconds: float = 0.0
    lease_losses: int = 0
    expiries: int = 0
    faults: int = 0
    benched: bool = False
    last_seen: float = 0.0


@dataclass
class FarmStats:
    """Counters the tests and the CLI summary line report."""

    completions: int = 0
    duplicate_deliveries: int = 0
    checkpoints_written: int = 0
    skipped_from_checkpoint: int = 0
    lease_expiries: int = 0
    quarantined: int = 0
    retry_backoffs: int = 0
    frame_errors: int = 0
    protocol_errors: int = 0
    connections: int = 0


class WorkServer:
    """The asyncio campaign coordinator behind ``repro serve``.

    Owns the queue, the campaign record, the checkpoint cadence and
    the lease reaper; serves the ``repro-work/1`` verbs over whatever
    :class:`~repro.dist.transport.Transport` it is given.  One event
    loop, no locks: every dispatch mutates state between awaits.
    """

    def __init__(
        self,
        config: SearchConfig,
        chunk_size: int,
        transport: Transport,
        *,
        lease_duration: float = 30.0,
        max_attempts: int = 5,
        retry_backoff: float = 0.05,
        backoff_cap: float = 30.0,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 8,
        worker_fault_budget: int = 0,
        drain_grace: float = 3.0,
        progress_interval: float = 10.0,
        max_seconds: float | None = None,
        faults: FaultPlan | None = None,
        events: NullEventLog = NULL_EVENTS,
        collect_metrics: bool = False,
        collect_traces: bool | None = None,
        handle_signals: bool = True,
        log: Callable[[str], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.chunk_size = chunk_size
        self.transport = transport
        self.lease_duration = lease_duration
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.worker_fault_budget = worker_fault_budget
        self.drain_grace = drain_grace
        self.progress_interval = progress_interval
        self.max_seconds = max_seconds
        self.faults = faults
        self.events = events
        self.collect_metrics = collect_metrics
        self.handle_signals = handle_signals
        self.log = log
        self.clock = clock
        self.queue = TaskQueue(
            partition_space(config.width, chunk_size),
            lease_duration=lease_duration,
            max_attempts=max_attempts,
            backoff_base=retry_backoff,
            backoff_cap=backoff_cap,
        )
        self.queue.on_expire = self._on_lease_expire
        self.queue.on_quarantine = self._on_quarantine
        self.queue.on_backoff = self._on_backoff
        self.campaign = CampaignRecord(
            width=config.width,
            data_word_bits=config.final_length,
            target_hd=config.target_hd,
        )
        self.metrics = MetricsRegistry()
        if collect_traces is None:
            collect_traces = events.enabled
        self.tracer = Tracer(events=events) if collect_traces else NULL_TRACE
        self.stats = FarmStats()
        self.workers: dict[str, WorkerBook] = {}
        self.tracker = ProgressTracker(total_chunks=len(self.queue))
        self.address: str | None = None
        self.interrupted: str | None = None
        self._chunk_spans: dict[int, tuple] = {}
        self._open_connections = 0
        self._completions_since_checkpoint = 0
        self._dirty_since_checkpoint = False
        self._shutdown_signal: str | None = None
        self._signals_installed = False
        self._t0: float | None = None

    # -- queue observers (same event vocabulary as the pool) -----------

    def _on_lease_expire(self, task: SearchTask, now: float) -> None:
        self.stats.lease_expiries += 1
        self.events.emit(
            "lease.expire",
            chunk=task.chunk_id,
            owner=task.owner,
            attempt=task.attempts,
        )
        book = self.workers.get(task.owner or "")
        if book is not None:
            book.expiries += 1
            book.faults += 1
            if (
                self.worker_fault_budget
                and not book.benched
                and book.faults >= self.worker_fault_budget
            ):
                book.benched = True
                self.events.emit(
                    "worker.benched", worker=book.worker, faults=book.faults
                )
                self._say(
                    f"worker {book.worker} benched after {book.faults} faults"
                )
        self._close_chunk_spans(task.chunk_id, "expired")

    def _on_quarantine(self, task: SearchTask, now: float) -> None:
        self.stats.quarantined += 1
        self._dirty_since_checkpoint = True
        self.events.emit(
            "chunk.quarantine", chunk=task.chunk_id, attempts=task.attempts
        )
        self._say(
            f"chunk {task.chunk_id} quarantined after {task.attempts} "
            "failed attempts"
        )

    def _on_backoff(self, task: SearchTask, delay: float) -> None:
        self.stats.retry_backoffs += 1
        self.events.emit(
            "lease.backoff",
            chunk=task.chunk_id,
            attempt=task.attempts,
            delay=round(delay, 6),
        )

    # -- checkpoint / resume (format 3, shared with the pool) ----------

    def save_checkpoint(self, path: str | None = None) -> None:
        target = path or self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        checkpoint_io.save(
            target,
            self.campaign,
            self.config,
            self.chunk_size,
            self.queue.quarantined_ids,
        )
        self.stats.checkpoints_written += 1
        self._dirty_since_checkpoint = False
        self.events.emit(
            "checkpoint.write",
            path=target,
            chunks_done=len(self.campaign.chunks_done),
            quarantined=self.queue.quarantined,
        )
        if (
            self.faults is not None
            and self.faults.corrupt_checkpoint_after is not None
            and self.stats.checkpoints_written
            == self.faults.corrupt_checkpoint_after
        ):
            corrupt_file(target, seed=self.stats.checkpoints_written)

    def resume(
        self, path: str | None = None, *, retry_quarantined: bool = False
    ) -> int:
        """Load a compatible checkpoint and mark its chunks done /
        quarantined; returns the number skipped.  Same semantics and
        exceptions as the pool coordinator's resume."""
        target = path or self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        loaded = checkpoint_io.load(target, self.config, self.chunk_size)
        if loaded.fell_back:
            self.events.emit(
                "checkpoint.corrupt",
                path=target,
                fallback=loaded.source,
                error=str(loaded.corrupt_error),
            )
            self._say(
                f"checkpoint {target} unusable ({loaded.corrupt_error}); "
                f"recovered from previous generation {loaded.source}"
            )
        campaign = loaded.campaign
        foreign = [
            c
            for c in sorted(campaign.chunks_done | loaded.quarantined)
            if c not in self.queue
        ]
        if foreign:
            raise CheckpointMismatch(
                f"checkpoint {loaded.source} references chunks {foreign}, "
                f"outside this campaign's {len(self.queue)}-chunk partition "
                "(chunk_size mismatch?)"
            )
        skipped = 0
        for chunk_id in campaign.chunks_done:
            if self.queue.complete(chunk_id, "checkpoint", 0.0):
                skipped += 1
        restored = 0
        if not retry_quarantined:
            for chunk_id in sorted(loaded.quarantined):
                if self.queue.mark_quarantined(chunk_id):
                    restored += 1
                    self.stats.quarantined += 1
                    self.events.emit(
                        "chunk.quarantine",
                        chunk=chunk_id,
                        attempts=0,
                        restored=True,
                    )
        self.campaign = campaign
        self.stats.skipped_from_checkpoint = skipped
        self.events.emit(
            "campaign.resume",
            path=loaded.source,
            skipped=skipped,
            quarantined=restored,
        )
        return skipped

    # -- signals / drain ----------------------------------------------

    def _begin_drain(self, signame: str) -> None:
        if self._shutdown_signal is None:
            self._shutdown_signal = signame

    def _install_signal_handlers(self) -> dict[int, object]:
        if not self.handle_signals:
            return {}
        previous: dict[int, object] = {}
        for sig in (signal_module.SIGTERM, signal_module.SIGINT):
            try:
                previous[sig] = signal_module.signal(
                    sig,
                    lambda signum, frame: self._begin_drain(
                        signal_module.Signals(signum).name
                    ),
                )
            except ValueError:  # not the main thread
                return previous
        self._signals_installed = True
        return previous

    def _restore_signal_handlers(self, previous: dict[int, object]) -> None:
        for sig, handler in previous.items():
            signal_module.signal(sig, handler)
        self._signals_installed = False

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def _close_chunk_spans(self, chunk_id: int, outcome: str) -> None:
        root, remote = self._chunk_spans.pop(
            chunk_id, (obs_trace.NULL_SPAN, obs_trace.NULL_SPAN)
        )
        remote.annotate(outcome=outcome)
        remote.end()
        root.annotate(outcome=outcome)
        root.end()

    # -- protocol dispatch --------------------------------------------

    def _base_reply(self, req: dict, op: str | None = None) -> dict:
        reply: dict[str, Any] = {"ok": True}
        if op is not None:
            reply["op"] = op
        seq = req.get("seq")
        if isinstance(seq, (int, str)) and not isinstance(seq, bool):
            reply["seq"] = seq
        return reply

    def _error_frame(self, code: str, message: str, req: dict | None) -> dict:
        self.stats.protocol_errors += 1
        self.metrics.inc("work.request.error")
        self.metrics.inc(f"work.error.{code}")
        frame: dict[str, Any] = {
            "ok": False,
            "error": {"code": code, "message": message},
        }
        if isinstance(req, dict):
            seq = req.get("seq")
            if isinstance(seq, (int, str)) and not isinstance(seq, bool):
                frame["seq"] = seq
        return frame

    def _dispatch(
        self, req: Any, worker: str | None
    ) -> tuple[dict, bool, str | None]:
        """One request -> ``(reply, close_connection, worker_binding)``.
        Never raises: every failure becomes a coded error frame."""
        if not isinstance(req, dict):
            return (
                self._error_frame("bad-frame", "request must be a JSON object", None),
                False,
                worker,
            )
        op = req.get("op")
        if not isinstance(op, str):
            return (
                self._error_frame("bad-frame", "missing string field 'op'", req),
                False,
                worker,
            )
        try:
            if op == "hello":
                return self._op_hello(req)
            if worker is None:
                return (
                    self._error_frame(
                        "no-hello", f"{op!r} before 'hello' handshake", req
                    ),
                    False,
                    worker,
                )
            book = self.workers[worker]
            book.last_seen = self.clock()
            if op == "lease":
                return self._op_lease(req, book), False, worker
            if op == "renew":
                return self._op_renew(req, book), False, worker
            if op == "complete":
                return self._op_complete(req, book), False, worker
            if op == "snapshot":
                return self._op_snapshot(req, book), False, worker
            if op == "bye":
                self.events.emit(
                    "worker.bye", worker=worker, chunks=book.chunks
                )
                reply = self._base_reply(req, "bye")
                return reply, True, worker
            return (
                self._error_frame(
                    "unknown-op",
                    f"unknown op {op!r}; known: bye, complete, hello, "
                    "lease, renew, snapshot",
                    req,
                ),
                False,
                worker,
            )
        except WorkProtocolError as exc:
            return self._error_frame(exc.code, str(exc), req), False, worker
        except Exception as exc:  # never let a request kill the coordinator
            return (
                self._error_frame(
                    "internal", f"{type(exc).__name__}: {exc}", req
                ),
                False,
                worker,
            )

    def _op_hello(self, req: dict) -> tuple[dict, bool, str | None]:
        protocol = req.get("protocol")
        if protocol != PROTOCOL:
            return (
                self._error_frame(
                    "version-mismatch",
                    f"this coordinator speaks {PROTOCOL}, not {protocol!r}",
                    req,
                ),
                True,
                None,
            )
        worker = req.get("worker")
        if not isinstance(worker, str) or not worker:
            raise WorkProtocolError(
                "bad-field", "missing non-empty string field 'worker'"
            )
        host = req.get("host")
        book = self.workers.setdefault(worker, WorkerBook(worker=worker))
        if isinstance(host, str):
            book.host = host
        reconnect = book.connections > 0
        book.connections += 1
        book.last_seen = self.clock()
        self.metrics.inc("work.hello")
        self.events.emit(
            "worker.hello",
            worker=worker,
            host=book.host,
            reconnect=reconnect,
        )
        reply = self._base_reply(req, "hello")
        reply.update(
            protocol=PROTOCOL,
            config=config_to_wire(self.config),
            chunk_size=self.chunk_size,
            lease=self.lease_duration,
        )
        return reply, False, worker

    def _op_lease(self, req: dict, book: WorkerBook) -> dict:
        reply = self._base_reply(req, "lease")
        now = self.clock()
        if self.queue.finished:
            reply["done"] = True
            return reply
        if self._shutdown_signal is not None:
            reply["draining"] = True
            return reply
        if book.benched:
            reply.update(idle=True, benched=True, retry_in=self.lease_duration)
            return reply
        task = self.queue.lease(book.worker, now)
        if task is None:
            wake = self.queue.next_wakeup(now)
            retry_in = 0.05 if wake is None else max(wake - now, 0.01)
            # Cap below the post-campaign quiesce window: an idle
            # worker must poll again in time to hear "done" before the
            # coordinator stops listening, whatever the lease length.
            reply.update(idle=True, retry_in=round(min(retry_in, 1.0), 4))
            return reply
        root = self.tracer.start(
            "chunk", chunk=task.chunk_id, attempt=task.attempts,
            worker=book.worker,
        )
        remote = self.tracer.start(
            "chunk.remote", parent=root.id, chunk=task.chunk_id,
            worker=book.worker,
        )
        self._chunk_spans[task.chunk_id] = (root, remote)
        self.events.emit(
            "lease.grant",
            chunk=task.chunk_id,
            attempt=task.attempts,
            worker=book.worker,
        )
        self.metrics.inc("work.lease")
        reply.update(
            chunk=task.chunk_id,
            start=task.start_index,
            end=task.end_index,
            epoch=task.epoch,
            attempt=task.attempts,
        )
        return reply

    def _op_renew(self, req: dict, book: WorkerBook) -> dict:
        chunk = _int_field(req, "chunk")
        epoch = req.get("epoch")
        if epoch is not None:
            epoch = _int_field(req, "epoch")
        if chunk not in self.queue:
            raise WorkProtocolError("bad-field", f"unknown chunk {chunk}")
        reply = self._base_reply(req, "renew")
        try:
            self.queue.renew(chunk, book.worker, self.clock(), epoch=epoch)
        except LeaseLost as exc:
            book.lease_losses += 1
            self.events.emit(
                "worker.lease_lost",
                worker=book.worker,
                chunk=chunk,
                reason=str(exc),
            )
            reply.update(renewed=False, lost=True, reason=str(exc))
            return reply
        self.events.emit("lease.renew", chunks=1, worker=book.worker)
        reply["renewed"] = True
        return reply

    def _op_complete(self, req: dict, book: WorkerBook) -> dict:
        chunk = _int_field(req, "chunk")
        if chunk not in self.queue:
            raise WorkProtocolError("bad-field", f"unknown chunk {chunk}")
        result = result_from_wire(req.get("result"), self.config)
        now = self.clock()
        task = self.queue.task(chunk)
        attempt = task.attempts
        self.queue.complete(chunk, book.worker, now)
        merged = self.campaign.merge_chunk(chunk, result.records, result.examined)
        obs = req.get("obs") if isinstance(req.get("obs"), dict) else {}
        if merged:
            root, remote = self._chunk_spans.pop(
                chunk, (obs_trace.NULL_SPAN, obs_trace.NULL_SPAN)
            )
            remote.annotate(worker=book.worker)
            remote.end()
            self.tracer.adopt(obs.get("spans"), parent=remote.id)
            merge_span = self.tracer.start(
                "chunk.merge", parent=root.id, chunk=chunk
            )
            merge_span.end()
            root.annotate(attempt=attempt)
            root.end()
            self.metrics.merge(obs.get("metrics"))
            self.metrics.observe_hist("chunk.seconds", result.elapsed_seconds)
            self.stats.completions += 1
            book.chunks += 1
            book.examined += result.examined
            book.seconds += result.elapsed_seconds
            self._completions_since_checkpoint += 1
            self._dirty_since_checkpoint = True
            if self._t0 is not None:
                self.tracker.observe(now - self._t0, self.queue.done)
        else:
            self.stats.duplicate_deliveries += 1
            self.metrics.inc("work.duplicate_completion")
        self.events.emit(
            "chunk.done",
            chunk=chunk,
            attempt=attempt,
            examined=result.examined,
            survivors=len(result.survivors),
            seconds=round(result.elapsed_seconds, 6),
            stage_kills=result.stage_kills,
            duplicate=not merged,
            worker=book.worker,
        )
        if (
            merged
            and self.checkpoint_path is not None
            and self._completions_since_checkpoint >= self.checkpoint_every
        ):
            self.save_checkpoint()
            self._completions_since_checkpoint = 0
        if (
            merged
            and self.faults is not None
            and self.faults.kill_signal_after is not None
            and self.stats.completions == self.faults.kill_signal_after
        ):
            self._begin_drain("SIGTERM")
        reply = self._base_reply(req, "complete")
        reply.update(merged=merged, done=self.queue.finished)
        return reply

    def _op_snapshot(self, req: dict, book: WorkerBook) -> dict:
        obs = req.get("obs") if isinstance(req.get("obs"), dict) else {}
        self.metrics.merge(obs.get("metrics"))
        self.tracer.adopt(obs.get("spans"))
        self.events.emit("worker.snapshot", worker=book.worker)
        return self._base_reply(req, "snapshot")

    # -- connection plumbing ------------------------------------------

    async def _handle_connection(self, conn: Connection) -> None:
        self.stats.connections += 1
        self._open_connections += 1
        worker: str | None = None
        try:
            while True:
                try:
                    req = await conn.recv()
                except FrameError as exc:
                    self.stats.frame_errors += 1
                    self.events.emit(
                        "work.frame_error", code=exc.code, worker=worker
                    )
                    try:
                        await conn.send(
                            self._error_frame(exc.code, str(exc), None)
                        )
                    except ConnectionLost:
                        return
                    if not exc.recoverable:
                        return
                    continue
                except ConnectionLost:
                    return
                if req is None:
                    return
                reply, close, worker = self._dispatch(req, worker)
                try:
                    await conn.send(reply)
                except ConnectionLost:
                    return
                if close:
                    return
        except asyncio.CancelledError:
            raise
        finally:
            self._open_connections -= 1
            await conn.close()

    # -- the serve loop -----------------------------------------------

    async def serve(self) -> int:
        """Serve until every chunk is DONE or QUARANTINED, or a drain
        signal lands.  Returns 0; check :attr:`interrupted` and
        ``queue.quarantined_ids`` for the campaign verdict (the CLI
        maps them to exit codes)."""
        t0 = self.clock()
        self._t0 = t0
        self.interrupted = None
        self._shutdown_signal = None
        self.tracker = ProgressTracker(total_chunks=len(self.queue))
        self.tracker.observe(0.0, self.queue.done)
        self.address = await self.transport.listen(self._handle_connection)
        previous = self._install_signal_handlers()
        self.events.emit(
            "campaign.start",
            backend="net",
            width=self.config.width,
            target_hd=self.config.target_hd,
            final_length=self.config.final_length,
            chunk_size=self.chunk_size,
            chunks=len(self.queue),
            transport=type(self.transport).__name__,
            address=self.address,
        )
        self._say(f"work server listening on {self.address}")
        tick = min(max(self.lease_duration / 4.0, 0.01), 0.25)
        last_summary = t0
        try:
            while not self.queue.finished:
                if self._shutdown_signal is not None:
                    break
                now = self.clock()
                if self.max_seconds is not None and now - t0 > self.max_seconds:
                    raise RuntimeError(
                        f"campaign exceeded {self.max_seconds}s: "
                        + self.queue.progress()
                    )
                # The reaper: a vanished host's leases expire here even
                # while every live worker is busy computing.
                self.queue.reclaim(now)
                if now - last_summary >= self.progress_interval:
                    self._say(
                        self.tracker.summary(now - t0)
                        + " | "
                        + self.queue.progress()
                    )
                    last_summary = now
                await asyncio.sleep(tick)
            if self._shutdown_signal is not None:
                await self._drain()
            else:
                # Give connected workers a beat to hear "done" and bye.
                await self._quiesce(min(self.drain_grace, 2.0))
        finally:
            self._restore_signal_handlers(previous)
            for chunk_id in list(self._chunk_spans):
                self._close_chunk_spans(chunk_id, "stopped")
            await self.transport.close()
        elapsed = self.clock() - t0
        if self.checkpoint_path is not None and self._dirty_since_checkpoint:
            self.save_checkpoint()
            self._completions_since_checkpoint = 0
        if self.collect_metrics:
            self.events.emit("metrics.snapshot", metrics=self.metrics.snapshot())
        if self._shutdown_signal is not None:
            self.interrupted = self._shutdown_signal
            self.events.emit(
                "campaign.interrupted",
                signal=self._shutdown_signal,
                elapsed=round(elapsed, 6),
                completions=self.stats.completions,
                examined=self.campaign.candidates_examined,
            )
        else:
            self.events.emit(
                "campaign.end",
                elapsed=round(elapsed, 6),
                completions=self.stats.completions,
                examined=self.campaign.candidates_examined,
                survivors=len(self.campaign.survivors),
                quarantined=self.queue.quarantined,
            )
        self._say(
            self.tracker.summary(elapsed) + " | " + self.queue.progress()
        )
        return 0

    async def _quiesce(self, grace: float) -> None:
        deadline = self.clock() + grace
        while self._open_connections and self.clock() < deadline:
            await asyncio.sleep(0.01)

    async def _drain(self) -> None:
        """Signal-driven graceful shutdown: stop leasing (the lease op
        already answers ``draining``), give in-flight chunks
        ``drain_grace`` seconds to complete, forfeit the rest."""
        signame = self._shutdown_signal
        self.events.emit(
            "shutdown.drain",
            signal=signame,
            inflight=self.queue.leased,
            grace=self.drain_grace,
        )
        self._say(
            f"{signame} received: draining {self.queue.leased} in-flight "
            "chunks"
        )
        done_before = self.queue.done
        deadline = self.clock() + self.drain_grace
        while self.queue.leased and self.clock() < deadline:
            await asyncio.sleep(0.02)
        now = self.clock()
        forfeited = 0
        for chunk_id in range(len(self.queue)):
            task = self.queue.task(chunk_id)
            if task.status.name == "LEASED":
                self.queue.release(chunk_id, task.owner or "", now)
                forfeited += 1
        await self._quiesce(min(self.drain_grace, 1.0))
        self._say(
            f"drained {self.queue.done - done_before} chunks, "
            f"forfeited {forfeited} -- " + self.queue.progress()
        )


# -- the worker -------------------------------------------------------


@dataclass
class ClientStats:
    chunks: int = 0
    examined: int = 0
    reconnects: int = 0
    lease_losses: int = 0
    resent_completes: int = 0
    idle_waits: int = 0


class WorkClient:
    """One remote worker: connect, hello, then lease/compute/complete
    until the coordinator says ``done`` (or ``draining``).

    Survival kit: request/ack with ``seq`` matching (duplicate and
    delayed replies are discarded), ack timeouts (a dropped frame is
    a reconnect, and the unacknowledged ``complete`` is resent on the
    new connection), exponential reconnect backoff with deterministic
    jitter seeded by the worker id, lease heartbeats during compute
    with definitive :class:`~repro.dist.queue.LeaseLost` abandonment,
    and SIGTERM drain (finish the in-flight chunk, report, bye).
    """

    def __init__(
        self,
        address: str,
        transport: Transport,
        worker_id: str,
        *,
        host: str | None = None,
        ack_timeout: float | None = None,
        reconnect_base: float = 0.2,
        reconnect_cap: float = 10.0,
        max_connect_attempts: int = 8,
        idle_floor: float = 0.02,
        faults: FaultPlan | None = None,
        collect_obs: bool = True,
        handle_signals: bool = False,
        log: Callable[[str], None] | None = None,
    ) -> None:
        self.address = address
        self.transport = transport
        self.worker_id = worker_id
        self.host = host if host is not None else socket.gethostname()
        self.ack_timeout = ack_timeout
        self.reconnect_base = reconnect_base
        self.reconnect_cap = reconnect_cap
        self.max_connect_attempts = max_connect_attempts
        self.idle_floor = idle_floor
        self.faults = faults
        self.collect_obs = collect_obs
        self.handle_signals = handle_signals
        self.log = log
        self.stats = ClientStats()
        self.config: SearchConfig | None = None
        self.chunk_size: int | None = None
        self.lease_duration = 30.0
        self.outcome: str | None = None
        self._seq = 0
        self._completions = 0
        self._pending_complete: dict | None = None
        self._draining = False

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def _backoff(self, attempt: int) -> float:
        """Exponential with deterministic jitter: the same worker's
        n-th retry always waits the same time, but different workers
        never stampede in lockstep."""
        delay = min(
            self.reconnect_base * (2 ** max(attempt - 1, 0)),
            self.reconnect_cap,
        )
        rng = random.Random(f"{self.worker_id}#{attempt}")
        return delay * (0.5 + rng.random())

    def _install_signal_handlers(self) -> dict[int, object]:
        if not self.handle_signals:
            return {}
        previous: dict[int, object] = {}

        def drain(signum: int, frame: object) -> None:
            self._draining = True

        for sig in (signal_module.SIGTERM, signal_module.SIGINT):
            try:
                previous[sig] = signal_module.signal(sig, drain)
            except ValueError:
                return previous
        return previous

    def _restore_signal_handlers(self, previous: dict[int, object]) -> None:
        for sig, handler in previous.items():
            signal_module.signal(sig, handler)

    # -- request/ack --------------------------------------------------

    @property
    def _ack_timeout(self) -> float:
        if self.ack_timeout is not None:
            return self.ack_timeout
        return max(self.lease_duration, 2.0)

    async def _request(self, conn: Connection, frame: dict) -> dict:
        """Send one request and wait for its matching (``seq``) reply.
        Duplicated or delayed replies from earlier exchanges are
        discarded; a timeout or dead wire raises
        :class:`ConnectionLost`; a coded server error raises
        :class:`WorkProtocolError`."""
        self._seq += 1
        frame = dict(frame, seq=self._seq, worker=self.worker_id)
        await conn.send(frame)
        while True:
            try:
                reply = await asyncio.wait_for(conn.recv(), self._ack_timeout)
            except asyncio.TimeoutError:
                raise ConnectionLost(
                    f"no reply to {frame.get('op')!r} within "
                    f"{self._ack_timeout}s"
                ) from None
            except FrameError as exc:
                raise ConnectionLost(f"garbled reply: {exc}") from None
            if reply is None:
                raise ConnectionLost("server closed the connection")
            if not isinstance(reply, dict) or reply.get("seq") != self._seq:
                continue  # a duplicate or delayed reply: discard
            if not reply.get("ok", False):
                error = reply.get("error") or {}
                raise WorkProtocolError(
                    str(error.get("code", "error")),
                    str(error.get("message", "server rejected the request")),
                )
            return reply

    async def _connect(self) -> Connection:
        conn = await self.transport.connect(self.address, label=self.worker_id)
        try:
            reply = await self._request(
                conn,
                {"op": "hello", "protocol": PROTOCOL, "host": self.host},
            )
        except (ConnectionLost, WorkProtocolError):
            await conn.close()
            raise
        self.config = config_from_wire(reply["config"])
        self.chunk_size = reply.get("chunk_size")
        self.lease_duration = float(reply.get("lease", self.lease_duration))
        return conn

    # -- compute ------------------------------------------------------

    def _compute(
        self, start: int, end: int, chunk_id: int, attempt: int
    ) -> tuple[SearchResult, dict]:
        """Runs on an executor thread; installs per-chunk obs exactly
        like the pool's subprocess entry point, so the coordinator's
        waterfall and metrics merge see the same shapes."""
        registry = MetricsRegistry() if self.collect_obs else None
        tracer = Tracer() if self.collect_obs else None
        previous_metrics = obs_metrics.install(registry) if registry else None
        previous_trace = obs_trace.install(tracer) if tracer else None
        try:
            if tracer is not None:
                with tracer.span(
                    "chunk.compute",
                    chunk=chunk_id,
                    attempt=attempt,
                    worker=self.worker_id,
                ):
                    result = search_chunk(self.config, start, end)
            else:
                result = search_chunk(self.config, start, end)
        finally:
            if registry is not None:
                obs_metrics.install(previous_metrics)
            if tracer is not None:
                obs_trace.install(previous_trace)
        obs = {
            "metrics": registry.snapshot() if registry else None,
            "spans": tracer.snapshot() if tracer else None,
        }
        return result, obs

    async def _compute_with_heartbeat(
        self, conn: Connection, chunk: int, start: int, end: int,
        epoch: int, attempt: int,
    ) -> tuple[SearchResult, dict, bool, ConnectionLost | None]:
        """Compute off-loop while renewing the lease every third of
        its duration.  Returns ``(result, obs, lost, conn_dead)``:
        ``lost`` means the server said the lease is definitively gone
        (abandon the chunk), ``conn_dead`` that the wire died mid-
        chunk (finish, then reconnect and deliver anyway)."""
        loop = asyncio.get_running_loop()
        fut = loop.run_in_executor(
            None, self._compute, start, end, chunk, attempt
        )
        interval = max(self.lease_duration / 3.0, 0.05)
        lost = False
        conn_dead: ConnectionLost | None = None
        while True:
            done, _ = await asyncio.wait({fut}, timeout=interval)
            if fut in done:
                break
            if lost or conn_dead is not None:
                continue  # nothing left to heartbeat; just finish
            try:
                reply = await self._request(
                    conn, {"op": "renew", "chunk": chunk, "epoch": epoch}
                )
                if reply.get("lost"):
                    lost = True
            except ConnectionLost as exc:
                conn_dead = exc
        result, obs = fut.result()
        return result, obs, lost, conn_dead

    # -- the work loop ------------------------------------------------

    async def _deliver(self, conn: Connection, frame: dict) -> dict:
        """Send a ``complete``; the frame stays pended until the ack
        lands, so a reconnect resends it."""
        self._pending_complete = frame
        reply = await self._request(conn, frame)
        self._pending_complete = None
        self.stats.chunks += 1
        self._completions += 1
        return reply

    async def _session(self, conn: Connection) -> str:
        """One connection's work loop; returns ``"done"`` or
        ``"drained"``, raises :class:`ConnectionLost` to reconnect."""
        if self._pending_complete is not None:
            frame = self._pending_complete
            self._say(
                f"{self.worker_id}: resending unacknowledged completion "
                f"of chunk {frame.get('chunk')}"
            )
            reply = await self._deliver(conn, frame)
            self.stats.resent_completes += 1
            if reply.get("done"):
                return "done"
        while True:
            if self._draining:
                return "drained"
            reply = await self._request(conn, {"op": "lease"})
            if reply.get("done"):
                return "done"
            if reply.get("draining"):
                return "drained"
            if reply.get("chunk") is None:
                self.stats.idle_waits += 1
                await asyncio.sleep(
                    max(float(reply.get("retry_in", 0.05)), self.idle_floor)
                )
                continue
            chunk = reply["chunk"]
            epoch = reply.get("epoch", 0)
            attempt = reply.get("attempt", 1)
            if self.faults is not None and self.faults.net_kills(
                self.worker_id, self._completions
            ):
                # Die *holding* the lease: the coordinator's reaper
                # must notice the silence and re-pend the chunk.
                raise WorkerKilled(
                    f"worker {self.worker_id} killed holding chunk "
                    f"{chunk} after {self._completions} completions"
                )
            result, obs, lost, conn_dead = await self._compute_with_heartbeat(
                conn, chunk, reply["start"], reply["end"], epoch, attempt
            )
            if lost:
                # Someone else owns (or finished) the chunk; the
                # deterministic answer is already on its way from them.
                self.stats.lease_losses += 1
                self._say(
                    f"{self.worker_id}: lease on chunk {chunk} lost; "
                    "abandoning result"
                )
                continue
            frame = {
                "op": "complete",
                "chunk": chunk,
                "epoch": epoch,
                "result": result_to_wire(result),
                "obs": obs,
            }
            if conn_dead is not None:
                # The wire died while we computed: pend the completion
                # for the reconnect path and surface the loss.
                self._pending_complete = frame
                raise conn_dead
            reply = await self._deliver(conn, frame)
            self.stats.examined += result.examined
            if reply.get("done"):
                return "done"

    async def run(self) -> int:
        """Work until the campaign is done (0), the coordinator
        drains (0), the server is unreachable past the reconnect
        budget (1), or the protocol is incompatible (2)."""
        previous = self._install_signal_handlers()
        self.outcome = None
        connect_failures = 0
        try:
            while True:
                try:
                    conn = await self._connect()
                except ConnectionLost as exc:
                    connect_failures += 1
                    if connect_failures >= self.max_connect_attempts:
                        self._say(
                            f"{self.worker_id}: giving up after "
                            f"{connect_failures} failed connection "
                            f"attempts: {exc}"
                        )
                        self.outcome = "unreachable"
                        return 1
                    await asyncio.sleep(self._backoff(connect_failures))
                    continue
                except WorkProtocolError as exc:
                    self._say(
                        f"{self.worker_id}: coordinator rejected us "
                        f"({exc.code}): {exc}"
                    )
                    self.outcome = exc.code
                    return 2
                connect_failures = 0
                try:
                    outcome = await self._session(conn)
                except ConnectionLost as exc:
                    self.stats.reconnects += 1
                    self._say(
                        f"{self.worker_id}: connection lost ({exc}); "
                        "reconnecting"
                    )
                    await conn.close()
                    continue
                except WorkProtocolError as exc:
                    self._say(
                        f"{self.worker_id}: fatal protocol error "
                        f"({exc.code}): {exc}"
                    )
                    await conn.close()
                    self.outcome = exc.code
                    return 2
                except WorkerKilled:
                    # Abrupt death: no bye, just drop the wire.
                    await conn.close()
                    self.outcome = "killed"
                    raise
                try:
                    await self._request(conn, {"op": "bye"})
                except (ConnectionLost, WorkProtocolError):
                    pass  # the goodbye is best-effort
                await conn.close()
                self.outcome = outcome
                self._say(
                    f"{self.worker_id}: {outcome} -- {self.stats.chunks} "
                    f"chunks, {self.stats.examined} candidates"
                )
                return 0
        finally:
            self._restore_signal_handlers(previous)
