"""Campaign coordinator: partition, schedule, merge, checkpoint.

The coordinator owns the task queue and the campaign record.  It
interleaves any number of workers round-robin (deterministically), so
the same logic drives unit tests, the fault-injection suite and the
virtual-time farm.  Results merge idempotently (chunk id is the
idempotency key), and the whole campaign state round-trips through
JSON -- the checkpoint that let a 2001-style months-long run survive
coordinator restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dist import checkpoint as checkpoint_io
from repro.dist.checkpoint import CheckpointMismatch
from repro.dist.faults import WorkerCrashed
from repro.dist.queue import TaskQueue
from repro.dist.tasks import SearchTask, partition_space
from repro.dist.worker import ChunkWorker
from repro.obs.events import NULL_EVENTS, NullEventLog
from repro.search.exhaustive import SearchConfig, SearchResult
from repro.search.records import CampaignRecord


@dataclass
class Coordinator:
    """Drives a fleet of :class:`ChunkWorker` over a shared queue.

    ``events`` (default: the shared no-op sink) receives the same
    vocabulary the wall-clock pool emits -- ``campaign.start``,
    ``chunk.done``, ``lease.expire``, ``worker.crash``,
    ``checkpoint.write`` -- with the *logical* clock's ``now`` in the
    payload, so ``repro report`` reads both backends' logs.
    """

    config: SearchConfig
    chunk_size: int
    lease_duration: float = 600.0
    events: NullEventLog = NULL_EVENTS
    #: Retry budget per chunk; 0 (the default, matching the seed
    #: behaviour) retries forever, a positive value quarantines a
    #: chunk whose budget is spent instead of re-leasing it.
    max_attempts: int = 0
    queue: TaskQueue = field(init=False)
    campaign: CampaignRecord = field(init=False)
    duplicate_deliveries: int = 0
    reassignments: int = 0
    quarantined: int = 0

    def __post_init__(self) -> None:
        tasks = partition_space(self.config.width, self.chunk_size)
        self.queue = TaskQueue(
            tasks,
            lease_duration=self.lease_duration,
            max_attempts=self.max_attempts,
        )
        self.queue.on_expire = lambda task, now: self.events.emit(
            "lease.expire",
            chunk=task.chunk_id,
            owner=task.owner,
            attempt=task.attempts,
        )
        self.queue.on_quarantine = self._on_quarantine
        self.campaign = CampaignRecord(
            width=self.config.width,
            data_word_bits=self.config.final_length,
            target_hd=self.config.target_hd,
        )

    def _on_quarantine(self, task: SearchTask, now: float) -> None:
        self.quarantined += 1
        self.events.emit(
            "chunk.quarantine", chunk=task.chunk_id, attempts=task.attempts
        )

    def deliver(self, task: SearchTask, result: SearchResult, worker_id: str) -> None:
        """Accept one (possibly duplicate) completion delivery."""
        merged = self.campaign.merge_chunk(
            task.chunk_id, result.records, result.examined
        )
        if not merged:
            self.duplicate_deliveries += 1
        self.events.emit(
            "chunk.done",
            chunk=task.chunk_id,
            attempt=task.attempts,
            worker=worker_id,
            examined=result.examined,
            survivors=len(result.survivors),
            seconds=round(result.elapsed_seconds, 6),
            stage_kills=result.stage_kills,
            duplicate=not merged,
        )

    def run(self, workers: list[ChunkWorker], *, time_per_chunk: float = 1.0) -> float:
        """Round-robin the fleet until every chunk is done.

        Uses a shared logical clock that advances by
        ``time_per_chunk / len(live_workers)`` per executed chunk --
        a simple but adequate interleaving model.  Lease expiry (and
        hence reassignment after crashes) falls out of the clock
        passing ``lease_duration``.  Returns the final logical time.
        """
        now = 0.0
        idle_rounds = 0
        self.events.emit(
            "campaign.start",
            backend="simulated",
            width=self.config.width,
            target_hd=self.config.target_hd,
            final_length=self.config.final_length,
            chunk_size=self.chunk_size,
            chunks=len(self.queue),
            workers=len(workers),
        )
        while not self.queue.finished:
            live = [w for w in workers if w.alive]
            if not live:
                raise RuntimeError(
                    "all workers dead with work outstanding: "
                    + self.queue.progress()
                )
            made_progress = False
            for worker in live:
                try:
                    outcome = worker.run_one(self.queue, now)
                except WorkerCrashed:
                    self.events.emit("worker.crash", worker=worker.worker_id)
                    continue
                if outcome is None:
                    continue
                task, result = outcome
                if task.attempts > 1:
                    self.reassignments += 1
                now += time_per_chunk / max(len(live), 1)
                for _ in range(worker.deliveries_for(worker.last_chunk_number)):
                    self.queue.complete(task.chunk_id, worker.worker_id, now)
                    self.deliver(task, result, worker.worker_id)
                made_progress = True
            if not made_progress:
                # Everything pending is leased by dead workers; advance
                # time to the next lease expiry so it gets reclaimed.
                idle_rounds += 1
                now += self.lease_duration
                if idle_rounds > 2 * len(self.queue):
                    raise RuntimeError(
                        "campaign stalled: " + self.queue.progress()
                    )
        self.events.emit(
            "campaign.end",
            elapsed=round(now, 6),
            completions=len(self.campaign.chunks_done),
            examined=self.campaign.candidates_examined,
            survivors=len(self.campaign.survivors),
            quarantined=self.queue.quarantined,
        )
        return now

    # -- checkpointing -------------------------------------------------

    def save_checkpoint(self, path: str) -> None:
        """Durably persist the campaign record plus the campaign
        identity (width/target_hd/final_length/chunk_size) and the
        quarantine set, in the CRC-self-checksummed format 3."""
        checkpoint_io.save(
            path,
            self.campaign,
            self.config,
            self.chunk_size,
            self.queue.quarantined_ids,
        )
        self.events.emit(
            "checkpoint.write",
            path=path,
            chunks_done=len(self.campaign.chunks_done),
            quarantined=self.queue.quarantined,
        )

    def load_checkpoint(self, path: str) -> int:
        """Restore a campaign record; marks its completed chunks done
        (and its quarantined chunks quarantined) in the queue.
        Returns the number of chunks skipped.  Falls back to the
        rotated ``.prev`` generation when the current file is corrupt.
        Raises :class:`CheckpointMismatch` if the checkpoint was
        written by a campaign with a different width, target HD, final
        length or chunk size."""
        loaded = checkpoint_io.load(path, self.config, self.chunk_size)
        if loaded.fell_back:
            self.events.emit(
                "checkpoint.corrupt",
                path=path,
                fallback=loaded.source,
                error=str(loaded.corrupt_error),
            )
        campaign = loaded.campaign
        foreign = [
            c
            for c in sorted(campaign.chunks_done | loaded.quarantined)
            if c not in self.queue
        ]
        if foreign:
            raise CheckpointMismatch(
                f"checkpoint {loaded.source} references chunks {foreign}, "
                f"outside this campaign's {len(self.queue)}-chunk partition "
                "(chunk_size mismatch?)"
            )
        skipped = 0
        for chunk_id in campaign.chunks_done:
            if self.queue.complete(chunk_id, "checkpoint", 0.0):
                skipped += 1
        restored = 0
        for chunk_id in sorted(loaded.quarantined):
            if self.queue.mark_quarantined(chunk_id):
                restored += 1
                self.quarantined += 1
                self.events.emit(
                    "chunk.quarantine", chunk=chunk_id, attempts=0, restored=True
                )
        self.campaign = campaign
        self.events.emit(
            "campaign.resume",
            path=loaded.source,
            skipped=skipped,
            quarantined=restored,
        )
        return skipped
