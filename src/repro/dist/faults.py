"""Deterministic fault injection for the distributed campaign.

Idle-workstation computing's failure modes, as the 2001 campaign will
have seen them: a machine's owner comes back and the worker dies
mid-chunk; a worker finishes a chunk but its completion message is
duplicated on retry; a slow machine holds a lease so long it expires;
a flaky disk flips bits in the checkpoint; the cluster operator sends
the coordinator SIGTERM at 2 a.m.

:class:`FaultPlan` scripts these deterministically (seeded) so the
test suite and the chaos harness (``tools/chaos_campaign.py``) can
assert the exact recovery behaviour: every chunk ends DONE exactly
once in the campaign record, regardless of the plan -- or, for a
*poison* chunk that crashes its worker on every attempt, ends
QUARANTINED after its retry budget instead of wedging the pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: FaultPlan conventions for the process-pool backend
#: (:mod:`repro.dist.pool`).  Pool processes are interchangeable, so
#: faults are keyed by *chunk id* instead of a per-worker chunk count:
#: ``crash_points[POOL_CRASH] = chunk_id`` raises
#: :class:`WorkerCrashed` inside the subprocess executing that chunk
#: (first attempt only), ``crash_points[POOL_KILL] = chunk_id`` hard-
#: kills the subprocess with ``os._exit`` (first attempt only), and
#: ``duplicate_completions[POOL_CRASH] = chunk_id`` delivers that
#: chunk's completion twice.  ``straggle[POOL_CRASH] = f`` makes every
#: chunk sleep ``f - 1`` seconds before computing (lease pressure).
#: The set-valued fields (``crash_chunks``/``kill_chunks``/
#: ``poison_chunks``) are the multi-fault generalization the chaos
#: harness uses.
POOL_CRASH = "pool"
POOL_KILL = "pool-kill"


@dataclass
class FaultPlan:
    """Scripted faults.

    Simulated-backend fields (keyed by worker_id and how many chunks
    that worker has started):

    ``crash_points[w] = k`` -- worker ``w`` dies while executing its
    k-th chunk (0-based): the chunk's result is lost, the lease must
    expire and be reassigned.

    ``duplicate_completions[w] = k`` -- worker ``w``'s k-th completed
    chunk is delivered twice.

    ``straggle[w] = factor`` -- worker ``w`` takes ``factor`` times
    the nominal duration per chunk (lease-expiry pressure).

    Pool-backend fields (keyed by chunk id):

    ``crash_chunks`` -- chunks whose first attempt raises
    :class:`WorkerCrashed` in the subprocess.

    ``kill_chunks`` -- chunks whose first attempt hard-kills the
    subprocess (``os._exit``), breaking the whole executor.

    ``poison_chunks`` -- chunks that crash their worker on *every*
    attempt: the retry budget must quarantine them.

    Coordinator-side chaos:

    ``corrupt_checkpoint_after = n`` -- silently scribble over the
    checkpoint file right after its n-th write (1-based), modelling
    bit rot the CRC self-check must catch on resume.

    ``kill_signal_after = n`` -- deliver SIGTERM to the coordinator
    process after its n-th chunk completion, exercising the graceful
    drain + final checkpoint path.

    Network fields (keyed by the worker's connection *label*; consumed
    by :class:`repro.dist.transport.FaultyTransport` and
    :class:`repro.dist.net.WorkClient`):

    ``net_sever_after[w] = n`` -- worker ``w``'s *first* connection is
    severed right before its n-th outbound frame (0-based); later
    connections from the same label are healthy (the network blipped
    once, the client must reconnect and recover).

    ``net_drop_complete[w] = {k, ...}`` -- worker ``w``'s k-th
    ``complete`` frame (0-based, counting completes only) vanishes in
    flight: the server never sees it, the client's ack times out and
    it must reconnect and resend.

    ``net_duplicate_complete[w] = {k, ...}`` -- worker ``w``'s k-th
    ``complete`` frame is delivered twice; the coordinator's
    idempotent merge must count it once.

    ``net_delay[w] = seconds`` -- every frame from worker ``w`` is
    delayed by that long (straggler/latency pressure on leases).

    ``net_kill_after[w] = n`` -- worker ``w`` dies abruptly (no
    ``bye``, connection dropped) after its n-th successful completion
    (1-based): its leases must expire server-side and be reclaimed.
    """

    crash_points: dict[str, int] = field(default_factory=dict)
    duplicate_completions: dict[str, int] = field(default_factory=dict)
    straggle: dict[str, float] = field(default_factory=dict)
    crash_chunks: set[int] = field(default_factory=set)
    kill_chunks: set[int] = field(default_factory=set)
    poison_chunks: set[int] = field(default_factory=set)
    corrupt_checkpoint_after: int | None = None
    kill_signal_after: int | None = None
    net_sever_after: dict[str, int] = field(default_factory=dict)
    net_drop_complete: dict[str, set[int]] = field(default_factory=dict)
    net_duplicate_complete: dict[str, set[int]] = field(default_factory=dict)
    net_delay: dict[str, float] = field(default_factory=dict)
    net_kill_after: dict[str, int] = field(default_factory=dict)

    # -- simulated-backend queries (legacy conventions) ----------------

    def crashes_on(self, worker_id: str, chunk_number: int) -> bool:
        return self.crash_points.get(worker_id) == chunk_number

    def duplicates_on(self, worker_id: str, chunk_number: int) -> bool:
        return self.duplicate_completions.get(worker_id) == chunk_number

    def slowdown(self, worker_id: str) -> float:
        return self.straggle.get(worker_id, 1.0)

    # -- pool-backend queries ------------------------------------------

    def pool_crashes(self, chunk_id: int, attempt: int) -> bool:
        """Should this attempt raise :class:`WorkerCrashed`?"""
        if chunk_id in self.poison_chunks:
            return True
        if attempt != 1:
            return False  # the retry models a healthy machine
        return (
            chunk_id in self.crash_chunks
            or self.crash_points.get(POOL_CRASH) == chunk_id
        )

    def pool_kills(self, chunk_id: int, attempt: int) -> bool:
        """Should this attempt hard-kill its subprocess?"""
        if attempt != 1:
            return False
        return (
            chunk_id in self.kill_chunks
            or self.crash_points.get(POOL_KILL) == chunk_id
        )

    # -- network queries (transport wrapper / client conventions) ------

    def net_severs(self, label: str, connection: int, frame: int) -> bool:
        """Sever this outbound frame?  First connection only."""
        return connection == 0 and self.net_sever_after.get(label) == frame

    def net_drops_complete(self, label: str, nth_complete: int) -> bool:
        return nth_complete in self.net_drop_complete.get(label, ())

    def net_duplicates_complete(self, label: str, nth_complete: int) -> bool:
        return nth_complete in self.net_duplicate_complete.get(label, ())

    def net_delay_for(self, label: str) -> float:
        return self.net_delay.get(label, 0.0)

    def net_kills(self, label: str, completions: int) -> bool:
        """Should this worker die abruptly now (after ``completions``
        successful chunk completions)?"""
        n = self.net_kill_after.get(label)
        return n is not None and completions >= n

    # -- seeded generators ---------------------------------------------

    @classmethod
    def random_plan(
        cls,
        worker_ids: list[str],
        seed: int,
        crash_fraction: float = 0.3,
        duplicate_fraction: float = 0.2,
        max_chunk: int = 4,
    ) -> "FaultPlan":
        """A reproducible random plan for simulated-backend soak
        tests: the same ``(worker_ids, seed)`` always yields the same
        plan (``tests/dist/test_faults.py`` pins this down)."""
        rng = random.Random(seed)
        plan = cls()
        for w in worker_ids:
            if rng.random() < crash_fraction:
                plan.crash_points[w] = rng.randrange(max_chunk)
            if rng.random() < duplicate_fraction:
                plan.duplicate_completions[w] = rng.randrange(max_chunk)
            if rng.random() < 0.25:
                plan.straggle[w] = 1.0 + 3.0 * rng.random()
        return plan

    @classmethod
    def chaos_plan(
        cls,
        seed: int,
        chunks: int,
        *,
        crash_fraction: float = 0.15,
        kill_count: int = 1,
        duplicate: bool = True,
        kill_signal_after: int | None = None,
        corrupt_checkpoint_after: int | None = None,
    ) -> "FaultPlan":
        """A reproducible pool-backend chaos schedule over a
        ``chunks``-chunk partition: a fraction of chunks soft-crash
        their first attempt, ``kill_count`` of the remainder hard-kill
        their subprocess, optionally one completion is duplicated, and
        the coordinator-side kill/corruption knobs pass through.
        Deterministic in ``seed`` (property-tested)."""
        rng = random.Random(seed)
        plan = cls(
            kill_signal_after=kill_signal_after,
            corrupt_checkpoint_after=corrupt_checkpoint_after,
        )
        ids = list(range(chunks))
        rng.shuffle(ids)
        n_crash = max(1, int(chunks * crash_fraction)) if chunks else 0
        plan.crash_chunks = set(ids[:n_crash])
        plan.kill_chunks = set(ids[n_crash:n_crash + kill_count])
        if duplicate and chunks:
            plan.duplicate_completions[POOL_CRASH] = rng.randrange(chunks)
        return plan

    @classmethod
    def farm_chaos_plan(
        cls,
        seed: int,
        workers: list[str],
        *,
        sever: bool = True,
        drop: bool = True,
        duplicate: bool = True,
        kill: bool = True,
    ) -> "FaultPlan":
        """A reproducible network chaos schedule over a worker farm:
        one worker dies abruptly while *holding* a fresh lease (the
        reaper must reclaim it), one connection is severed
        mid-protocol (reconnect + resend), and one worker has its
        first ``complete`` dropped (ack timeout) *and* the resend
        duplicated (idempotent merge) -- chaining the drop into the
        duplicate makes both deterministic: the resend is the next
        complete ordinal, so it is always the frame that duplicates.
        The kill victim and the sever target are kept distinct from
        the drop/duplicate worker when the farm is big enough, so
        each recovery path is exercised on a live worker.
        Deterministic in ``(seed, workers)`` (property-tested)."""
        rng = random.Random(seed)
        order = list(workers)
        rng.shuffle(order)
        plan = cls()
        if kill and order:
            victim = order.pop()
            plan.net_kill_after[victim] = 1 + rng.randrange(2)
        pool = order or list(workers)
        if sever and pool:
            plan.net_sever_after[pool[0]] = 2 + rng.randrange(4)
        flaky = pool[-1]
        if drop:
            plan.net_drop_complete.setdefault(flaky, set()).add(0)
        if duplicate:
            # Ordinal 1 is the dropped frame's resend (or the second
            # completion when drops are disabled).
            plan.net_duplicate_complete.setdefault(flaky, set()).add(
                1 if drop else 0
            )
        return plan


def corrupt_file(path: str, seed: int = 0, flips: int | None = None) -> None:
    """Deterministically flip bytes of ``path`` in place -- the chaos
    harness's model of silent disk corruption.  No fsync, no rename:
    precisely the kind of mutation the checkpoint CRC must catch."""
    with open(path, "rb") as f:
        data = bytearray(f.read())
    if not data:
        data = bytearray(b"\x00")
    rng = random.Random(seed)
    for _ in range(flips if flips is not None else max(1, len(data) // 64)):
        data[rng.randrange(len(data))] ^= 0xFF
    with open(path, "wb") as f:
        f.write(data)


class WorkerCrashed(RuntimeError):
    """Raised inside a worker to simulate the process dying mid-chunk."""
