"""Deterministic fault injection for the distributed campaign.

Idle-workstation computing's failure modes, as the 2001 campaign will
have seen them: a machine's owner comes back and the worker dies
mid-chunk; a worker finishes a chunk but its completion message is
duplicated on retry; a slow machine holds a lease so long it expires.

:class:`FaultPlan` scripts these deterministically (seeded) so the
test suite can assert the exact recovery behaviour: every chunk ends
DONE exactly once in the campaign record, regardless of the plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: FaultPlan conventions for the process-pool backend
#: (:mod:`repro.dist.pool`).  Pool processes are interchangeable, so
#: faults are keyed by *chunk id* instead of a per-worker chunk count:
#: ``crash_points[POOL_CRASH] = chunk_id`` raises
#: :class:`WorkerCrashed` inside the subprocess executing that chunk
#: (first attempt only), ``crash_points[POOL_KILL] = chunk_id`` hard-
#: kills the subprocess with ``os._exit`` (first attempt only), and
#: ``duplicate_completions[POOL_CRASH] = chunk_id`` delivers that
#: chunk's completion twice.  ``straggle[POOL_CRASH] = f`` makes every
#: chunk sleep ``f - 1`` seconds before computing (lease pressure).
POOL_CRASH = "pool"
POOL_KILL = "pool-kill"


@dataclass
class FaultPlan:
    """Scripted faults, keyed by (worker_id, how many chunks that
    worker has started).

    ``crash_points[w] = k`` -- worker ``w`` dies while executing its
    k-th chunk (0-based): the chunk's result is lost, the lease must
    expire and be reassigned.

    ``duplicate_completions[w] = k`` -- worker ``w``'s k-th completed
    chunk is delivered twice.

    ``straggle[w] = factor`` -- worker ``w`` takes ``factor`` times
    the nominal duration per chunk (lease-expiry pressure).
    """

    crash_points: dict[str, int] = field(default_factory=dict)
    duplicate_completions: dict[str, int] = field(default_factory=dict)
    straggle: dict[str, float] = field(default_factory=dict)

    def crashes_on(self, worker_id: str, chunk_number: int) -> bool:
        return self.crash_points.get(worker_id) == chunk_number

    def duplicates_on(self, worker_id: str, chunk_number: int) -> bool:
        return self.duplicate_completions.get(worker_id) == chunk_number

    def slowdown(self, worker_id: str) -> float:
        return self.straggle.get(worker_id, 1.0)

    @classmethod
    def random_plan(
        cls,
        worker_ids: list[str],
        seed: int,
        crash_fraction: float = 0.3,
        duplicate_fraction: float = 0.2,
        max_chunk: int = 4,
    ) -> "FaultPlan":
        """A reproducible random plan for soak tests."""
        rng = random.Random(seed)
        plan = cls()
        for w in worker_ids:
            if rng.random() < crash_fraction:
                plan.crash_points[w] = rng.randrange(max_chunk)
            if rng.random() < duplicate_fraction:
                plan.duplicate_completions[w] = rng.randrange(max_chunk)
            if rng.random() < 0.25:
                plan.straggle[w] = 1.0 + 3.0 * rng.random()
        return plan


class WorkerCrashed(RuntimeError):
    """Raised inside a worker to simulate the process dying mid-chunk."""
