"""Work units for the distributed search.

A task is a dense index range of the candidate space (see
:mod:`repro.search.space`); ranges tile the space exactly, so chunk
boundaries are disjoint by construction and completion bookkeeping is
a bitmap of chunk ids.  Tasks carry a lease: a worker that goes silent
past its lease expiry forfeits the task, which then becomes available
for reassignment -- at-least-once execution, made safe by idempotent
result merging on the coordinator side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class TaskStatus(enum.Enum):
    """Lifecycle of a work unit."""

    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"
    #: Retry budget exhausted: the chunk crashed its worker on every
    #: attempt, so it is parked instead of wedging the campaign.
    QUARANTINED = "quarantined"


@dataclass
class SearchTask:
    """One leasable chunk of the candidate space.

    ``chunk_id`` doubles as the idempotency key: the coordinator
    accepts the first completion for each id and ignores replays.
    """

    chunk_id: int
    start_index: int
    end_index: int
    status: TaskStatus = TaskStatus.PENDING
    owner: str | None = None
    lease_expires_at: float = 0.0
    attempts: int = 0
    #: Earliest instant this task may be leased again -- the retry
    #: backoff the queue imposes after a forfeited attempt.
    not_before: float = 0.0
    history: list[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of raw candidate indices in the chunk."""
        return self.end_index - self.start_index

    @property
    def epoch(self) -> int:
        """Lease epoch: bumps every time the task is (re)leased, so a
        holder can prove its lease is the *current* one when renewing
        over a network.  Numerically equal to ``attempts`` (every
        lease is an attempt), named for what the work protocol uses
        it for."""
        return self.attempts

    def lease(self, worker_id: str, now: float, duration: float) -> None:
        """Assign to a worker until ``now + duration``."""
        self.status = TaskStatus.LEASED
        self.owner = worker_id
        self.lease_expires_at = now + duration
        self.not_before = 0.0
        self.attempts += 1
        self.history.append(f"leased to {worker_id} at {now:.1f}")

    def expire(self, now: float) -> None:
        """Reclaim an abandoned lease."""
        self.history.append(
            f"lease by {self.owner} expired at {now:.1f} (attempt {self.attempts})"
        )
        self.status = TaskStatus.PENDING
        self.owner = None
        self.lease_expires_at = 0.0

    def quarantine(self, now: float, reason: str = "retry budget exhausted") -> None:
        """Park a poison chunk: it failed on every attempt its budget
        allowed, so it must stop wedging the campaign."""
        self.history.append(
            f"quarantined at {now:.1f} after {self.attempts} attempts ({reason})"
        )
        self.status = TaskStatus.QUARANTINED
        self.owner = None
        self.lease_expires_at = 0.0
        self.not_before = 0.0

    def complete(self, worker_id: str, now: float) -> None:
        """Mark done (first completion wins; caller handles replays)."""
        self.status = TaskStatus.DONE
        self.history.append(f"completed by {worker_id} at {now:.1f}")


def partition_space(width: int, chunk_size: int) -> list[SearchTask]:
    """Tile the width-r candidate index space into tasks.

    >>> tasks = partition_space(8, 32)
    >>> [(t.start_index, t.end_index) for t in tasks]
    [(0, 32), (32, 64), (64, 96), (96, 128)]
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    total = 1 << (width - 1)
    tasks = []
    for chunk_id, start in enumerate(range(0, total, chunk_size)):
        tasks.append(
            SearchTask(
                chunk_id=chunk_id,
                start_index=start,
                end_index=min(start + chunk_size, total),
            )
        )
    return tasks
