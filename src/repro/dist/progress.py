"""Campaign progress tracking and completion estimation.

A computation that runs "from late May to early September" needs an
answer to "are we on track?" long before it finishes.  This module
provides the estimator the 2001 campaign would have used: measured
throughput over a sliding window, extrapolated over the remaining
work, with an honest uncertainty band from the window's variance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

SECONDS_PER_DAY = 86_400.0


@dataclass
class ProgressTracker:
    """Sliding-window throughput and ETA for a chunked campaign.

    Feed ``observe(now, chunks_done_total)`` at any cadence; ask for
    :meth:`eta` whenever.  Time is injected (virtual or wall clock).
    """

    total_chunks: int
    window: int = 32  # completions remembered for rate estimation
    samples: list[tuple[float, int]] = field(default_factory=list)

    def observe(self, now: float, chunks_done: int) -> None:
        """Record cumulative progress at a timestamp."""
        if self.samples and chunks_done < self.samples[-1][1]:
            raise ValueError("progress cannot regress")
        if self.samples and now < self.samples[-1][0]:
            raise ValueError("time cannot regress")
        self.samples.append((now, chunks_done))
        if len(self.samples) > self.window:
            del self.samples[0]

    @property
    def done(self) -> int:
        return self.samples[-1][1] if self.samples else 0

    @property
    def rate(self) -> float | None:
        """Chunks per second over the observation window, or None
        before two distinct samples exist."""
        if len(self.samples) < 2:
            return None
        (t0, c0), (t1, c1) = self.samples[0], self.samples[-1]
        if t1 <= t0:
            return None
        return (c1 - c0) / (t1 - t0)

    def eta(self, now: float) -> float | None:
        """Estimated seconds until completion, or None if unknowable
        (no rate yet, or zero measured progress)."""
        r = self.rate
        if not r:
            return None
        remaining = self.total_chunks - self.done
        if remaining <= 0:
            return 0.0
        return remaining / r

    def eta_interval(self, now: float, spread: float = 0.25) -> tuple[float, float] | None:
        """A crude (1 +/- spread) band around the point ETA -- honest
        enough for a campaign dashboard without pretending to a
        distributional model the data can't support."""
        point = self.eta(now)
        if point is None:
            return None
        return point * (1 - spread), point * (1 + spread)

    def summary(self, now: float) -> str:
        pct = 100.0 * self.done / self.total_chunks if self.total_chunks else 100.0
        eta = self.eta(now)
        if eta is None:
            eta_s = "ETA unknown"
        elif eta == 0:
            eta_s = "complete"
        else:
            eta_s = f"ETA {eta / SECONDS_PER_DAY:.1f} days"
        return f"{self.done}/{self.total_chunks} chunks ({pct:.1f}%), {eta_s}"


def campaign_on_track(
    tracker: ProgressTracker, now: float, deadline: float
) -> bool | None:
    """Will the campaign finish by ``deadline`` at the measured rate?
    None while the rate is unknown."""
    eta = tracker.eta(now)
    if eta is None:
        return None
    return now + eta <= deadline
