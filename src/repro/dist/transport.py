"""Abstract transport layer for the campaign work protocol.

The coordinator (:mod:`repro.dist.net`) never touches sockets: it
speaks to :class:`Connection` objects produced by a
:class:`Transport`, in the style of pycyphal's abstract-transport
layering.  Three implementations:

* :class:`TcpTransport` -- real asyncio TCP, one NDJSON frame per
  line, shared limits from :mod:`repro.net_common`.  Listening on
  port 0 announces the bound address (``work.listening host=H
  port=P``) so wrappers can discover it.
* :class:`LoopbackTransport` -- in-process queue pairs, so CI can run
  a 3-"host" campaign in one event loop with no sockets at all.
  Frames still cross as encoded bytes, so framing bugs (truncation,
  oversize, malformed JSON) are expressible: tests inject them with
  :meth:`LoopbackConnection.send_raw`.
* :class:`FaultyTransport` -- wraps either of the above and injects
  drops, delays, duplicates, and severs scripted by a seeded
  :class:`~repro.dist.faults.FaultPlan` (the ``net_*`` fields), so
  the chaos gauntlet (``tools/chaos_farm.py``) is deterministic.

All three share one contract: ``send`` raises
:class:`ConnectionLost` when the peer is gone, ``recv`` returns the
parsed frame, ``None`` on clean close *or* mid-frame EOF, and raises
:class:`~repro.net_common.FrameError` on framing violations
(``recoverable`` says whether the stream survives).
"""

from __future__ import annotations

import asyncio
from abc import ABC, abstractmethod
from typing import Any, Awaitable, Callable

from repro.net_common import MAX_LINE, FrameError, announce, decode_frame, encode_frame, read_frame
from repro.dist.faults import FaultPlan


class ConnectionLost(Exception):
    """The peer is unreachable: send failed, the socket reset, or an
    injected sever cut the wire.  Clients recover by reconnecting."""


Handler = Callable[["Connection"], Awaitable[None]]


class Connection(ABC):
    """One bidirectional NDJSON frame stream."""

    #: The connecting side's self-chosen label (worker id); servers
    #: see it only through the protocol's ``hello``, but transports
    #: key fault injection on it.
    label: str = ""

    @abstractmethod
    async def send(self, obj: Any) -> None:
        """Encode and send one frame; :class:`ConnectionLost` if the
        peer is gone."""

    @abstractmethod
    async def recv(self) -> Any:
        """The next parsed frame; ``None`` on clean close or a frame
        truncated by disconnection; :class:`FrameError` on violations."""

    @abstractmethod
    async def close(self) -> None:
        """Close both directions; idempotent."""


class Transport(ABC):
    """A way to get :class:`Connection` objects: servers ``listen``,
    clients ``connect``."""

    @abstractmethod
    async def listen(self, handler: Handler) -> str:
        """Start accepting; ``handler(conn)`` runs per connection.
        Returns the connectable address."""

    @abstractmethod
    async def connect(self, address: str, label: str = "") -> Connection:
        """Open a connection; :class:`ConnectionLost` if nobody is
        listening."""

    @abstractmethod
    async def close(self) -> None:
        """Stop listening and drop server-side handler tasks."""


# -- TCP ---------------------------------------------------------------


class TcpConnection(Connection):
    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        label: str = "",
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.label = label

    async def send(self, obj: Any) -> None:
        try:
            self._writer.write(encode_frame(obj))
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            raise ConnectionLost(str(exc)) from None

    async def recv(self) -> Any:
        try:
            line = await read_frame(self._reader)
        except (ConnectionError, OSError) as exc:
            raise ConnectionLost(str(exc)) from None
        if line is None:
            return None
        return decode_frame(line)

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TcpTransport(Transport):
    """Real sockets.  ``listen`` binds ``host:port`` (port 0 picks an
    ephemeral port and announces it on stdout); ``connect`` parses
    ``"host:port"`` addresses."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, *, quiet: bool = False
    ) -> None:
        self.host = host
        self.port = port
        self.quiet = quiet
        self._server: asyncio.base_events.Server | None = None

    async def listen(self, handler: Handler) -> str:
        async def accept(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            try:
                await handler(TcpConnection(reader, writer))
            except asyncio.CancelledError:
                # Event-loop teardown mid-recv; the stream protocol's
                # done-callback would log this as noise otherwise.
                pass

        self._server = await asyncio.start_server(
            accept, self.host, self.port, limit=MAX_LINE
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.port = port
        if not self.quiet:
            announce("work", host, port)
        return f"{host}:{port}"

    async def connect(self, address: str, label: str = "") -> Connection:
        host, _, port = address.rpartition(":")
        if not port.isdigit():
            raise ValueError(
                f"malformed address {address!r}: expected host:port"
            )
        try:
            reader, writer = await asyncio.open_connection(
                host or "127.0.0.1", int(port), limit=MAX_LINE
            )
        except (ConnectionError, OSError) as exc:
            raise ConnectionLost(f"cannot reach {address}: {exc}") from None
        return TcpConnection(reader, writer, label)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


# -- loopback ----------------------------------------------------------


class LoopbackConnection(Connection):
    """One end of an in-process pipe pair.  Frames cross as encoded
    bytes so wire-level corruption is testable via :meth:`send_raw`."""

    def __init__(
        self,
        out_q: "asyncio.Queue[bytes | None]",
        in_q: "asyncio.Queue[bytes | None]",
        label: str = "",
    ) -> None:
        self._out = out_q
        self._in = in_q
        self._closed = False
        self.label = label

    async def send(self, obj: Any) -> None:
        self.send_raw(encode_frame(obj))

    def send_raw(self, data: bytes) -> None:
        """Inject raw bytes as one delivery unit -- the test backdoor
        for malformed / truncated / oversized frames."""
        if self._closed:
            raise ConnectionLost("loopback connection closed")
        self._out.put_nowait(data)

    async def recv(self) -> Any:
        if self._closed:
            return None
        raw = await self._in.get()
        if raw is None:
            # Peer closed; leave the sentinel visible to any racing
            # reader by treating ourselves as closed too.
            self._closed = True
            return None
        if len(raw) > MAX_LINE:
            raise FrameError(
                "oversized-frame",
                f"frame exceeds the {MAX_LINE}-byte line limit",
                recoverable=False,
            )
        if not raw.endswith(b"\n"):
            return None  # truncated mid-frame: the peer died writing
        return decode_frame(raw)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._out.put_nowait(None)  # EOF for the peer
        self._in.put_nowait(None)  # unblock our own pending recv


class LoopbackTransport(Transport):
    """In-process transport: ``connect`` hands the server's handler
    the other end of a queue pair on the same event loop.  The
    address is cosmetic."""

    def __init__(self) -> None:
        self._handler: Handler | None = None
        self._tasks: list[asyncio.Task] = []
        self._closed = False

    async def listen(self, handler: Handler) -> str:
        self._handler = handler
        self._closed = False
        return "loopback:0"

    async def connect(self, address: str = "", label: str = "") -> Connection:
        if self._handler is None or self._closed:
            raise ConnectionLost("nobody is listening on the loopback")
        c2s: asyncio.Queue[bytes | None] = asyncio.Queue()
        s2c: asyncio.Queue[bytes | None] = asyncio.Queue()
        client = LoopbackConnection(c2s, s2c, label)
        server_end = LoopbackConnection(s2c, c2s, label)
        self._tasks.append(asyncio.ensure_future(self._handler(server_end)))
        return client

    async def close(self) -> None:
        self._closed = True
        self._handler = None
        # Let handlers finish their current frame, then cancel
        # whatever is still blocked on a recv.
        await asyncio.sleep(0)
        for task in self._tasks:
            if not task.done():
                task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()


# -- fault injection ---------------------------------------------------


class FaultyConnection(Connection):
    """Client-side fault wrapper: consults the plan per outbound
    frame.  Ordinals persist across reconnects via shared per-label
    state on the owning :class:`FaultyTransport`."""

    def __init__(
        self, inner: Connection, plan: FaultPlan, label: str, state: dict
    ) -> None:
        self._inner = inner
        self.plan = plan
        self.label = label
        self._state = state  # {"connection": n, "frames": n, "completes": n}
        self._connection = state["connection"]
        state["connection"] += 1

    async def send(self, obj: Any) -> None:
        frame_n = self._state["frames"]
        self._state["frames"] += 1
        is_complete = isinstance(obj, dict) and obj.get("op") == "complete"
        complete_n = self._state["completes"]
        if is_complete:
            self._state["completes"] += 1
        if self.plan.net_severs(self.label, self._connection, frame_n):
            await self._inner.close()
            raise ConnectionLost("injected sever")
        delay = self.plan.net_delay_for(self.label)
        if delay:
            await asyncio.sleep(delay)
        if is_complete and self.plan.net_drops_complete(self.label, complete_n):
            return  # vanished in flight; the ack timeout finds out
        await self._inner.send(obj)
        if is_complete and self.plan.net_duplicates_complete(
            self.label, complete_n
        ):
            await self._inner.send(obj)

    async def recv(self) -> Any:
        return await self._inner.recv()

    async def close(self) -> None:
        await self._inner.close()


class FaultyTransport(Transport):
    """Wraps any transport; client connections made through it get
    the plan's ``net_*`` faults injected deterministically."""

    def __init__(self, inner: Transport, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._state: dict[str, dict] = {}

    def _label_state(self, label: str) -> dict:
        return self._state.setdefault(
            label, {"connection": 0, "frames": 0, "completes": 0}
        )

    async def listen(self, handler: Handler) -> str:
        return await self.inner.listen(handler)

    async def connect(self, address: str = "", label: str = "") -> Connection:
        conn = await self.inner.connect(address, label)
        return FaultyConnection(conn, self.plan, label, self._label_state(label))

    async def close(self) -> None:
        await self.inner.close()
