"""Campaign checkpoint format with compatibility guarding.

A checkpoint written months into a campaign is only useful if it can
never be silently merged into the *wrong* campaign: the seed format
stored the bare :class:`~repro.search.records.CampaignRecord`, so
loading a width-8/chunk-8 checkpoint into a width-9/chunk-64
coordinator "succeeded" with zero chunks skipped.  Format 2 wraps the
record in an envelope that pins the search identity -- ``width``,
``target_hd``, ``final_length`` and the partition ``chunk_size`` --
and :func:`load` raises :class:`CheckpointMismatch` on any deviation.

Legacy (format-1) files are still readable: the record itself carries
``width``/``target_hd``/``data_word_bits``, which are validated; the
chunk size is not recorded there, so a mismatched partition is caught
later by the out-of-range chunk-id guard in the loaders.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.search.exhaustive import SearchConfig
from repro.search.records import CampaignRecord

FORMAT = "repro-campaign-checkpoint/2"


class CheckpointMismatch(ValueError):
    """The checkpoint belongs to a different campaign than the one
    trying to load it."""


def save(
    path: str, campaign: CampaignRecord, config: SearchConfig, chunk_size: int
) -> None:
    """Atomically persist the campaign record plus its identity."""
    payload = {
        "format": FORMAT,
        "config": {
            "width": config.width,
            "target_hd": config.target_hd,
            "final_length": config.final_length,
            "chunk_size": chunk_size,
        },
        "campaign": campaign.to_json_dict(),
    }
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(payload, f, indent=1)
    os.replace(tmp, path)


def _check(field: str, found: Any, expected: Any, path: str) -> None:
    if found != expected:
        raise CheckpointMismatch(
            f"checkpoint {path} is from a different campaign: "
            f"{field}={found!r} but this campaign has {field}={expected!r}"
        )


def load(path: str, config: SearchConfig, chunk_size: int) -> CampaignRecord:
    """Read a checkpoint, refusing one from an incompatible campaign."""
    with open(path) as f:
        d = json.load(f)
    if isinstance(d, dict) and "campaign" in d:
        meta = d.get("config", {})
        _check("width", meta.get("width"), config.width, path)
        _check("target_hd", meta.get("target_hd"), config.target_hd, path)
        _check(
            "final_length", meta.get("final_length"), config.final_length, path
        )
        _check("chunk_size", meta.get("chunk_size"), chunk_size, path)
        campaign = CampaignRecord.from_json_dict(d["campaign"])
    else:
        # Format 1: a bare CampaignRecord; validate what it carries.
        campaign = CampaignRecord.from_json_dict(d)
    _check("width", campaign.width, config.width, path)
    _check("target_hd", campaign.target_hd, config.target_hd, path)
    _check("final_length", campaign.data_word_bits, config.final_length, path)
    return campaign
