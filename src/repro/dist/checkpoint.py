"""Campaign checkpoint format: compatibility-guarded and self-checksummed.

A checkpoint written months into a campaign is only useful if it can
never be silently merged into the *wrong* campaign, and never trusted
when the bytes on disk are not the bytes that were written.  The
format has grown accordingly:

* **Format 1** (seed): the bare
  :class:`~repro.search.records.CampaignRecord` JSON.  Still
  readable; the record's own ``width``/``target_hd``/
  ``data_word_bits`` are validated on load.
* **Format 2** (PR 1): an envelope pinning the search identity --
  ``width``, ``target_hd``, ``final_length`` and the partition
  ``chunk_size`` -- with :class:`CheckpointMismatch` raised on any
  deviation.  Still readable.
* **Format 3** (this module's writer): the format-2 envelope plus

  - a **CRC-32 self-checksum** over the canonical payload bytes,
    computed with the repository's own CRC engine (eating our own
    cooking: the paper's subject matter guarding the campaign's own
    state).  A torn write, a flipped bit, or a truncated file fails
    verification and raises :class:`CheckpointCorrupt` instead of
    feeding garbage into a resume;
  - a ``quarantined`` list recording poison chunks whose retry budget
    was exhausted, so a resumed campaign does not re-run them;
  - **durable publication**: the temp file is fsynced before the
    atomic rename and the directory is fsynced after it, so a
    power-loss-shaped kill cannot publish a torn file;
  - a **rotated previous generation** (``<path>.prev``): each save
    first promotes the current (verified-good) file to ``.prev``,
    and :func:`load` falls back to it when the current generation is
    corrupt or missing.

:func:`load` returns a :class:`LoadedCheckpoint` carrying the
campaign, the quarantine set, and whether the fallback generation had
to be used (the caller emits the ``checkpoint.corrupt`` event).  A
missing checkpoint (no current, no previous) raises
:class:`CheckpointMissing` with an actionable message instead of a
bare ``FileNotFoundError``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.crc.catalog import CATALOG
from repro.crc.engine import crc_slice4
from repro.search.exhaustive import SearchConfig
from repro.search.records import CampaignRecord

#: Format tag this module writes.
FORMAT = "repro-campaign-checkpoint/3"
#: The PR-1 envelope tag (still readable).
FORMAT_2 = "repro-campaign-checkpoint/2"

#: The self-checksum algorithm: CRC-32C (Castagnoli), the polynomial
#: the paper's lineage put into iSCSI for exactly this at-rest-data
#: integrity job, computed by our own slice-by-4 engine.
CRC_SPEC = CATALOG["CRC-32C/Castagnoli"]


class CheckpointMismatch(ValueError):
    """The checkpoint belongs to a different campaign than the one
    trying to load it."""


class CheckpointCorrupt(ValueError):
    """The checkpoint's bytes are torn, truncated, or fail the CRC-32
    self-checksum -- the file cannot be trusted."""


class CheckpointMissing(FileNotFoundError):
    """No checkpoint exists at the given path (nor a rotated previous
    generation next to it)."""


def previous_path(path: str) -> str:
    """Where the rotated previous generation of ``path`` lives."""
    return path + ".prev"


# -- canonical bytes & CRC ---------------------------------------------


def canonical_payload_bytes(doc: dict[str, Any]) -> bytes:
    """The byte string the self-checksum covers: the document minus
    its ``crc32`` field, serialized canonically (sorted keys, no
    whitespace, UTF-8)."""
    body = {k: v for k, v in doc.items() if k != "crc32"}
    return json.dumps(
        body, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode("ascii")


def payload_crc(doc: dict[str, Any]) -> int:
    """CRC-32C of :func:`canonical_payload_bytes`."""
    return crc_slice4(CRC_SPEC, canonical_payload_bytes(doc))


# -- save --------------------------------------------------------------


def _fsync_dir(directory: str) -> None:
    """Force the rename itself to stable storage (POSIX: directory
    entries are durable only once the directory is fsynced)."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; best effort
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def verify_file(path: str) -> bool:
    """True iff ``path`` holds a structurally sound checkpoint (any
    format; format 3 must also pass its CRC).  Used to decide whether
    the current generation deserves promotion to ``.prev``."""
    try:
        _read_document(path)
    except (OSError, CheckpointCorrupt):
        return False
    return True


def save(
    path: str,
    campaign: CampaignRecord,
    config: SearchConfig,
    chunk_size: int,
    quarantined: Iterable[int] = (),
) -> None:
    """Durably persist the campaign record plus its identity.

    Write path: temp file -> flush -> fsync -> promote the existing
    (verified-good) current file to ``.prev`` -> atomic rename ->
    directory fsync.  At every instant there is at least one intact
    generation on disk.
    """
    doc: dict[str, Any] = {
        "format": FORMAT,
        "config": {
            "width": config.width,
            "target_hd": config.target_hd,
            "final_length": config.final_length,
            "chunk_size": chunk_size,
        },
        "campaign": campaign.to_json_dict(),
        "quarantined": sorted(set(quarantined)),
    }
    doc["crc32"] = f"{payload_crc(doc):#010x}"
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=1)
        f.flush()
        os.fsync(f.fileno())
    # Rotate only a generation that still verifies: promoting silent
    # bit rot into .prev would poison the fallback.
    if os.path.exists(path) and verify_file(path):
        os.replace(path, previous_path(path))
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(os.path.abspath(path)))


# -- load --------------------------------------------------------------


@dataclass
class LoadedCheckpoint:
    """What :func:`load` hands back to the coordinator."""

    campaign: CampaignRecord
    quarantined: set[int] = field(default_factory=set)
    #: Path actually read (``path`` or ``path + ".prev"``).
    source: str = ""
    #: True when the current generation was corrupt/missing and the
    #: rotated previous generation was used instead.
    fell_back: bool = False
    #: Human-readable reason the current generation was rejected.
    corrupt_error: str | None = None
    #: 1, 2 or 3.
    format_version: int = 3


def _check(field_name: str, found: Any, expected: Any, path: str) -> None:
    if found != expected:
        raise CheckpointMismatch(
            f"checkpoint {path} is from a different campaign: "
            f"{field_name}={found!r} but this campaign has "
            f"{field_name}={expected!r}"
        )


def _read_document(path: str) -> dict[str, Any]:
    """Parse and (for format 3) CRC-verify one checkpoint file.
    Raises :class:`CheckpointCorrupt` on torn/garbled bytes and
    returns the parsed document otherwise."""
    with open(path, "rb") as f:
        raw = f.read()
    try:
        d = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise CheckpointCorrupt(
            f"checkpoint {path} is not readable JSON (torn write or "
            f"corruption): {exc}"
        ) from None
    if not isinstance(d, dict):
        raise CheckpointCorrupt(f"checkpoint {path}: not a JSON object")
    if d.get("format") == FORMAT or "crc32" in d:
        stored = d.get("crc32")
        if not isinstance(stored, str):
            raise CheckpointCorrupt(
                f"checkpoint {path}: format-3 file missing its crc32 field"
            )
        try:
            stored_value = int(stored, 16)
        except ValueError:
            raise CheckpointCorrupt(
                f"checkpoint {path}: unparseable crc32 field {stored!r}"
            ) from None
        computed = payload_crc(d)
        if stored_value != computed:
            raise CheckpointCorrupt(
                f"checkpoint {path} failed its CRC-32 self-check "
                f"(stored {stored}, computed {computed:#010x}): the file "
                "was corrupted after it was written"
            )
    return d


def _load_file(
    path: str, config: SearchConfig, chunk_size: int
) -> tuple[CampaignRecord, set[int], int]:
    """Load one generation; raises ``FileNotFoundError``,
    :class:`CheckpointCorrupt` or :class:`CheckpointMismatch`."""
    d = _read_document(path)
    quarantined: set[int] = set()
    if isinstance(d.get("campaign"), dict):
        # Formats 2 and 3 share the identity envelope.
        version = 3 if "crc32" in d else 2
        meta = d.get("config", {})
        _check("width", meta.get("width"), config.width, path)
        _check("target_hd", meta.get("target_hd"), config.target_hd, path)
        _check(
            "final_length", meta.get("final_length"), config.final_length, path
        )
        _check("chunk_size", meta.get("chunk_size"), chunk_size, path)
        try:
            campaign = CampaignRecord.from_json_dict(d["campaign"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointCorrupt(
                f"checkpoint {path}: campaign payload unreadable: {exc}"
            ) from None
        quarantined = {int(c) for c in d.get("quarantined", [])}
    else:
        # Format 1: a bare CampaignRecord; validate what it carries.
        version = 1
        try:
            campaign = CampaignRecord.from_json_dict(d)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointCorrupt(
                f"checkpoint {path}: campaign payload unreadable: {exc}"
            ) from None
    _check("width", campaign.width, config.width, path)
    _check("target_hd", campaign.target_hd, config.target_hd, path)
    _check("final_length", campaign.data_word_bits, config.final_length, path)
    return campaign, quarantined, version


def load(
    path: str, config: SearchConfig, chunk_size: int
) -> LoadedCheckpoint:
    """Read a checkpoint, refusing one from an incompatible campaign
    and falling back to the rotated previous generation when the
    current one is corrupt or missing.

    Raises :class:`CheckpointMissing` when neither generation exists,
    :class:`CheckpointCorrupt` when every existing generation fails
    verification, and :class:`CheckpointMismatch` on a (well-formed)
    foreign checkpoint -- a mismatch never triggers fallback, because
    the previous generation of a foreign campaign is just as foreign.
    """
    prev = previous_path(path)
    corrupt_error: str | None = None
    try:
        campaign, quarantined, version = _load_file(path, config, chunk_size)
        return LoadedCheckpoint(
            campaign=campaign,
            quarantined=quarantined,
            source=path,
            format_version=version,
        )
    except FileNotFoundError:
        if not os.path.exists(prev):
            raise CheckpointMissing(
                f"no checkpoint found at {path} "
                "(use a fresh run or check --checkpoint)"
            ) from None
        corrupt_error = f"checkpoint {path} is missing"
    except CheckpointCorrupt as exc:
        corrupt_error = str(exc)
        if not os.path.exists(prev):
            raise CheckpointCorrupt(
                f"{corrupt_error}; no previous generation at {prev} "
                "to fall back to"
            ) from None
    try:
        campaign, quarantined, version = _load_file(prev, config, chunk_size)
    except FileNotFoundError:
        raise CheckpointCorrupt(
            f"{corrupt_error}; previous generation {prev} vanished"
        ) from None
    except CheckpointCorrupt as exc:
        raise CheckpointCorrupt(
            f"both checkpoint generations are unreadable: "
            f"{corrupt_error}; {exc}"
        ) from None
    return LoadedCheckpoint(
        campaign=campaign,
        quarantined=quarantined,
        source=prev,
        fell_back=True,
        corrupt_error=corrupt_error,
        format_version=version,
    )
