"""Virtual-time simulation of the 2001 workstation farm.

§4.2 of the paper: "Approximately 50 Alphastations (an even mix of
400 MHz and 500 MHz processors) were kept running continuously for
over three months, and 30 UltraSparc machines were used intermittently
for two months. ... The average computation rate was approximately two
polynomials filtered per second per CPU."

This module reproduces that campaign as a discrete-event simulation:
machines with individual filtering rates and availability duty cycles
draw chunks of the candidate space from a shared bag until the
1,073,774,592 canonical polynomials are exhausted.  The simulated
wall-clock should land on "a summer" -- benchmark E7 checks it -- and
the same cost model prices the alternatives the paper dismisses
(Castagnoli's special-purpose hardware: 3600+ years; naive brute
force: 151 million years on a million GHz cores).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.search.space import candidate_count

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class MachineSpec:
    """A homogeneous group of workstations.

    ``duty_on`` / ``duty_off`` describe the availability cycle in
    seconds (idle-workstation computing: nights and weekends).  The
    default is continuous availability.  ``phase`` staggers cycle
    starts within the group so the whole fleet doesn't beat in step.
    """

    name: str
    count: int
    polys_per_second: float
    duty_on: float = math.inf
    duty_off: float = 0.0
    phase_step: float = 3600.0

    def __post_init__(self) -> None:
        if self.count < 1 or self.polys_per_second <= 0:
            raise ValueError("count and rate must be positive")
        if self.duty_on <= 0 or self.duty_off < 0:
            raise ValueError("invalid duty cycle")

    @property
    def availability(self) -> float:
        """Long-run fraction of time the machine computes."""
        if math.isinf(self.duty_on):
            return 1.0
        return self.duty_on / (self.duty_on + self.duty_off)


@dataclass(frozen=True)
class FarmSpec:
    """A heterogeneous fleet."""

    machines: tuple[MachineSpec, ...]

    @property
    def effective_rate(self) -> float:
        """Fleet-wide sustained polynomials/second."""
        return sum(
            m.count * m.polys_per_second * m.availability for m in self.machines
        )

    @classmethod
    def paper_fleet(cls) -> "FarmSpec":
        """The 2001 fleet, at the paper's measured ~2 polys/s/CPU.

        The 400 MHz / 500 MHz Alpha mix is modeled as rates scaled by
        clock around the 2/s average; the 30 Sparcs ran "intermittently
        for two months" of the 3.5-month campaign -- modeled as a
        ~57% duty cycle (intermittent usage over the whole span).
        """
        return cls(
            machines=(
                MachineSpec("alpha-400", 25, 2.0 * (400 / 450)),
                MachineSpec("alpha-500", 25, 2.0 * (500 / 450)),
                MachineSpec(
                    "ultrasparc",
                    30,
                    2.0,
                    duty_on=8 * 3600.0,
                    duty_off=6 * 3600.0,
                ),
            )
        )


def _advance_through_duty(
    start: float, compute_seconds: float, spec: MachineSpec, phase: float
) -> float:
    """Wall-clock instant at which ``compute_seconds`` of on-time has
    accumulated, starting from wall time ``start``, for a machine with
    the given duty cycle (cycle origin shifted by ``phase``)."""
    if math.isinf(spec.duty_on):
        return start + compute_seconds
    cycle = spec.duty_on + spec.duty_off
    t = start
    remaining = compute_seconds
    # Jump whole cycles first.
    full_cycles = int(remaining // spec.duty_on)
    if full_cycles > 1:
        t += (full_cycles - 1) * cycle
        remaining -= (full_cycles - 1) * spec.duty_on
    while remaining > 1e-9:
        pos = (t - phase) % cycle
        if pos < spec.duty_on:
            available = spec.duty_on - pos
            step = min(available, remaining)
            t += step
            remaining -= step
        else:
            t += cycle - pos  # sleep to next on-window
    return t


@dataclass
class CampaignEstimate:
    """Outcome of a simulated campaign."""

    total_candidates: int
    wall_seconds: float
    cpu_seconds: float
    chunks: int
    per_machine_chunks: dict[str, int] = field(default_factory=dict)

    @property
    def wall_days(self) -> float:
        return self.wall_seconds / SECONDS_PER_DAY

    @property
    def wall_months(self) -> float:
        return self.wall_days / 30.44

    def summary(self) -> str:
        return (
            f"{self.total_candidates:,} candidates in {self.wall_days:.0f} days "
            f"({self.wall_months:.1f} months) wall clock, "
            f"{self.cpu_seconds / 3.156e7:.1f} CPU-years over {self.chunks} chunks"
        )


def simulate_campaign(
    farm: FarmSpec,
    total_candidates: int,
    *,
    chunk_candidates: int = 1 << 20,
) -> CampaignEstimate:
    """Discrete-event simulation: machines repeatedly draw fixed-size
    chunks from the shared bag; the campaign ends when the last chunk
    completes.  Deterministic (no randomness -- ties broken by machine
    id), so tests can assert exact outputs."""
    chunks = math.ceil(total_candidates / chunk_candidates)
    # (next_free_time, machine_serial) heap; machine_serial indexes a
    # flattened list of individual machines.
    singles: list[tuple[MachineSpec, float]] = []
    for spec in farm.machines:
        for i in range(spec.count):
            singles.append((spec, i * spec.phase_step))
    heap: list[tuple[float, int]] = [(0.0, i) for i in range(len(singles))]
    heapq.heapify(heap)
    per_machine: dict[str, int] = {}
    cpu_seconds = 0.0
    finish = 0.0
    remaining = chunks
    issued_last_size = total_candidates - (chunks - 1) * chunk_candidates
    while remaining > 0:
        now, mi = heapq.heappop(heap)
        spec, phase = singles[mi]
        size = issued_last_size if remaining == 1 else chunk_candidates
        compute = size / spec.polys_per_second
        done_at = _advance_through_duty(now, compute, spec, phase)
        cpu_seconds += compute
        per_machine[spec.name] = per_machine.get(spec.name, 0) + 1
        finish = max(finish, done_at)
        remaining -= 1
        heapq.heappush(heap, (done_at, mi))
    return CampaignEstimate(
        total_candidates=total_candidates,
        wall_seconds=finish,
        cpu_seconds=cpu_seconds,
        chunks=chunks,
        per_machine_chunks=per_machine,
    )


def paper_campaign_estimate() -> CampaignEstimate:
    """The headline reproduction: the full 32-bit canonical space on
    the paper's fleet.  Expected ~3-4 months of wall clock (the paper:
    late May to early September 2001)."""
    return simulate_campaign(
        FarmSpec.paper_fleet(), candidate_count(32)["canonical"]
    )


def castagnoli_hardware_years(
    candidates: int | None = None, seconds_per_poly: float = 107.0
) -> float:
    """Years Castagnoli's special-purpose hardware (107-215 s per
    polynomial, one unit) would need for the whole space -- the
    paper's "in excess of 3600 years"."""
    if candidates is None:
        candidates = candidate_count(32)["canonical"]
    return candidates * seconds_per_poly / 3.156e7


def brute_force_years(
    pairs: float = 4.78e30, pairs_per_second_per_cpu: float = 1e9, cpus: float = 1e6
) -> float:
    """The paper's intractability arithmetic: 4.78e30 bit-combination/
    polynomial pairs at 1e9/s on each of 1e6 processors -- 151 million
    years."""
    return pairs / (pairs_per_second_per_cpu * cpus) / 3.156e7
