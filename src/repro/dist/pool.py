"""Wall-clock process-parallel campaign backend.

The simulated :class:`~repro.dist.coordinator.Coordinator` round-robins
workers inside one process under a logical clock -- correct for the
fault-tolerance semantics, but ``--workers 4`` there buys zero extra
throughput.  This module is the real thing: subprocess workers from a
:class:`concurrent.futures.ProcessPoolExecutor` execute
:func:`~repro.search.exhaustive.search_chunk` over pickled
:class:`~repro.search.exhaustive.SearchConfig` index ranges while the
parent process leases, renews and reaps against actual elapsed time.

The distributed semantics are *exactly* the ones the simulated stack
already enforces, driven through the same objects:

* chunks come from the same :func:`~repro.dist.tasks.partition_space`
  tiling and flow through the same :class:`~repro.dist.queue.TaskQueue`
  lease/complete protocol -- at-least-once execution with idempotent
  completion;
* a crashed (``WorkerCrashed``) or hard-killed (``os._exit``)
  subprocess forfeits its chunk: the parent releases the lease the
  moment the future fails (or lets it expire if the parent itself
  died), and the chunk is re-leased after an exponential backoff with
  deterministic jitter.  A chunk that burns through its whole
  ``max_attempts`` budget -- a *poison* chunk that crashes every
  worker it touches -- is quarantined instead of being re-leased
  forever: the campaign still terminates, reports the quarantined
  ids, and exits non-zero;
* a hard kill additionally breaks the executor (CPython invalidates
  the whole pool), which the runner rebuilds under its own bounded
  exponential backoff, giving up only after ``max_rebuild_streak``
  consecutive rebuilds with zero completed chunks in between;
* SIGTERM/SIGINT trigger a graceful drain: stop leasing, give
  in-flight futures ``drain_grace`` seconds to finish, deliver what
  completed, forfeit the rest, write a final checkpoint, emit
  ``shutdown.drain`` + ``campaign.interrupted``, and return -- so
  ``--resume`` picks up with nothing lost;
* results merge into the same idempotent
  :class:`~repro.search.records.CampaignRecord`, checkpointed every N
  completions through :mod:`repro.dist.checkpoint` (format 3: CRC-32
  self-checksum, fsync'd atomic publication, rotated ``.prev``
  generation) so a killed campaign restarts with ``resume`` instead of
  recomputing -- even when the live checkpoint was corrupted on disk;
* fault injection reuses :class:`~repro.dist.faults.FaultPlan` under
  the pool conventions (chunk-id keyed crash/kill/poison sets, plus
  coordinator-side checkpoint-corruption and kill-signal schedules),
  so the test suite and ``tools/chaos_campaign.py`` script subprocess
  failure deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import signal as signal_module
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable

from repro.dist import checkpoint as checkpoint_io
from repro.dist.checkpoint import CheckpointMismatch
from repro.dist.faults import FaultPlan, WorkerCrashed, corrupt_file
from repro.dist.progress import ProgressTracker
from repro.dist.queue import LeaseLost, TaskQueue
from repro.dist.tasks import SearchTask, partition_space
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.events import NULL_EVENTS, NullEventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACE, Tracer
from repro.search.exhaustive import SearchConfig, SearchResult, search_chunk
from repro.search.records import CampaignRecord

#: Lease owner recorded for every parent-issued lease.
PARENT_OWNER = "pool-parent"


def _run_chunk(
    config: SearchConfig,
    start_index: int,
    end_index: int,
    chunk_id: int,
    attempt: int,
    faults: FaultPlan | None,
    collect_metrics: bool = False,
    collect_traces: bool = False,
) -> tuple[int, SearchResult, dict | None]:
    """Subprocess entry point: execute one chunk of the search.

    Must stay a module-level function (it is pickled by name), and its
    return value must stay picklable -- ``SearchResult`` holds only
    plain dataclasses, which ``tests/dist/test_pool.py`` pins down.

    When ``collect_metrics`` is set, a fresh per-chunk
    :class:`~repro.obs.metrics.MetricsRegistry` is installed for the
    duration of the chunk and its plain-dict snapshot rides back with
    the result for the parent to merge -- per-process aggregation with
    merge-at-chunk-completion, costing the worker one dict per chunk.
    ``collect_traces`` does the same with an unattached
    :class:`~repro.obs.trace.Tracer`: the chunk computes under a
    ``chunk.compute`` root span (the batched screening stages open
    children) and the finished spans ride back as plain dicts in the
    same aux payload, for the parent to adopt into the event stream.

    Injected crash/kill faults fire on the *first* attempt only (the
    reassigned retry models a healthy machine picking up the forfeited
    chunk) -- except for *poison* chunks, which crash every attempt
    and must end up quarantined by the parent's retry budget.
    """
    if faults is not None:
        if faults.pool_kills(chunk_id, attempt):
            os._exit(1)  # hard kill: no exception, no cleanup, no nack
        if faults.pool_crashes(chunk_id, attempt):
            raise WorkerCrashed(f"injected crash on chunk {chunk_id}")
        slowdown = faults.slowdown("pool")
        if slowdown > 1.0:
            time.sleep(min(slowdown - 1.0, 5.0))
    if not (collect_metrics or collect_traces):
        return chunk_id, search_chunk(config, start_index, end_index), None
    registry = MetricsRegistry() if collect_metrics else None
    tracer = Tracer() if collect_traces else None
    previous_metrics = obs_metrics.install(registry) if registry else None
    previous_trace = obs_trace.install(tracer) if tracer else None
    try:
        if tracer is not None:
            with tracer.span("chunk.compute", chunk=chunk_id, attempt=attempt):
                result = search_chunk(config, start_index, end_index)
        else:
            result = search_chunk(config, start_index, end_index)
    finally:
        if registry is not None:
            obs_metrics.install(previous_metrics)
        if tracer is not None:
            obs_trace.install(previous_trace)
    aux = {
        "metrics": registry.snapshot() if registry else None,
        "spans": tracer.snapshot() if tracer else None,
    }
    return chunk_id, result, aux


@dataclass
class PoolStats:
    """Counters the tests and the CLI summary line report."""

    completions: int = 0
    duplicate_deliveries: int = 0
    reassignments: int = 0
    crashes: int = 0
    pool_rebuilds: int = 0
    checkpoints_written: int = 0
    skipped_from_checkpoint: int = 0
    lease_expiries: int = 0
    quarantined: int = 0
    retry_backoffs: int = 0


@dataclass
class ParallelCoordinator:
    """Drive a campaign over real subprocesses on the wall clock.

    The parent is the only lease holder (``PARENT_OWNER``): it leases a
    chunk when it submits the future, renews the lease while the future
    is running, and completes it on delivery.  A future that dies takes
    its renewals with it: the parent releases the lease immediately on
    a failed future (and the wall clock expires it if the parent itself
    is gone), so the chunk goes to the next submission -- the same
    recovery path the 2001 campaign relied on, at subprocess
    granularity, now with a bounded retry budget per chunk.
    """

    config: SearchConfig
    chunk_size: int
    processes: int
    lease_duration: float = 60.0
    checkpoint_path: str | None = None
    checkpoint_every: int = 8
    faults: FaultPlan | None = None
    progress_interval: float = 10.0
    log: Callable[[str], None] | None = None
    max_seconds: float | None = None
    events: NullEventLog = NULL_EVENTS
    collect_metrics: bool = False
    #: Trace spans (lease->dispatch->compute->merge per chunk) into the
    #: event log.  None (default) = auto: on exactly when ``events`` is
    #: a real log; True/False force it.
    collect_traces: bool | None = None
    #: Retry budget per chunk; 0 disables quarantine (unbounded).
    max_attempts: int = 5
    #: Base of the re-lease exponential backoff (seconds).
    retry_backoff: float = 0.05
    backoff_cap: float = 30.0
    #: How long a drain waits for in-flight futures on SIGTERM/SIGINT.
    drain_grace: float = 5.0
    #: Base of the broken-pool rebuild backoff (seconds).
    rebuild_backoff: float = 0.1
    #: Consecutive rebuilds (no completion in between) before giving up.
    max_rebuild_streak: int = 8
    #: Install SIGTERM/SIGINT handlers for the duration of :meth:`run`
    #: (auto-skipped off the main thread).
    handle_signals: bool = True
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    queue: TaskQueue = field(init=False)
    campaign: CampaignRecord = field(init=False)
    tracker: ProgressTracker = field(init=False)
    stats: PoolStats = field(init=False, default_factory=PoolStats)
    #: Signal name ("SIGTERM"/"SIGINT") when the last :meth:`run` was
    #: interrupted and drained; None after a run that finished.
    interrupted: str | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ValueError("processes must be positive")
        tasks = partition_space(self.config.width, self.chunk_size)
        self.queue = TaskQueue(
            tasks,
            lease_duration=self.lease_duration,
            max_attempts=self.max_attempts,
            backoff_base=self.retry_backoff,
            backoff_cap=self.backoff_cap,
        )
        self.queue.on_expire = self._on_lease_expire
        self.queue.on_quarantine = self._on_quarantine
        self.queue.on_backoff = self._on_backoff
        self.campaign = CampaignRecord(
            width=self.config.width,
            data_word_bits=self.config.final_length,
            target_hd=self.config.target_hd,
        )
        self.tracker = ProgressTracker(total_chunks=len(self.queue))
        if self.collect_traces is None:
            self.collect_traces = self.events.enabled
        self.tracer = (
            Tracer(events=self.events) if self.collect_traces else NULL_TRACE
        )
        #: Open (root, dispatch) span handles per in-flight chunk id.
        self._chunk_spans: dict[int, tuple] = {}
        self._completions_since_checkpoint = 0
        self._dirty_since_checkpoint = False
        self._shutdown_signal: str | None = None
        self._signals_installed = False
        self._rebuild_streak = 0
        self._t0: float | None = None

    # -- queue observers -----------------------------------------------

    def _on_lease_expire(self, task: SearchTask, now: float) -> None:
        """Queue observer: a worker forfeited its chunk (silent expiry
        or explicit release after a crashed future)."""
        self.stats.lease_expiries += 1
        self.events.emit(
            "lease.expire",
            chunk=task.chunk_id,
            owner=task.owner,
            attempt=task.attempts,
        )

    def _on_quarantine(self, task: SearchTask, now: float) -> None:
        """Queue observer: a poison chunk exhausted its retry budget."""
        self.stats.quarantined += 1
        self._dirty_since_checkpoint = True
        self.events.emit(
            "chunk.quarantine", chunk=task.chunk_id, attempts=task.attempts
        )
        self._say(
            f"chunk {task.chunk_id} quarantined after {task.attempts} "
            "failed attempts"
        )

    def _on_backoff(self, task: SearchTask, delay: float) -> None:
        self.stats.retry_backoffs += 1
        self.events.emit(
            "lease.backoff",
            chunk=task.chunk_id,
            attempt=task.attempts,
            delay=round(delay, 6),
        )

    # -- checkpoint / resume -------------------------------------------

    def save_checkpoint(self, path: str | None = None) -> None:
        """Durably persist progress (defaults to the configured path):
        format 3 with CRC self-checksum, fsync'd rename, rotated
        ``.prev`` generation, and the current quarantine set."""
        target = path or self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        checkpoint_io.save(
            target,
            self.campaign,
            self.config,
            self.chunk_size,
            self.queue.quarantined_ids,
        )
        self.stats.checkpoints_written += 1
        self._dirty_since_checkpoint = False
        self.events.emit(
            "checkpoint.write",
            path=target,
            chunks_done=len(self.campaign.chunks_done),
            quarantined=self.queue.quarantined,
        )
        if (
            self.faults is not None
            and self.faults.corrupt_checkpoint_after is not None
            and self.stats.checkpoints_written
            == self.faults.corrupt_checkpoint_after
        ):
            # Injected silent bit rot: no event -- real disks don't
            # announce corruption either.  Detection is load's job.
            corrupt_file(target, seed=self.stats.checkpoints_written)

    def resume(
        self, path: str | None = None, *, retry_quarantined: bool = False
    ) -> int:
        """Load a checkpoint written by a compatible campaign and mark
        its chunks done (and its quarantined chunks quarantined,
        unless ``retry_quarantined`` grants them a fresh budget).

        Falls back to the rotated previous generation when the current
        file is corrupt, emitting ``checkpoint.corrupt``.  Returns the
        number of chunks skipped; raises
        :class:`~repro.dist.checkpoint.CheckpointMissing` when no
        generation exists, :class:`~repro.dist.checkpoint.CheckpointCorrupt`
        when none verifies, and :class:`CheckpointMismatch` on a
        foreign checkpoint.
        """
        target = path or self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        loaded = checkpoint_io.load(target, self.config, self.chunk_size)
        if loaded.fell_back:
            self.events.emit(
                "checkpoint.corrupt",
                path=target,
                fallback=loaded.source,
                error=str(loaded.corrupt_error),
            )
            self._say(
                f"checkpoint {target} unusable ({loaded.corrupt_error}); "
                f"recovered from previous generation {loaded.source}"
            )
        campaign = loaded.campaign
        foreign = [
            c
            for c in sorted(campaign.chunks_done | loaded.quarantined)
            if c not in self.queue
        ]
        if foreign:
            raise CheckpointMismatch(
                f"checkpoint {loaded.source} references chunks {foreign}, "
                f"outside this campaign's {len(self.queue)}-chunk partition "
                "(chunk_size mismatch?)"
            )
        skipped = 0
        for chunk_id in campaign.chunks_done:
            if self.queue.complete(chunk_id, "checkpoint", 0.0):
                skipped += 1
        restored = 0
        if not retry_quarantined:
            for chunk_id in sorted(loaded.quarantined):
                if self.queue.mark_quarantined(chunk_id):
                    restored += 1
                    self.stats.quarantined += 1
                    self.events.emit(
                        "chunk.quarantine",
                        chunk=chunk_id,
                        attempts=0,
                        restored=True,
                    )
        self.campaign = campaign
        self.stats.skipped_from_checkpoint = skipped
        self.events.emit(
            "campaign.resume",
            path=loaded.source,
            skipped=skipped,
            quarantined=restored,
        )
        return skipped

    # -- graceful shutdown ---------------------------------------------

    def _handle_signal(self, signum: int, frame: object) -> None:
        self._shutdown_signal = signal_module.Signals(signum).name

    def _install_signal_handlers(self) -> dict[int, object]:
        if not self.handle_signals:
            return {}
        previous: dict[int, object] = {}
        for sig in (signal_module.SIGTERM, signal_module.SIGINT):
            try:
                previous[sig] = signal_module.signal(sig, self._handle_signal)
            except ValueError:
                # Not the main thread: signals cannot be hooked here;
                # injected kill signals fall back to setting the flag.
                return previous
        self._signals_installed = True
        return previous

    def _restore_signal_handlers(self, previous: dict[int, object]) -> None:
        for sig, handler in previous.items():
            signal_module.signal(sig, handler)
        self._signals_installed = False

    def _inject_kill_signal(self) -> None:
        """Deliver the fault plan's scheduled SIGTERM to ourselves."""
        if self._signals_installed:
            os.kill(os.getpid(), signal_module.SIGTERM)
        else:
            self._shutdown_signal = "SIGTERM"

    def _drain(self, in_flight: dict[Future, SearchTask]) -> None:
        """Stop-the-world on SIGTERM/SIGINT: give in-flight futures
        ``drain_grace`` seconds, deliver what finished, forfeit the
        rest, and report."""
        delivered = forfeited = 0
        done: set[Future] = set()
        if in_flight:
            done, _ = wait(set(in_flight), timeout=self.drain_grace)
        now = time.monotonic()
        for fut in done:
            task = in_flight.pop(fut)
            if fut.exception() is None:
                _, result, aux = fut.result()
                self._deliver(task, result, now, aux)
                delivered += 1
            else:
                self.stats.crashes += 1
                self._close_chunk_spans(task.chunk_id, "crashed")
                self.queue.release(task.chunk_id, PARENT_OWNER, now)
                forfeited += 1
        for fut, task in list(in_flight.items()):
            fut.cancel()
            self._close_chunk_spans(task.chunk_id, "forfeited")
            self.queue.release(task.chunk_id, PARENT_OWNER, now)
            forfeited += 1
        in_flight.clear()
        self.events.emit(
            "shutdown.drain",
            signal=self._shutdown_signal,
            delivered=delivered,
            forfeited=forfeited,
            grace=self.drain_grace,
        )
        self._say(
            f"{self._shutdown_signal} received: drained {delivered} "
            f"in-flight chunks, forfeited {forfeited} -- "
            + self.queue.progress()
        )

    # -- the wall-clock drive loop -------------------------------------

    def _new_executor(self) -> ProcessPoolExecutor:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        return ProcessPoolExecutor(max_workers=self.processes, mp_context=ctx)

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def _close_chunk_spans(self, chunk_id: int, outcome: str) -> None:
        """End an in-flight chunk's open spans on a non-delivery exit
        (crash, kill, rebuild release, drain forfeit)."""
        root, dispatch = self._chunk_spans.pop(
            chunk_id, (obs_trace.NULL_SPAN, obs_trace.NULL_SPAN)
        )
        dispatch.annotate(outcome=outcome)
        dispatch.end()
        root.annotate(outcome=outcome)
        root.end()

    def _deliver(
        self,
        task: SearchTask,
        result: SearchResult,
        now: float,
        aux: dict | None = None,
    ) -> None:
        aux = aux or {}
        root, dispatch = self._chunk_spans.pop(
            task.chunk_id, (obs_trace.NULL_SPAN, obs_trace.NULL_SPAN)
        )
        dispatch.end()
        # The worker's compute spans slot in under the dispatch span,
        # so the waterfall reads lease -> dispatch -> compute -> merge.
        self.tracer.adopt(aux.get("spans"), parent=dispatch.id)
        merge_span = self.tracer.start(
            "chunk.merge", parent=root.id, chunk=task.chunk_id
        )
        if task.attempts > 1:
            self.stats.reassignments += 1
        deliveries = 1
        if self.faults is not None and self.faults.duplicates_on(
            "pool", task.chunk_id
        ):
            deliveries = 2
        for _ in range(deliveries):
            self.queue.complete(task.chunk_id, PARENT_OWNER, now)
            merged = self.campaign.merge_chunk(
                task.chunk_id, result.records, result.examined
            )
            if not merged:
                self.stats.duplicate_deliveries += 1
            self.events.emit(
                "chunk.done",
                chunk=task.chunk_id,
                attempt=task.attempts,
                examined=result.examined,
                survivors=len(result.survivors),
                seconds=round(result.elapsed_seconds, 6),
                stage_kills=result.stage_kills,
                duplicate=not merged,
            )
        # Worker metrics merge exactly once per computed chunk -- the
        # duplicate-delivery replay above re-merges no numbers, same as
        # the campaign record.
        self.metrics.merge(aux.get("metrics"))
        self.metrics.observe_hist("chunk.seconds", result.elapsed_seconds)
        merge_span.end()
        root.annotate(attempt=task.attempts)
        root.end()
        self.stats.completions += 1
        self._completions_since_checkpoint += 1
        self._dirty_since_checkpoint = True
        self._rebuild_streak = 0  # real progress: the pool is healthy
        if (
            self.checkpoint_path is not None
            and self._completions_since_checkpoint >= self.checkpoint_every
        ):
            self.save_checkpoint()
            self._completions_since_checkpoint = 0
        if (
            self.faults is not None
            and self.faults.kill_signal_after is not None
            and self.stats.completions == self.faults.kill_signal_after
        ):
            self._inject_kill_signal()

    def run(self, stop_after: int | None = None) -> float:
        """Run until the queue drains (every chunk DONE or
        QUARANTINED), ``stop_after`` new completions arrive (a test
        hook for mid-flight checkpoints), or a SIGTERM/SIGINT triggers
        a graceful drain.  Returns elapsed wall-clock seconds; check
        :attr:`interrupted` and ``queue.quarantined_ids`` afterwards.
        """
        t0 = time.monotonic()
        self._t0 = t0
        self.interrupted = None
        self._shutdown_signal = None
        self._rebuild_streak = 0
        # Fresh tracker per run: a resumed/second run starts its own
        # wall clock, and observe() forbids time regressing.
        self.tracker = ProgressTracker(total_chunks=len(self.queue))
        self.tracker.observe(0.0, self.queue.done)
        self.events.emit(
            "campaign.start",
            backend="pool",
            width=self.config.width,
            target_hd=self.config.target_hd,
            final_length=self.config.final_length,
            chunk_size=self.chunk_size,
            chunks=len(self.queue),
            processes=self.processes,
        )
        previous_handlers = self._install_signal_handlers()
        executor = self._new_executor()
        in_flight: dict[Future, SearchTask] = {}
        # Epoch of each grant, captured at submission: the queue task
        # object mutates on re-lease, so renewing with the *live*
        # epoch would defeat the staleness check.
        lease_epochs: dict[Future, int] = {}
        renew_interval = max(self.lease_duration / 3.0, 0.05)
        wait_timeout = min(max(self.lease_duration / 4.0, 0.02), 0.5)
        last_renew = t0
        last_summary = t0
        try:
            while not self.queue.finished:
                if self._shutdown_signal is not None:
                    break
                now = time.monotonic()
                if self.max_seconds is not None and now - t0 > self.max_seconds:
                    raise RuntimeError(
                        f"campaign exceeded {self.max_seconds}s: "
                        + self.queue.progress()
                    )
                if stop_after is not None and self.stats.completions >= stop_after:
                    break
                # Keep the pool saturated: one in-flight chunk per slot.
                while (
                    len(in_flight) < self.processes
                    and self._shutdown_signal is None
                ):
                    task = self.queue.lease(PARENT_OWNER, now)
                    if task is None:
                        break
                    # Root "chunk" span opens at lease time; the gap
                    # before dispatch starts is lease/queue overhead.
                    root = self.tracer.start(
                        "chunk", chunk=task.chunk_id, attempt=task.attempts
                    )
                    dispatch = self.tracer.start(
                        "chunk.dispatch", parent=root.id, chunk=task.chunk_id
                    )
                    self._chunk_spans[task.chunk_id] = (root, dispatch)
                    try:
                        fut = executor.submit(
                            _run_chunk,
                            self.config,
                            task.start_index,
                            task.end_index,
                            task.chunk_id,
                            task.attempts,
                            self.faults,
                            self.collect_metrics,
                            self.collect_traces,
                        )
                    except BrokenProcessPool:
                        self._close_chunk_spans(task.chunk_id, "pool-broken")
                        self.queue.release(task.chunk_id, PARENT_OWNER, now)
                        executor, in_flight = self._rebuild(
                            executor, in_flight, now
                        )
                        break
                    in_flight[fut] = task
                    lease_epochs[fut] = task.epoch
                    self.events.emit(
                        "lease.grant", chunk=task.chunk_id, attempt=task.attempts
                    )
                if not in_flight:
                    # Everything leasable is either in a retry backoff
                    # or leased to failed attempts; sleep to the next
                    # instant the queue's state can change.
                    wake = self.queue.next_wakeup(time.monotonic())
                    if wake is not None:
                        time.sleep(
                            min(max(wake - time.monotonic(), 0.0) + 0.01, 1.0)
                        )
                    continue
                done, _ = wait(
                    set(in_flight), timeout=wait_timeout, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                broken = False
                for fut in done:
                    task = in_flight.pop(fut)
                    exc = fut.exception()
                    if exc is None:
                        _, result, aux = fut.result()
                        self._deliver(task, result, now, aux)
                        self.tracker.observe(now - t0, self.queue.done)
                    elif isinstance(exc, BrokenProcessPool):
                        broken = True
                        self.stats.crashes += 1
                        self._close_chunk_spans(task.chunk_id, "killed")
                        self.events.emit(
                            "worker.crash", chunk=task.chunk_id, kind="killed"
                        )
                        self.queue.release(task.chunk_id, PARENT_OWNER, now)
                    elif isinstance(exc, WorkerCrashed):
                        # Task-level crash: the pool survives; release
                        # the lease now (the parent *knows* the attempt
                        # failed) so the chunk re-leases after backoff
                        # instead of waiting out the full lease.
                        self.stats.crashes += 1
                        self._close_chunk_spans(task.chunk_id, "crashed")
                        self.events.emit(
                            "worker.crash", chunk=task.chunk_id, kind="crashed"
                        )
                        self.queue.release(task.chunk_id, PARENT_OWNER, now)
                    else:
                        raise exc
                if broken:
                    executor, in_flight = self._rebuild(executor, in_flight, now)
                if now - last_renew >= renew_interval:
                    renewed = 0
                    for fut, task in in_flight.items():
                        if not fut.done():
                            try:
                                if self.queue.renew(
                                    task.chunk_id,
                                    PARENT_OWNER,
                                    now,
                                    epoch=lease_epochs.get(fut),
                                ):
                                    renewed += 1
                            except LeaseLost:
                                # Reclaimed out from under a stalled
                                # parent; the future's late result is
                                # still merged on delivery.
                                pass
                    if renewed:
                        self.events.emit("lease.renew", chunks=renewed)
                    last_renew = now
                if now - last_summary >= self.progress_interval:
                    self._say(
                        self.tracker.summary(now - t0)
                        + " | "
                        + self.queue.progress()
                    )
                    last_summary = now
            if self._shutdown_signal is not None:
                self._drain(in_flight)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
            self._restore_signal_handlers(previous_handlers)
            # Any spans still open belong to attempts this session is
            # abandoning (stop_after exit, or an error unwinding the
            # loop); the drain path has already closed its own.  Close
            # them now so every opened span reaches the log with an
            # outcome instead of leaking.
            for chunk_id in list(self._chunk_spans):
                self._close_chunk_spans(chunk_id, "stopped")
        elapsed = time.monotonic() - t0
        if self.checkpoint_path is not None and self._dirty_since_checkpoint:
            self.save_checkpoint()
            self._completions_since_checkpoint = 0
        if self.collect_metrics:
            self.events.emit("metrics.snapshot", metrics=self.metrics.snapshot())
        if self._shutdown_signal is not None:
            self.interrupted = self._shutdown_signal
            self.events.emit(
                "campaign.interrupted",
                signal=self._shutdown_signal,
                elapsed=round(elapsed, 6),
                completions=self.stats.completions,
                examined=self.campaign.candidates_examined,
            )
        else:
            self.events.emit(
                "campaign.end",
                elapsed=round(elapsed, 6),
                completions=self.stats.completions,
                examined=self.campaign.candidates_examined,
                survivors=len(self.campaign.survivors),
                quarantined=self.queue.quarantined,
            )
        self._say(
            self.tracker.summary(elapsed) + " | " + self.queue.progress()
        )
        return elapsed

    def _rebuild(
        self,
        executor: ProcessPoolExecutor,
        in_flight: dict[Future, SearchTask],
        now: float,
    ) -> tuple[ProcessPoolExecutor, dict[Future, SearchTask]]:
        """Replace a broken pool.  In-flight work is released back to
        the queue (re-leased after backoff), and repeated rebuilds
        without progress back off exponentially before giving up."""
        executor.shutdown(wait=False, cancel_futures=True)
        for task in in_flight.values():
            self._close_chunk_spans(task.chunk_id, "pool-broken")
            self.queue.release(task.chunk_id, PARENT_OWNER, now)
        self.stats.pool_rebuilds += 1
        self._rebuild_streak += 1
        if self._rebuild_streak > self.max_rebuild_streak:
            raise RuntimeError(
                f"process pool died {self._rebuild_streak} times in a row "
                "without completing a chunk; giving up: "
                + self.queue.progress()
            )
        backoff = min(
            self.rebuild_backoff * (2 ** (self._rebuild_streak - 1)), 5.0
        )
        self.events.emit(
            "pool.rebuild",
            streak=self._rebuild_streak,
            backoff=round(backoff, 3),
        )
        self._say(
            "process pool broken (worker killed); rebuilding in "
            f"{backoff:.2f}s -- " + self.queue.progress()
        )
        if backoff > 0:
            time.sleep(backoff)
        return self._new_executor(), {}
