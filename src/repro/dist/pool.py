"""Wall-clock process-parallel campaign backend.

The simulated :class:`~repro.dist.coordinator.Coordinator` round-robins
workers inside one process under a logical clock -- correct for the
fault-tolerance semantics, but ``--workers 4`` there buys zero extra
throughput.  This module is the real thing: subprocess workers from a
:class:`concurrent.futures.ProcessPoolExecutor` execute
:func:`~repro.search.exhaustive.search_chunk` over pickled
:class:`~repro.search.exhaustive.SearchConfig` index ranges while the
parent process leases, renews and reaps against actual elapsed time.

The distributed semantics are *exactly* the ones the simulated stack
already enforces, driven through the same objects:

* chunks come from the same :func:`~repro.dist.tasks.partition_space`
  tiling and flow through the same :class:`~repro.dist.queue.TaskQueue`
  lease/complete protocol -- at-least-once execution with idempotent
  completion;
* a crashed (``WorkerCrashed``) or hard-killed (``os._exit``)
  subprocess simply never completes its chunk: the parent stops
  renewing the lease, the lease expires on the real clock, and the
  chunk is transparently re-leased to a healthy process.  A hard kill
  additionally breaks the executor (CPython invalidates the whole
  pool), which the runner rebuilds and carries on;
* results merge into the same idempotent
  :class:`~repro.search.records.CampaignRecord`, checkpointed every N
  completions through :mod:`repro.dist.checkpoint` so a killed
  campaign restarts with ``resume`` instead of recomputing;
* fault injection reuses :class:`~repro.dist.faults.FaultPlan` under
  the pool conventions (``POOL_CRASH`` / ``POOL_KILL`` keyed by chunk
  id), so the test suite scripts subprocess failure deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable

from repro.dist import checkpoint as checkpoint_io
from repro.dist.checkpoint import CheckpointMismatch
from repro.dist.faults import POOL_CRASH, POOL_KILL, FaultPlan, WorkerCrashed
from repro.dist.progress import ProgressTracker
from repro.dist.queue import TaskQueue
from repro.dist.tasks import SearchTask, partition_space
from repro.obs import metrics as obs_metrics
from repro.obs.events import NULL_EVENTS, NullEventLog
from repro.obs.metrics import MetricsRegistry
from repro.search.exhaustive import SearchConfig, SearchResult, search_chunk
from repro.search.records import CampaignRecord

#: Lease owner recorded for every parent-issued lease.
PARENT_OWNER = "pool-parent"


def _run_chunk(
    config: SearchConfig,
    start_index: int,
    end_index: int,
    chunk_id: int,
    attempt: int,
    faults: FaultPlan | None,
    collect_metrics: bool = False,
) -> tuple[int, SearchResult, dict | None]:
    """Subprocess entry point: execute one chunk of the search.

    Must stay a module-level function (it is pickled by name), and its
    return value must stay picklable -- ``SearchResult`` holds only
    plain dataclasses, which ``tests/dist/test_pool.py`` pins down.

    When ``collect_metrics`` is set, a fresh per-chunk
    :class:`~repro.obs.metrics.MetricsRegistry` is installed for the
    duration of the chunk and its plain-dict snapshot rides back with
    the result for the parent to merge -- per-process aggregation with
    merge-at-chunk-completion, costing the worker one dict per chunk.

    Injected faults fire on the *first* attempt only: the reassigned
    retry models a healthy machine picking up the forfeited chunk.
    """
    if faults is not None and attempt == 1:
        if faults.crashes_on(POOL_KILL, chunk_id):
            os._exit(1)  # hard kill: no exception, no cleanup, no nack
        if faults.crashes_on(POOL_CRASH, chunk_id):
            raise WorkerCrashed(f"injected crash on chunk {chunk_id}")
    if faults is not None:
        slowdown = faults.slowdown(POOL_CRASH)
        if slowdown > 1.0:
            time.sleep(min(slowdown - 1.0, 5.0))
    if not collect_metrics:
        return chunk_id, search_chunk(config, start_index, end_index), None
    registry = MetricsRegistry()
    previous = obs_metrics.install(registry)
    try:
        result = search_chunk(config, start_index, end_index)
    finally:
        obs_metrics.install(previous)
    return chunk_id, result, registry.snapshot()


@dataclass
class PoolStats:
    """Counters the tests and the CLI summary line report."""

    completions: int = 0
    duplicate_deliveries: int = 0
    reassignments: int = 0
    crashes: int = 0
    pool_rebuilds: int = 0
    checkpoints_written: int = 0
    skipped_from_checkpoint: int = 0
    lease_expiries: int = 0


@dataclass
class ParallelCoordinator:
    """Drive a campaign over real subprocesses on the wall clock.

    The parent is the only lease holder (``PARENT_OWNER``): it leases a
    chunk when it submits the future, renews the lease while the future
    is running, and completes it on delivery.  A future that dies takes
    its renewals with it, so the lease expires and the queue hands the
    chunk to the next submission -- the same recovery path the 2001
    campaign relied on, at subprocess granularity.
    """

    config: SearchConfig
    chunk_size: int
    processes: int
    lease_duration: float = 60.0
    checkpoint_path: str | None = None
    checkpoint_every: int = 8
    faults: FaultPlan | None = None
    progress_interval: float = 10.0
    log: Callable[[str], None] | None = None
    max_seconds: float | None = None
    events: NullEventLog = NULL_EVENTS
    collect_metrics: bool = False
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    queue: TaskQueue = field(init=False)
    campaign: CampaignRecord = field(init=False)
    tracker: ProgressTracker = field(init=False)
    stats: PoolStats = field(init=False, default_factory=PoolStats)

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ValueError("processes must be positive")
        tasks = partition_space(self.config.width, self.chunk_size)
        self.queue = TaskQueue(tasks, lease_duration=self.lease_duration)
        self.queue.on_expire = self._on_lease_expire
        self.campaign = CampaignRecord(
            width=self.config.width,
            data_word_bits=self.config.final_length,
            target_hd=self.config.target_hd,
        )
        self.tracker = ProgressTracker(total_chunks=len(self.queue))
        self._completions_since_checkpoint = 0
        self._t0: float | None = None

    def _on_lease_expire(self, task: SearchTask, now: float) -> None:
        """Queue observer: a silent worker forfeited its chunk."""
        self.stats.lease_expiries += 1
        self.events.emit(
            "lease.expire",
            chunk=task.chunk_id,
            owner=task.owner,
            attempt=task.attempts,
        )

    # -- checkpoint / resume -------------------------------------------

    def save_checkpoint(self, path: str | None = None) -> None:
        """Persist progress (defaults to the configured path)."""
        target = path or self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        checkpoint_io.save(target, self.campaign, self.config, self.chunk_size)
        self.stats.checkpoints_written += 1
        self.events.emit(
            "checkpoint.write",
            path=target,
            chunks_done=len(self.campaign.chunks_done),
        )

    def resume(self, path: str | None = None) -> int:
        """Load a checkpoint written by a compatible campaign and mark
        its chunks done.  Returns the number of chunks skipped; raises
        :class:`CheckpointMismatch` on a foreign checkpoint."""
        target = path or self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        campaign = checkpoint_io.load(target, self.config, self.chunk_size)
        foreign = [c for c in campaign.chunks_done if c not in self.queue]
        if foreign:
            raise CheckpointMismatch(
                f"checkpoint {target} references chunks {sorted(foreign)}, "
                f"outside this campaign's {len(self.queue)}-chunk partition "
                "(chunk_size mismatch?)"
            )
        skipped = 0
        for chunk_id in campaign.chunks_done:
            if self.queue.complete(chunk_id, "checkpoint", 0.0):
                skipped += 1
        self.campaign = campaign
        self.stats.skipped_from_checkpoint = skipped
        self.events.emit("campaign.resume", path=target, skipped=skipped)
        return skipped

    # -- the wall-clock drive loop -------------------------------------

    def _new_executor(self) -> ProcessPoolExecutor:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        return ProcessPoolExecutor(max_workers=self.processes, mp_context=ctx)

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log(message)

    def _deliver(
        self,
        task: SearchTask,
        result: SearchResult,
        now: float,
        worker_metrics: dict | None = None,
    ) -> None:
        if task.attempts > 1:
            self.stats.reassignments += 1
        deliveries = 1
        if self.faults is not None and self.faults.duplicates_on(
            POOL_CRASH, task.chunk_id
        ):
            deliveries = 2
        for _ in range(deliveries):
            self.queue.complete(task.chunk_id, PARENT_OWNER, now)
            merged = self.campaign.merge_chunk(
                task.chunk_id, result.records, result.examined
            )
            if not merged:
                self.stats.duplicate_deliveries += 1
            self.events.emit(
                "chunk.done",
                chunk=task.chunk_id,
                attempt=task.attempts,
                examined=result.examined,
                survivors=len(result.survivors),
                seconds=round(result.elapsed_seconds, 6),
                stage_kills=result.stage_kills,
                duplicate=not merged,
            )
        # Worker metrics merge exactly once per computed chunk -- the
        # duplicate-delivery replay above re-merges no numbers, same as
        # the campaign record.
        self.metrics.merge(worker_metrics)
        self.stats.completions += 1
        self._completions_since_checkpoint += 1
        if (
            self.checkpoint_path is not None
            and self._completions_since_checkpoint >= self.checkpoint_every
        ):
            self.save_checkpoint()
            self._completions_since_checkpoint = 0

    def run(self, stop_after: int | None = None) -> float:
        """Run until the queue drains (or ``stop_after`` new
        completions, for tests that checkpoint mid-flight).  Returns
        elapsed wall-clock seconds."""
        t0 = time.monotonic()
        self._t0 = t0
        # Fresh tracker per run: a resumed/second run starts its own
        # wall clock, and observe() forbids time regressing.
        self.tracker = ProgressTracker(total_chunks=len(self.queue))
        self.tracker.observe(0.0, self.queue.done)
        self.events.emit(
            "campaign.start",
            backend="pool",
            width=self.config.width,
            target_hd=self.config.target_hd,
            final_length=self.config.final_length,
            chunk_size=self.chunk_size,
            chunks=len(self.queue),
            processes=self.processes,
        )
        executor = self._new_executor()
        in_flight: dict[Future, SearchTask] = {}
        renew_interval = max(self.lease_duration / 3.0, 0.05)
        wait_timeout = min(max(self.lease_duration / 4.0, 0.02), 0.5)
        last_renew = t0
        last_summary = t0
        try:
            while not self.queue.all_done:
                now = time.monotonic()
                if self.max_seconds is not None and now - t0 > self.max_seconds:
                    raise RuntimeError(
                        f"campaign exceeded {self.max_seconds}s: "
                        + self.queue.progress()
                    )
                if stop_after is not None and self.stats.completions >= stop_after:
                    break
                # Keep the pool saturated: one in-flight chunk per slot.
                while len(in_flight) < self.processes:
                    task = self.queue.lease(PARENT_OWNER, now)
                    if task is None:
                        break
                    try:
                        fut = executor.submit(
                            _run_chunk,
                            self.config,
                            task.start_index,
                            task.end_index,
                            task.chunk_id,
                            task.attempts,
                            self.faults,
                            self.collect_metrics,
                        )
                    except BrokenProcessPool:
                        executor, in_flight = self._rebuild(executor, in_flight)
                        break
                    in_flight[fut] = task
                    self.events.emit(
                        "lease.grant", chunk=task.chunk_id, attempt=task.attempts
                    )
                if not in_flight:
                    # All remaining work is leased to failed attempts;
                    # sleep to the earliest expiry so it gets reclaimed.
                    expiry = self.queue.next_lease_expiry()
                    if expiry is not None:
                        time.sleep(min(max(expiry - time.monotonic(), 0.0) + 0.01, 1.0))
                    continue
                done, _ = wait(
                    set(in_flight), timeout=wait_timeout, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                broken = False
                for fut in done:
                    task = in_flight.pop(fut)
                    exc = fut.exception()
                    if exc is None:
                        _, result, worker_metrics = fut.result()
                        self._deliver(task, result, now, worker_metrics)
                        self.tracker.observe(now - t0, self.queue.done)
                    elif isinstance(exc, BrokenProcessPool):
                        broken = True
                        self.stats.crashes += 1
                        self.events.emit(
                            "worker.crash", chunk=task.chunk_id, kind="killed"
                        )
                    elif isinstance(exc, WorkerCrashed):
                        # Task-level crash: the pool survives, the
                        # lease is left to expire and be re-leased.
                        self.stats.crashes += 1
                        self.events.emit(
                            "worker.crash", chunk=task.chunk_id, kind="crashed"
                        )
                    else:
                        raise exc
                if broken:
                    executor, in_flight = self._rebuild(executor, in_flight)
                if now - last_renew >= renew_interval:
                    renewed = 0
                    for fut, task in in_flight.items():
                        if not fut.done():
                            if self.queue.renew(task.chunk_id, PARENT_OWNER, now):
                                renewed += 1
                    if renewed:
                        self.events.emit("lease.renew", chunks=renewed)
                    last_renew = now
                if now - last_summary >= self.progress_interval:
                    self._say(
                        self.tracker.summary(now - t0)
                        + " | "
                        + self.queue.progress()
                    )
                    last_summary = now
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        elapsed = time.monotonic() - t0
        if self.checkpoint_path is not None and self._completions_since_checkpoint:
            self.save_checkpoint()
            self._completions_since_checkpoint = 0
        if self.collect_metrics:
            self.events.emit("metrics.snapshot", metrics=self.metrics.snapshot())
        self.events.emit(
            "campaign.end",
            elapsed=round(elapsed, 6),
            completions=self.stats.completions,
            examined=self.campaign.candidates_examined,
            survivors=len(self.campaign.survivors),
        )
        self._say(
            self.tracker.summary(elapsed) + " | " + self.queue.progress()
        )
        return elapsed

    def _rebuild(
        self, executor: ProcessPoolExecutor, in_flight: dict[Future, SearchTask]
    ) -> tuple[ProcessPoolExecutor, dict[Future, SearchTask]]:
        """Replace a broken pool.  In-flight work is abandoned; its
        leases expire on the real clock and the chunks are re-leased."""
        executor.shutdown(wait=False, cancel_futures=True)
        self.stats.pool_rebuilds += 1
        self.events.emit("pool.rebuild")
        self._say(
            "process pool broken (worker killed); rebuilding -- "
            + self.queue.progress()
        )
        return self._new_executor(), {}
