"""Search workers.

A worker leases chunks, evaluates them with the real search engine
(:func:`repro.search.exhaustive.search_chunk`), and reports results.
Fault injection hooks let the test suite script crashes and duplicate
deliveries at exact points; the executor is also pluggable so the
virtual-time farm can substitute a cost model for actual computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dist.faults import FaultPlan, WorkerCrashed
from repro.dist.queue import TaskQueue
from repro.dist.tasks import SearchTask
from repro.search.exhaustive import SearchConfig, SearchResult, search_chunk

Executor = Callable[[SearchConfig, int, int], SearchResult]


@dataclass
class ChunkWorker:
    """One workstation's worth of the campaign.

    ``alive`` goes False on an injected crash; a dead worker never
    leases again (the 2001 analogue: the machine's owner came back).
    """

    worker_id: str
    config: SearchConfig
    executor: Executor = search_chunk
    faults: FaultPlan = field(default_factory=FaultPlan)
    chunks_started: int = 0
    chunks_completed: int = 0
    last_chunk_number: int = -1
    alive: bool = True

    def run_one(self, queue: TaskQueue, now: float) -> tuple[SearchTask, SearchResult] | None:
        """Lease and execute a single chunk.

        Returns ``(task, result)`` on success, ``None`` when no work
        is pending.  Raises :class:`WorkerCrashed` when the fault plan
        kills this worker mid-chunk (the lease is left to expire, as
        in reality -- a dead process sends no nack).
        """
        if not self.alive:
            raise WorkerCrashed(f"{self.worker_id} is dead")
        task = queue.lease(self.worker_id, now)
        if task is None:
            return None
        my_chunk_number = self.chunks_started
        self.chunks_started += 1
        self.last_chunk_number = my_chunk_number
        if self.faults.crashes_on(self.worker_id, my_chunk_number):
            self.alive = False
            raise WorkerCrashed(
                f"{self.worker_id} crashed on chunk {task.chunk_id}"
            )
        result = self.executor(self.config, task.start_index, task.end_index)
        self.chunks_completed += 1
        return task, result

    def deliveries_for(self, chunk_number: int) -> int:
        """How many times the completion of the worker's n-th chunk is
        delivered (2 when the fault plan injects a duplicate).

        ``chunk_number`` is the started-chunk ordinal recorded in
        :attr:`last_chunk_number` -- the same counter the crash
        injection uses, so fault plans address both by one key space.
        For a worker that never crashed the two historical counters
        coincide (``chunks_started == chunks_completed`` between
        calls); after a crash they diverge by one, which is why both
        call sites now read :attr:`last_chunk_number` instead of
        re-deriving the ordinal from ``chunks_completed``.
        """
        return 2 if self.faults.duplicates_on(self.worker_id, chunk_number) else 1


def drain(
    worker: ChunkWorker,
    queue: TaskQueue,
    on_complete: Callable[[SearchTask, SearchResult, str], None],
    *,
    start_time: float = 0.0,
    time_per_chunk: float = 1.0,
) -> float:
    """Run a single worker until the queue has nothing pending for it,
    invoking ``on_complete`` for each delivery (including injected
    duplicates).  Returns the worker's local clock at the end.

    This is the single-machine degenerate case; the coordinator and
    farm modules interleave multiple workers.
    """
    now = start_time
    while True:
        try:
            outcome = worker.run_one(queue, now)
        except WorkerCrashed:
            return now
        if outcome is None:
            return now
        task, result = outcome
        now += time_per_chunk * worker.faults.slowdown(worker.worker_id)
        for _ in range(worker.deliveries_for(worker.last_chunk_number)):
            queue.complete(task.chunk_id, worker.worker_id, now)
            on_complete(task, result, worker.worker_id)
