"""Leased task queue with at-least-once semantics.

Semantics (enforced by ``tests/dist/test_queue.py``):

* ``lease`` hands out the lowest-id PENDING task, marking it LEASED
  with an expiry; expired leases are reclaimed lazily on the next
  queue operation, so a silent worker cannot strand work.
* ``complete`` is idempotent: the first completion of a chunk wins
  and returns True; replays (from recovered workers or duplicated
  messages) return False and change nothing.
* A completion from a worker whose lease was reassigned is *still
  accepted* if the chunk is not yet done -- the computation is
  deterministic, so any worker's answer for a chunk is the answer.

Time is injected (``now`` parameters) rather than read from a clock,
so both the real in-process coordinator and the virtual-time farm
simulator drive the same code.
"""

from __future__ import annotations

from typing import Callable

from repro.dist.tasks import SearchTask, TaskStatus


class TaskQueue:
    """In-memory durable-semantics task queue for a search campaign."""

    def __init__(self, tasks: list[SearchTask], lease_duration: float = 600.0):
        ids = [t.chunk_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate chunk ids")
        self._tasks: dict[int, SearchTask] = {t.chunk_id: t for t in tasks}
        self.lease_duration = lease_duration
        #: Optional observer invoked as ``on_expire(task, now)`` when a
        #: lease is reclaimed -- expiry happens lazily inside queue
        #: operations, so this hook is how the observability layer
        #: (:mod:`repro.obs`) sees it.  Must not mutate the queue.
        self.on_expire: Callable[[SearchTask, float], None] | None = None

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, chunk_id: int) -> bool:
        return chunk_id in self._tasks

    def task(self, chunk_id: int) -> SearchTask:
        return self._tasks[chunk_id]

    def next_lease_expiry(self) -> float | None:
        """Earliest expiry among live leases, or None if nothing is
        leased.  The wall-clock runner sleeps until this instant when
        all remaining work is held by (possibly dead) owners."""
        expiries = [
            t.lease_expires_at
            for t in self._tasks.values()
            if t.status is TaskStatus.LEASED
        ]
        return min(expiries) if expiries else None

    def _reclaim_expired(self, now: float) -> None:
        for t in self._tasks.values():
            if t.status is TaskStatus.LEASED and t.lease_expires_at <= now:
                if self.on_expire is not None:
                    self.on_expire(t, now)  # owner/attempt still visible
                t.expire(now)

    def lease(self, worker_id: str, now: float) -> SearchTask | None:
        """Lease the next available task, or None if nothing is
        pending (work may still be in flight with other workers)."""
        self._reclaim_expired(now)
        for chunk_id in sorted(self._tasks):
            t = self._tasks[chunk_id]
            if t.status is TaskStatus.PENDING:
                t.lease(worker_id, now, self.lease_duration)
                return t
        return None

    def complete(self, chunk_id: int, worker_id: str, now: float) -> bool:
        """Record completion.  True if this is the first completion,
        False for idempotent replays."""
        t = self._tasks[chunk_id]
        if t.status is TaskStatus.DONE:
            return False
        t.complete(worker_id, now)
        return True

    def renew(self, chunk_id: int, worker_id: str, now: float) -> bool:
        """Heartbeat: extend a live lease.  False if the lease was
        already reassigned (worker should abandon the chunk)."""
        t = self._tasks[chunk_id]
        if t.status is not TaskStatus.LEASED or t.owner != worker_id:
            return False
        t.lease_expires_at = now + self.lease_duration
        return True

    @property
    def pending(self) -> int:
        return sum(1 for t in self._tasks.values() if t.status is TaskStatus.PENDING)

    @property
    def leased(self) -> int:
        return sum(1 for t in self._tasks.values() if t.status is TaskStatus.LEASED)

    @property
    def done(self) -> int:
        return sum(1 for t in self._tasks.values() if t.status is TaskStatus.DONE)

    @property
    def all_done(self) -> bool:
        return self.done == len(self._tasks)

    def progress(self) -> str:
        """One-line status, campaign-log style."""
        return (
            f"{self.done}/{len(self._tasks)} chunks done, "
            f"{self.leased} in flight, {self.pending} pending"
        )
