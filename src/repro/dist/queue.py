"""Leased task queue with at-least-once semantics and retry budgets.

Semantics (enforced by ``tests/dist/test_tasks_queue.py``):

* ``lease`` hands out the lowest-id PENDING task whose retry backoff
  has elapsed, marking it LEASED with an expiry; expired leases are
  reclaimed lazily on the next queue operation, so a silent worker
  cannot strand work.
* ``complete`` is idempotent: the first completion of a chunk wins
  and returns True; replays (from recovered workers or duplicated
  messages) return False and change nothing.
* A completion from a worker whose lease was reassigned is *still
  accepted* if the chunk is not yet done -- the computation is
  deterministic, so any worker's answer for a chunk is the answer.
* Every forfeited attempt (lease expiry or an explicit ``release``
  from an owner that knows its worker died) re-pends the task behind
  an exponential backoff with deterministic jitter; a task that has
  burned through ``max_attempts`` leases is QUARANTINED instead --
  a deterministically-crashing "poison" chunk must not wedge the
  campaign by being re-leased forever.

Time is injected (``now`` parameters) rather than read from a clock,
so both the real in-process coordinator and the virtual-time farm
simulator drive the same code.  The backoff jitter is seeded from
``(chunk_id, attempts)``, never a real RNG, so two campaigns under
the same fault schedule make identical scheduling decisions.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.dist.tasks import SearchTask, TaskStatus


class LeaseLost(Exception):
    """A renewing worker's lease is definitively gone.

    Raised by :meth:`TaskQueue.renew` instead of silently extending a
    zombie lease: the chunk was completed by someone else, reclaimed
    after expiry, re-leased to another worker (or to the *same*
    worker again -- a newer epoch), or quarantined.  The worker must
    abandon the chunk: its in-flight result is still welcome
    (``complete`` accepts late answers), but it must not keep
    heartbeating a lease it no longer holds.
    """


class TaskQueue:
    """In-memory durable-semantics task queue for a search campaign.

    ``max_attempts=0`` (the default) keeps the seed behaviour of an
    unlimited retry budget; a positive value quarantines a task whose
    that-many-th lease is forfeited.  ``backoff_base=0`` disables the
    re-lease backoff (the simulated coordinator's logical clock does
    not need one); a positive value delays attempt ``n+1`` by
    ``backoff_base * 2**(n-1)`` seconds (capped at ``backoff_cap``)
    scaled by a deterministic jitter in [0.5, 1.5).
    """

    def __init__(
        self,
        tasks: list[SearchTask],
        lease_duration: float = 600.0,
        *,
        max_attempts: int = 0,
        backoff_base: float = 0.0,
        backoff_cap: float = 60.0,
    ):
        ids = [t.chunk_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate chunk ids")
        self._tasks: dict[int, SearchTask] = {t.chunk_id: t for t in tasks}
        self.lease_duration = lease_duration
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: Optional observer invoked as ``on_expire(task, now)`` when a
        #: lease is forfeited (expiry or release) -- expiry happens
        #: lazily inside queue operations, so this hook is how the
        #: observability layer (:mod:`repro.obs`) sees it.  Must not
        #: mutate the queue.
        self.on_expire: Callable[[SearchTask, float], None] | None = None
        #: Observer invoked as ``on_quarantine(task, now)`` when a task
        #: exhausts its retry budget.  Must not mutate the queue.
        self.on_quarantine: Callable[[SearchTask, float], None] | None = None
        #: Observer invoked as ``on_backoff(task, delay)`` when a
        #: forfeited task is re-pended behind a backoff delay.
        self.on_backoff: Callable[[SearchTask, float], None] | None = None

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, chunk_id: int) -> bool:
        return chunk_id in self._tasks

    def task(self, chunk_id: int) -> SearchTask:
        return self._tasks[chunk_id]

    # -- forfeit / backoff / quarantine --------------------------------

    def _backoff_delay(self, task: SearchTask) -> float:
        if self.backoff_base <= 0.0:
            return 0.0
        delay = min(
            self.backoff_base * (2 ** max(task.attempts - 1, 0)),
            self.backoff_cap,
        )
        # Deterministic jitter: seeded by (chunk, attempt), so replayed
        # campaigns under the same fault schedule back off identically.
        rng = random.Random((task.chunk_id << 16) ^ task.attempts)
        return delay * (0.5 + rng.random())

    def _forfeit(self, t: SearchTask, now: float, reason: str) -> None:
        if self.on_expire is not None:
            self.on_expire(t, now)  # owner/attempt still visible
        if self.max_attempts and t.attempts >= self.max_attempts:
            t.quarantine(now, f"{reason}; budget of {self.max_attempts} spent")
            if self.on_quarantine is not None:
                self.on_quarantine(t, now)
            return
        t.expire(now)
        delay = self._backoff_delay(t)
        if delay > 0.0:
            t.not_before = now + delay
            if self.on_backoff is not None:
                self.on_backoff(t, delay)

    def _reclaim_expired(self, now: float) -> None:
        for t in self._tasks.values():
            if t.status is TaskStatus.LEASED and t.lease_expires_at <= now:
                self._forfeit(t, now, "lease expired")

    def release(self, chunk_id: int, worker_id: str, now: float) -> bool:
        """Voluntary forfeit: the owner knows the attempt failed (a
        crashed future, a drained shutdown) and returns the chunk
        immediately instead of letting the lease time out.  Counts as
        a forfeited attempt: the same backoff/quarantine bookkeeping
        as an expiry.  False if the caller no longer holds the lease.
        """
        t = self._tasks[chunk_id]
        if t.status is not TaskStatus.LEASED or t.owner != worker_id:
            return False
        self._forfeit(t, now, f"released by {worker_id}")
        return True

    def mark_quarantined(self, chunk_id: int) -> bool:
        """Restore a quarantine verdict recorded in a checkpoint.
        False (and no change) if the chunk is already DONE."""
        t = self._tasks[chunk_id]
        if t.status is TaskStatus.DONE:
            return False
        if t.status is TaskStatus.QUARANTINED:
            return True
        t.quarantine(0.0, "restored from checkpoint")
        return True

    # -- lease / complete ----------------------------------------------

    def lease(self, worker_id: str, now: float) -> SearchTask | None:
        """Lease the next available task, or None if nothing is
        leasable right now (work may be in flight with other workers,
        or pending tasks may be sitting out a retry backoff)."""
        self._reclaim_expired(now)
        for chunk_id in sorted(self._tasks):
            t = self._tasks[chunk_id]
            if t.status is TaskStatus.PENDING and t.not_before <= now:
                t.lease(worker_id, now, self.lease_duration)
                return t
        return None

    def complete(self, chunk_id: int, worker_id: str, now: float) -> bool:
        """Record completion.  True if this is the first completion,
        False for idempotent replays.  A late result for a QUARANTINED
        chunk is accepted (and rescues it): the computation is
        deterministic, so any attempt's answer is the answer."""
        t = self._tasks[chunk_id]
        if t.status is TaskStatus.DONE:
            return False
        t.complete(worker_id, now)
        return True

    def renew(
        self,
        chunk_id: int,
        worker_id: str,
        now: float,
        *,
        epoch: int | None = None,
    ) -> bool:
        """Heartbeat: extend a live lease, or raise :class:`LeaseLost`
        with the reason the caller no longer holds it.

        Expired leases are reclaimed *first*: a heartbeat that arrives
        after its own expiry must learn the lease is gone, not
        silently resurrect it.  Passing the ``epoch`` from the lease
        grant closes the remaining race: without it, a worker whose
        expired chunk was re-leased *back to the same worker id*
        (parent-held leases, a reconnecting host) could renew the new
        holder's lease while computing against the old grant.
        """
        self._reclaim_expired(now)
        t = self._tasks[chunk_id]
        if t.status is TaskStatus.DONE:
            raise LeaseLost(f"chunk {chunk_id} was already completed")
        if t.status is TaskStatus.QUARANTINED:
            raise LeaseLost(f"chunk {chunk_id} was quarantined")
        if t.status is not TaskStatus.LEASED:
            raise LeaseLost(
                f"lease on chunk {chunk_id} expired and was reclaimed"
            )
        if t.owner != worker_id:
            raise LeaseLost(
                f"chunk {chunk_id} was re-leased to {t.owner}"
            )
        if epoch is not None and epoch != t.epoch:
            raise LeaseLost(
                f"stale lease epoch {epoch} for chunk {chunk_id} "
                f"(current {t.epoch})"
            )
        t.lease_expires_at = now + self.lease_duration
        return True

    def reclaim(self, now: float) -> None:
        """Reclaim expired leases eagerly.  Normally expiry is lazy
        (piggybacked on ``lease``/``renew``), which is enough when
        workers poll; a network coordinator sweeps on a timer so a
        vanished host's chunks re-pend even while every live worker
        is busy computing."""
        self._reclaim_expired(now)

    # -- progress ------------------------------------------------------

    def next_lease_expiry(self) -> float | None:
        """Earliest expiry among live leases, or None if nothing is
        leased."""
        expiries = [
            t.lease_expires_at
            for t in self._tasks.values()
            if t.status is TaskStatus.LEASED
        ]
        return min(expiries) if expiries else None

    def next_wakeup(self, now: float) -> float | None:
        """Earliest instant at which the queue's state can change on
        its own: a live lease expiring or a backed-off task becoming
        leasable.  The wall-clock runner sleeps until this instant
        when nothing is leasable and nothing is in flight."""
        instants = [
            t.lease_expires_at
            for t in self._tasks.values()
            if t.status is TaskStatus.LEASED
        ]
        instants += [
            t.not_before
            for t in self._tasks.values()
            if t.status is TaskStatus.PENDING and t.not_before > now
        ]
        return min(instants) if instants else None

    @property
    def pending(self) -> int:
        return sum(1 for t in self._tasks.values() if t.status is TaskStatus.PENDING)

    @property
    def leased(self) -> int:
        return sum(1 for t in self._tasks.values() if t.status is TaskStatus.LEASED)

    @property
    def done(self) -> int:
        return sum(1 for t in self._tasks.values() if t.status is TaskStatus.DONE)

    @property
    def quarantined(self) -> int:
        return sum(
            1 for t in self._tasks.values() if t.status is TaskStatus.QUARANTINED
        )

    @property
    def quarantined_ids(self) -> list[int]:
        """Sorted chunk ids currently under quarantine."""
        return sorted(
            t.chunk_id
            for t in self._tasks.values()
            if t.status is TaskStatus.QUARANTINED
        )

    @property
    def all_done(self) -> bool:
        """Every chunk computed (the clean-campaign invariant)."""
        return self.done == len(self._tasks)

    @property
    def finished(self) -> bool:
        """No work left to schedule: every chunk is DONE or
        QUARANTINED.  A campaign terminates on this, then reports the
        quarantined ids (with a non-zero exit) if there are any."""
        return self.done + self.quarantined == len(self._tasks)

    def progress(self) -> str:
        """One-line status, campaign-log style."""
        line = (
            f"{self.done}/{len(self._tasks)} chunks done, "
            f"{self.leased} in flight, {self.pending} pending"
        )
        if self.quarantined:
            line += f", {self.quarantined} quarantined"
        return line
