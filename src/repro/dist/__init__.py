"""Distributed search campaign substrate.

The paper's search ran from late May to early September 2001 across
~50 continuously-available Alphastations and ~30 intermittently-
available UltraSparcs -- a classic bag-of-tasks distributed
computation over idle workstations, with all the attendant failure
modes: machines disappearing mid-chunk, duplicate completions after
recovery, stragglers, and the need to checkpoint months of progress.

This package reproduces that system:

* :mod:`repro.dist.tasks` / :mod:`repro.dist.queue` -- leased work
  units over dense candidate-index ranges, with at-least-once delivery
  and idempotent completion.
* :mod:`repro.dist.worker` / :mod:`repro.dist.coordinator` -- the
  executing and orchestrating halves; the coordinator checkpoints an
  idempotently-mergeable :class:`~repro.search.records.CampaignRecord`.
* :mod:`repro.dist.faults` -- deterministic fault injection (crashes,
  duplicate deliveries, stragglers) used by the test suite to verify
  no work is lost or double-counted.
* :mod:`repro.dist.farm` -- a virtual-time discrete-event simulation
  of the 2001 fleet, reproducing the campaign-scale arithmetic (why
  2**30 polynomials at ~2/s/CPU takes a summer, and why Castagnoli's
  special-purpose hardware would have needed 3600+ years).
* :mod:`repro.dist.pool` -- the wall-clock backend: the same queue and
  record driven by real subprocesses (``ProcessPoolExecutor``), with
  lease renewal against actual time, crash recovery through lease
  expiry, and periodic checkpoints via :mod:`repro.dist.checkpoint`.
"""

from repro.dist.tasks import SearchTask, TaskStatus
from repro.dist.queue import TaskQueue
from repro.dist.worker import ChunkWorker
from repro.dist.coordinator import Coordinator
from repro.dist.checkpoint import CheckpointMismatch
from repro.dist.faults import FaultPlan
from repro.dist.farm import FarmSpec, MachineSpec, simulate_campaign, CampaignEstimate
from repro.dist.pool import ParallelCoordinator, PoolStats

__all__ = [
    "SearchTask",
    "TaskStatus",
    "TaskQueue",
    "ChunkWorker",
    "Coordinator",
    "CheckpointMismatch",
    "FaultPlan",
    "FarmSpec",
    "MachineSpec",
    "simulate_campaign",
    "CampaignEstimate",
    "ParallelCoordinator",
    "PoolStats",
]
