"""Command-line interface.

Everyday operations from a shell, mirroring how the paper's artifacts
would be consumed by a practitioner choosing a CRC:

    python -m repro report 0xBA0DC66B
    python -m repro hd 0x82608EDB 12112
    python -m repro weights 0x82608EDB 2975
    python -m repro breakpoints 0xBA0DC66B --hd-max 8 --n-max 4000
    python -m repro search --width 8 --target-hd 4 --bits 100
    python -m repro campaign --width 10 --target-hd 4 --bits 200 --workers 4
    python -m repro campaign --width 10 --parallel 2 --events run.jsonl
    python -m repro serve --width 10 --bits 200 --port 7337 --checkpoint farm.ckpt
    python -m repro work coordinator.lab:7337
    python -m repro dash run.jsonl --follow
    python -m repro report run.jsonl
    python -m repro crc CRC-32/IEEE-802.3 --hex 313233343536373839

``report`` is overloaded the way the word is: given a polynomial it
profiles the polynomial; given the path of an event log written by
``--events`` it renders the run's observability summary
(:mod:`repro.obs.report`).

Polynomials are given in the paper's implicit-+1 hex notation when
they have 32 bits (e.g. ``0xBA0DC66B``) or as full encodings with the
top term included (e.g. ``0x104C11DB7``, any width).
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings

from repro import __version__
from repro.analysis.polyinfo import report_for
from repro.analysis.tables import render_table2
from repro.crc.catalog import CATALOG, get_spec
from repro.gf2.poly import degree
from repro.hd.breakpoints import hd_breakpoint_table
from repro.hd.hamming import hamming_distance
from repro.hd.weights import weight_profile
from repro.search.census import census_of, fewest_taps
from repro.search.exhaustive import SearchConfig, search_all


def parse_poly(text: str, notation: str = "auto") -> int:
    """Parse a polynomial argument into the full integer encoding.

    ``notation`` selects the reading:

    * ``"paper"`` -- the value is the paper's implicit-+1 notation
      (``0x82608EDB`` -> ``0x104C11DB7``), whatever its width.
    * ``"full"`` -- the value is a full encoding with the degree term
      and the (mandatory) +1 term present.
    * ``"auto"`` (historical heuristic) -- 32-bit values with the top
      bit set are treated as paper notation; anything else must be a
      full encoding.  An *odd* 32-bit value is ambiguous: it is also a
      valid degree-31 full encoding, so the heuristic warns and
      ``--notation full`` must be passed to get the degree-31 reading.
    """
    try:
        value = int(text, 0)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text}: not an integer") from None
    if value <= 0:
        raise argparse.ArgumentTypeError("polynomial must be positive")
    if notation == "paper":
        return (value << 1) | 1
    if notation == "full":
        if value & 1 == 0:
            raise argparse.ArgumentTypeError(
                f"{text}: full encodings need the +1 term"
            )
        if value.bit_length() < 2:
            raise argparse.ArgumentTypeError(
                f"{text}: full encodings need a degree term"
            )
        return value
    if notation != "auto":
        raise argparse.ArgumentTypeError(f"unknown notation {notation!r}")
    if value.bit_length() == 32 and value >> 31:
        if value & 1:
            warnings.warn(
                f"{text} is ambiguous: reading it as paper implicit-+1 "
                f"notation (degree 32, full encoding {(value << 1) | 1:#x}); "
                "pass --notation full to read it as a degree-31 full "
                "encoding, or --notation paper to silence this warning",
                stacklevel=2,
            )
        return (value << 1) | 1  # paper notation
    if value & 1 == 0:
        raise argparse.ArgumentTypeError(
            f"{text}: full encodings need the +1 term "
            "(or pass a 32-bit implicit-+1 value)"
        )
    return value


#: argparse dests that hold raw polynomial strings until the
#: ``--notation`` choice is known (resolved in :func:`main`).
_POLY_DESTS = ("poly", "poly_a", "poly_b", "link", "app")


def _open_events(path: str | None):
    """An :class:`~repro.obs.events.EventLog` on ``path``, or the
    shared no-op sink when no path was given (both context-manage)."""
    from repro.obs.events import NULL_EVENTS, EventLog

    return EventLog(path) if path else NULL_EVENTS


def cmd_report(args: argparse.Namespace) -> int:
    if isinstance(args.poly, str):
        # main() left the positional unparsed: it names an existing
        # path, so render the event log it contains instead.
        from repro.obs.live import check_log_path
        from repro.obs.report import RunReport

        problem = check_log_path(args.poly)
        if problem is not None:
            print(f"repro report: {problem}", file=sys.stderr)
            return 2
        rep = RunReport.from_path(args.poly)
        if args.json:
            rep.write_bench_json(args.json, name=args.bench_name)
        print(rep.render())
        return 0
    table = None
    if args.breakpoints:
        table = hd_breakpoint_table(
            args.poly, hd_max=args.hd_max, n_max=args.n_max
        )
    print(report_for(args.poly, table).render())
    return 0


def cmd_hd(args: argparse.Namespace) -> int:
    hd = hamming_distance(args.poly, args.bits, k_max=args.k_max)
    print(
        f"HD = {hd} at {args.bits}-bit data words "
        f"(detects all {hd - 1}-bit errors; some {hd}-bit errors escape)"
    )
    return 0


def cmd_weights(args: argparse.Namespace) -> int:
    prof = weight_profile(args.poly, args.bits, 4)
    for k, w in sorted(prof.items()):
        print(f"W{k} = {w}")
    return 0


def cmd_breakpoints(args: argparse.Namespace) -> int:
    table = hd_breakpoint_table(
        args.poly, hd_max=args.hd_max, n_max=args.n_max
    )
    print(f"HD bands for {args.poly:#x} (data-word bits, through {args.n_max}):")
    for hd, lo, hi in table.bands:
        hi_s = str(hi) if hi is not None else f">={args.n_max}"
        print(f"  HD {hd}: {lo} .. {hi_s}")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    if args.width > 14:
        print("widths beyond 14 need the farm; see repro.dist", file=sys.stderr)
        return 2
    from repro.obs import metrics as obs_metrics

    cfg = SearchConfig.for_bits(
        args.width, args.target_hd, args.bits, backend=args.backend
    )
    registry = obs_metrics.MetricsRegistry() if args.metrics else None
    if registry is not None:
        obs_metrics.install(registry)
    try:
        with _open_events(args.events) as events:
            res = search_all(cfg, events=events)
            if registry is not None:
                events.emit("metrics.snapshot", metrics=registry.snapshot())
    finally:
        if registry is not None:
            obs_metrics.uninstall()
    print(
        f"{res.examined} candidates screened in {res.elapsed_seconds:.1f}s "
        f"({res.filtering_rate:.0f}/s); {len(res.survivors)} achieve "
        f"HD>={args.target_hd} at {args.bits} bits"
    )
    survivors = [r.poly for r in res.survivors]
    for p in sorted(survivors):
        print(f"  {p:#x}")
    if survivors:
        sparse = fewest_taps(survivors)[0]
        print(f"fewest taps: {sparse:#x} ({sparse.bit_count()} terms)")
        print(render_table2(census_of(survivors)))
    if registry is not None:
        print("metrics:")
        print(registry.render())
    return 0


#: Campaign exit codes beyond the usual 0 (success) / 2 (usage or
#: incompatible checkpoint): distinct values so wrapper scripts can
#: tell "some chunks were quarantined" from "interrupted, resume me".
EXIT_QUARANTINE = 3
EXIT_INTERRUPTED = 4


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.dist.checkpoint import (
        CheckpointCorrupt,
        CheckpointMismatch,
        CheckpointMissing,
    )

    cfg = SearchConfig.for_bits(
        args.width, args.target_hd, args.bits, backend=args.backend
    )
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.parallel < 0:
        print("--parallel must be a positive process count", file=sys.stderr)
        return 2
    try:
        if args.parallel:
            return _run_parallel_campaign(args, cfg)
        return _run_simulated_campaign(args, cfg)
    except CheckpointMissing as exc:
        print(f"cannot resume: {exc}", file=sys.stderr)
        return 2
    except CheckpointCorrupt as exc:
        print(
            f"cannot resume: {exc}\n"
            "every checkpoint generation failed verification; start a "
            "fresh run (without --resume) to recompute",
            file=sys.stderr,
        )
        return 2
    except CheckpointMismatch as exc:
        print(str(exc), file=sys.stderr)
        return 2


def _finish_campaign(quarantined_ids: list[int], interrupted: str | None) -> int:
    """Map end-of-campaign state to the process exit code, printing
    the operator-facing explanation."""
    if interrupted is not None:
        print(
            f"campaign interrupted by {interrupted}; progress checkpointed "
            "-- rerun with --resume to continue",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    if quarantined_ids:
        ids = ", ".join(map(str, quarantined_ids))
        print(
            f"campaign finished with {len(quarantined_ids)} chunk(s) "
            f"quarantined after exhausting their retry budget: [{ids}]\n"
            "their candidates were NOT searched; rerun with "
            "--retry-quarantined to grant them a fresh budget",
            file=sys.stderr,
        )
        return EXIT_QUARANTINE
    return 0


def _run_parallel_campaign(args: argparse.Namespace, cfg: SearchConfig) -> int:
    from repro.dist.pool import ParallelCoordinator

    with _open_events(args.events) as events:
        runner = ParallelCoordinator(
            config=cfg,
            chunk_size=args.chunk_size,
            processes=args.parallel,
            checkpoint_path=args.checkpoint,
            progress_interval=args.progress_interval,
            log=print,
            events=events,
            collect_metrics=args.metrics,
            max_attempts=args.max_attempts,
            drain_grace=args.drain_grace,
        )
        if args.resume:
            skipped = runner.resume(retry_quarantined=args.retry_quarantined)
            print(f"resumed from {args.checkpoint}: {skipped} chunks skipped")
        elapsed = runner.run()
    print(runner.queue.progress())
    print(
        f"{len(runner.campaign.survivors)} survivors; "
        f"{runner.stats.completions} chunks computed in {elapsed:.1f}s wall "
        f"across {args.parallel} processes"
    )
    if args.checkpoint:
        print(f"campaign record written to {args.checkpoint}")
    if args.metrics:
        print("worker metrics (merged):")
        print(runner.metrics.render())
    return _finish_campaign(runner.queue.quarantined_ids, runner.interrupted)


def _run_simulated_campaign(args: argparse.Namespace, cfg: SearchConfig) -> int:
    from repro.dist.coordinator import Coordinator
    from repro.dist.worker import ChunkWorker
    from repro.obs import metrics as obs_metrics

    registry = obs_metrics.MetricsRegistry() if args.metrics else None
    if registry is not None:
        obs_metrics.install(registry)
    try:
        with _open_events(args.events) as events:
            coord = Coordinator(
                config=cfg, chunk_size=args.chunk_size, events=events
            )
            if args.resume:
                skipped = coord.load_checkpoint(args.checkpoint)
                print(f"resumed from {args.checkpoint}: {skipped} chunks skipped")
            workers = [ChunkWorker(f"w{i}", cfg) for i in range(args.workers)]
            coord.run(workers)
            if registry is not None:
                events.emit("metrics.snapshot", metrics=registry.snapshot())
            if args.checkpoint:
                coord.save_checkpoint(args.checkpoint)
    finally:
        if registry is not None:
            obs_metrics.uninstall()
    print(coord.queue.progress())
    print(f"{len(coord.campaign.survivors)} survivors")
    if args.checkpoint:
        print(f"campaign record written to {args.checkpoint}")
    if registry is not None:
        print("metrics:")
        print(registry.render())
    return _finish_campaign(coord.queue.quarantined_ids, None)


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.dist.checkpoint import (
        CheckpointCorrupt,
        CheckpointMismatch,
        CheckpointMissing,
    )
    from repro.dist.net import WorkServer
    from repro.dist.transport import TcpTransport

    cfg = SearchConfig.for_bits(
        args.width, args.target_hd, args.bits, backend=args.backend
    )
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    with _open_events(args.events) as events:
        server = WorkServer(
            cfg,
            args.chunk_size,
            TcpTransport(args.host, args.port),
            lease_duration=args.lease,
            max_attempts=args.max_attempts,
            checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            worker_fault_budget=args.worker_fault_budget,
            drain_grace=args.drain_grace,
            progress_interval=args.progress_interval,
            events=events,
            collect_metrics=args.metrics,
            log=print,
        )
        try:
            if args.resume:
                skipped = server.resume(
                    retry_quarantined=args.retry_quarantined
                )
                print(
                    f"resumed from {args.checkpoint}: {skipped} chunks skipped"
                )
            asyncio.run(server.serve())
        except CheckpointMissing as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 2
        except CheckpointCorrupt as exc:
            print(
                f"cannot resume: {exc}\n"
                "every checkpoint generation failed verification; start a "
                "fresh run (without --resume) to recompute",
                file=sys.stderr,
            )
            return 2
        except CheckpointMismatch as exc:
            print(str(exc), file=sys.stderr)
            return 2
    print(server.queue.progress())
    print(
        f"{len(server.campaign.survivors)} survivors; "
        f"{server.stats.completions} chunks computed by "
        f"{len(server.workers)} worker(s)"
    )
    for name in sorted(server.workers):
        book = server.workers[name]
        line = (
            f"  {name}: {book.chunks} chunks, {book.examined} candidates, "
            f"{book.connections} connection(s)"
        )
        if book.lease_losses or book.expiries:
            line += (
                f", {book.expiries} expirie(s), "
                f"{book.lease_losses} lease loss(es)"
            )
        if book.benched:
            line += " [benched]"
        print(line)
    if args.checkpoint:
        print(f"campaign record written to {args.checkpoint}")
    if args.metrics:
        print("worker metrics (merged):")
        print(server.metrics.render())
    return _finish_campaign(server.queue.quarantined_ids, server.interrupted)


def cmd_work(args: argparse.Namespace) -> int:
    import asyncio
    import socket

    from repro.dist.net import WorkClient, WorkerKilled
    from repro.dist.transport import TcpTransport

    worker_id = args.id or f"{socket.gethostname()}-{os.getpid()}"
    client = WorkClient(
        args.address,
        TcpTransport(),
        worker_id,
        ack_timeout=args.ack_timeout,
        reconnect_base=args.reconnect_base,
        max_connect_attempts=args.max_connect_attempts,
        handle_signals=True,
        log=lambda msg: print(msg, file=sys.stderr, flush=True),
    )
    try:
        rc = asyncio.run(client.run())
    except ValueError as exc:  # malformed host:port
        print(str(exc), file=sys.stderr)
        return 2
    except WorkerKilled:  # only reachable under an injected fault plan
        return 1
    print(
        f"{worker_id}: {client.stats.chunks} chunks, "
        f"{client.stats.examined} candidates, "
        f"{client.stats.reconnects} reconnect(s), "
        f"{client.stats.lease_losses} lease loss(es)"
    )
    return rc


def cmd_dash(args: argparse.Namespace) -> int:
    from repro.obs.live import run_dash

    if args.interval <= 0:
        print("--interval must be positive", file=sys.stderr)
        return 2
    return run_dash(
        args.path,
        follow=args.follow and not args.once,
        interval=args.interval,
    )


def cmd_crc(args: argparse.Namespace) -> int:
    from repro.crc.backends import crc_compute

    spec = get_spec(args.name)
    data = bytes.fromhex(args.hex)
    value = crc_compute(spec, data, backend=args.engine)
    print(f"{spec.name}({args.hex}) = {value:#0{spec.width // 4 + 2}x}")
    return 0


def cmd_catalog(args: argparse.Namespace) -> int:
    for name, spec in sorted(CATALOG.items()):
        print(spec)
    return 0


def cmd_backends(args: argparse.Namespace) -> int:
    from repro.crc.backends import available_backends

    for name, spec in sorted(CATALOG.items()):
        print(f"{name}: {', '.join(available_backends(spec))}")
    return 0


def cmd_stacked(args: argparse.Namespace) -> int:
    from repro.network.stacked import stacked_hd

    analysis = stacked_hd(args.link, args.app, args.bits, k_max=args.k_max)
    print(analysis.render())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import compare
    from repro.hd.breakpoints import hd_breakpoint_table

    ta = hd_breakpoint_table(args.poly_a, hd_max=args.hd_max, n_max=args.n_max)
    tb = hd_breakpoint_table(args.poly_b, hd_max=args.hd_max, n_max=args.n_max)
    print(compare(f"{args.poly_a:#x}", ta, f"{args.poly_b:#x}", tb,
                  n_min=args.n_min, n_max=args.n_max).render())
    return 0


def cmd_serve_crc(args: argparse.Namespace) -> int:
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.service.advice import AdviceStore
    from repro.service.server import CrcService, ServiceServer

    store = AdviceStore(
        args.cache or None, hd_max=args.hd_max, n_max=args.n_max
    )
    if args.warm or args.warm_only:
        computed = store.warm(
            progress=lambda msg: print(msg, file=sys.stderr, flush=True)
        )
        print(
            f"advice cache warm: {len(store.entries)} tables "
            f"({computed} computed) at {store.path or '<memory>'}",
            file=sys.stderr,
        )
        if args.warm_only:
            return 0
    registry = obs_metrics.MetricsRegistry() if args.metrics else None
    if registry is not None:
        obs_metrics.install(registry)
    try:
        with _open_events(args.events) as events:
            tracer = (
                obs_trace.Tracer(events=events)
                if events.enabled
                else obs_trace.NULL_TRACE
            )
            service = CrcService(
                store,
                metrics=registry or obs_metrics.NULL_METRICS,
                tracer=tracer,
                compute_on_miss=not args.no_compute,
            )
            server = ServiceServer(
                service,
                host=args.host,
                port=args.port,
                drain_grace=args.drain_grace,
                events=events,
            )
            return server.run(stdio=args.stdio)
    finally:
        if registry is not None:
            obs_metrics.uninstall()


def cmd_best(args: argparse.Namespace) -> int:
    from repro.search.optimize import best_for_length

    res = best_for_length(args.width, args.bits)
    print(
        f"best achievable HD at {args.bits} bits with a {args.width}-bit "
        f"CRC: {res.best_hd} ({len(res.achievers)} achievers, "
        f"{res.candidates_examined} candidates examined)"
    )
    print(f"recommended: {res.winner:#x}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CRC polynomial evaluation & search "
                    "(Koopman, DSN 2002 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags shared by the commands that do real work.
    observability = argparse.ArgumentParser(add_help=False)
    observability.add_argument(
        "--events", type=str, default=None, metavar="PATH",
        help="append a structured JSONL event log here (render it "
             "later with `repro report PATH`); off by default",
    )
    observability.add_argument(
        "--metrics", action="store_true",
        help="collect counters/timers while running and print them at "
             "the end; off by default",
    )

    # Poly-taking commands share the notation selector; the raw string
    # is kept until main() knows the choice (the flag may follow the
    # positional on the command line).
    notation = argparse.ArgumentParser(add_help=False)
    notation.add_argument(
        "--notation", choices=("auto", "paper", "full"), default="auto",
        help="how to read polynomial arguments: the paper's implicit-+1 "
             "notation, the full encoding with the degree and +1 terms, "
             "or the historical auto heuristic (32-bit => paper), which "
             "warns on odd 32-bit values where the two readings diverge",
    )

    p = sub.add_parser("report", parents=[notation],
                       help="everything about one polynomial, or a run "
                            "summary of an --events log file")
    p.add_argument("poly", metavar="poly|events.jsonl",
                   help="a polynomial, or the path of an event log "
                        "written by `search`/`campaign --events`")
    p.add_argument("--breakpoints", action="store_true",
                   help="also compute HD bands (slower)")
    p.add_argument("--hd-max", type=int, default=8)
    p.add_argument("--n-max", type=int, default=3000)
    p.add_argument("--json", type=str, default=None, metavar="PATH",
                   help="(event-log reports) also write the "
                        "machine-readable BENCH_*.json summary here")
    p.add_argument("--bench-name", type=str, default="campaign",
                   help="bench name recorded in the --json envelope")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("hd", parents=[notation],
                       help="Hamming distance at a length")
    p.add_argument("poly")
    p.add_argument("bits", type=int)
    p.add_argument("--k-max", type=int, default=16)
    p.set_defaults(fn=cmd_hd)

    p = sub.add_parser("weights", parents=[notation],
                       help="exact W2..W4 at a length")
    p.add_argument("poly")
    p.add_argument("bits", type=int)
    p.set_defaults(fn=cmd_weights)

    p = sub.add_parser("breakpoints", parents=[notation],
                       help="HD bands (Table 1 column)")
    p.add_argument("poly")
    p.add_argument("--hd-max", type=int, default=8)
    p.add_argument("--n-max", type=int, default=3000)
    p.set_defaults(fn=cmd_breakpoints)

    p = sub.add_parser("search", parents=[observability],
                       help="exhaustive best-polynomial search")
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--target-hd", type=int, default=4)
    p.add_argument("--bits", type=int, default=100)
    p.add_argument("--backend", choices=["batched", "packed", "scalar"],
                   default="batched",
                   help="screening kernel (packed: bit-plane/composite-"
                        "key; scalar: the per-candidate oracle)")
    p.set_defaults(fn=cmd_search)

    p = sub.add_parser("campaign", parents=[observability],
                       help="distributed search campaign")
    p.add_argument("--width", type=int, default=10)
    p.add_argument("--target-hd", type=int, default=4)
    p.add_argument("--bits", type=int, default=200)
    p.add_argument("--backend", choices=["batched", "packed", "scalar"],
                   default="batched",
                   help="screening kernel inherited by every worker")
    p.add_argument("--workers", type=int, default=4,
                   help="simulated in-process workers (logical clock); "
                        "ignored when --parallel is given")
    p.add_argument("--parallel", type=int, default=0, metavar="N",
                   help="run on N real subprocesses (wall clock) "
                        "instead of the single-process simulation")
    p.add_argument("--chunk-size", type=int, default=64)
    p.add_argument("--checkpoint", type=str, default=None,
                   help="write campaign progress here (periodically "
                        "under --parallel, at the end otherwise)")
    p.add_argument("--resume", action="store_true",
                   help="load --checkpoint first and skip its "
                        "completed chunks (falls back to the rotated "
                        ".prev generation if the file is corrupt)")
    p.add_argument("--progress-interval", type=float, default=5.0,
                   help="seconds between progress summary lines "
                        "(--parallel only)")
    p.add_argument("--max-attempts", type=int, default=5,
                   help="retry budget per chunk before it is "
                        "quarantined (--parallel only; 0 = retry "
                        "forever, the pre-quarantine behaviour)")
    p.add_argument("--retry-quarantined", action="store_true",
                   help="on --resume, grant checkpointed quarantined "
                        "chunks a fresh retry budget instead of "
                        "keeping them benched (--parallel only)")
    p.add_argument("--drain-grace", type=float, default=5.0,
                   help="seconds a SIGTERM/SIGINT drain waits for "
                        "in-flight chunks before forfeiting them "
                        "(--parallel only)")
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser("serve", parents=[observability],
                       help="campaign coordinator: lease chunks to "
                            "`repro work` clients over TCP "
                            "(repro-work/1 protocol)")
    p.add_argument("--width", type=int, default=10)
    p.add_argument("--target-hd", type=int, default=4)
    p.add_argument("--bits", type=int, default=200)
    p.add_argument("--backend", choices=["batched", "packed", "scalar"],
                   default="batched",
                   help="screening kernel advertised to every worker "
                        "in the hello handshake")
    p.add_argument("--chunk-size", type=int, default=64)
    p.add_argument("--host", default="127.0.0.1",
                   help="TCP bind address (default loopback; use "
                        "0.0.0.0 for a real farm)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port; 0 (default) binds an ephemeral "
                        "port, announced as `work.listening host=H "
                        "port=P` on stdout")
    p.add_argument("--lease", type=float, default=30.0,
                   help="seconds a worker holds a chunk before a "
                        "silent lease is reclaimed (workers heartbeat "
                        "at a third of this)")
    p.add_argument("--checkpoint", type=str, default=None,
                   help="write campaign progress here every "
                        "--checkpoint-every completions and at exit")
    p.add_argument("--checkpoint-every", type=int, default=8,
                   help="completions between periodic checkpoints")
    p.add_argument("--resume", action="store_true",
                   help="load --checkpoint first and skip its "
                        "completed chunks")
    p.add_argument("--retry-quarantined", action="store_true",
                   help="on --resume, grant checkpointed quarantined "
                        "chunks a fresh retry budget")
    p.add_argument("--max-attempts", type=int, default=5,
                   help="retry budget per chunk before quarantine "
                        "(0 = retry forever)")
    p.add_argument("--worker-fault-budget", type=int, default=0,
                   help="bench a worker after this many of its leases "
                        "expire (0 = never bench)")
    p.add_argument("--drain-grace", type=float, default=5.0,
                   help="seconds a SIGTERM/SIGINT drain waits for "
                        "in-flight chunks before forfeiting them")
    p.add_argument("--progress-interval", type=float, default=10.0,
                   help="seconds between progress summary lines")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("work",
                       help="farm worker: lease, compute and report "
                            "chunks from a `repro serve` coordinator")
    p.add_argument("address", metavar="host:port",
                   help="the coordinator's announced address")
    p.add_argument("--id", default=None,
                   help="worker id (default hostname-pid); the "
                        "coordinator keys leases and accounting by it")
    p.add_argument("--ack-timeout", type=float, default=None,
                   help="seconds to wait for a reply before treating "
                        "the connection as dead (default: the "
                        "coordinator's lease duration)")
    p.add_argument("--reconnect-base", type=float, default=0.2,
                   help="first reconnect backoff in seconds (doubles "
                        "per attempt, jittered deterministically)")
    p.add_argument("--max-connect-attempts", type=int, default=8,
                   help="consecutive failed connections before giving "
                        "up with exit code 1")
    p.set_defaults(fn=cmd_work)

    p = sub.add_parser("dash",
                       help="live terminal dashboard over an --events "
                            "JSONL log (tail it while a campaign runs)")
    p.add_argument("path", metavar="events.jsonl",
                   help="the event log a campaign/search/service is "
                        "writing with --events")
    p.add_argument("--follow", "-f", action="store_true",
                   help="keep tailing and re-rendering until Ctrl-C "
                        "(default: render one frame and exit)")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit (the default; "
                        "explicit flag for scripts)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between frames with --follow "
                        "(default 1.0)")
    p.set_defaults(fn=cmd_dash)

    p = sub.add_parser("crc", help="compute a catalog CRC over hex bytes")
    p.add_argument("name", choices=sorted(CATALOG))
    p.add_argument("--hex", required=True)
    p.add_argument("--engine", default="auto",
                   help="kernel backend (auto, bitwise, bytewise, slice4, "
                        "slice8, wordwise; default auto)")
    p.set_defaults(fn=cmd_crc)

    p = sub.add_parser("catalog", help="list known CRC algorithms")
    p.set_defaults(fn=cmd_catalog)

    p = sub.add_parser("backends",
                       help="list generated kernel backends per catalog spec")
    p.set_defaults(fn=cmd_backends)

    p = sub.add_parser("stacked", parents=[notation],
                       help="joint HD of a link+app CRC stack")
    p.add_argument("link")
    p.add_argument("app")
    p.add_argument("bits", type=int)
    p.add_argument("--k-max", type=int, default=8)
    p.set_defaults(fn=cmd_stacked)

    p = sub.add_parser("compare", parents=[notation],
                       help="pairwise dominance analysis")
    p.add_argument("poly_a")
    p.add_argument("poly_b")
    p.add_argument("--n-min", type=int, default=8)
    p.add_argument("--n-max", type=int, default=1200)
    p.add_argument("--hd-max", type=int, default=8)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("serve-crc", parents=[observability],
                       help="CRC-as-a-service: NDJSON verify/checksum/"
                            "advise/hd over TCP or stdio")
    p.add_argument("--host", default="127.0.0.1",
                   help="TCP bind address (default loopback)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port; 0 (default) binds an ephemeral port, "
                        "announced as `service.listening host=H port=P` "
                        "on stdout")
    p.add_argument("--stdio", action="store_true",
                   help="serve stdin/stdout instead of TCP (requests on "
                        "stdin, responses on stdout, logs on stderr)")
    p.add_argument("--cache", default="results/advice_cache.json",
                   metavar="PATH",
                   help="advice-cache JSON file (loaded if present, "
                        "updated on demand); '' keeps the store "
                        "in-memory only")
    p.add_argument("--warm", action="store_true",
                   help="precompute breakpoint tables for the paper + "
                        "catalog polynomials before serving (persisted "
                        "to --cache)")
    p.add_argument("--warm-only", action="store_true",
                   help="warm the cache and exit without serving")
    p.add_argument("--hd-max", type=int, default=6,
                   help="warm envelope: highest error weight per table")
    p.add_argument("--n-max", type=int, default=2048,
                   help="warm envelope: longest data word (bits) per table")
    p.add_argument("--no-compute", action="store_true",
                   help="answer `hd` only from cache: misses become "
                        "'uncached' errors instead of running the exact "
                        "(MITM) search in-request")
    p.add_argument("--drain-grace", type=float, default=5.0,
                   help="seconds a SIGTERM/SIGINT drain waits for "
                        "in-flight requests before closing connections")
    p.set_defaults(fn=cmd_serve_crc)

    p = sub.add_parser("best", help="best polynomial for a message length")
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--bits", type=int, default=64)
    p.set_defaults(fn=cmd_best)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    notation = getattr(args, "notation", "auto")
    for dest in _POLY_DESTS:
        raw = getattr(args, dest, None)
        if isinstance(raw, str):
            if dest == "poly" and args.fn is cmd_report and os.path.exists(raw):
                continue  # an event-log path; cmd_report renders it
            try:
                setattr(args, dest, parse_poly(raw, notation))
            except argparse.ArgumentTypeError as exc:
                parser.error(str(exc))
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away mid-listing (e.g. `repro backends | head`);
        # reopen it on devnull so interpreter shutdown doesn't traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
