"""The ``repro serve-crc`` front end: NDJSON request/response.

One JSON object per line in, one per line out -- the lowest-common-
denominator framing every language can speak with a socket and a JSON
parser.  Two transports share one protocol engine:

* **TCP** (default): an asyncio server on a loopback (or given) host;
  many concurrent connections, each a request/response stream.  The
  bound address is announced on stdout as
  ``service.listening host=H port=P`` so wrappers can bind port 0 and
  discover the ephemeral port.
* **stdio** (``--stdio``): requests on stdin, responses on stdout --
  the CI-pipeline shape (``printf '...' | repro serve-crc --stdio``).
  Logs go to stderr; stdout carries only protocol lines.

:class:`CrcService` is the transport-independent engine: a
``dict -> dict`` request handler over :class:`~repro.service.session.CrcSession`
and :class:`~repro.service.advice.AdviceStore`, instrumented through
:mod:`repro.obs` (``service.request.<op>`` counters,
``service.latency.<op>`` log2 latency histograms,
``service.request.error``, per-request parse/compute/respond trace
spans, and a Prometheus-text ``GET /metrics`` answered on the TCP
port itself).
:class:`ServiceServer` adds the event-loop plumbing and the graceful
SIGTERM/SIGINT drain (finish in-flight requests within
``drain_grace`` seconds, emit ``service.drain``/``service.stop`` plus
a final ``metrics.snapshot`` event, exit 0) in the style of the
campaign pool's shutdown machinery.

Wire format, error codes, and examples: docs/SERVICE.md.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import threading
import time
import warnings
from typing import Any, Callable

from repro import net_common
from repro.crc.catalog import CATALOG, get_spec
from repro.net_common import FrameError
from repro.obs.events import NULL_EVENTS, NullEventLog
from repro.obs.metrics import NULL_METRICS, NullMetrics
from repro.obs.prom import CONTENT_TYPE, render_prometheus
from repro.obs.trace import NULL_TRACE, NullTracer
from repro.service.advice import AdviceStore
from repro.service.session import CrcSession, residue_value

#: Protocol identifier reported by ``ping``; bump on wire changes.
PROTOCOL = "repro-crc-service/1"


class ProtocolError(Exception):
    """A malformed or unserviceable request.

    ``code`` is the machine-readable discriminant carried in the
    error response (docs/SERVICE.md lists the vocabulary); the
    message is for humans.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _parse_poly_field(text: Any, notation: str) -> int:
    """A request's polynomial field -> full encoding, via the CLI's
    notation rules (paper implicit-+1 / full / auto heuristic)."""
    from repro.cli import parse_poly

    if isinstance(text, int):
        text = str(text)
    if not isinstance(text, str):
        raise ProtocolError("bad-poly", "poly must be a string or integer")
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # ambiguity warning -> response field instead
            return parse_poly(text, notation)
    except argparse.ArgumentTypeError as exc:
        raise ProtocolError("bad-poly", str(exc)) from None


class CrcService:
    """Transport-independent NDJSON protocol engine.

    ``handle(dict) -> dict`` serves one request; ``handle_line`` wraps
    it with JSON parsing, ``id`` passthrough, and the guarantee that
    *every* input line produces exactly one response line (errors
    become ``{"ok": false, "error": {...}}``, never exceptions).

    ``compute_on_miss=False`` turns ``hd`` cache misses into
    ``uncached`` errors instead of running the exact (MITM) search --
    the configuration for latency-bounded serving.
    """

    def __init__(
        self,
        store: AdviceStore | None = None,
        *,
        metrics: NullMetrics = NULL_METRICS,
        tracer: NullTracer = NULL_TRACE,
        compute_on_miss: bool = True,
    ) -> None:
        self.store = store if store is not None else AdviceStore(path=None)
        self.metrics = metrics
        self.tracer = tracer
        self.compute_on_miss = compute_on_miss
        self._sessions: dict[tuple[str, str], CrcSession] = {}
        self._ops: dict[str, Callable[[dict[str, Any]], dict[str, Any]]] = {
            "ping": self._op_ping,
            "checksum": self._op_checksum,
            "verify": self._op_verify,
            "advise": self._op_advise,
            "hd": self._op_hd,
            "metrics": self._op_metrics,
        }

    # -- field extraction ---------------------------------------------

    def _spec(self, req: dict[str, Any]):
        name = req.get("spec")
        if not isinstance(name, str):
            raise ProtocolError("bad-field", "missing string field 'spec'")
        try:
            return get_spec(name)
        except KeyError:
            raise ProtocolError(
                "unknown-spec",
                f"unknown spec {name!r}; known: {', '.join(sorted(CATALOG))}",
            ) from None

    @staticmethod
    def _hex_field(req: dict[str, Any], name: str) -> bytes:
        value = req.get(name)
        if not isinstance(value, str):
            raise ProtocolError("bad-field", f"missing hex string field {name!r}")
        try:
            return bytes.fromhex(value)
        except ValueError:
            raise ProtocolError(
                "bad-field", f"field {name!r} is not an even-length hex string"
            ) from None

    @staticmethod
    def _int_field(
        req: dict[str, Any], name: str, *, minimum: int = 1
    ) -> int:
        value = req.get(name)
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError("bad-field", f"missing integer field {name!r}")
        if value < minimum:
            raise ProtocolError("bad-field", f"field {name!r} must be >= {minimum}")
        return value

    def _session(self, spec, backend: str) -> CrcSession:
        """A reusable (reset) session per (spec, backend) -- keeps the
        kernel lookup out of the per-request path."""
        key = (spec.name, backend)
        session = self._sessions.get(key)
        if session is None:
            try:
                session = self._sessions[key] = CrcSession(spec, backend)
            except (KeyError, ValueError) as exc:
                raise ProtocolError("bad-field", str(exc)) from None
        return session.reset()

    # -- operations ----------------------------------------------------

    def _op_ping(self, req: dict[str, Any]) -> dict[str, Any]:
        from repro import __version__

        return {
            "protocol": PROTOCOL,
            "version": __version__,
            "ops": sorted(self._ops),
        }

    def _op_checksum(self, req: dict[str, Any]) -> dict[str, Any]:
        spec = self._spec(req)
        data = self._hex_field(req, "data")
        backend = req.get("backend", "auto")
        session = self._session(spec, backend)
        value = session.add(data).value
        return {
            "spec": spec.name,
            "crc": f"{value:#0{spec.width // 4 + 2}x}",
            "width": spec.width,
            "length_bytes": len(data),
            "backend": session.backend,
        }

    def _op_verify(self, req: dict[str, Any]) -> dict[str, Any]:
        spec = self._spec(req)
        if "frame" in req:
            frame = self._hex_field(req, "frame")
            session = self._session(spec, req.get("backend", "auto"))
            try:
                expected = residue_value(spec)
            except ValueError as exc:
                raise ProtocolError("bad-field", str(exc)) from None
            session.add(frame)
            return {
                "spec": spec.name,
                "mode": "residue",
                "valid": session.value == expected,
                "residue": f"{expected:#x}",
                "length_bytes": len(frame),
            }
        if "crc" in req:
            data = self._hex_field(req, "data")
            claim = req["crc"]
            if isinstance(claim, str):
                try:
                    claim = int(claim, 0)
                except ValueError:
                    raise ProtocolError(
                        "bad-field", "field 'crc' is not an integer"
                    ) from None
            if isinstance(claim, bool) or not isinstance(claim, int):
                raise ProtocolError("bad-field", "field 'crc' is not an integer")
            session = self._session(spec, req.get("backend", "auto"))
            value = session.add(data).value
            return {
                "spec": spec.name,
                "mode": "recompute",
                "valid": value == claim,
                "crc": f"{value:#0{spec.width // 4 + 2}x}",
                "length_bytes": len(data),
            }
        raise ProtocolError(
            "bad-field",
            "verify needs either 'frame' (message+FCS, residue check) "
            "or 'data'+'crc' (recompute and compare)",
        )

    def _op_advise(self, req: dict[str, Any]) -> dict[str, Any]:
        length = self._int_field(req, "length")
        hd = None
        if req.get("hd") is not None:
            hd = self._int_field(req, "hd", minimum=2)
        width: int | None = 32
        if "width" in req:
            width = req["width"]
            if width is not None:
                width = self._int_field(req, "width", minimum=1)
        limit = 5
        if "limit" in req:
            limit = self._int_field(req, "limit")
        return self.store.advise(length, hd=hd, width=width, limit=limit)

    def _op_metrics(self, req: dict[str, Any]) -> dict[str, Any]:
        """The live registry snapshot -- the same numbers the
        Prometheus ``GET /metrics`` rendering exposes, as JSON."""
        return {
            "enabled": self.metrics.enabled,
            "metrics": self.metrics.snapshot(),
        }

    def _op_hd(self, req: dict[str, Any]) -> dict[str, Any]:
        g = _parse_poly_field(req.get("poly"), req.get("notation", "auto"))
        length = self._int_field(req, "length")
        try:
            result = self.store.hd(g, length, compute=self.compute_on_miss)
        except KeyError as exc:
            raise ProtocolError("uncached", exc.args[0]) from None
        result.update(poly=f"{g:#x}", length=length)
        return result

    # -- protocol ------------------------------------------------------

    def handle(self, request: Any) -> dict[str, Any]:
        """Serve one already-parsed request object."""
        if not isinstance(request, dict):
            return self._error("bad-request", "request must be a JSON object")
        op = request.get("op")
        if not isinstance(op, str):
            return self._error(
                "bad-request", "missing string field 'op'", request
            )
        fn = self._ops.get(op)
        if fn is None:
            return self._error(
                "unknown-op",
                f"unknown op {op!r}; known: {', '.join(sorted(self._ops))}",
                request,
            )
        try:
            with self.metrics.time_hist(f"service.latency.{op}"):
                body = fn(request)
        except ProtocolError as exc:
            return self._error(exc.code, str(exc), request)
        except Exception as exc:  # never leak a traceback onto the wire
            return self._error(
                "internal", f"{type(exc).__name__}: {exc}", request
            )
        self.metrics.inc(f"service.request.{op}")
        response = {"ok": True, "op": op}
        response.update(body)
        self._attach_id(response, request)
        return response

    def handle_line(self, line: str) -> str:
        """One NDJSON request line -> one NDJSON response line.

        When a tracer is attached, each line is served under a
        ``request`` span with ``request.parse`` / ``request.compute``
        / ``request.respond`` children -- the per-request waterfall.
        """
        with self.tracer.span("request") as req_span:
            with self.tracer.span("request.parse"):
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    request = None
                    parse_error = f"not JSON: {exc}"
                else:
                    parse_error = None
            if parse_error is not None:
                req_span.annotate(op="bad-json")
                with self.tracer.span("request.respond"):
                    return json.dumps(
                        self._error("bad-json", parse_error),
                        separators=(",", ":"),
                    )
            with self.tracer.span("request.compute"):
                response = self.handle(request)
            req_span.annotate(
                op=response.get("op", "error"), ok=response.get("ok", False)
            )
            with self.tracer.span("request.respond"):
                return json.dumps(response, separators=(",", ":"))

    def _error(
        self, code: str, message: str, request: Any = None
    ) -> dict[str, Any]:
        self.metrics.inc("service.request.error")
        self.metrics.inc(f"service.error.{code}")
        response: dict[str, Any] = {
            "ok": False,
            "error": {"code": code, "message": message},
        }
        self._attach_id(response, request)
        return response

    @staticmethod
    def _attach_id(response: dict[str, Any], request: Any) -> None:
        if isinstance(request, dict) and "id" in request:
            try:
                json.dumps(request["id"])
            except (TypeError, ValueError):  # pragma: no cover - parsed JSON
                return
            response["id"] = request["id"]


class ServiceServer:
    """Event-loop plumbing around a :class:`CrcService`: TCP or stdio
    transport, signal-driven graceful drain, lifecycle events.

    Lifecycle events (when an :class:`~repro.obs.events.EventLog` is
    attached): ``service.start`` (transport, address), ``service.drain``
    (signal name, in-flight count), ``service.stop`` (requests served),
    and a final ``metrics.snapshot`` when a real registry is installed.
    """

    def __init__(
        self,
        service: CrcService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_grace: float = 5.0,
        events: NullEventLog = NULL_EVENTS,
        log: Callable[[str], None] | None = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.drain_grace = drain_grace
        self.events = events
        self.log = log or (lambda msg: print(msg, file=sys.stderr, flush=True))
        self.requests_served = 0
        self._inflight = 0
        self._draining: asyncio.Event | None = None
        self._drain_signal: str | None = None
        self._writers: set[asyncio.StreamWriter] = set()

    # -- shared machinery ----------------------------------------------

    def _install_signals(self, loop: asyncio.AbstractEventLoop) -> None:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, self._begin_drain, signal.Signals(sig).name
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                signal.signal(
                    sig,
                    lambda signum, frame: self._begin_drain(
                        signal.Signals(signum).name
                    ),
                )

    def _begin_drain(self, signame: str) -> None:
        if self._draining is None or self._draining.is_set():
            return
        self._drain_signal = signame
        self.events.emit(
            "service.drain", signal=signame, inflight=self._inflight
        )
        self.log(f"service.drain signal={signame} inflight={self._inflight}")
        self._draining.set()

    async def _await_quiesce(self) -> None:
        """Wait (up to ``drain_grace``) for in-flight requests and
        draining connections to wind down on their own.

        The settle floor matters: a connection accepted just before
        the signal may not have started its handler task yet, so an
        instant "no connections registered" reading would declare
        quiescence with a request still on the wire.  Waiting out at
        least one ``DRAIN_LINGER`` lets every accepted handler run,
        register, and finish its last-chance read.
        """
        deadline = time.monotonic() + self.drain_grace
        settle = time.monotonic() + self.DRAIN_LINGER + 0.05
        while time.monotonic() < deadline:
            if (
                time.monotonic() >= settle
                and not self._inflight
                and not self._writers
            ):
                return
            await asyncio.sleep(0.02)

    def _stop(self) -> None:
        self.events.emit(
            "service.stop",
            requests=self.requests_served,
            drained=self._drain_signal,
        )
        snapshot = self.service.metrics.snapshot()
        if snapshot is not None:
            self.events.emit("metrics.snapshot", metrics=snapshot)
        self.log(f"service.stop requests={self.requests_served}")

    def _serve_line(self, line: str) -> str:
        self._inflight += 1
        try:
            return self.service.handle_line(line)
        finally:
            self._inflight -= 1
            self.requests_served += 1

    # -- TCP transport -------------------------------------------------

    #: Drain-linger and line-limit live in :mod:`repro.net_common`,
    #: shared with the campaign work server's wire layer.
    DRAIN_LINGER = net_common.DRAIN_LINGER

    async def _next_line(
        self, reader: asyncio.StreamReader
    ) -> bytes | None:
        """The connection's next request line; ``None`` at EOF or once
        a drain has given in-flight data its last chance to arrive."""
        return await net_common.next_line(
            reader, self._draining, linger=self.DRAIN_LINGER
        )

    async def _serve_http(
        self,
        request_line: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Answer one plain-HTTP request on the NDJSON port and close.

        ``GET /metrics`` renders the live registry in Prometheus text
        format 0.0.4 -- the same numbers the ``metrics`` NDJSON verb
        snapshots, so a scraper needs no second protocol.  Anything
        else 404s.  One request per connection (``Connection: close``):
        scrape traffic should not hold NDJSON slots open.
        """
        try:
            while True:  # drain the request headers, bounded by drain grace
                header = await asyncio.wait_for(reader.readline(), 1.0)
                if not header or header in (b"\r\n", b"\n"):
                    break
        except asyncio.TimeoutError:
            pass
        parts = request_line.split()
        path = parts[1] if len(parts) >= 2 else ""
        if path.split("?")[0] == "/metrics":
            status = "200 OK"
            body = render_prometheus(self.service.metrics).encode()
            self.service.metrics.inc("service.request.scrape")
        else:
            status = "404 Not Found"
            body = b"only /metrics is served over HTTP\n"
        writer.write(
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {CONTENT_TYPE}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n".encode() + body
        )
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        first = True
        try:
            while True:
                try:
                    line = await self._next_line(reader)
                except FrameError as exc:
                    # An oversized line poisons the stream: answer with
                    # the coded error the NDJSON vocabulary already has
                    # and close, rather than dying with a traceback.
                    self.service.metrics.inc("service.request.error")
                    self.service.metrics.inc(f"service.error.{exc.code}")
                    writer.write(
                        net_common.encode_frame(
                            {
                                "ok": False,
                                "error": {"code": exc.code, "message": str(exc)},
                            }
                        )
                    )
                    await writer.drain()
                    return
                if line is None:
                    return
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                if first and text.startswith(("GET ", "HEAD ")):
                    # A scraper, not an NDJSON peer: answer the one
                    # HTTP request and close the connection.
                    await self._serve_http(text, reader, writer)
                    return
                first = False
                writer.write(self._serve_line(text).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def serve_tcp(self) -> int:
        self._draining = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=net_common.MAX_LINE,
        )
        host, port = server.sockets[0].getsockname()[:2]
        # Signals first: the moment the address is announced, a wrapper
        # may send SIGTERM, which must already mean "drain", not "die".
        self._install_signals(asyncio.get_running_loop())
        # The discovery line wrappers parse (bind port 0, read this):
        net_common.announce("service", host, port)
        self.events.emit(
            "service.start", transport="tcp", host=host, port=port
        )
        await self._draining.wait()
        server.close()
        await server.wait_closed()
        await self._await_quiesce()
        for writer in list(self._writers):
            writer.close()
        # Let cancelled/EOF'd connection handlers unwind.
        await asyncio.sleep(0)
        self._stop()
        return 0

    # -- stdio transport -----------------------------------------------

    async def serve_stdio(self) -> int:
        """Requests on stdin, responses on stdout, logs on stderr.

        Stdin is read on a dedicated daemon thread: a plain blocking
        read neither ties up the event loop nor -- unlike an executor
        job, whose pool joins at interpreter exit -- keeps the process
        alive when the peer never closes the pipe.
        """
        self._draining = asyncio.Event()
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue[str | None] = asyncio.Queue()

        def pump() -> None:
            for raw in sys.stdin:
                loop.call_soon_threadsafe(queue.put_nowait, raw)
            loop.call_soon_threadsafe(queue.put_nowait, None)

        self._install_signals(loop)
        threading.Thread(target=pump, daemon=True, name="stdin-pump").start()
        self.events.emit("service.start", transport="stdio")
        drain_wait = asyncio.ensure_future(self._draining.wait())
        while True:
            get = asyncio.ensure_future(queue.get())
            done, _ = await asyncio.wait(
                {get, drain_wait}, return_when=asyncio.FIRST_COMPLETED
            )
            if get not in done:
                get.cancel()
                break
            line = get.result()
            if line is None or self._draining.is_set():
                break
            if line.strip():
                print(self._serve_line(line.strip()), flush=True)
        drain_wait.cancel()
        self._stop()
        return 0

    def run(self, *, stdio: bool = False) -> int:
        """Serve until EOF (stdio) or a drain signal; returns the
        process exit code (0 for a clean or drained stop)."""
        return asyncio.run(self.serve_stdio() if stdio else self.serve_tcp())
