"""Precomputed CRC-selection advice with a persistent JSON cache.

The service front end must answer "which polynomial for length L?" and
"what HD does P give at L?" at request rates -- but the underlying
truth (:mod:`repro.hd.breakpoints`) costs seconds-to-minutes per
polynomial.  The split here is the classic serve-from-materialized-view
design:

* **Warm path.**  :meth:`AdviceStore.warm` computes one exact
  breakpoint table (a Table 1 column: first-failure length per error
  weight) per polynomial and persists all of them as one JSON document
  (default ``results/advice_cache.json``, committed to the repo).
  Answering from a table is dict arithmetic -- no MITM search ever
  runs on the hot path for covered ``(poly, length)`` pairs.
* **Miss path.**  An ``hd`` query outside every cached table falls
  back to :func:`repro.hd.hamming.hamming_distance` (exact,
  MITM-backed), and the point answer is persisted too, so a miss is
  paid at most once per cache file.
* **Beyond the verified horizon.**  For lengths past a table's
  ``n_max``, the paper's own claimed Table 1 bands
  (:data:`repro.crc.catalog.PAPER_POLYS`) answer ``advise`` queries
  with ``source="paper"`` -- the published ground truth, clearly
  labeled as such rather than silently mixed with measured cells.

The default warm set is the paper's eight polynomials plus every
distinct generator in the deployed-standards catalog, through
``n_max=2048`` data-word bits at ``hd_max=6`` -- covering the Internet
frame sizes the paper's §3 traffic mix is about.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Callable

from repro.crc.catalog import CATALOG, PAPER_POLYS
from repro.gf2.notation import full_to_koopman
from repro.gf2.poly import degree
from repro.hd.breakpoints import BreakpointTable, hd_breakpoint_table
from repro.hd.cost import EnvelopeError
from repro.hd.hamming import hamming_distance

#: On-disk format tag; bump on incompatible changes.
FORMAT = "repro-advice-cache/1"

#: Default cache location, relative to the working directory (the
#: repo's committed copy lives at exactly this path).
DEFAULT_CACHE_PATH = os.path.join("results", "advice_cache.json")

#: Default warm envelope: weights 2..6, data-word lengths through 2048
#: bits -- every Internet-frame regime of the paper's §3 mix.
DEFAULT_HD_MAX = 6
DEFAULT_N_MAX = 2048


@dataclass(frozen=True)
class AdviceEntry:
    """One cached breakpoint table (a Table 1 column), serializable.

    ``first_failure[k]`` is the exact first data-word length at which
    some weight-``k`` error goes undetected (``None`` = none found);
    ``cleared[k]`` is the length through which a failure-free weight
    is *verified* (only recorded when smaller than ``n_max``).
    """

    g: int
    label: str
    n_max: int
    hd_max: int
    first_failure: dict[int, int | None]
    cleared: dict[int, int]

    @property
    def width(self) -> int:
        return degree(self.g)

    @property
    def table(self) -> BreakpointTable:
        return BreakpointTable(
            g=self.g,
            n_max=self.n_max,
            first_failure=dict(self.first_failure),
            cleared=dict(self.cleared),
        )

    @classmethod
    def from_table(cls, table: BreakpointTable, label: str) -> "AdviceEntry":
        return cls(
            g=table.g,
            label=label,
            n_max=table.n_max,
            hd_max=max(table.first_failure),
            first_failure=dict(table.first_failure),
            cleared=dict(table.cleared),
        )

    def hd_info(self, n: int) -> tuple[int, bool]:
        """``(hd, exact)`` at data-word length ``n <= n_max``.

        ``exact=False`` means ``hd`` is a verified *lower bound*: either
        every tested weight cleared (true HD may exceed ``hd_max``) or
        an envelope-capped weight prevents an exact statement at this
        length (then ``hd`` is the smallest unverified weight).
        """
        table = self.table
        try:
            value = table.hd_at(n)
        except EnvelopeError:
            capped = [
                k
                for k, fn in self.first_failure.items()
                if fn is None and self.cleared.get(k, self.n_max) < n
            ]
            return min(capped), False
        return value, value <= self.hd_max

    def to_json(self) -> dict[str, Any]:
        return {
            "poly": f"{self.g:#x}",
            "label": self.label,
            "n_max": self.n_max,
            "hd_max": self.hd_max,
            "first_failure": {str(k): v for k, v in self.first_failure.items()},
            "cleared": {str(k): v for k, v in self.cleared.items()},
        }

    @classmethod
    def from_json(cls, d: dict[str, Any]) -> "AdviceEntry":
        return cls(
            g=int(d["poly"], 16),
            label=d["label"],
            n_max=int(d["n_max"]),
            hd_max=int(d["hd_max"]),
            first_failure={
                int(k): (None if v is None else int(v))
                for k, v in d["first_failure"].items()
            },
            cleared={int(k): int(v) for k, v in d["cleared"].items()},
        )


def default_polys() -> dict[int, str]:
    """The standard warm set: the paper's eight 32-bit generators plus
    every distinct generator polynomial in the deployed catalog, keyed
    by full encoding."""
    polys: dict[int, str] = {}
    for pp in PAPER_POLYS.values():
        polys[pp.full] = pp.label
    for name, spec in sorted(CATALOG.items()):
        polys.setdefault(spec.full_poly, name)
    return polys


class AdviceStore:
    """Breakpoint-table cache answering selection queries from memory.

    ``path=None`` keeps the store purely in-memory (tests, embedding);
    otherwise the file is loaded if present and every mutation
    (``warm``, an on-demand ``hd`` computation) is persisted back
    atomically.
    """

    def __init__(
        self,
        path: str | None = DEFAULT_CACHE_PATH,
        *,
        hd_max: int = DEFAULT_HD_MAX,
        n_max: int = DEFAULT_N_MAX,
        autosave: bool = True,
    ) -> None:
        self.path = path
        self.hd_max = hd_max
        self.n_max = n_max
        self.autosave = autosave
        self.entries: dict[int, AdviceEntry] = {}
        #: Point answers from on-demand computations: {(g, n): hd}.
        self.points: dict[tuple[int, int], int] = {}
        self._paper_by_full = {pp.full: pp for pp in PAPER_POLYS.values()}
        if path is not None and os.path.exists(path):
            self.load()

    # -- persistence ---------------------------------------------------

    def load(self) -> None:
        """(Re)load the cache file at :attr:`path`."""
        assert self.path is not None
        with open(self.path, encoding="utf-8") as f:
            doc = json.load(f)
        if doc.get("format") != FORMAT:
            raise ValueError(
                f"{self.path}: not an advice cache "
                f"(format {doc.get('format')!r}, want {FORMAT!r})"
            )
        self.entries = {
            entry.g: entry
            for entry in (AdviceEntry.from_json(e) for e in doc["entries"])
        }
        self.points = {}
        for key, hd in doc.get("points", {}).items():
            poly_hex, _, n_str = key.partition("@")
            self.points[(int(poly_hex, 16), int(n_str))] = int(hd)

    def save(self) -> None:
        """Atomically persist the cache (tmp file + rename)."""
        if self.path is None:
            return
        doc = {
            "format": FORMAT,
            "entries": [
                self.entries[g].to_json() for g in sorted(self.entries)
            ],
            "points": {
                f"{g:#x}@{n}": hd
                for (g, n), hd in sorted(self.points.items())
            },
        }
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(doc, f, indent=1, sort_keys=True)
                f.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- warming -------------------------------------------------------

    def warm(
        self,
        polys: dict[int, str] | None = None,
        *,
        progress: Callable[[str], None] | None = None,
    ) -> int:
        """Compute breakpoint tables for every polynomial in ``polys``
        (default: :func:`default_polys`) not already cached at this
        store's ``hd_max``/``n_max`` envelope, persist, and return the
        number of tables computed."""
        if polys is None:
            polys = default_polys()
        computed = 0
        for g, label in polys.items():
            have = self.entries.get(g)
            if have is not None and have.n_max >= self.n_max and (
                have.hd_max >= self.hd_max
            ):
                continue
            if progress is not None:
                progress(f"warming {g:#x} ({label}) ...")
            table = hd_breakpoint_table(
                g, hd_max=self.hd_max, n_max=self.n_max
            )
            self.entries[g] = AdviceEntry.from_table(table, label)
            computed += 1
        if computed and self.autosave:
            self.save()
        return computed

    # -- queries -------------------------------------------------------

    def hd(self, g: int, n: int, *, compute: bool = True) -> dict[str, Any]:
        """HD of polynomial ``g`` (full encoding) at data-word length
        ``n``, with provenance: ``source`` is ``"cache"`` when the
        answer came from a precomputed table or point, ``"computed"``
        when this call ran the exact (MITM) search -- which only
        happens with ``compute=True``; otherwise a miss raises
        ``KeyError`` so hot paths can *prove* they never search.

        ``exact=False`` marks verified lower bounds (see
        :meth:`AdviceEntry.hd_info`)."""
        if n < 1:
            raise ValueError("data-word length must be positive")
        entry = self.entries.get(g)
        if entry is not None and n <= entry.n_max:
            value, exact = entry.hd_info(n)
            if exact or not compute:
                return {"hd": value, "exact": exact, "source": "cache"}
        point = self.points.get((g, n))
        if point is not None:
            return {"hd": point, "exact": True, "source": "cache"}
        if not compute:
            raise KeyError(
                f"no cached HD for {g:#x} at {n} bits (compute disabled)"
            )
        value = hamming_distance(g, n)
        self.points[(g, n)] = value
        if self.autosave:
            self.save()
        return {"hd": value, "exact": True, "source": "computed"}

    def _row(self, entry: AdviceEntry, length: int) -> dict[str, Any] | None:
        """One ``advise`` candidate row for a polynomial at a length,
        from the verified table when it covers the length, from the
        paper's claimed bands beyond it, else ``None``."""
        if length <= entry.n_max:
            value, exact = entry.hd_info(length)
            source = "cache"
        else:
            paper = self._paper_by_full.get(entry.g)
            if paper is None:
                return None
            value, exact, source = paper.hd_at(length), True, "paper"
        row = {
            "poly": f"{entry.g:#x}",
            "label": entry.label,
            "width": entry.width,
            "hd": value,
            "exact": exact,
            "source": source,
            "taps": entry.g.bit_count() - 2,  # feedback taps, paper-style
        }
        if entry.width == 32:
            row["koopman"] = f"{full_to_koopman(entry.g):#x}"
        return row

    def advise(
        self,
        length: int,
        *,
        hd: int | None = None,
        width: int | None = 32,
        limit: int = 5,
    ) -> dict[str, Any]:
        """Rank the known polynomials for a data-word length.

        ``hd`` keeps only candidates *verified or claimed* to reach
        that Hamming distance at ``length``; ``width`` restricts the
        field (default 32, the paper's design space; ``None`` = all
        cached widths).  Candidates are ordered best-first: higher HD,
        then fewer feedback taps (the paper's hardware-cost
        criterion), then numeric value for determinism.  Each row
        carries ``source`` (``"cache"`` = measured here, ``"paper"`` =
        the published Table 1 claim past the verified horizon) and,
        with ``hd``, ``max_length``: the largest length the cached
        table verifies the target HD for.
        """
        if length < 1:
            raise ValueError("data-word length must be positive")
        rows = []
        for g in sorted(self.entries):
            entry = self.entries[g]
            if width is not None and entry.width != width:
                continue
            row = self._row(entry, length)
            if row is None:
                continue
            if hd is not None:
                if row["hd"] < hd:
                    continue
                row["max_length"] = entry.table.max_length_for(hd)
            rows.append(row)
        rows.sort(key=lambda r: (-r["hd"], r["taps"], r["poly"]))
        return {
            "length": length,
            "hd_target": hd,
            "width": width,
            "best": rows[0] if rows else None,
            "candidates": rows[:limit],
            "considered": len(rows),
        }
