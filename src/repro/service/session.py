"""Streaming CRC sessions: the receive-path engine API.

:class:`CrcSession` is the shape protocol stacks actually use --
pycyphal's ``CRCAlgorithm`` interface (``add()`` fragments as they
arrive, read ``value``, ``check_residue()`` after the FCS bytes have
been fed through) -- implemented over the generated kernel registry
(:mod:`repro.crc.backends`), so every width/reflection combination the
registry serves streams through the same differential-tested kernels
as one-shot computation.

Design points:

* **Zero-copy ingestion.**  ``add()`` accepts ``bytes``,
  ``bytearray`` or any C-contiguous ``memoryview`` and never copies:
  the generated kernels index and iterate the buffer in place
  (non-byte views are ``cast("B")``, a zero-copy reinterpretation).
* **Residue checking.**  Feeding a whole frame -- message *plus* its
  FCS in wire byte order -- drives ``value`` to a spec-dependent
  constant, the *residue*; a receiver verifies a frame without ever
  splitting message from FCS.  :func:`residue_value` derives the
  constant per spec (and proves its message-independence on first
  use).  Byte-multiple widths only: a width that straddles bytes has
  no byte-aligned wire FCS (`append_fcs` refuses it for the same
  reason).
* **Composition.**  ``combine()`` merges two sessions over
  concatenated inputs in O(log n) via
  :func:`repro.crc.stream.crc_combine` -- scatter/gather reassembly
  without touching payload bytes.

Every operation agrees bit-for-bit with one-shot
:func:`~repro.crc.backends.crc_compute` (``tests/service/test_session.py``
property-tests this across the catalog).
"""

from __future__ import annotations

from functools import lru_cache

from repro.crc.backends import dress, engine_init, get_kernel, undress
from repro.crc.codeword import append_fcs
from repro.crc.spec import CRCSpec
from repro.crc.stream import crc_combine

#: Messages used to derive (and verify the constancy of) a spec's
#: residue.  Different lengths and contents: a spec whose
#: frame-feeding map is not constant across all of them has no usable
#: residue and is rejected rather than half-checked.
_RESIDUE_PROBES = (b"", b"\x00", b"123456789", bytes(range(64)))


@lru_cache(maxsize=256)
def residue_value(spec: CRCSpec) -> int:
    """The spec's residue: the constant ``value`` a :class:`CrcSession`
    reaches after absorbing any message followed by that message's FCS
    in wire byte order (little-endian for ``refout`` specs, big-endian
    otherwise, matching :func:`~repro.crc.codeword.append_fcs`).

    Derived, not hardcoded: the candidate is computed from one probe
    message and proven message-independent against several others
    (the linearity argument makes the map affine in the register, so
    agreement on a spanning probe set is a proof, not a spot check).
    Raises ``ValueError`` for widths that are not a whole number of
    bytes -- there is no byte-aligned wire FCS to feed back.

    Note this is the residue of the *dressed* value (after ``xorout``),
    so for CRC-32C it is ``0x48674BC7`` -- implementations that check
    the raw register instead (e.g. pycyphal) quote its complement
    ``0xB798B438``; the two differ exactly by ``xorout``.

    >>> from repro.crc.catalog import get_spec
    >>> residue_value(get_spec("CRC-32C/Castagnoli")) == 0x48674BC7
    True
    """
    if spec.width % 8:
        raise ValueError(
            f"{spec.name}: residue checking needs a byte-multiple width "
            f"(got {spec.width}); verify by recomputing the CRC instead"
        )
    kernel = get_kernel(spec, "bytewise")
    values = set()
    for message in _RESIDUE_PROBES:
        frame = append_fcs(spec, message)
        values.add(dress(spec, kernel.process(engine_init(spec), frame)))
    if len(values) != 1:
        raise ValueError(
            f"{spec.name}: no constant residue (frame-feeding map is "
            "message-dependent); verify by recomputing the CRC instead"
        )
    return values.pop()


class CrcSession:
    """One streaming CRC computation over registry kernels.

    ``add()`` absorbs message fragments (returning ``self`` so calls
    chain), ``value`` is the dressed CRC of everything absorbed so
    far, ``check_residue()`` validates a fully-fed frame, ``reset()``
    rewinds to the empty message.  ``fork()`` clones the state for
    speculative suffixes; ``combine()`` splices two sessions over
    concatenated data in O(log n).

    >>> from repro.crc.catalog import get_spec
    >>> s = CrcSession(get_spec("CRC-32/IEEE-802.3"))
    >>> s.add(b"123").add(memoryview(b"456789")).value == 0xCBF43926
    True
    >>> from repro.crc.codeword import append_fcs
    >>> s.reset().add(append_fcs(s.spec, b"hello")).check_residue()
    True
    """

    __slots__ = ("spec", "backend", "_process", "_register", "_length")

    def __init__(self, spec: CRCSpec, backend: str = "auto") -> None:
        kernel = get_kernel(spec, backend)
        self.spec = spec
        self.backend = kernel.name
        self._process = kernel.process
        self._register = engine_init(spec)
        self._length = 0

    @property
    def length(self) -> int:
        """Bytes absorbed since construction or the last ``reset()``."""
        return self._length

    def add(self, data: "bytes | bytearray | memoryview") -> "CrcSession":
        """Absorb a message fragment without copying it.

        ``memoryview`` inputs must be C-contiguous; views over wider
        element types are reinterpreted as bytes in place.
        """
        if isinstance(data, memoryview) and data.format != "B":
            data = data.cast("B")
        self._register = self._process(self._register, data)
        self._length += len(data)
        return self

    @property
    def value(self) -> int:
        """The dressed CRC of everything absorbed so far.  Reading it
        does not disturb the stream -- keep ``add()``-ing afterwards."""
        return dress(self.spec, self._register)

    def check_residue(self) -> bool:
        """True iff the absorbed stream is a valid frame: a message
        followed by its own FCS in wire byte order.  Byte-multiple
        widths only (see :func:`residue_value`)."""
        return self.value == residue_value(self.spec)

    def reset(self) -> "CrcSession":
        """Rewind to the empty message (same spec, same kernel)."""
        self._register = engine_init(self.spec)
        self._length = 0
        return self

    def fork(self) -> "CrcSession":
        """An independent copy of the current state -- trial-checksum a
        speculative suffix without disturbing the original."""
        clone = CrcSession.__new__(CrcSession)
        clone.spec = self.spec
        clone.backend = self.backend
        clone._process = self._process
        clone._register = self._register
        clone._length = self._length
        return clone

    def combine(self, other: "CrcSession") -> "CrcSession":
        """The session that would result from absorbing this session's
        input followed by ``other``'s -- computed from the two CRC
        values and ``other``'s length alone, in O(log len) matrix work,
        never touching the data (scatter/gather reassembly).

        Both sessions must share a spec; neither operand is mutated.
        """
        if other.spec != self.spec:
            raise ValueError(
                f"cannot combine {self.spec.name} with {other.spec.name}"
            )
        value = crc_combine(self.spec, self.value, other.value, other._length)
        out = self.fork()
        out._register = undress(self.spec, value)
        out._length = self._length + other._length
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CrcSession {self.spec.name} backend={self.backend} "
            f"length={self._length} value={self.value:#x}>"
        )
