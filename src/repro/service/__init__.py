"""CRC-as-a-service: the serving layer over the kernel registry.

The paper's deliverable is ultimately *advice* -- "which 32-bit CRC
should an Internet application use at length L?" -- and the rest of
the repo computes that advice.  This package serves it, at the
granularity real protocol stacks consume it:

* :mod:`repro.service.session` -- :class:`CrcSession`, the streaming
  ``add()/value/check_residue()`` engine API (pycyphal-style) running
  on generated registry kernels with zero-copy ``memoryview``
  ingestion and O(log n) ``combine()`` for concatenated frames.
* :mod:`repro.service.advice` -- :class:`AdviceStore`, precomputed
  Table-1/2-style answers ("best polynomial for length L / HD
  target", "HD of poly P at length L") backed by
  :mod:`repro.hd.breakpoints` and persisted as a JSON cache under
  ``results/``; cache misses fall back to on-demand exact (MITM)
  verification whose answers are persisted too.
* :mod:`repro.service.server` -- the ``repro serve-crc`` front end:
  newline-delimited JSON over TCP (or stdin/stdout for CI pipelines)
  answering ``verify`` / ``checksum`` / ``advise`` / ``hd`` requests,
  instrumented through :mod:`repro.obs` (``service.request.*``
  counters, per-op latency timers) with a graceful SIGTERM/SIGINT
  drain in the style of the campaign pool.

Protocol reference, cache semantics and ops notes: docs/SERVICE.md.
"""

from repro.service.advice import AdviceEntry, AdviceStore
from repro.service.server import CrcService, ProtocolError, ServiceServer
from repro.service.session import CrcSession, residue_value

__all__ = [
    "AdviceEntry",
    "AdviceStore",
    "CrcService",
    "CrcSession",
    "ProtocolError",
    "ServiceServer",
    "residue_value",
]
