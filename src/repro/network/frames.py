"""Frame and data-word models with the paper's bit accounting.

The paper's significant message lengths (Figure 1's vertical marks):

* 40-byte acknowledgment packet: 400-bit data word ("including 80
  bits of protocol overhead" -- 40 bytes of IP+TCP plus the 10-byte
  link-level contribution the paper folds in).
* 512-byte data packet (+40B headers): 4496-bit data word.
* Ethernet MTU: 1500-byte payload + 14-byte MAC header = 1514 bytes
  = 12112-bit data word; with the 32-bit FCS the codeword is 12144
  bits.
* Jumbo frame: 9000-byte payload + header = 72112-bit data word.

These constants and the frame builders below keep that arithmetic in
one place; tests pin the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crc.spec import CRCSpec
from repro.crc.codeword import append_fcs, check_fcs

MAC_HEADER_BYTES = 14       # dst(6) + src(6) + ethertype(2)
MTU_PAYLOAD_BYTES = 1500
JUMBO_PAYLOAD_BYTES = 9000

#: The paper's canonical lengths, in data-word bits (CRC excluded).
MTU_DATA_WORD_BITS = (MAC_HEADER_BYTES + MTU_PAYLOAD_BYTES) * 8      # 12112
JUMBO_DATA_WORD_BITS = (MAC_HEADER_BYTES + JUMBO_PAYLOAD_BYTES) * 8  # 72112
ACK_DATA_WORD_BITS = 400        # 40-byte ack + 80 bits protocol overhead
DATA512_DATA_WORD_BITS = 4496   # 512 data bytes + 40 byte headers + overhead


def data_word_bits_for_payload(payload_bytes: int) -> int:
    """Ethernet data-word length (bits) for a given payload size.

    >>> data_word_bits_for_payload(1500)
    12112
    >>> data_word_bits_for_payload(9000)
    72112
    """
    if payload_bytes < 0:
        raise ValueError("negative payload")
    return (MAC_HEADER_BYTES + payload_bytes) * 8


@dataclass
class EthernetFrame:
    """A minimal 802.3 frame: MAC header + payload + FCS.

    The FCS is computed/checked with whatever spec is supplied --
    the deployed CRC-32 by default, or any of the paper's candidate
    polynomials in bare form for what-if studies.
    """

    dst: bytes
    src: bytes
    ethertype: int
    payload: bytes

    def __post_init__(self) -> None:
        if len(self.dst) != 6 or len(self.src) != 6:
            raise ValueError("MAC addresses are 6 bytes")
        if not 0 <= self.ethertype < 0x10000:
            raise ValueError("ethertype out of range")

    @property
    def data_word(self) -> bytes:
        """Header + payload: the bytes the FCS covers."""
        return self.dst + self.src + self.ethertype.to_bytes(2, "big") + self.payload

    @property
    def data_word_bits(self) -> int:
        return len(self.data_word) * 8

    def to_wire(self, spec: CRCSpec) -> bytes:
        """Serialize with FCS appended."""
        return append_fcs(spec, self.data_word)

    @classmethod
    def check_wire(cls, spec: CRCSpec, wire: bytes) -> bool:
        """Receive-side FCS verification."""
        return check_fcs(spec, wire)


@dataclass
class IscsiPdu:
    """An iSCSI-style PDU: 48-byte Basic Header Segment plus a data
    segment that may pack multiple MTUs' worth of storage data under a
    single end-to-end CRC -- the scenario (§4.3) motivating a
    polynomial with both HD=6 at MTU length and HD=4 far beyond 64K
    bits."""

    bhs: bytes = field(default=b"\x00" * 48)
    data_segment: bytes = b""

    def __post_init__(self) -> None:
        if len(self.bhs) != 48:
            raise ValueError("BHS is 48 bytes")

    @property
    def data_word(self) -> bytes:
        return self.bhs + self.data_segment

    @property
    def data_word_bits(self) -> int:
        return len(self.data_word) * 8

    @classmethod
    def packed_mtus(cls, mtus: int) -> "IscsiPdu":
        """A PDU carrying ``mtus`` MTU payloads of storage data --
        Figure 1's "2 MTU / 4 MTU / 8 MTU" marks as iSCSI workloads."""
        return cls(data_segment=bytes(MTU_PAYLOAD_BYTES * mtus))

    def to_wire(self, spec: CRCSpec) -> bytes:
        return append_fcs(spec, self.data_word)


def figure1_marks() -> dict[str, int]:
    """The labeled x-axis marks of Figure 1, in data-word bits."""
    return {
        "40B ack packet": ACK_DATA_WORD_BITS,
        "512+40B packet": DATA512_DATA_WORD_BITS,
        "1 MTU": MTU_DATA_WORD_BITS,
        "2 MTU": 2 * MTU_PAYLOAD_BYTES * 8 + MAC_HEADER_BYTES * 8,
        "4 MTU": 4 * MTU_PAYLOAD_BYTES * 8 + MAC_HEADER_BYTES * 8,
        "8 MTU": 8 * MTU_PAYLOAD_BYTES * 8 + MAC_HEADER_BYTES * 8,
        "jumbo 9000B": JUMBO_DATA_WORD_BITS,
    }
