"""Stacked (link + application) CRC analysis -- the §4.4 program.

Stone & Partridge found corrupted packets reaching the CRC "once every
few thousand packets" and urged an application-level check on top of
the link CRC.  The paper offers its polynomials for that role.  This
module answers the natural follow-up questions exactly:

* An error pattern within one frame escapes *both* checks iff it is a
  codeword of both generators -- i.e. divisible by ``lcm(g_link,
  g_app)``.  :func:`combined_generator` builds that polynomial (degree
  up to 64 for two 32-bit CRCs) and the ordinary HD/weight machinery
  then quantifies the stack: :func:`stacked_hd`.
* Choosing the *same* polynomial at both layers adds nothing against
  single-frame errors (the codeword sets coincide) -- a pitfall this
  module makes measurable, and the strongest argument for adopting a
  *different* polynomial (e.g. 0xBA0DC66B) at the application layer
  above 802.3 links.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gf2.poly import degree, gf2_divmod, gf2_gcd, gf2_mul
from repro.hd.hamming import hamming_distance, hamming_distance_bound
from repro.hd.weights import weight_profile


def combined_generator(g_link: int, g_app: int) -> int:
    """``lcm`` of two generators: the generator of the intersection of
    their codeword sets (patterns undetected by *both* CRCs).

    >>> combined_generator(0b1011, 0b1011) == 0b1011
    True
    """
    gcd = gf2_gcd(g_link, g_app)
    quotient, rem = gf2_divmod(g_link, gcd)
    assert rem == 0
    return gf2_mul(quotient, g_app)


@dataclass(frozen=True)
class StackedAnalysis:
    """Joint error-detection profile of a two-layer CRC stack over
    single-frame error patterns.

    ``hd_stacked`` is exact when ``stacked_exact`` is True; otherwise
    it is a *verified lower bound* (every lower weight proven absent)
    -- high joint HDs of degree-64 combined generators routinely
    exceed the exact-computation envelope, and "provably >= 8" is the
    deployable answer.
    """

    g_link: int
    g_app: int
    combined: int
    data_word_bits: int
    hd_link: int
    hd_app: int
    hd_stacked: int
    stacked_exact: bool = True

    @property
    def effective_check_bits(self) -> int:
        """Degree of the combined generator: how many FCS-equivalent
        bits the stack actually buys (64 for coprime 32-bit pairs,
        32 for identical polynomials)."""
        return degree(self.combined)

    def render(self) -> str:
        qual = "=" if self.stacked_exact else ">="
        return (
            f"stacked CRC over {self.data_word_bits}-bit data words:\n"
            f"  link {self.g_link:#x}: HD={self.hd_link}\n"
            f"  app  {self.g_app:#x}: HD={self.hd_app}\n"
            f"  combined generator degree {self.effective_check_bits}: "
            f"joint HD{qual}{self.hd_stacked}\n"
            f"  (errors of weight < {self.hd_stacked} cannot evade both layers)"
        )


def stacked_hd(
    g_link: int, g_app: int, data_word_bits: int, *, k_max: int = 16
) -> StackedAnalysis:
    """Joint Hamming distance of a link+app CRC stack for single-frame
    errors (exact, or a verified lower bound past the envelope).

    The combined generator's HD is the smallest error weight invisible
    to both layers simultaneously; for coprime 32-bit generators this
    is typically far beyond either layer alone.

    >>> a = stacked_hd(0x104C11DB7, 0x104C11DB7, 1000)
    >>> a.hd_stacked == a.hd_link   # same poly twice adds nothing
    True
    """
    combined = combined_generator(g_link, g_app)
    if degree(combined) > 64:
        raise ValueError(
            "combined generator exceeds degree 64; analyze narrower CRCs"
        )
    joint, exact = hamming_distance_bound(
        combined, data_word_bits, k_max=k_max
    )
    return StackedAnalysis(
        g_link=g_link,
        g_app=g_app,
        combined=combined,
        data_word_bits=data_word_bits,
        hd_link=hamming_distance(g_link, data_word_bits, k_max=k_max),
        hd_app=hamming_distance(g_app, data_word_bits, k_max=k_max),
        hd_stacked=joint,
        stacked_exact=exact,
    )


def stacked_weights(
    g_link: int, g_app: int, data_word_bits: int, k_max: int = 4
) -> dict[int, int]:
    """Exact joint weights: the number of k-bit single-frame patterns
    missed by both layers (``W_k`` of the combined generator)."""
    return weight_profile(
        combined_generator(g_link, g_app), data_word_bits, k_max
    )


def same_poly_pitfall(g: int, data_word_bits: int) -> bool:
    """True iff stacking ``g`` on itself gives no HD improvement at
    this length -- always, since the codeword sets coincide.  Provided
    as an executable statement of the deployment pitfall."""
    analysis = stacked_hd(g, g, data_word_bits)
    return analysis.hd_stacked == analysis.hd_link
