"""Undetected-error probability: simulation and analytics.

Stone & Partridge (cited in §4.4) found real networks deliver far more
corrupted packets than BER folklore suggests, putting the CRC on the
hook "once every few thousand packets".  The tools here quantify what
the CRC then misses:

* :func:`simulate_undetected` -- Monte Carlo over an error model,
  using the linearity shortcut (pattern syndrome == 0) by default but
  optionally pushing real corrupted bytes through the real engines to
  re-validate that shortcut.
* :func:`analytic_pud` -- the exact small-weight expansion
  ``P_ud = sum_k W_k p^k (1-p)^(N-k)`` from the exact weights of
  :mod:`repro.hd.weights`; benchmark E9 shows simulation and analytics
  agree, which simultaneously cross-checks W4 counting.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

from repro.crc.spec import CRCSpec
from repro.crc.codeword import append_fcs, check_fcs
from repro.gf2.poly import degree
from repro.hd.syndromes import syndrome_table, syndrome_of_positions
from repro.network.errors import apply_error, BurstError


@dataclass
class MonteCarloResult:
    """Counts from a Monte Carlo run."""

    trials: int
    corrupted: int
    detected: int
    undetected: int

    @property
    def p_undetected_given_corrupted(self) -> float:
        if self.corrupted == 0:
            return 0.0
        return self.undetected / self.corrupted

    def summary(self) -> str:
        return (
            f"{self.trials} trials: {self.corrupted} corrupted, "
            f"{self.undetected} undetected "
            f"(P[ud|corrupt] = {self.p_undetected_given_corrupted:.3g})"
        )


def simulate_undetected(
    g: int,
    data_word_bits: int,
    error_model,
    trials: int,
    *,
    via_frames: bool = False,
) -> MonteCarloResult:
    """Monte Carlo undetected-error estimation for generator ``g``.

    ``error_model`` is anything with ``sample(codeword_bits) ->
    positions`` (see :mod:`repro.network.errors`).  With
    ``via_frames`` the run serializes a real zero-payload frame,
    corrupts actual bytes and re-checks the FCS with the bit-serial
    engine -- byte-for-byte the receive path -- instead of the
    syndrome shortcut; both modes must agree (tested).
    """
    r = degree(g)
    N = data_word_bits + r
    corrupted = detected = undetected = 0
    spec = frame = None
    if via_frames:
        if data_word_bits % 8 or r % 8:
            raise ValueError("via_frames requires byte-aligned sizes")
        spec = CRCSpec(name="mc", width=r, poly=g & ((1 << r) - 1))
        frame = append_fcs(spec, bytes(data_word_bits // 8))
    syn = syndrome_table(g, N)
    for _ in range(trials):
        positions = error_model.sample(N)
        if not positions:
            continue
        corrupted += 1
        if via_frames:
            corrupt = apply_error(frame, positions)
            # FCS still checks out == the corruption went undetected.
            is_undetected = check_fcs(spec, corrupt)
        else:
            acc = 0
            for p in positions:
                acc ^= int(syn[p])
            is_undetected = acc == 0
        if is_undetected:
            undetected += 1
        else:
            detected += 1
    return MonteCarloResult(
        trials=trials,
        corrupted=corrupted,
        detected=detected,
        undetected=undetected,
    )


def analytic_pud(
    weights: dict[int, int], codeword_bits: int, ber: float, *, tail_bound: bool = False
) -> float:
    """Exact truncated undetected-error probability
    ``sum_k W_k p^k (1-p)^(N-k)`` over the supplied weights.

    With ``tail_bound`` an upper bound for the untallied tail is added
    using ``W_k <= C(N,k) / 2**r``-style mass (all patterns equally
    likely to alias) -- useful to show the truncation is harmless at
    moderate BER, which is the paper's argument for why "weights
    beyond the first non-zero weight are largely unimportant".
    """
    p = ber
    total = 0.0
    for k, w in sorted(weights.items()):
        total += w * (p**k) * ((1 - p) ** (codeword_bits - k))
    if tail_bound:
        k_max = max(weights)
        # Everything heavier than k_max, aliasing at rate 2^-r with
        # r inferred as log2 of the pattern space is unavailable here;
        # callers pass r explicitly via weights of interest instead.
        k = k_max + 1
        term = comb(codeword_bits, k) * (p**k) * ((1 - p) ** (codeword_bits - k))
        total += term  # one-term bound; geometric decay beyond
    return total


def detected_all_bursts(g: int, data_word_bits: int, max_start: int | None = None) -> bool:
    """Exhaustively verify the classical burst guarantee: every burst
    of length <= r is detected.  Quadratic in r per start position;
    meant for tests at modest sizes."""
    r = degree(g)
    N = data_word_bits + r
    starts = range(N - r + 1) if max_start is None else range(min(max_start, N - r + 1))
    for start in starts:
        for length in range(1, r + 1):
            if start + length > N:
                break
            n_interior = max(length - 2, 0)
            for pattern in range(1 << n_interior) if n_interior <= 6 else [0, -1]:
                burst = BurstError(start, length, interior_pattern=pattern)
                if syndrome_of_positions(g, burst.positions()) == 0:
                    return False
    return True
