"""Network frame models and error simulation.

The paper's motivation is concrete traffic: 40-byte acks, 512-byte
data packets, Ethernet MTUs, multi-MTU iSCSI bursts and 9000-byte
jumbo frames, all protected by a 32-bit FCS against a moderate bit
error rate.  This package provides those workloads and the error
processes:

* :mod:`repro.network.frames` -- Ethernet / jumbo / iSCSI data-word
  models with the paper's exact bit accounting (an MTU frame is a
  12112-bit data word, a 12144-bit codeword).
* :mod:`repro.network.errors` -- i.i.d. BER bit flips, burst errors
  and fixed-weight error patterns, all as position sets so CRC
  linearity applies.
* :mod:`repro.network.montecarlo` -- undetected-error-probability
  estimation, plus the analytic ``P_ud = sum W_k p^k (1-p)^(N-k)``
  from exact weights; the two cross-validate (benchmark E9).
"""

from repro.network.frames import (
    EthernetFrame,
    IscsiPdu,
    data_word_bits_for_payload,
    MTU_DATA_WORD_BITS,
    ACK_DATA_WORD_BITS,
    DATA512_DATA_WORD_BITS,
    JUMBO_DATA_WORD_BITS,
)
from repro.network.errors import (
    BernoulliBitErrors,
    BurstError,
    FixedWeightErrors,
    apply_error,
)
from repro.network.montecarlo import (
    MonteCarloResult,
    simulate_undetected,
    analytic_pud,
    detected_all_bursts,
)

__all__ = [
    "EthernetFrame",
    "IscsiPdu",
    "data_word_bits_for_payload",
    "MTU_DATA_WORD_BITS",
    "ACK_DATA_WORD_BITS",
    "DATA512_DATA_WORD_BITS",
    "JUMBO_DATA_WORD_BITS",
    "BernoulliBitErrors",
    "BurstError",
    "FixedWeightErrors",
    "apply_error",
    "MonteCarloResult",
    "simulate_undetected",
    "analytic_pud",
    "detected_all_bursts",
]
