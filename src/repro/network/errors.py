"""Error processes over codeword bit positions.

By CRC linearity (paper §3) an error's detectability depends only on
*which* positions flip, never on the data -- so error models here
produce position sets, and :func:`apply_error` exists mainly to let
tests confirm that byte-level corruption of real frames agrees with
the position-set model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class BernoulliBitErrors:
    """Independent bit flips at a fixed bit error rate.

    Sampling draws the flip count from the exact binomial and then
    places the flips uniformly -- O(flips) per frame instead of
    O(bits), which matters when simulating 10**7 mostly-clean frames
    at moderate BER (the paper's "only a fraction of messages are
    corrupted" operating point).
    """

    ber: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.ber <= 1.0:
            raise ValueError("BER must be a probability")
        self._rng = random.Random(self.seed)

    def sample(self, codeword_bits: int) -> tuple[int, ...]:
        """Positions flipped in one transmission."""
        flips = self._binomial(codeword_bits, self.ber)
        if flips == 0:
            return ()
        return tuple(self._rng.sample(range(codeword_bits), flips))

    def _binomial(self, n: int, p: float) -> int:
        # Inverse-CDF would be exact but slow for large n; use the
        # sum-of-Bernoullis shortcut only for tiny n, otherwise a
        # normal/Poisson split adequate for simulation purposes.
        if n * p < 50:
            # Poisson approximation region / direct small-mean draw.
            count = 0
            threshold = self._rng.random()
            # Direct inversion on the binomial CDF.
            prob = (1 - p) ** n
            cdf = prob
            k = 0
            while cdf < threshold and k < n:
                k += 1
                prob *= (n - k + 1) / k * (p / (1 - p))
                cdf += prob
            count = k
            return count
        mean = n * p
        sd = (n * p * (1 - p)) ** 0.5
        draw = int(round(self._rng.gauss(mean, sd)))
        return min(max(draw, 0), n)


@dataclass
class BurstError:
    """A contiguous error burst: ``length`` consecutive positions
    starting at ``start``, with the first and last bits always flipped
    (the conventional definition of burst length) and interior bits
    flipped per ``interior_pattern``.

    Any burst of length <= r is detected by any degree-r CRC --
    the classical guarantee the paper notes "remains intact for all
    the codes we consider"; ``tests/network`` verifies it
    exhaustively for small widths.
    """

    start: int
    length: int
    interior_pattern: int = -1  # -1 = all ones

    def positions(self) -> tuple[int, ...]:
        if self.length < 1:
            raise ValueError("burst length must be >= 1")
        if self.length == 1:
            return (self.start,)
        pos = [self.start, self.start + self.length - 1]
        for i in range(1, self.length - 1):
            if self.interior_pattern == -1 or (self.interior_pattern >> (i - 1)) & 1:
                pos.append(self.start + i)
        return tuple(sorted(pos))


@dataclass
class FixedWeightErrors:
    """Uniformly random error patterns of exactly ``weight`` bits --
    the conditional distribution under which ``W_k / C(N, k)`` is the
    undetected-error probability."""

    weight: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise ValueError("weight must be >= 1")
        self._rng = random.Random(self.seed)

    def sample(self, codeword_bits: int) -> tuple[int, ...]:
        return tuple(self._rng.sample(range(codeword_bits), self.weight))


def apply_error(frame: bytes, positions: tuple[int, ...]) -> bytes:
    """Flip the given bit positions of a serialized frame.

    Position 0 is the last bit of the last byte (the final FCS bit on
    the wire), matching the polynomial convention used everywhere in
    :mod:`repro.hd`.
    """
    total_bits = len(frame) * 8
    data = bytearray(frame)
    for p in positions:
        if not 0 <= p < total_bits:
            raise ValueError(f"position {p} outside frame of {total_bits} bits")
        byte_index = len(data) - 1 - (p // 8)
        data[byte_index] ^= 1 << (p % 8)
    return bytes(data)
