"""Traffic-mix exposure analysis.

§3 of the paper grounds its length marks in measured Internet traffic:
"The two most frequently encountered message lengths on Internet
traffic are 40-byte acknowledgment packets (400 bit data word ...)
and acknowledgment packets additionally containing 512 bytes of data
(4496 bit data word)", alongside full MTUs.  A CRC choice protects a
*mix* of lengths, so the right figure of merit for a deployment is
the traffic-weighted error-detection exposure -- which this module
computes from exact HDs and weights.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

from repro.gf2.poly import degree
from repro.hd.hamming import hamming_distance
from repro.hd.weights import weight_profile
from repro.network.frames import (
    ACK_DATA_WORD_BITS,
    DATA512_DATA_WORD_BITS,
    MTU_DATA_WORD_BITS,
)


@dataclass(frozen=True)
class TrafficClass:
    """One length bucket of a traffic mix."""

    name: str
    data_word_bits: int
    fraction: float

    def __post_init__(self) -> None:
        if self.data_word_bits < 1:
            raise ValueError("data word must be at least one bit")
        if not 0 < self.fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")


def internet_mix() -> list[TrafficClass]:
    """A stylized year-2001 Internet mix built from the paper's §3
    "most frequently encountered" lengths: mostly acks, a data-bearing
    middle class, and full MTUs."""
    return [
        TrafficClass("40B ack", ACK_DATA_WORD_BITS, 0.50),
        TrafficClass("512B+40B data", DATA512_DATA_WORD_BITS, 0.30),
        TrafficClass("full MTU", MTU_DATA_WORD_BITS, 0.20),
    ]


@dataclass
class ExposureReport:
    """Traffic-weighted error-detection profile of one polynomial."""

    poly: int
    per_class: dict[str, dict[str, float | int]]
    min_hd: int
    weighted_w4_rate: float

    def render(self) -> str:
        lines = [f"exposure report for {self.poly:#x}:"]
        for name, row in self.per_class.items():
            w4 = row["w4"]
            rate = row["w4_rate"]
            rate_s = f"{rate:.3g}" if w4 else "0 (guaranteed)"
            lines.append(
                f"  {name:>14}: {row['bits']:>6} bits  HD={row['hd']}  "
                f"W4={w4}  P[miss | 4-bit error]={rate_s}"
            )
        lines.append(f"  worst-case HD over the mix: {self.min_hd}")
        lines.append(
            f"  traffic-weighted 4-bit miss rate: {self.weighted_w4_rate:.3g}"
        )
        return "\n".join(lines)


# W4 counting at MTU scale costs ~35 s; mixes and side-by-side tables
# revisit the same (polynomial, length) pairs, so memoize.
_W4_CACHE: dict[tuple[int, int], int] = {}


def _w4_cached(g: int, data_word_bits: int) -> int:
    key = (g, data_word_bits)
    if key not in _W4_CACHE:
        _W4_CACHE[key] = weight_profile(g, data_word_bits, 4)[4]
    return _W4_CACHE[key]


def exposure(
    g: int, mix: list[TrafficClass] | None = None, *, k_max: int = 8
) -> ExposureReport:
    """Evaluate a generator over a traffic mix: per-class HD and exact
    W4, plus the mix-weighted 4-bit-error miss rate.

    The weighting answers the deployment question directly: two
    polynomials with the same worst-case HD can differ by orders of
    magnitude in how often the *actual traffic* hits their weak
    lengths.
    """
    if mix is None:
        mix = internet_mix()
    total_fraction = sum(tc.fraction for tc in mix)
    if not 0.999 <= total_fraction <= 1.001:
        raise ValueError(f"mix fractions sum to {total_fraction}, not 1")
    r = degree(g)
    per_class: dict[str, dict[str, float | int]] = {}
    weighted = 0.0
    min_hd = 10**9
    for tc in mix:
        hd = hamming_distance(g, tc.data_word_bits, k_max=k_max)
        if hd >= 5:
            # HD >= 5 *means* no undetected 4-bit error exists -- the
            # count is zero by definition, no enumeration needed.
            w4 = 0
        else:
            w4 = _w4_cached(g, tc.data_word_bits)
        n_bits = tc.data_word_bits + r
        rate = w4 / comb(n_bits, 4)
        per_class[tc.name] = {
            "bits": tc.data_word_bits,
            "hd": hd,
            "w4": w4,
            "w4_rate": rate,
        }
        weighted += tc.fraction * rate
        min_hd = min(min_hd, hd)
    return ExposureReport(
        poly=g, per_class=per_class, min_hd=min_hd, weighted_w4_rate=weighted
    )


def compare_exposure(
    polys: dict[str, int], mix: list[TrafficClass] | None = None
) -> str:
    """Side-by-side exposure table for several candidates -- the §4.3
    decision, generalized to any traffic mix."""
    reports = {name: exposure(g, mix) for name, g in polys.items()}
    lines = []
    header = (
        f"{'polynomial':>14} | {'worst HD':>8} | {'weighted 4-bit miss rate':>24}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, rep in sorted(
        reports.items(), key=lambda kv: (-kv[1].min_hd, kv[1].weighted_w4_rate)
    ):
        rate = rep.weighted_w4_rate
        rate_s = f"{rate:.3g}" if rate else "0 (guaranteed)"
        lines.append(f"{name:>14} | {rep.min_hd:>8} | {rate_s:>24}")
    return "\n".join(lines)
