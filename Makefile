# Convenience targets for the reproduction workflow.

PY ?= python

.PHONY: install test test-all bench bench-full repro examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

test-all:
	RUN_SLOW=1 $(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 $(PY) -m pytest benchmarks/ --benchmark-only

repro:
	$(PY) examples/reproduce_paper.py

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PY) $$ex > /dev/null || exit 1; done; echo all examples OK

clean:
	rm -rf results .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
