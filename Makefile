# Convenience targets for the reproduction workflow.

PY ?= python

.PHONY: install test test-all verify docs-check chaos-smoke farm-smoke farm-chaos bench bench-smoke backend-gate packed-gate service-smoke dash-smoke bench-full repro examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

test-all:
	RUN_SLOW=1 $(PY) -m pytest tests/

# What CI runs: the tier-1 suite, a ~30s smoke parallel campaign
# (width 8, 2 subprocesses, checkpoint + resume) so the real
# subprocess path is exercised on every PR, and the docs-check that
# executes every fenced python block in README.md and docs/*.md.
verify:
	PYTHONPATH=src $(PY) -m pytest -x -q tests/
	rm -f /tmp/repro-smoke-campaign.json /tmp/repro-smoke-campaign.json.prev
	PYTHONPATH=src $(PY) -m repro campaign --width 8 --target-hd 4 \
	    --bits 100 --parallel 2 --chunk-size 8 \
	    --checkpoint /tmp/repro-smoke-campaign.json
	PYTHONPATH=src $(PY) -m repro campaign --width 8 --target-hd 4 \
	    --bits 100 --parallel 2 --chunk-size 8 \
	    --checkpoint /tmp/repro-smoke-campaign.json --resume \
	    | grep -q "0 chunks computed"
	rm -f /tmp/repro-smoke-campaign.json /tmp/repro-smoke-campaign.json.prev
	$(PY) tools/check_docs.py

docs-check:
	$(PY) tools/check_docs.py

# The survival-kit gauntlet (~1s of campaign work, seeded): worker
# crashes + a hard kill + a SIGTERM drain + a corrupted checkpoint +
# resume must still produce a record bit-identical to a fault-free
# run, and a poison chunk must end quarantined.  docs/RESILIENCE.md.
chaos-smoke:
	$(PY) tools/chaos_campaign.py --seed 2002

# Multi-host farm gate, fault-free: a real WorkServer coordinator and
# three WorkClient workers over the loopback transport must finish a
# campaign bit-identical to the direct single-process merge, with the
# per-worker books balancing.  docs/FARM.md.
farm-smoke:
	$(PY) tools/farm_smoke.py

# Multi-host farm gauntlet: the same farm under a seeded network
# disaster -- severed connection, dropped + duplicated completions, a
# worker killed while holding a lease, and a coordinator SIGTERM +
# checkpoint restart -- must still produce a bit-identical record,
# with the event log proving every fault fired.  docs/FARM.md.
farm-chaos:
	$(PY) tools/chaos_farm.py --seed 2002

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# CI-sized screening gate: both backends over a small full space must
# produce identical records (smoke timings printed, no floor asserted).
bench-smoke:
	PYTHONPATH=src $(PY) tools/bench_smoke.py

# Kernel-registry identity gate: every generated backend of every
# catalog spec must agree with the bit-serial reference, end to end.
backend-gate:
	PYTHONPATH=src $(PY) tools/backend_gate.py

# Packed-kernel identity gate: the bit-plane screening census over the
# width-10 full space must be bit-identical to the scalar oracle, and
# the matpow / jump engines must hit their independent oracles.
packed-gate:
	PYTHONPATH=src $(PY) tools/packed_gate.py

# Serving-layer gate: spawn `repro serve-crc` on a loopback port,
# run a scripted NDJSON session (every op + error paths), SIGTERM it,
# and assert the drain events and metrics counters.  docs/SERVICE.md.
service-smoke:
	$(PY) tools/service_smoke.py

# Live-tier gate: a tiny real campaign with --events, replayed
# through `repro dash --once`, asserting the throughput / worker /
# latency-percentile / waterfall lines plus the friendly rc-2 error
# paths.  docs/OBSERVABILITY.md.
dash-smoke:
	$(PY) tools/dash_smoke.py

bench-full:
	REPRO_FULL=1 $(PY) -m pytest benchmarks/ --benchmark-only

repro:
	$(PY) examples/reproduce_paper.py

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PY) $$ex > /dev/null || exit 1; done; echo all examples OK

clean:
	rm -rf results .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
