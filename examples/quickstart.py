#!/usr/bin/env python3
"""Quickstart: evaluate CRC polynomials the way the paper does.

Run:  python examples/quickstart.py

Covers the library's core loop in ~40 lines of user code:
compute a CRC, check a frame, then ask the real question the paper
asks -- how many bit errors is this polynomial *guaranteed* to catch
at my message length? -- for the deployed Ethernet CRC and the
paper's proposed replacement.
"""

from repro import (
    get_spec,
    hamming_distance,
    koopman_to_full,
    paper_poly,
    report_for,
    weight_profile,
)
from repro.crc import append_fcs, check_fcs
from repro.network.frames import MTU_DATA_WORD_BITS


def main() -> None:
    # -- 1. Ordinary CRC usage -------------------------------------------
    spec = get_spec("CRC-32/IEEE-802.3")
    frame = append_fcs(spec, b"hello, network")
    print(f"frame with FCS: {frame.hex()}")
    print(f"FCS verifies:   {check_fcs(spec, frame)}")

    corrupted = bytearray(frame)
    corrupted[0] ^= 0x01
    print(f"after 1-bit corruption, FCS verifies: "
          f"{check_fcs(spec, bytes(corrupted))}\n")

    # -- 2. The paper's question: guaranteed error detection -------------
    g_8023 = koopman_to_full(0x82608EDB)       # same generator, math form
    g_koopman = paper_poly("BA0DC66B").full    # the paper's proposal

    for name, g in [("IEEE 802.3", g_8023), ("Koopman 0xBA0DC66B", g_koopman)]:
        hd = hamming_distance(g, MTU_DATA_WORD_BITS)
        print(f"{name}: HD={hd} at an Ethernet MTU "
              f"({MTU_DATA_WORD_BITS} bits) -- detects all "
              f"{hd - 1}-bit errors")

    # -- 3. Exact undetected-error weights (the W_k of the paper) --------
    w = weight_profile(g_8023, 2975, 4)
    print(f"\n802.3 weights at 2975 bits: {w}")
    print("(the paper's worked example: exactly one undetectable "
          "4-bit error appears at this length)")

    # -- 4. Everything about one polynomial in one report ----------------
    print("\n" + report_for(g_koopman).render())


if __name__ == "__main__":
    main()
