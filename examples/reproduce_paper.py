#!/usr/bin/env python3
"""One-shot reproduction driver: re-derive the paper's headline claims.

Run:  python examples/reproduce_paper.py [--full]

Walks every claim a reader of the paper would want re-checked, prints
PASS/FAIL per claim, and exits non-zero on any failure.  The default
set finishes in a few minutes; ``--full`` adds the long Table 1 cells
(16K-114K bits; tens of minutes -- the same cells as
``REPRO_FULL=1 pytest benchmarks/bench_table1_full.py``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import koopman_to_full
from repro.dist.farm import (
    brute_force_years,
    castagnoli_hardware_years,
    paper_campaign_estimate,
)
from repro.gf2.notation import class_signature_str
from repro.gf2.order import hd2_data_word_limit
from repro.hd.breakpoints import first_failure_length, refute_hd_at
from repro.hd.hamming import hamming_distance
from repro.hd.weights import count_weight_4, weight_profile
from repro.search.space import candidate_count

G_8023 = koopman_to_full(0x82608EDB)
G_BA0D = koopman_to_full(0xBA0DC66B)
G_ISCSI = koopman_to_full(0x8F6E37A0)

FAILURES = []


def claim(text: str, fn) -> None:
    t0 = time.perf_counter()
    try:
        ok = bool(fn())
    except Exception as exc:  # pragma: no cover - driver robustness
        ok = False
        text += f"  [raised {type(exc).__name__}: {exc}]"
    dt = time.perf_counter() - t0
    status = "PASS" if ok else "FAIL"
    print(f"  [{status}] {text}  ({dt:.1f}s)")
    if not ok:
        FAILURES.append(text)


def default_claims() -> None:
    print("Abstract / §1:")
    claim("802.3 achieves only HD=4 at an Ethernet MTU",
          lambda: hamming_distance(G_8023, 12112) == 4)
    claim("HD=6 at MTU is achievable (0xBA0DC66B)",
          lambda: hamming_distance(G_BA0D, 12112) == 6)

    print("§3 (background numbers):")
    claim("candidate space is exactly 1,073,774,592 polynomials",
          lambda: candidate_count(32)["canonical"] == 1_073_774_592)
    claim("802.3 W4 at 12112 bits is exactly 223,059",
          lambda: count_weight_4(G_8023, 12144) == 223_059)
    claim("802.3 bands: HD>=8 to 91, 7 to 171, 6 to 268, 5 to 2974",
          lambda: (hamming_distance(G_8023, 91) >= 8
                   and hamming_distance(G_8023, 171) == 7
                   and hamming_distance(G_8023, 268) == 6
                   and hamming_distance(G_8023, 2974) == 5))
    claim("Castagnoli iSCSI pick 0x8F6E37A0: HD=6 only to 5243",
          lambda: first_failure_length(G_ISCSI, 4, n_max=8000) == 5244)

    print("§4.1 (worked example):")
    claim("802.3 HD 5->4 transition at 2975, with exactly one "
          "undetected 4-bit error",
          lambda: weight_profile(G_8023, 2975, 4) == {2: 0, 3: 0, 4: 1})

    print("§4.2 (campaign economics):")
    claim("2001 fleet completes the space in one summer (2.5-4.5 months)",
          lambda: 2.5 <= paper_campaign_estimate().wall_months <= 4.5)
    claim("Castagnoli's hardware would need >3600 years",
          lambda: castagnoli_hardware_years() > 3600)
    claim("naive brute force: ~151 million years",
          lambda: abs(brute_force_years() / 151e6 - 1) < 0.02)

    print("§4.3 / §5 (the new polynomial):")
    claim("0xBA0DC66B factors as {1,3,28}",
          lambda: class_signature_str(G_BA0D) == "{1,3,28}")
    claim("0xBA0DC66B keeps HD>=4 through 114,663 bits (>9 MTU), "
          "from pure algebra",
          lambda: hd2_data_word_limit(G_BA0D) == 114_663 > 9 * 12_112)
    claim("0xBA0DC66B holds HD=6 past one MTU (inverse filter at 12112)",
          lambda: refute_hd_at(G_BA0D, 6, 12112) is None)

    print("§4.5 (validation program):")
    claim("published Castagnoli value 1F6ACFB13 is broken "
          "(HD=6 collapses near 383 bits)",
          lambda: hamming_distance(0x1F6ACFB13, 500) < 6)
    claim("corrected value 1F4ACFB13 is fine at 12112 bits",
          lambda: hamming_distance(0x1F4ACFB13, 12112) == 6)


def full_claims() -> None:
    print("Table 1 long cells (--full):")
    claim("0xBA0DC66B: first weight-4 failure at exactly 16,361",
          lambda: first_failure_length(G_BA0D, 4, n_max=20_000) == 16_361)
    claim("0xFA567D89: HD=6 through 32,736",
          lambda: first_failure_length(
              koopman_to_full(0xFA567D89), 4, n_max=40_000) == 32_737)
    claim("0x992C1A4C: HD=6 through 32,738 (2014 erratum)",
          lambda: first_failure_length(
              koopman_to_full(0x992C1A4C), 4, n_max=40_000) == 32_739)
    claim("802.3: HD=4 through 91,607",
          lambda: first_failure_length(G_8023, 3, n_max=95_000) == 91_608)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--full", action="store_true",
                    help="also verify the 16K-114K-bit Table 1 cells")
    args = ap.parse_args()
    print("Reproducing Koopman (DSN 2002) headline claims:\n")
    default_claims()
    if args.full:
        full_claims()
    print()
    if FAILURES:
        print(f"{len(FAILURES)} claim(s) FAILED")
        return 1
    print("all claims reproduced")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
