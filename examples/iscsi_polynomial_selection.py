#!/usr/bin/env python3
"""Reproduce the paper's §4.3 argument: which CRC should iSCSI adopt?

Run:  python examples/iscsi_polynomial_selection.py

The draft iSCSI standard (2001) was converging on Castagnoli's {1,31}
polynomial 0x8F6E37A0, recommended by Sheinwald et al. for keeping
HD=4 out to very long data words.  The paper counters with the newly
discovered {1,3,28} polynomial 0xBA0DC66B: the same long-message
guarantee, plus HD=6 for everything up to ~16K bits -- i.e. every
single-MTU packet on the storage network gets two extra bits of
guaranteed error detection.

This example evaluates both candidates (and the legacy 802.3 CRC as
the baseline) on the iSCSI workload mix: single MTU frames and packed
multi-MTU PDUs under one end-to-end CRC.
"""

from repro import hamming_distance, paper_poly, report_for
from repro.gf2.order import hd2_data_word_limit
from repro.hd.breakpoints import max_length_for_hd
from repro.network.frames import MTU_DATA_WORD_BITS, IscsiPdu

CANDIDATES = ["802.3", "8F6E37A0", "BA0DC66B"]


def main() -> None:
    print("iSCSI workload: single MTUs + packed multi-MTU PDUs\n")

    header = f"{'polynomial':>22} | {'HD @ 1 MTU':>10} | {'HD>=4 through':>14}"
    print(header)
    print("-" * len(header))
    for key in CANDIDATES:
        pp = paper_poly(key)
        hd_mtu = hamming_distance(pp.full, MTU_DATA_WORD_BITS)
        # HD >= 4 holds until weight-2 or weight-3 errors appear; for
        # these (x+1)-divisible / primitive generators that is pure
        # algebra (order of x), no search needed.
        hd4_limit = hd2_data_word_limit(pp.full)
        if key == "802.3":
            # 802.3 is not divisible by (x+1): weight-3 errors bound it.
            hd4_limit = pp.hd_breaks[4]
        print(f"{pp.label[:22]:>22} | {hd_mtu:>10} | {hd4_limit:>14,}")

    print("\nPacked PDUs under one CRC (the multi-MTU case):")
    koop = paper_poly("BA0DC66B")
    for mtus in (1, 2, 4, 8, 9):
        pdu = IscsiPdu.packed_mtus(mtus)
        ok = pdu.data_word_bits <= 114_663
        print(f"  {mtus} MTU payload = {pdu.data_word_bits:>7,} bits: "
              f"0xBA0DC66B HD=4 guarantee {'holds' if ok else 'EXCEEDED'}")

    print(
        "\nConclusion (the paper's): 0xBA0DC66B gives HD=6 for every\n"
        "single-MTU message while preserving HD=4 beyond 9 MTUs --\n"
        "strictly better than the draft's 0x8F6E37A0 for iSCSI.\n"
    )

    print("Short-message check (both keep HD=6 well past a 512B+40B packet):")
    for key in ("8F6E37A0", "BA0DC66B"):
        pp = paper_poly(key)
        limit = max_length_for_hd(pp.full, 6, n_max=6000)
        more = " (continues to 16,360 -- see REPRO_FULL benches)" \
            if key == "BA0DC66B" and limit == 6000 else ""
        print(f"  {key}: HD=6 verified through {limit:,} bits{more}")


if __name__ == "__main__":
    main()
