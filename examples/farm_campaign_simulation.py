#!/usr/bin/env python3
"""Replay the 2001 search campaign -- and run a real one, with faults.

Run:  python examples/farm_campaign_simulation.py

Part 1 prices the paper's §4.2 campaign: the full 1,073,774,592-
polynomial space on the actual 2001 fleet (50 Alphas + 30 intermittent
UltraSparcs at ~2 polynomials/s/CPU), versus Castagnoli's special-
purpose hardware and naive brute force.

Part 2 runs a *live* scaled campaign (every 10-bit CRC polynomial)
through the same distributed machinery -- coordinator, leased task
queue, checkpointing -- while a fault plan kills a worker mid-chunk
and duplicates another's completion message.  The campaign must finish
with exactly the same survivors as a clean run, demonstrating the
fault-tolerance the real months-long computation needed.
"""

from repro.dist import Coordinator, FaultPlan
from repro.dist.farm import (
    FarmSpec,
    brute_force_years,
    castagnoli_hardware_years,
    paper_campaign_estimate,
    simulate_campaign,
)
from repro.dist.worker import ChunkWorker
from repro.search import SearchConfig, census_of, search_all
from repro.search.space import candidate_count


def part1_fleet_economics() -> None:
    print("=" * 70)
    print("Part 1: what the 2001 campaign cost")
    print("=" * 70)
    est = paper_campaign_estimate()
    print(f"  fleet simulation:  {est.summary()}")
    print("  paper's report:    late May to early September 2001 "
          "(~3.5 months)")
    print(f"  Castagnoli's hardware instead: "
          f"{castagnoli_hardware_years():,.0f} years "
          "(paper: 'in excess of 3600 years')")
    print(f"  naive brute force instead:     "
          f"{brute_force_years() / 1e6:,.0f} million years "
          "(paper: 151 million years)")

    print("\n  scaling the fleet (same 2/s/CPU rate):")
    from repro.dist.farm import MachineSpec

    for cpus in (25, 50, 100, 200):
        farm = FarmSpec((MachineSpec("cpu", cpus, 2.0),))
        est = simulate_campaign(farm, candidate_count(32)["canonical"])
        print(f"    {cpus:>4} CPUs -> {est.wall_days:6.0f} days")


def part2_live_campaign() -> None:
    print()
    print("=" * 70)
    print("Part 2: a live width-10 campaign with injected faults")
    print("=" * 70)
    cfg = SearchConfig(
        width=10, target_hd=4, filter_lengths=(32, 80, 200),
        confirm_weights=False,
    )
    # ground truth from a clean, single-process run
    clean = search_all(cfg)
    print(f"  clean run: {clean.examined} candidates, "
          f"{len(clean.survivors)} survivors, "
          f"{clean.filtering_rate:.0f} candidates/s")

    coord = Coordinator(config=cfg, chunk_size=64, lease_duration=4.0)
    plan = FaultPlan(
        crash_points={"alpha-3": 2},          # dies on its 3rd chunk
        duplicate_completions={"alpha-1": 0},  # first result sent twice
        straggle={"sparc-1": 3.0},             # 3x slower than the rest
    )
    workers = [
        ChunkWorker(name, cfg, faults=plan)
        for name in ("alpha-1", "alpha-2", "alpha-3", "sparc-1")
    ]
    coord.run(workers)
    print(f"  distributed run: {coord.queue.progress()}")
    print(f"    lease reassignments after crash: {coord.reassignments}")
    print(f"    duplicate deliveries absorbed:   {coord.duplicate_deliveries}")

    same = {r.poly for r in coord.campaign.survivors} == {
        r.poly for r in clean.survivors
    }
    print(f"    survivors identical to clean run: {same}")
    assert same

    census = census_of(coord.campaign.survivors)
    print(f"\n  survivor census ({census.total} polynomials):")
    for sig, count in census.sorted_rows():
        print(f"    {{{','.join(map(str, sig))}}}: {count}")
    print(f"  all divisible by (x+1): {census.all_divisible_by_x_plus_1()}"
          "  <- the paper's Table 2 law, at width 10")


def main() -> None:
    part1_fleet_economics()
    part2_live_campaign()


if __name__ == "__main__":
    main()
