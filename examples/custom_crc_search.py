#!/usr/bin/env python3
"""Find the best CRC polynomial for *your* message length.

Run:  python examples/custom_crc_search.py [--width 8] [--bits 64]

The paper closes by noting that an efficient search "opens up the
possibility of identifying optimal polynomials that are customized to
the particular message lengths of specific applications".  This
example does exactly that: an exhaustive search over every generator
of the requested width, reporting the best achievable HD at your
message length and the polynomials that achieve it (with their
factorization classes and tap counts, hardware-cost style).
"""

import argparse

from repro import SearchConfig, census_of, search_all
from repro.analysis.tables import render_table2
from repro.gf2.notation import class_signature_str, full_to_koopman
from repro.hd.hamming import hamming_distance
from repro.search.census import fewest_taps


def best_hd_search(width: int, bits: int) -> None:
    # Walk target HDs downward until survivors exist: the first
    # non-empty level is the optimum for this width/length.
    for target in range(8, 2, -1):
        cascade = tuple(sorted({max(8, bits // 8), max(12, bits // 2), bits}))
        cfg = SearchConfig(
            width=width, target_hd=target, filter_lengths=cascade,
            confirm_weights=False,
        )
        result = search_all(cfg)
        if result.survivors:
            print(
                f"best achievable HD at {bits} bits with a {width}-bit CRC: "
                f"{target} ({len(result.survivors)} polynomial(s), "
                f"{result.examined} candidates screened at "
                f"{result.filtering_rate:.0f}/s)\n"
            )
            survivors = [r.poly for r in result.survivors]
            for p in sorted(survivors)[:10]:
                hd = hamming_distance(p, bits)
                print(
                    f"  {p:#06x}  koopman {full_to_koopman(p):#04x}  "
                    f"class {class_signature_str(p)}  "
                    f"{p.bit_count()} terms  HD={hd}"
                )
            if len(survivors) > 10:
                print(f"  ... and {len(survivors) - 10} more")
            sparse = fewest_taps(survivors)[0]
            print(
                f"\nhardware pick (fewest taps): {sparse:#x} "
                f"({sparse.bit_count()} terms) -- the paper's criterion "
                "for 0x90022004 / 0x80108400"
            )
            print("\n" + render_table2(
                census_of(survivors),
                title=f"width-{width} HD>={target} @ {bits} bits, by class",
            ))
            return
    print("no polynomial of this width achieves HD>2 at that length")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--width", type=int, default=8,
                    help="CRC width in bits (exhaustive through ~12)")
    ap.add_argument("--bits", type=int, default=64,
                    help="your message length in bits")
    args = ap.parse_args()
    if args.width > 12:
        ap.error("widths beyond 12 need the distributed campaign "
                 "(see examples/farm_campaign_simulation.py)")
    best_hd_search(args.width, args.bits)


if __name__ == "__main__":
    main()
