#!/usr/bin/env python3
"""What does a CRC choice cost on *your* traffic?

Run:  python examples/traffic_mix_analysis.py

§3 of the paper anchors its evaluation lengths in measured traffic
(40-byte acks, 512-byte data packets, full MTUs).  But a deployment
never sees one length -- it sees a mix -- so the decision-relevant
number is the traffic-weighted undetected-error exposure.  This
example evaluates the paper's main candidates over a stylized
Internet mix and over a storage-area mix, showing how the ranking the
paper argues for emerges from (and sharpens with) workload awareness.
"""

from repro import paper_poly
from repro.network.frames import MTU_DATA_WORD_BITS
from repro.network.traffic import (
    TrafficClass,
    compare_exposure,
    exposure,
    internet_mix,
)

CANDIDATES = {
    "802.3": paper_poly("802.3").full,
    "8F6E37A0": paper_poly("8F6E37A0").full,
    "BA0DC66B": paper_poly("BA0DC66B").full,
    "D419CC15": paper_poly("D419CC15").full,
}


def main() -> None:
    print("Internet mix (50% acks / 30% 512B data / 20% MTU):\n")
    print(compare_exposure(CANDIDATES, internet_mix()))

    print("\nDetail for the deployed 802.3 CRC on that mix:\n")
    print(exposure(CANDIDATES["802.3"], internet_mix()).render())

    print("\nDetail for the paper's 0xBA0DC66B on the same mix:\n")
    print(exposure(CANDIDATES["BA0DC66B"], internet_mix()).render())

    # A storage network carries mostly large transfers: weight the MTU
    # leg heavily and add a half-MTU control-message class.
    storage_mix = [
        TrafficClass("control", 400, 0.10),
        TrafficClass("half MTU", MTU_DATA_WORD_BITS // 2, 0.20),
        TrafficClass("full MTU", MTU_DATA_WORD_BITS, 0.70),
    ]
    print("\nStorage-area mix (70% MTU):\n")
    print(compare_exposure(CANDIDATES, storage_mix))
    print(
        "\nReading: on MTU-heavy traffic the HD=6 polynomial's 4-bit\n"
        "miss rate is exactly zero across the whole mix -- the paper's\n"
        "iSCSI argument, quantified per workload."
    )


if __name__ == "__main__":
    main()
