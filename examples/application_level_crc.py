#!/usr/bin/env python3
"""Stacking an application-level CRC on top of the link CRC.

Run:  python examples/application_level_crc.py

Stone & Partridge (cited in the paper's §4.4) urged applications to
run their own end-to-end check because link CRCs are exercised far
more often than BER folklore predicts.  The paper offers its
polynomials for that role.  Two practical questions follow:

1. *Which polynomial should the app layer pick?*  Not the link's own:
   an error pattern invisible to one 802.3 CRC is invisible to a
   second 802.3 CRC by definition.  The joint detector is the
   combined (lcm) generator -- same polynomial twice buys 0 extra
   bits; a coprime pair buys a full 64-bit effective check.
2. *How strong is the stack?*  The joint HD of the combined generator,
   computed here exactly (or as a verified lower bound when the joint
   HD outruns what is exactly computable).
"""

from repro import koopman_to_full
from repro.crc.stream import StreamingCrc, crc_combine
from repro.crc.catalog import get_spec
from repro.network.stacked import same_poly_pitfall, stacked_hd

G_LINK = koopman_to_full(0x82608EDB)    # the deployed Ethernet CRC
G_APP = koopman_to_full(0xBA0DC66B)     # the paper's proposal


def main() -> None:
    n = 1000  # a 125-byte application record

    print("Pitfall: reusing the link polynomial at the app layer\n")
    print(f"  same_poly_pitfall(802.3, {n} bits): "
          f"{same_poly_pitfall(G_LINK, n)} -- zero added detection\n")

    print("Stacking 802.3 (link) with 0xBA0DC66B (application):\n")
    print(stacked_hd(G_LINK, G_APP, n).render())

    print("\nSame stack at a full MTU:\n")
    print(stacked_hd(G_LINK, G_APP, 12112).render())

    # Bonus: the streaming/combine machinery applications actually use
    # to maintain an end-to-end CRC over scattered fragments.
    spec = get_spec("CRC-32/IEEE-802.3")
    fragments = [b"fragment-one|", b"fragment-two|", b"fragment-three"]
    whole = b"".join(fragments)

    h = StreamingCrc(spec)
    for frag in fragments:
        h.update(frag)
    from repro.crc.engine import crc_bitwise

    assert h.digest() == crc_bitwise(spec, whole)

    crc = crc_bitwise(spec, fragments[0])
    for frag in fragments[1:]:
        crc = crc_combine(spec, crc, crc_bitwise(spec, frag), len(frag))
    assert crc == crc_bitwise(spec, whole)
    print(
        "\nStreaming update() and O(log n) crc_combine() both reproduce "
        f"the one-shot CRC ({crc:#010x}) -- the plumbing an app-level "
        "check needs for scattered I/O."
    )


if __name__ == "__main__":
    main()
