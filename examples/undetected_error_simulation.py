#!/usr/bin/env python3
"""How often does a corrupted frame slip past the CRC?

Run:  python examples/undetected_error_simulation.py

Stone & Partridge (cited by the paper's §4.4) measured that real
traffic leans on the CRC "once every few thousand packets" -- far more
than BER folklore suggests.  This example quantifies the consequence
for an application-level error check:

1. Monte Carlo: corrupt frames with i.i.d. bit errors and count how
   many corrupted frames still pass the CRC -- on both the syndrome
   fast path and the real byte-level receive path (they must agree:
   CRC error detection is data-independent by linearity).
2. Analytics: the exact P_ud = sum W_k p^k (1-p)^(N-k) from this
   library's exact weight counts, compared against the simulation.
3. The design-point payoff: the same exercise conditioned on 4-bit
   errors, where a HD=6 polynomial's undetected rate is exactly zero
   while HD=4 polynomials leak.
"""

from math import comb

from repro import koopman_to_full, weight_profile
from repro.network.errors import BernoulliBitErrors, FixedWeightErrors
from repro.network.montecarlo import analytic_pud, simulate_undetected

CRC8_ATM = 0x107            # small CRC so events are observable quickly
G_8023 = koopman_to_full(0x82608EDB)
G_BA0D = koopman_to_full(0xBA0DC66B)


def part1_crc8_monte_carlo() -> None:
    n, ber, trials = 80, 0.02, 200_000
    big_n = n + 8
    print(f"CRC-8/ATM over {n}-bit payloads at BER={ber} "
          f"({trials:,} transmissions)")

    res = simulate_undetected(
        CRC8_ATM, n, BernoulliBitErrors(ber, seed=7), trials=trials
    )
    print(f"  syndrome path: {res.summary()}")

    res_frames = simulate_undetected(
        CRC8_ATM, n, FixedWeightErrors(4, seed=9), trials=5_000, via_frames=True
    )
    res_fast = simulate_undetected(
        CRC8_ATM, n, FixedWeightErrors(4, seed=9), trials=5_000
    )
    print(f"  real receive path agrees with syndrome shortcut: "
          f"{res_frames.undetected == res_fast.undetected} "
          f"({res_frames.undetected} undetected in both)")

    weights = weight_profile(CRC8_ATM, n, 4)
    pud = analytic_pud(weights, big_n, ber)
    p_corrupt = 1 - (1 - ber) ** big_n
    print(f"  exact weights {weights}")
    print(f"  analytic P[undetected | corrupted] = {pud / p_corrupt:.3g}; "
          f"simulated = {res.p_undetected_given_corrupted:.3g}")


def part2_design_point_payoff() -> None:
    n = 3600  # a 450-byte application record
    big_n = n + 32
    print(f"\n32-bit CRCs guarding {n}-bit records against 4-bit errors:")
    for name, g in [("IEEE 802.3 (HD=4 here)", G_8023),
                    ("0xBA0DC66B (HD=6 here)", G_BA0D)]:
        w4 = weight_profile(g, n, 4)[4]
        rate = w4 / comb(big_n, 4)
        shown = f"{rate:.3g}" if w4 else "0 (guaranteed)"
        print(f"  {name:>24}: W4={w4:>6}  per-4-bit-error undetected "
              f"rate = {shown}")
    print(
        "\nAt lengths where the paper's polynomial holds HD=6, the\n"
        "undetected rate for <=5-bit errors is exactly zero -- not\n"
        "small, zero.  That is what 'two extra bits of Hamming\n"
        "distance' buys an application-level check."
    )


def main() -> None:
    part1_crc8_monte_carlo()
    part2_design_point_payoff()


if __name__ == "__main__":
    main()
