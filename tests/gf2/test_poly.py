"""Unit and property tests for GF(2)[x] arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.poly import (
    degree,
    derivative,
    divisible_by_x_plus_1,
    evaluate_at_one,
    gf2_add,
    gf2_divmod,
    gf2_gcd,
    gf2_mod,
    gf2_mul,
    gf2_mulmod,
    gf2_powmod,
    gf2_sqrt,
    is_palindrome,
    reciprocal,
    x_pow_mod,
)

polys = st.integers(min_value=0, max_value=(1 << 64) - 1)
nonzero_polys = st.integers(min_value=1, max_value=(1 << 64) - 1)


class TestDegree:
    def test_zero(self):
        assert degree(0) == -1

    def test_one(self):
        assert degree(1) == 0

    def test_crc32(self):
        assert degree(0x104C11DB7) == 32

    @given(polys)
    def test_matches_bit_length(self, p):
        assert degree(p) == p.bit_length() - 1


class TestAddMul:
    def test_add_is_xor(self):
        assert gf2_add(0b101, 0b011) == 0b110

    @given(polys, polys)
    def test_add_self_inverse(self, a, b):
        assert gf2_add(gf2_add(a, b), b) == a

    def test_mul_basic(self):
        # (x+1)^2 == x^2 + 1 in characteristic 2
        assert gf2_mul(0b11, 0b11) == 0b101

    def test_mul_zero(self):
        assert gf2_mul(0, 0x104C11DB7) == 0
        assert gf2_mul(0x104C11DB7, 0) == 0

    def test_mul_identity(self):
        assert gf2_mul(1, 0xDEADBEEF) == 0xDEADBEEF

    @given(polys, polys)
    @settings(max_examples=200)
    def test_mul_commutative(self, a, b):
        assert gf2_mul(a, b) == gf2_mul(b, a)

    @given(polys, polys, polys)
    @settings(max_examples=100)
    def test_mul_distributes_over_add(self, a, b, c):
        assert gf2_mul(a, b ^ c) == gf2_mul(a, b) ^ gf2_mul(a, c)

    @given(nonzero_polys, nonzero_polys)
    def test_mul_degree_adds(self, a, b):
        assert degree(gf2_mul(a, b)) == degree(a) + degree(b)


class TestDivMod:
    def test_exact_division(self):
        prod = gf2_mul(0b1011, 0b111)
        q, r = gf2_divmod(prod, 0b1011)
        assert (q, r) == (0b111, 0)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf2_divmod(0b101, 0)
        with pytest.raises(ZeroDivisionError):
            gf2_mod(0b101, 0)

    @given(polys, nonzero_polys)
    @settings(max_examples=300)
    def test_divmod_invariant(self, a, b):
        q, r = gf2_divmod(a, b)
        assert gf2_mul(q, b) ^ r == a
        assert degree(r) < degree(b)

    @given(polys, nonzero_polys)
    def test_mod_agrees_with_divmod(self, a, b):
        assert gf2_mod(a, b) == gf2_divmod(a, b)[1]


class TestGcd:
    def test_known(self):
        # gcd((x+1)(x^2+x+1), (x+1)) == x+1
        assert gf2_gcd(gf2_mul(0b11, 0b111), 0b11) == 0b11

    @given(polys, polys)
    @settings(max_examples=200)
    def test_gcd_divides_both(self, a, b):
        g = gf2_gcd(a, b)
        if g:
            assert gf2_mod(a, g) == 0
            assert gf2_mod(b, g) == 0

    @given(polys, polys)
    def test_gcd_commutative(self, a, b):
        assert gf2_gcd(a, b) == gf2_gcd(b, a)

    @given(nonzero_polys, nonzero_polys, nonzero_polys)
    @settings(max_examples=100)
    def test_common_factor_detected(self, a, b, c):
        # gcd(ac, bc) is always a multiple of c.
        g = gf2_gcd(gf2_mul(a, c), gf2_mul(b, c))
        assert gf2_mod(g, c) == 0


class TestPowMod:
    def test_x_pow(self):
        # x^3 mod (x^3+x+1) == x+1
        assert x_pow_mod(3, 0b1011) == 0b011

    def test_negative_exponent(self):
        with pytest.raises(ValueError):
            gf2_powmod(0b10, -1, 0b1011)

    @given(st.integers(min_value=0, max_value=500), nonzero_polys.filter(lambda p: p > 1))
    @settings(max_examples=100)
    def test_powmod_matches_repeated_mul(self, e, m):
        expected = gf2_mod(1, m)
        for _ in range(e % 20):
            expected = gf2_mulmod(expected, 0b10, m)
        assert gf2_powmod(0b10, e % 20, m) == expected

    def test_exponent_addition_law(self):
        m = 0x104C11DB7
        a = x_pow_mod(1000, m)
        b = x_pow_mod(234, m)
        assert gf2_mulmod(a, b, m) == x_pow_mod(1234, m)


class TestSqrtDerivative:
    def test_sqrt_of_square(self):
        p = 0b1011011
        assert gf2_sqrt(gf2_mul(p, p)) == p

    def test_sqrt_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            gf2_sqrt(0b10)  # x is not a perfect square

    @given(polys)
    @settings(max_examples=200)
    def test_sqrt_roundtrip(self, p):
        assert gf2_sqrt(gf2_mul(p, p)) == p

    def test_derivative_of_square_is_zero(self):
        p = 0b110111
        assert derivative(gf2_mul(p, p)) == 0

    def test_derivative_known(self):
        # d/dx (x^3 + x^2 + x + 1) = 3x^2 + 2x + 1 = x^2 + 1 over GF(2)
        assert derivative(0b1111) == 0b101

    @given(polys, polys)
    @settings(max_examples=150)
    def test_derivative_product_rule(self, a, b):
        left = derivative(gf2_mul(a, b))
        right = gf2_mul(derivative(a), b) ^ gf2_mul(a, derivative(b))
        assert left == right


class TestReciprocal:
    def test_crc32_reciprocal(self):
        assert reciprocal(0x104C11DB7) == 0x1DB710641

    @given(nonzero_polys.filter(lambda p: p & 1))
    @settings(max_examples=200)
    def test_involution_for_unit_constant_term(self, p):
        # With a non-zero constant term, bit-reversal is an involution.
        assert reciprocal(reciprocal(p)) == p

    @given(nonzero_polys.filter(lambda p: p & 1), nonzero_polys.filter(lambda p: p & 1))
    @settings(max_examples=100)
    def test_reciprocal_multiplicative(self, a, b):
        assert reciprocal(gf2_mul(a, b)) == gf2_mul(reciprocal(a), reciprocal(b))

    def test_palindrome(self):
        assert is_palindrome(0b1001001)
        assert not is_palindrome(0b1101)


class TestParity:
    def test_even_terms_divisible(self):
        assert divisible_by_x_plus_1(0b11)       # x+1 itself
        assert divisible_by_x_plus_1(0b1111)     # 4 terms
        assert not divisible_by_x_plus_1(0b1011)  # 3 terms

    @given(nonzero_polys)
    @settings(max_examples=200)
    def test_matches_actual_division(self, p):
        assert divisible_by_x_plus_1(p) == (gf2_mod(p, 0b11) == 0)

    @given(nonzero_polys)
    def test_evaluate_at_one(self, p):
        assert evaluate_at_one(p) == (0 if divisible_by_x_plus_1(p) else 1)
