"""Tests for irreducibility testing and enumeration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.irreducible import count_irreducibles, irreducibles, is_irreducible
from repro.gf2.poly import gf2_mul

# Ground truth: all irreducible polynomials of degree <= 4 over GF(2).
KNOWN_IRREDUCIBLE = {
    0b10,      # x
    0b11,      # x+1
    0b111,     # x^2+x+1
    0b1011,    # x^3+x+1
    0b1101,    # x^3+x^2+1
    0b10011,   # x^4+x+1
    0b11001,   # x^4+x^3+1
    0b11111,   # x^4+x^3+x^2+x+1
}

KNOWN_REDUCIBLE = {
    0b100,      # x^2
    0b101,      # (x+1)^2
    0b110,      # x(x+1)
    0b1111,     # (x+1)(x^2+x+1)
    0b1001,     # (x+1)^3
    0x104C11DB8,  # even constant term
}


class TestIsIrreducible:
    @pytest.mark.parametrize("p", sorted(KNOWN_IRREDUCIBLE))
    def test_known_irreducible(self, p):
        assert is_irreducible(p)

    @pytest.mark.parametrize("p", sorted(KNOWN_REDUCIBLE))
    def test_known_reducible(self, p):
        assert not is_irreducible(p)

    def test_constants_are_not_irreducible(self):
        assert not is_irreducible(0)
        assert not is_irreducible(1)

    def test_crc32_is_irreducible(self):
        assert is_irreducible(0x104C11DB7)

    def test_castagnoli_d419cc15_is_irreducible(self):
        assert is_irreducible((0xD419CC15 << 1) | 1)

    @given(
        st.sampled_from(sorted(KNOWN_IRREDUCIBLE - {0b10, 0b11})),
        st.sampled_from(sorted(KNOWN_IRREDUCIBLE - {0b10, 0b11})),
    )
    def test_products_are_reducible(self, a, b):
        assert not is_irreducible(gf2_mul(a, b))


class TestEnumeration:
    @pytest.mark.parametrize("d,expected", [(1, 2), (2, 1), (3, 2), (4, 3), (5, 6), (6, 9), (7, 18), (8, 30)])
    def test_counts_match_formula(self, d, expected):
        listed = list(irreducibles(d))
        assert len(listed) == expected
        assert count_irreducibles(d) == expected

    def test_enumeration_degree_3(self):
        assert set(irreducibles(3)) == {0b1011, 0b1101}

    def test_all_enumerated_are_irreducible(self):
        for d in range(1, 9):
            for f in irreducibles(d):
                assert is_irreducible(f), hex(f)

    def test_paper_degree_28_count(self):
        # Used implicitly by Table 2's class sizes; formula only (no
        # enumeration at this degree).
        assert count_irreducibles(28) == 9586395

    def test_degree_31_count_paper_context(self):
        # The paper notes ~6.93e7 {1,31} candidates with primitive
        # degree-31 factor; the number of *irreducible* degree-31
        # polynomials is (2^31 - 2)/31, all of which are primitive
        # because 2^31 - 1 is (Mersenne) prime.
        assert count_irreducibles(31) == ((1 << 31) - 2) // 31
        assert count_irreducibles(31) == 69273666
