"""Tests for polynomial notation conversions -- anchored on the
paper's own worked examples."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.notation import (
    class_signature_str,
    exponents,
    factor_strs,
    from_exponents,
    full_to_koopman,
    full_to_normal,
    full_to_reflected,
    koopman_to_full,
    normal_to_full,
    poly_str,
    reciprocal_koopman,
)

koopman32 = st.integers(min_value=1 << 31, max_value=(1 << 32) - 1)


class TestKoopmanNotation:
    def test_paper_8023_example(self):
        # "We represent this polynomial as ... 0x82608EDB" with the
        # exponent list given in §3.
        exps = [32, 26, 23, 22, 16, 12, 11, 10, 8, 7, 5, 4, 2, 1, 0]
        full = from_exponents(exps)
        assert full_to_koopman(full) == 0x82608EDB
        assert full == 0x104C11DB7

    def test_paper_ba0dc66b_expansion(self):
        # §5's full expansion of the headline polynomial.
        exps = [32, 30, 29, 28, 26, 20, 19, 17, 16, 15, 11, 10, 7, 6, 4, 2, 1, 0]
        assert koopman_to_full(0xBA0DC66B) == from_exponents(exps)

    @given(koopman32)
    def test_roundtrip(self, k):
        assert full_to_koopman(koopman_to_full(k)) == k

    def test_rejects_missing_top_bit(self):
        with pytest.raises(ValueError):
            koopman_to_full(0x7FFFFFFF)

    def test_rejects_missing_plus_one(self):
        with pytest.raises(ValueError):
            full_to_koopman(0x104C11DB6)


class TestNormalReflected:
    def test_crc32_conventions(self):
        full = 0x104C11DB7
        assert full_to_normal(full) == 0x04C11DB7
        assert full_to_reflected(full) == 0xEDB88320
        assert normal_to_full(0x04C11DB7, 32) == full

    def test_crc32c_conventions(self):
        full = normal_to_full(0x1EDC6F41, 32)
        assert full_to_reflected(full) == 0x82F63B78

    @given(koopman32)
    def test_normal_roundtrip(self, k):
        full = koopman_to_full(k)
        assert normal_to_full(full_to_normal(full), 32) == full

    @given(koopman32)
    def test_reflected_involution(self, k):
        full = koopman_to_full(k)
        r = full_to_reflected(full)
        # reflecting the reflected normal form returns the original
        assert full_to_reflected(normal_to_full(r, 32)) == full_to_normal(full)


class TestExponents:
    @given(st.sets(st.integers(min_value=0, max_value=80), min_size=1))
    def test_roundtrip(self, exps):
        p = from_exponents(sorted(exps))
        assert set(exponents(p)) == exps

    def test_duplicate_exponent_rejected(self):
        with pytest.raises(ValueError):
            from_exponents([3, 3])

    def test_poly_str(self):
        assert poly_str(0b1011) == "x^3 + x + 1"
        assert poly_str(0b11) == "x + 1"
        assert poly_str(1) == "1"
        assert poly_str(0) == "0"


class TestClassStrings:
    def test_paper_classes(self):
        assert class_signature_str(koopman_to_full(0xBA0DC66B)) == "{1,3,28}"
        assert class_signature_str(koopman_to_full(0xFA567D89)) == "{1,1,15,15}"

    def test_factor_strs_ba0dc66b(self):
        strs = factor_strs(koopman_to_full(0xBA0DC66B))
        assert strs[0] == "x + 1"
        assert strs[1] == "x^3 + x^2 + 1"
        assert strs[2].startswith("x^28 + x^22 + x^20 + x^19")


class TestReciprocalKoopman:
    @given(koopman32)
    @settings(max_examples=100)
    def test_involution(self, k):
        assert reciprocal_koopman(reciprocal_koopman(k)) == k

    def test_self_reciprocal_example(self):
        # 0xD419CC15's full encoding is a palindrome (seen in reports).
        assert reciprocal_koopman(0xD419CC15) == 0xD419CC15
