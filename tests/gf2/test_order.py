"""Tests for order-of-x computation and primitivity.

The HD=2 onsets here are paper Table 1's bottom row, reproduced purely
algebraically (no search) -- among the strongest cross-checks in the
suite because they come from a completely different code path than the
syndrome machinery.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.irreducible import irreducibles
from repro.gf2.notation import koopman_to_full
from repro.gf2.order import (
    hd2_data_word_limit,
    is_primitive,
    order_mod_irreducible,
    order_of_x,
    verify_order,
)
from repro.gf2.poly import gf2_mul, x_pow_mod


class TestOrderIrreducible:
    def test_primitive_degree_2(self):
        assert order_mod_irreducible(0b111) == 3

    def test_primitive_degree_4(self):
        assert order_mod_irreducible(0b10011) == 15

    def test_nonprimitive_degree_4(self):
        # x^4+x^3+x^2+x+1 divides x^5+1: order 5, not 15
        assert order_mod_irreducible(0b11111) == 5

    def test_x_plus_1(self):
        assert order_mod_irreducible(0b11) == 1

    def test_rejects_x(self):
        with pytest.raises(ValueError):
            order_mod_irreducible(0b10)

    def test_all_small_irreducibles_verify(self):
        for d in range(2, 11):
            for f in irreducibles(d):
                if f == 0b10:
                    continue
                o = order_mod_irreducible(f)
                assert verify_order(f, o), hex(f)
                assert ((1 << d) - 1) % o == 0


class TestPrimitivity:
    def test_crc32_8023_is_primitive(self):
        # The deployed CRC-32 generator is primitive (order 2^32-1).
        # (The paper's parenthetical calls it non-primitive; the
        # computation here and the standard literature disagree --
        # recorded in EXPERIMENTS.md.)
        assert is_primitive(koopman_to_full(0x82608EDB))

    def test_d419cc15_not_primitive(self):
        # Castagnoli's {32} polynomial: irreducible with order 65537.
        g = koopman_to_full(0xD419CC15)
        assert not is_primitive(g)
        assert order_of_x(g) == 65537

    def test_composite_not_primitive(self):
        assert not is_primitive(gf2_mul(0b111, 0b111))

    def test_known_primitive_trinomials(self):
        for f in (0b1011, 0b10011, 0b100101, 0b10000011):  # degrees 3,4,5,7
            assert is_primitive(f), bin(f)


class TestOrderComposite:
    def test_lcm_of_factors(self):
        # (x^2+x+1)(x^4+x+1): lcm(3, 15) = 15
        assert order_of_x(gf2_mul(0b111, 0b10011)) == 15

    def test_repeated_factor_doubles(self):
        # (x^2+x+1)^2: order 3 * 2 = 6
        assert order_of_x(gf2_mul(0b111, 0b111)) == 6

    def test_x_plus_1_squared(self):
        assert order_of_x(0b101) == 2

    def test_rejects_zero_constant_term(self):
        with pytest.raises(ValueError):
            order_of_x(0b110)

    @given(st.integers(min_value=3, max_value=(1 << 12) - 1).filter(lambda p: p & 1))
    @settings(max_examples=60, deadline=None)
    def test_order_is_exact(self, g):
        o = order_of_x(g)
        assert x_pow_mod(o, g) == 1
        # minimality spot check against direct iteration for small orders
        if o <= 4096:
            acc = 1
            for i in range(1, o):
                acc = (acc << 1)
                from repro.gf2.poly import gf2_mod
                acc = gf2_mod(acc, g)
                assert acc != 1, f"order {o} of {g:#x} is not minimal (x^{i}==1)"


class TestPaperHd2Onsets:
    """Table 1 bottom row: the length at which each polynomial drops
    to HD=2, equal to order - 31 in data-word bits."""

    @pytest.mark.parametrize(
        "koopman,last_hd3_length",
        [
            (0xBA0DC66B, 114663),   # "114664+"
            (0xFA567D89, 65502),    # "65503+"
            (0x992C1A4C, 65506),    # "65507+"
            (0x90022004, 65506),    # "65507+"
            (0xD419CC15, 65505),    # "65506+"
            (0x80108400, 65505),    # "65506+"
        ],
    )
    def test_hd2_onset(self, koopman, last_hd3_length):
        assert hd2_data_word_limit(koopman_to_full(koopman)) == last_hd3_length

    def test_8023_beyond_figure_range(self):
        # Primitive: HD >= 3 through 2^32 - 33 bits, i.e. the "..." cell.
        assert hd2_data_word_limit(koopman_to_full(0x82608EDB)) == 2**32 - 33

    def test_iscsi_castagnoli_beyond_figure_range(self):
        # {1,31} with primitive degree-31 factor: x == 1 mod (x+1), so
        # the order is just the big factor's, 2^31 - 1.
        g = koopman_to_full(0x8F6E37A0)
        assert order_of_x(g) == 2**31 - 1
        assert hd2_data_word_limit(g) > 131072
