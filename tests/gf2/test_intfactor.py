"""Tests for the integer factorization helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.intfactor import (
    divisors,
    factorize_int,
    is_prime,
    moebius,
    prime_factors,
)


class TestIsPrime:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 97, 65537, 2**31 - 1, 2**61 - 1])
    def test_known_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", [0, 1, 4, 100, 2**32 - 1, 2**29 - 1, 561, 341])
    def test_known_composites_and_trivia(self, n):
        assert not is_prime(n)

    def test_carmichael_numbers(self):
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(n)

    @given(st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=300)
    def test_matches_trial_division(self, n):
        naive = all(n % d for d in range(2, int(math.isqrt(n)) + 1))
        assert is_prime(n) == naive


class TestFactorize:
    def test_one(self):
        assert factorize_int(1) == {}

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            factorize_int(0)

    @pytest.mark.parametrize(
        "n,expected",
        [
            (12, {2: 2, 3: 1}),
            (2**15 - 1, {7: 1, 31: 1, 151: 1}),
            (2**28 - 1, {3: 1, 5: 1, 29: 1, 43: 1, 113: 1, 127: 1}),
            (2**30 - 1, {3: 2, 7: 1, 11: 1, 31: 1, 151: 1, 331: 1}),
            (2**31 - 1, {2147483647: 1}),
            (2**32 - 1, {3: 1, 5: 1, 17: 1, 257: 1, 65537: 1}),
        ],
    )
    def test_mersenne_style_numbers(self, n, expected):
        # These are exactly the factorizations order computation needs.
        assert factorize_int(n) == expected

    @given(st.integers(min_value=1, max_value=10**12))
    @settings(max_examples=100)
    def test_product_reconstructs(self, n):
        f = factorize_int(n)
        prod = 1
        for p, e in f.items():
            assert is_prime(p)
            prod *= p**e
        assert prod == n

    def test_prime_factors_sorted(self):
        assert prime_factors(2**28 - 1) == [3, 5, 29, 43, 113, 127]


class TestDivisorsMoebius:
    def test_divisors_of_28(self):
        assert divisors(28) == [1, 2, 4, 7, 14, 28]

    @given(st.integers(min_value=1, max_value=5000))
    @settings(max_examples=100)
    def test_divisors_divide(self, n):
        for d in divisors(n):
            assert n % d == 0

    @pytest.mark.parametrize("n,mu", [(1, 1), (2, -1), (6, 1), (4, 0), (30, -1), (12, 0)])
    def test_moebius_known(self, n, mu):
        assert moebius(n) == mu

    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=50)
    def test_moebius_sum_over_divisors(self, n):
        # sum_{d|n} mu(d) == [n == 1]
        total = sum(moebius(d) for d in divisors(n))
        assert total == (1 if n == 1 else 0)
