"""GF(2) matrix-power ladder vs the big-int polynomial oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.matpow import (
    MATPOW_MAX_DEGREE,
    PowerLadder,
    companion_matrix,
    identity_matrix,
    ladder_for,
    mat_mul,
    mat_pow,
    mat_square,
    mat_vec,
)
from repro.gf2.poly import degree, gf2_mulmod, x_pow_mod


@st.composite
def odd_polys(draw, max_degree=MATPOW_MAX_DEGREE):
    """Generators with g(0) == 1 (invertible x), any degree 1..64."""
    r = draw(st.integers(min_value=1, max_value=max_degree))
    interior = draw(st.integers(min_value=0, max_value=(1 << r) - 1))
    return (1 << r) | interior | 1


class TestCompanionMatrix:
    @given(odd_polys(), st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=100, deadline=None)
    def test_one_step_is_multiply_by_x(self, g, state):
        r = degree(g)
        state &= (1 << r) - 1
        stepped = mat_vec(companion_matrix(g), state)
        assert stepped == gf2_mulmod(state, 0b10, g)

    @given(odd_polys())
    @settings(max_examples=50, deadline=None)
    def test_identity_is_neutral(self, g):
        c = companion_matrix(g)
        i = identity_matrix(degree(g))
        np.testing.assert_array_equal(mat_mul(c, i), c)
        np.testing.assert_array_equal(mat_mul(i, c), c)

    def test_degree_out_of_range(self):
        with pytest.raises(ValueError):
            companion_matrix(1 << 65 | 1)
        with pytest.raises(ValueError):
            identity_matrix(0)


class TestMatPow:
    @given(odd_polys(), st.integers(min_value=0, max_value=10**12))
    @settings(max_examples=100, deadline=None)
    def test_mat_pow_matches_x_pow_mod(self, g, n):
        assert mat_vec(mat_pow(companion_matrix(g), n), 1) == x_pow_mod(n, g)

    @given(odd_polys())
    @settings(max_examples=50, deadline=None)
    def test_square_is_self_product(self, g):
        c = companion_matrix(g)
        np.testing.assert_array_equal(mat_square(c), mat_mul(c, c))

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            mat_pow(companion_matrix(0b1011), -1)


class TestPowerLadder:
    @given(odd_polys(), st.lists(
        st.integers(min_value=0, max_value=10**9), min_size=1, max_size=8,
    ))
    @settings(max_examples=60, deadline=None)
    def test_jumps_match_oracle(self, g, ns):
        ladder = PowerLadder(g)
        for n in ns:  # repeated jumps share the cached squarings
            assert ladder.syndrome_at(n) == x_pow_mod(n, g)

    @given(odd_polys(), st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_jump_composes(self, g, a, b):
        ladder = ladder_for(g)
        assert ladder.jump(ladder.syndrome_at(a), b) == ladder.syndrome_at(a + b)

    def test_ladder_cache_returns_same_object(self):
        assert ladder_for(0x104C11DB7) is ladder_for(0x104C11DB7)

    def test_backward_jump_rejected(self):
        with pytest.raises(ValueError):
            PowerLadder(0b1011).jump(1, -5)
