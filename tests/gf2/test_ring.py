"""Tests for the GF2Poly wrapper class."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.ring import GF2Poly

raw = st.integers(min_value=0, max_value=(1 << 40) - 1)
nonzero = st.integers(min_value=1, max_value=(1 << 40) - 1)


class TestConstruction:
    def test_constants(self):
        assert GF2Poly.zero().bits == 0
        assert GF2Poly.one().bits == 1
        assert GF2Poly.x().bits == 2

    def test_from_exponents(self):
        g = GF2Poly.from_exponents([3, 1, 0])
        assert g.bits == 0b1011
        assert g.exponents == [3, 1, 0]

    def test_from_koopman(self):
        assert GF2Poly.from_koopman(0x82608EDB).bits == 0x104C11DB7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GF2Poly(-1)

    def test_immutable(self):
        g = GF2Poly(5)
        with pytest.raises(AttributeError):
            g.bits = 7  # type: ignore[misc]


class TestArithmetic:
    def test_docstring_identity(self):
        g = GF2Poly.from_exponents([3, 1, 0])
        x = GF2Poly.x()
        assert x**3 + x + GF2Poly.one() == g

    def test_divmod(self):
        x = GF2Poly.x()
        g = GF2Poly(0b1011)
        q, r = divmod(x**5, g)
        assert q * g + r == x**5
        assert r.degree < g.degree

    @given(raw, raw)
    @settings(max_examples=150)
    def test_add_matches_xor(self, a, b):
        assert (GF2Poly(a) + GF2Poly(b)).bits == a ^ b

    @given(raw, nonzero)
    @settings(max_examples=150)
    def test_mod_floordiv_consistent(self, a, b):
        pa, pb = GF2Poly(a), GF2Poly(b)
        assert (pa // pb) * pb + (pa % pb) == pa

    def test_pow(self):
        assert (GF2Poly(0b11) ** 2).bits == 0b101
        with pytest.raises(ValueError):
            GF2Poly(0b11) ** -1

    def test_pow_mod(self):
        g = GF2Poly(0b1011)
        assert GF2Poly.x().pow_mod(3, g).bits == 0b011

    @given(nonzero, nonzero)
    @settings(max_examples=100)
    def test_gcd_divides(self, a, b):
        g = GF2Poly(a).gcd(GF2Poly(b))
        assert g.divides(GF2Poly(a)) and g.divides(GF2Poly(b))


class TestAnalysis:
    def test_factor_and_rebuild(self):
        p = GF2Poly(0b101011)  # (x+1)(x^4+x^3+1)
        prod = GF2Poly.one()
        for f, m in p.factor():
            for _ in range(m):
                prod = prod * f
        assert prod == p

    def test_irreducible_primitive(self):
        crc32 = GF2Poly.from_koopman(0x82608EDB)
        assert crc32.is_irreducible()
        assert crc32.is_primitive()
        assert crc32.order_of_x() == 2**32 - 1

    def test_reciprocal_involution(self):
        p = GF2Poly(0x107)
        assert p.reciprocal().reciprocal() == p

    def test_evaluation(self):
        p = GF2Poly(0b1011)  # odd number of terms
        assert p(1) == 1 and p(0) == 1
        even = GF2Poly(0b11)
        assert even(1) == 0
        with pytest.raises(ValueError):
            p(2)

    def test_weight_and_derivative(self):
        p = GF2Poly(0b1111)
        assert p.weight == 4
        assert p.derivative().bits == 0b101


class TestDunder:
    def test_ordering_and_hash(self):
        a, b = GF2Poly(3), GF2Poly(5)
        assert a < b
        assert len({a, b, GF2Poly(3)}) == 2

    def test_bool(self):
        assert not GF2Poly.zero()
        assert GF2Poly.one()

    def test_repr_str(self):
        g = GF2Poly(0b1011)
        assert str(g) == "x^3 + x + 1"
        assert "GF2Poly" in repr(g)
