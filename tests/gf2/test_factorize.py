"""Tests for GF(2)[x] factorization -- the Table 2 class machinery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.factorize import factor_degrees, factorize, is_squarefree
from repro.gf2.irreducible import irreducibles, is_irreducible
from repro.gf2.notation import koopman_to_full
from repro.gf2.poly import degree, gf2_mul

small_polys = st.integers(min_value=2, max_value=(1 << 20) - 1)


def reconstruct(factors: list[tuple[int, int]]) -> int:
    prod = 1
    for f, m in factors:
        for _ in range(m):
            prod = gf2_mul(prod, f)
    return prod


class TestFactorize:
    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            factorize(0)

    def test_constant_has_no_factors(self):
        assert factorize(1) == []

    def test_irreducible_is_its_own_factorization(self):
        assert factorize(0b1011) == [(0b1011, 1)]

    def test_square(self):
        assert factorize(0b101) == [(0b11, 2)]  # (x+1)^2

    def test_power_of_x(self):
        assert factorize(0b1000) == [(0b10, 3)]

    def test_mixed_multiplicities(self):
        # x^2 (x+1)^3 (x^2+x+1)
        p = gf2_mul(gf2_mul(0b100, gf2_mul(0b11, gf2_mul(0b11, 0b11))), 0b111)
        assert factorize(p) == [(0b10, 2), (0b11, 3), (0b111, 1)]

    @given(small_polys)
    @settings(max_examples=300, deadline=None)
    def test_product_reconstructs(self, p):
        factors = factorize(p)
        assert reconstruct(factors) == p
        for f, _ in factors:
            assert is_irreducible(f), f"{f:#x} not irreducible"

    @given(st.sampled_from(sorted(irreducibles(5))), st.sampled_from(sorted(irreducibles(7))))
    def test_two_factor_products(self, a, b):
        assert factorize(gf2_mul(a, b)) == sorted(
            [(a, 1), (b, 1)], key=lambda fm: (degree(fm[0]), fm[0])
        )

    def test_high_multiplicity(self):
        p = 1
        for _ in range(5):
            p = gf2_mul(p, 0b111)
        assert factorize(p) == [(0b111, 5)]


class TestPaperFactorizations:
    """§3/§5 of the paper: the factorization classes of the studied
    polynomials, including the exact factors given for 0xBA0DC66B."""

    @pytest.mark.parametrize(
        "koopman,signature",
        [
            (0x82608EDB, (32,)),
            (0x8F6E37A0, (1, 31)),
            (0xBA0DC66B, (1, 3, 28)),
            (0xFA567D89, (1, 1, 15, 15)),
            (0x992C1A4C, (1, 1, 30)),
            (0x90022004, (1, 1, 30)),
            (0xD419CC15, (32,)),
            (0x80108400, (32,)),
        ],
    )
    def test_class_signatures(self, koopman, signature):
        assert tuple(factor_degrees(koopman_to_full(koopman))) == signature

    def test_ba0dc66b_exact_factors(self):
        # §5: (x+1)(x^3+x^2+1)(x^28+x^22+x^20+x^19+x^16+x^14+x^12+x^9+x^8+x^6+1)
        g = koopman_to_full(0xBA0DC66B)
        factors = [f for f, _ in factorize(g)]
        deg28 = sum(1 << e for e in (28, 22, 20, 19, 16, 14, 12, 9, 8, 6, 0))
        assert factors == [0b11, 0b1101, deg28]

    def test_fa567d89_has_two_distinct_deg15_factors(self):
        g = koopman_to_full(0xFA567D89)
        deg15 = [(f, m) for f, m in factorize(g) if degree(f) == 15]
        assert len(deg15) == 2 and all(m == 1 for _, m in deg15)

    def test_992c1a4c_castagnoli_shape(self):
        # (x+1)^2 * (degree 30): the {1,1,30} class
        g = koopman_to_full(0x992C1A4C)
        factors = factorize(g)
        assert factors[0] == (0b11, 2)
        assert degree(factors[1][0]) == 30


class TestSquarefree:
    def test_squarefree_detection(self):
        assert is_squarefree(0b111)
        assert not is_squarefree(0b101)  # (x+1)^2

    @given(small_polys)
    @settings(max_examples=200, deadline=None)
    def test_matches_factorization(self, p):
        assert is_squarefree(p) == all(m == 1 for _, m in factorize(p))
