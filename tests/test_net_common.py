"""Shared NDJSON wire plumbing (:mod:`repro.net_common`).

Both network front ends (the CRC service and the work coordinator)
sit on these primitives, so their contracts are pinned here once:
framing round-trips, the coded failure modes (``bad-json``
recoverable, ``oversized-frame`` not), and EOF semantics -- a clean
close and a mid-frame death both read as ``None``, never an
exception.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net_common import (
    MAX_LINE,
    FrameError,
    decode_frame,
    encode_frame,
    next_line,
    read_frame,
)


def read_from(data: bytes, *, n: int = 1, limit: int = MAX_LINE):
    """Feed ``data`` (+ EOF) to a fresh reader and take ``n`` frames."""

    async def scenario():
        reader = asyncio.StreamReader(limit=limit)
        reader.feed_data(data)
        reader.feed_eof()
        frames = [await read_frame(reader) for _ in range(n)]
        return frames[0] if n == 1 else frames

    return asyncio.run(scenario())


class TestCodec:
    def test_round_trip(self):
        frame = encode_frame({"op": "lease", "seq": 3})
        assert frame.endswith(b"\n")
        assert decode_frame(frame) == {"op": "lease", "seq": 3}

    def test_compact_encoding(self):
        assert encode_frame({"a": [1, 2]}) == b'{"a":[1,2]}\n'

    def test_bad_json_is_recoverable(self):
        with pytest.raises(FrameError) as exc:
            decode_frame(b"{nope}\n")
        assert exc.value.code == "bad-json"
        assert exc.value.recoverable

    def test_non_utf8_bytes_decode_with_replacement(self):
        # Garbage bytes become a bad-json FrameError, not UnicodeError.
        with pytest.raises(FrameError) as exc:
            decode_frame(b"\xff\xfe\xfd\n")
        assert exc.value.code == "bad-json"

    def test_accepts_str_input(self):
        assert decode_frame('{"x": 1}') == {"x": 1}

    @given(
        st.recursive(
            st.none()
            | st.booleans()
            | st.integers(min_value=-(2**40), max_value=2**40)
            | st.text(max_size=40),
            lambda children: st.lists(children, max_size=4)
            | st.dictionaries(st.text(max_size=8), children, max_size=4),
            max_leaves=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_any_json_value_round_trips(self, value):
        assert decode_frame(encode_frame(value)) == value


class TestReadFrame:
    def test_reads_lines_in_order(self):
        frames = read_from(b'{"op":"hello"}\n{"op":"bye"}\n', n=2)
        assert frames == [b'{"op":"hello"}\n', b'{"op":"bye"}\n']

    def test_clean_eof_is_none(self):
        assert read_from(b"") is None

    def test_mid_frame_eof_is_none(self):
        # The peer died while writing: nobody is left to answer, so a
        # truncated final line is a close, not a parse error.
        assert read_from(b'{"op":"hel') is None

    def test_oversized_line_is_unrecoverable(self):
        with pytest.raises(FrameError) as exc:
            read_from(b"x" * 64 + b"\n", limit=16)
        assert exc.value.code == "oversized-frame"
        assert not exc.value.recoverable


class TestNextLine:
    def test_without_drain_event_reads_normally(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b'{"a":1}\n')
            return await next_line(reader)

        assert asyncio.run(scenario()) == b'{"a":1}\n'

    def test_drain_lets_in_flight_data_land(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b'{"a":1}\n')
            draining = asyncio.Event()
            draining.set()
            return await next_line(reader, draining, linger=0.2)

        assert asyncio.run(scenario()) == b'{"a":1}\n'

    def test_drain_gives_up_after_linger(self):
        async def scenario():
            reader = asyncio.StreamReader()  # nothing will ever arrive
            draining = asyncio.Event()
            draining.set()
            return await next_line(reader, draining, linger=0.05)

        assert asyncio.run(scenario()) is None


def test_announce_prints_discovery_line(capsys):
    from repro.net_common import announce

    announce("work", "127.0.0.1", 7337)
    assert capsys.readouterr().out == "work.listening host=127.0.0.1 port=7337\n"
