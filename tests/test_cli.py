"""CLI tests (argument parsing and end-to-end command behaviour)."""

from __future__ import annotations

import argparse

import pytest

from repro.cli import build_parser, main, parse_poly


class TestParsePoly:
    def test_paper_notation(self):
        assert parse_poly("0x82608EDB") == 0x104C11DB7

    def test_full_encoding(self):
        assert parse_poly("0x104C11DB7") == 0x104C11DB7

    def test_small_full_encoding(self):
        assert parse_poly("0x107") == 0x107

    def test_rejects_even(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_poly("0x106")

    def test_rejects_nonpositive(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_poly("0")

    def test_rejects_garbage(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_poly("not-a-poly")


class TestParsePolyNotation:
    """The confirmed seed bug: an odd 32-bit value like 0x8F6E37A1 is
    both a paper implicit-+1 value (degree 32) and a degree-31 full
    encoding; the auto heuristic silently took the paper reading,
    making degree-31 polynomials unreachable from the CLI."""

    AMBIGUOUS = "0x8F6E37A1"

    def test_auto_keeps_paper_reading_but_warns(self):
        with pytest.warns(UserWarning, match="ambiguous"):
            assert parse_poly(self.AMBIGUOUS) == 0x11EDC6F43

    def test_explicit_full_gives_degree_31(self):
        assert parse_poly(self.AMBIGUOUS, "full") == 0x8F6E37A1

    def test_explicit_paper_matches_auto_silently(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert parse_poly(self.AMBIGUOUS, "paper") == 0x11EDC6F43

    def test_even_32bit_is_unambiguous_no_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert parse_poly("0x82608EDA") == 0x104C11DB5

    def test_paper_applies_to_any_width(self):
        assert parse_poly("0x83", "paper") == 0x107

    def test_full_rejects_even(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_poly("0x106", "full")

    def test_full_rejects_degreeless(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_poly("0x1", "full")

    def test_cli_notation_flag_round_trip(self, capsys):
        assert main(["report", self.AMBIGUOUS, "--notation", "full"]) == 0
        out = capsys.readouterr().out
        assert "0x8f6e37a1" in out
        assert "x^31" in out


class TestCommands:
    def test_report(self, capsys):
        assert main(["report", "0xBA0DC66B"]) == 0
        out = capsys.readouterr().out
        assert "{1,3,28}" in out
        assert "0xba0dc66b" in out

    def test_report_with_breakpoints(self, capsys):
        assert main(["report", "0x107", "--hd-max", "4", "--n-max", "150"]) == 0
        main(["report", "0x107", "--breakpoints", "--hd-max", "4",
              "--n-max", "150"])
        out = capsys.readouterr().out
        assert "HD bands" in out

    def test_hd(self, capsys):
        assert main(["hd", "0x107", "100"]) == 0
        assert "HD = 4" in capsys.readouterr().out

    def test_weights(self, capsys):
        assert main(["weights", "0x107", "50"]) == 0
        out = capsys.readouterr().out
        assert "W2 = 0" in out and "W4 = " in out

    def test_breakpoints(self, capsys):
        assert main(["breakpoints", "0x107", "--hd-max", "4",
                     "--n-max", "150"]) == 0
        out = capsys.readouterr().out
        assert "HD 4: 1 .. 119" in out

    def test_search(self, capsys):
        assert main(["search", "--width", "6", "--target-hd", "3",
                     "--bits", "20"]) == 0
        out = capsys.readouterr().out
        assert "candidates screened" in out

    def test_search_width_guard(self, capsys):
        assert main(["search", "--width", "20"]) == 2

    def test_campaign(self, tmp_path, capsys):
        ckpt = str(tmp_path / "c.json")
        assert main(["campaign", "--width", "6", "--target-hd", "3",
                     "--bits", "20", "--workers", "2",
                     "--chunk-size", "8", "--checkpoint", ckpt]) == 0
        out = capsys.readouterr().out
        assert "chunks done" in out
        assert (tmp_path / "c.json").exists()

    def test_campaign_parallel(self, tmp_path, capsys):
        ckpt = str(tmp_path / "c.json")
        assert main(["campaign", "--width", "6", "--target-hd", "3",
                     "--bits", "20", "--parallel", "2",
                     "--chunk-size", "8", "--checkpoint", ckpt]) == 0
        out = capsys.readouterr().out
        assert "chunks done" in out
        assert "2 processes" in out
        assert (tmp_path / "c.json").exists()
        # resume recomputes nothing
        assert main(["campaign", "--width", "6", "--target-hd", "3",
                     "--bits", "20", "--parallel", "2",
                     "--chunk-size", "8", "--checkpoint", ckpt,
                     "--resume"]) == 0
        out = capsys.readouterr().out
        assert "4 chunks skipped" in out
        assert "0 chunks computed" in out

    def test_campaign_parallel_matches_simulated(self, tmp_path, capsys):
        from repro.dist.checkpoint import load as load_checkpoint
        from repro.search.exhaustive import SearchConfig

        sim = str(tmp_path / "sim.json")
        par = str(tmp_path / "par.json")
        base = ["campaign", "--width", "6", "--target-hd", "3",
                "--bits", "20", "--chunk-size", "8"]
        assert main(base + ["--workers", "2", "--checkpoint", sim]) == 0
        assert main(base + ["--parallel", "2", "--checkpoint", par]) == 0
        capsys.readouterr()
        cfg = SearchConfig.for_bits(6, 3, 20)
        # Same campaign, different backends: the records (and their
        # canonical JSON, which the checkpoint CRC covers) must agree.
        a = load_checkpoint(sim, cfg, 8)
        b = load_checkpoint(par, cfg, 8)
        assert a.campaign.to_json() == b.campaign.to_json()
        assert a.quarantined == b.quarantined == set()

    def test_campaign_resume_requires_checkpoint(self, capsys):
        assert main(["campaign", "--width", "6", "--target-hd", "3",
                     "--bits", "20", "--resume"]) == 2

    def test_campaign_resume_missing_checkpoint_is_friendly(
        self, tmp_path, capsys
    ):
        """--resume pointed at a nonexistent file must explain itself
        (the seed behaviour silently started a fresh campaign)."""
        missing = str(tmp_path / "nope.ckpt")
        for backend in ([], ["--parallel", "2"]):
            assert main(["campaign", "--width", "6", "--target-hd", "3",
                         "--bits", "20", "--chunk-size", "8",
                         "--checkpoint", missing, "--resume"] + backend) == 2
            err = capsys.readouterr().err
            assert "no checkpoint found" in err
            assert "--checkpoint" in err

    def test_crc(self, capsys):
        assert main(["crc", "CRC-32/IEEE-802.3",
                     "--hex", "313233343536373839"]) == 0
        assert "0xcbf43926" in capsys.readouterr().out

    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        assert "CRC-32C/Castagnoli" in capsys.readouterr().out

    def test_stacked(self, capsys):
        assert main(["stacked", "0x107", "0x11D", "40", "--k-max", "8"]) == 0
        out = capsys.readouterr().out
        assert "joint HD" in out and "degree 16" in out

    def test_compare(self, capsys):
        assert main(["compare", "0x107", "0x11D",
                     "--n-max", "60", "--hd-max", "5"]) == 0
        out = capsys.readouterr().out
        assert "better" in out

    def test_best(self, capsys):
        assert main(["best", "--width", "6", "--bits", "20"]) == 0
        out = capsys.readouterr().out
        assert "best achievable HD" in out and "recommended" in out

    def test_parser_help_builds(self):
        parser = build_parser()
        assert parser.prog == "repro"


class TestFarmCli:
    """Exit-code and usage contracts for ``serve`` / ``work``.  The
    full farm behaviour is covered end-to-end over the loopback
    transport in ``tests/dist/test_net_server.py``; here we pin only
    what argparse and the error paths owe the operator."""

    def test_work_malformed_address_is_usage_error(self, capsys):
        assert main(["work", "not-an-address"]) == 2
        assert "host:port" in capsys.readouterr().err

    def test_work_unreachable_coordinator_exits_1(self, capsys):
        # Port 1 on localhost: connection refused, fast.
        rc = main([
            "work", "127.0.0.1:1", "--id", "w0",
            "--reconnect-base", "0.01", "--max-connect-attempts", "2",
        ])
        assert rc == 1
        assert "giving up after 2 failed connection" in capsys.readouterr().err

    def test_serve_resume_requires_checkpoint(self, capsys):
        assert main(["serve", "--width", "8", "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_serve_resume_missing_checkpoint_exits_2(self, tmp_path, capsys):
        rc = main([
            "serve", "--width", "8", "--target-hd", "4",
            "--checkpoint", str(tmp_path / "nope.ckpt"), "--resume",
        ])
        assert rc == 2

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--width", "8"])
        assert args.host == "127.0.0.1" and args.port == 0
        assert args.lease == 30.0 and args.checkpoint_every == 8
        assert args.worker_fault_budget == 0

    def test_work_defaults(self):
        args = build_parser().parse_args(["work", "localhost:7337"])
        assert args.address == "localhost:7337"
        assert args.id is None and args.max_connect_attempts == 8
