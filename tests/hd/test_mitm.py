"""MITM engine vs brute force: the critical cross-validation.

Every behaviour of the fast engine is checked against direct
enumeration on small windows, across random generators -- the same
"simple code vs optimized code" validation the paper performed (§4.5).
"""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.poly import degree
from repro.hd.mitm import (
    exists_weight_k,
    find_witness,
    minimal_codeword_span,
    windowed_witness,
)
from repro.hd.syndromes import syndrome_of_positions, syndrome_table
from repro.hd.cost import EnvelopeError

gen_polys = st.integers(min_value=0b1001, max_value=(1 << 13) - 1).filter(
    lambda p: p & 1
)


def brute_exists(g: int, N: int, k: int) -> bool:
    syn = [int(s) for s in syndrome_table(g, N)]
    for combo in combinations(range(N), k):
        acc = 0
        for p in combo:
            acc ^= syn[p]
        if acc == 0:
            return True
    return False


def brute_min_span(g: int, N: int, k: int) -> int | None:
    best = None
    syn = [int(s) for s in syndrome_table(g, N)]
    for combo in combinations(range(N), k):
        acc = 0
        for p in combo:
            acc ^= syn[p]
        if acc == 0:
            span = combo[-1] - combo[0] + 1
            best = span if best is None else min(best, span)
    return best


class TestExistsAgainstBruteForce:
    @given(gen_polys, st.integers(min_value=6, max_value=22),
           st.integers(min_value=2, max_value=5))
    @settings(max_examples=200, deadline=None)
    def test_agreement(self, g, N, k):
        # ascending-k precondition: only test k if no lower even-gap
        # weight exists (mirrors how drivers call it)
        for j in range(2, k):
            if brute_exists(g, N, j):
                return
        assert exists_weight_k(g, N, k) == brute_exists(g, N, k)

    def test_doctest_case(self):
        assert exists_weight_k(0b10011, 8, 3)

    def test_window_smaller_than_weight(self):
        assert not exists_weight_k(0b10011, 2, 3)

    def test_weight_2_is_order_based(self):
        # x^2+x+1 has order 3: weight-2 codeword x^3+1 needs 4 positions
        assert not exists_weight_k(0b111, 3, 2)
        assert exists_weight_k(0b111, 4, 2)


class TestWitness:
    @given(gen_polys, st.integers(min_value=6, max_value=20),
           st.integers(min_value=2, max_value=5))
    @settings(max_examples=150, deadline=None)
    def test_witness_is_verified_codeword(self, g, N, k):
        for j in range(2, k):
            if brute_exists(g, N, j):
                return
        w = find_witness(g, N, k)
        if brute_exists(g, N, k):
            assert w is not None
            assert len(w) == k
            assert len(set(w)) == k
            assert max(w) < N
            assert syndrome_of_positions(g, w) == 0
        else:
            assert w is None

    def test_weight2_witness(self):
        w = find_witness(0b111, 5, 2)
        assert w is not None and syndrome_of_positions(g=0b111, positions=w) == 0


class TestWindowedWitness:
    @given(gen_polys, st.integers(min_value=16, max_value=64),
           st.integers(min_value=3, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_any_result_is_a_codeword(self, g, N, k):
        w = windowed_witness(g, N, k, window=min(N, 24))
        if w is not None:
            assert len(set(w)) == k
            assert syndrome_of_positions(g, w) == 0

    def test_finds_in_dense_regime(self):
        # CRC-8 0x107 at 120 bits: weight-4 codewords are plentiful
        # (weight-3 are impossible -- it is divisible by (x+1)).
        g = 0x107
        w = windowed_witness(g, 120, 4, window=120)
        assert w is not None
        # non-parity generator: weight-3 dense regime
        g2 = 0b100011101  # 0x11D, 5 terms, not divisible by (x+1)
        w3 = windowed_witness(g2, 120, 3, window=120)
        assert w3 is not None

    def test_envelope_guard(self):
        with pytest.raises(EnvelopeError):
            windowed_witness(0x107, 4000, 6, window=4000, mem_elems=1000)


class TestMinimalSpan:
    @given(gen_polys, st.integers(min_value=8, max_value=20),
           st.integers(min_value=3, max_value=4))
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, g, N, k):
        for j in range(2, k):
            if brute_exists(g, N, j):
                return
        assert minimal_codeword_span(g, N, k) == brute_min_span(g, N, k)

    def test_weight2_span_is_order_plus_one(self):
        # x^2+x+1: shortest weight-2 codeword is x^3+1, span 4
        assert minimal_codeword_span(0b111, 10, 2) == 4

    def test_none_when_absent(self):
        # primitive degree-4: no weight-2 codeword within 10 bits
        assert minimal_codeword_span(0b10011, 10, 2) is None

    def test_generator_span_found(self):
        # The generator itself is always the, or a, short codeword.
        g = 0x107  # weight 4, span 9
        assert minimal_codeword_span(g, 40, 4) <= 9
