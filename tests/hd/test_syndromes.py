"""Tests for syndrome sequence generation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.poly import x_pow_mod
from repro.hd.syndromes import (
    extend_syndrome_table,
    is_undetected_pattern,
    syndrome_of_positions,
    syndrome_table,
)

gen_polys = st.integers(min_value=0b101, max_value=(1 << 17) - 1).filter(
    lambda p: p & 1 and p.bit_length() >= 2
)


class TestSyndromeTable:
    def test_doctest_example(self):
        assert syndrome_table(0b1011, 4).tolist() == [1, 2, 4, 3]

    def test_empty(self):
        assert len(syndrome_table(0b1011, 0)) == 0

    def test_width_bounds(self):
        with pytest.raises(ValueError):
            syndrome_table(0b1, 4)  # degree 0

    @given(gen_polys, st.integers(min_value=1, max_value=300))
    @settings(max_examples=100, deadline=None)
    def test_matches_powmod_oracle(self, g, n):
        table = syndrome_table(g, n)
        for i in (0, n // 2, n - 1):
            assert int(table[i]) == x_pow_mod(i, g)

    @given(gen_polys)
    @settings(max_examples=50, deadline=None)
    def test_recurrence_consistency(self, g):
        # every consecutive pair satisfies r_{i+1} = x * r_i mod g
        table = syndrome_table(g, 64)
        from repro.gf2.poly import gf2_mulmod

        for i in range(63):
            assert int(table[i + 1]) == gf2_mulmod(int(table[i]), 0b10, g)

    def test_crc32_values(self):
        g = 0x104C11DB7
        table = syndrome_table(g, 40)
        assert int(table[31]) == 1 << 31
        assert int(table[32]) == 0x04C11DB7  # x^32 mod g == g - x^32


class TestExtend:
    @given(gen_polys, st.integers(min_value=0, max_value=100),
           st.integers(min_value=0, max_value=200))
    @settings(max_examples=100, deadline=None)
    def test_extension_matches_fresh(self, g, n1, n2):
        base = syndrome_table(g, n1)
        ext = extend_syndrome_table(g, base, n2)
        fresh = syndrome_table(g, n2)
        assert np.array_equal(ext, fresh)

    def test_shrink_is_slice(self):
        g = 0b1011
        t = syndrome_table(g, 10)
        assert np.array_equal(extend_syndrome_table(g, t, 5), t[:5])


class TestPatternOracle:
    def test_generator_is_codeword(self):
        g = 0x107
        positions = [i for i in range(9) if (g >> i) & 1]
        assert is_undetected_pattern(g, positions)

    def test_single_bits_always_detected(self):
        g = 0x107
        for p in range(20):
            assert not is_undetected_pattern(g, [p])

    def test_negative_position(self):
        with pytest.raises(ValueError):
            syndrome_of_positions(0b1011, [-2])

    @given(gen_polys, st.sets(st.integers(min_value=0, max_value=200), min_size=1, max_size=6))
    @settings(max_examples=150, deadline=None)
    def test_xor_of_table_matches_oracle(self, g, positions):
        table = syndrome_table(g, 201)
        acc = 0
        for p in positions:
            acc ^= int(table[p])
        assert (acc == 0) == is_undetected_pattern(g, sorted(positions))
