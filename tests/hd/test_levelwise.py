"""Tests for the level-wise combination-XOR generator and its
closed-form unranking -- the machinery behind high-weight checks."""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hd.cost import EnvelopeError
from repro.hd.mitm import (
    _levelwise,
    _stream_side,
    _unrank_levelwise,
    exists_weight_k,
    find_witness,
)
from repro.hd.syndromes import syndrome_of_positions, syndrome_table

gen_polys = st.integers(min_value=0b1000001, max_value=(1 << 12) - 1).filter(
    lambda p: p & 1
)


class TestLevelwiseGeneration:
    @given(gen_polys, st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=4),
           st.integers(min_value=6, max_value=16))
    @settings(max_examples=150, deadline=None)
    def test_matches_itertools(self, g, s, lo, hi):
        if hi - lo < s:
            return
        syn = syndrome_table(g, hi)
        vals, maxpos = _levelwise(syn, s, lo, hi)
        expected = {}
        got = sorted(int(v) for v in vals)
        brute = sorted(
            int(np.bitwise_xor.reduce(syn[list(c)]))
            for c in combinations(range(lo, hi), s)
        )
        assert got == brute
        assert len(vals) == comb(hi - lo, s)
        # maxpos really is the max position, grouped ascending
        assert list(maxpos) == sorted(maxpos)

    def test_empty_when_too_small(self):
        syn = syndrome_table(0x107, 10)
        vals, maxpos = _levelwise(syn, 5, 0, 3)
        assert len(vals) == 0 and len(maxpos) == 0

    def test_cap_enforced(self):
        syn = syndrome_table(0x107, 3000)
        with pytest.raises(EnvelopeError):
            _levelwise(syn, 4, 0, 3000)


class TestUnranking:
    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=6, max_value=14))
    @settings(max_examples=100, deadline=None)
    def test_unrank_inverts_generation_order(self, s, lo, hi):
        if hi - lo < s:
            return
        syn = syndrome_table(0x107, hi)
        vals, _ = _levelwise(syn, s, lo, hi)
        for index in range(len(vals)):
            positions = _unrank_levelwise(index, s, lo)
            assert len(positions) == s
            assert all(lo <= p < hi for p in positions)
            acc = 0
            for p in positions:
                acc ^= int(syn[p])
            assert acc == int(vals[index]), (index, positions)

    def test_unrank_distinct(self):
        seen = {_unrank_levelwise(i, 3, 1) for i in range(comb(9, 3))}
        assert len(seen) == comb(9, 3)


class TestStreamSide:
    @given(gen_polys, st.integers(min_value=1, max_value=4),
           st.integers(min_value=8, max_value=18),
           st.integers(min_value=4, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_stream_covers_all_subsets(self, g, s, hi, chunk):
        if hi - 1 < s:
            return
        syn = syndrome_table(g, hi)
        streamed = []
        for ch in _stream_side(syn, s, 1, hi, chunk, want_max=True):
            assert len(ch.values) == len(ch.elem_max)
            for off in range(len(ch.values)):
                positions = ch.resolve(off)
                assert len(positions) == s
                assert max(positions) == int(ch.elem_max[off])
                acc = 0
                for p in positions:
                    acc ^= int(syn[p])
                assert acc == int(ch.values[off])
                streamed.append(positions)
        assert sorted(streamed) == sorted(combinations(range(1, hi), s))


class TestHighWeightChecks:
    """The regime the level-wise path exists for: weights 6-14 at the
    small windows of Table 1's upper rows."""

    def brute_exists(self, g, N, k):
        syn = [int(s) for s in syndrome_table(g, N)]
        for c in combinations(range(N), k):
            acc = 0
            for p in c:
                acc ^= syn[p]
            if acc == 0:
                return True
        return False

    @pytest.mark.parametrize("k", [6, 7, 8, 9])
    def test_agreement_small_windows(self, k):
        g = 0x11021  # CRC-16/CCITT
        for N in (k + 1, k + 4, 22):
            # honor the ascending-k precondition
            skip = False
            for j in range(2, k):
                if self.brute_exists(g, N, j):
                    skip = True
                    break
            if skip:
                continue
            assert exists_weight_k(g, N, k) == self.brute_exists(g, N, k)

    def test_witness_weight_9(self):
        # Build a generator with a known weight-9 multiple: g * (1+x)
        # patterns; simpler: find any real witness and verify it.
        g = 0b11010011001  # degree 10, 6 terms
        N = 26
        for k in range(2, 9):
            if self.brute_exists(g, N, k):
                w = find_witness(g, N, k)
                assert w is not None
                assert syndrome_of_positions(g, w) == 0
                assert len(w) == k
                break

    def test_generator_itself_found_at_high_weight(self):
        # a 15-term degree-16 generator is a weight-15 codeword
        g = 0b11111111111110111
        k = g.bit_count()
        N = 20
        assert exists_weight_k(g, N, k)
        w = find_witness(g, N, k)
        assert w is not None and syndrome_of_positions(g, w) == 0
