"""Weight counting vs brute force, and the counting identities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.order import order_of_x
from repro.gf2.poly import degree
from repro.hd.cost import EnvelopeError
from repro.hd.syndromes import syndrome_table
from repro.hd.weights import (
    brute_force_weights,
    count_weight_2,
    count_weight_3,
    count_weight_4,
    count_weight_5,
    count_weight_6,
    undetected_fraction,
    weight_profile,
)

gen_polys = st.integers(min_value=0b10001, max_value=(1 << 13) - 1).filter(
    lambda p: p & 1
)


class TestCountingAgainstBruteForce:
    @given(gen_polys, st.integers(min_value=5, max_value=26))
    @settings(max_examples=150, deadline=None)
    def test_w3_w4_match(self, g, N):
        if order_of_x(g) < N:
            return  # counting precondition
        n = N - degree(g)
        if n < 1:
            return
        brute = brute_force_weights(g, n, 4)
        assert count_weight_2(g, N) == brute[2]
        assert count_weight_3(g, N) == brute[3]
        assert count_weight_4(g, N) == brute[4]

    def test_w2_counts_duplicates(self):
        # order 3 generator: within 7 positions, {0,3},{1,4},{2,5},{3,6},
        # {0,6} are weight-2 codewords -> pairs with equal syndromes
        g = 0b111
        brute = brute_force_weights(g, 5, 2)  # N=7
        assert count_weight_2(g, 7) == brute[2]

    def test_chunking_invariance(self):
        g = 0x107
        N = 120
        baseline = count_weight_3(g, N, chunk_rows=2048)
        assert count_weight_3(g, N, chunk_rows=7) == baseline

    @given(gen_polys, st.integers(min_value=6, max_value=22))
    @settings(max_examples=80, deadline=None)
    def test_w5_w6_match_brute_force(self, g, N):
        if order_of_x(g) < N:
            return
        n = N - degree(g)
        if n < 1:
            return
        brute = brute_force_weights(g, n, 6)
        assert count_weight_5(g, N) == brute[5]
        assert count_weight_6(g, N) == brute[6]

    def test_w5_w6_with_nonzero_low_weights(self):
        # a generator with W3 > 0 in range exercises the degeneracy
        # corrections (3(N-3)W3 for W5, 3(N-4)W4 for W6)
        g = 0b1011  # x^3+x+1, order 7: lots of small codewords
        N = 7       # stay at/below the order
        brute = brute_force_weights(g, N - 3, 6)
        assert count_weight_5(g, N) == brute[5]
        assert count_weight_6(g, N) == brute[6]

    def test_w5_parity_poly_is_zero(self):
        # (x+1)-divisible: every odd weight is 0 -- and the counter
        # must agree from raw counting, not the theorem
        assert count_weight_5(0x107, 60) == 0

    def test_w6_802_3_small(self):
        from repro.gf2.notation import koopman_to_full

        g = koopman_to_full(0x82608EDB)
        # HD=6 band (172-268): some weight-6 errors must exist at 300
        assert count_weight_6(g, 300 + 32) > 0
        # and none in the HD>=7 region
        assert count_weight_6(g, 150 + 32) == 0


class TestPreconditionsAndGuards:
    def test_rejects_window_beyond_order(self):
        with pytest.raises(EnvelopeError):
            count_weight_3(0b111, 10)  # order 3 << 10

    def test_w4_memory_guard(self):
        with pytest.raises(EnvelopeError):
            count_weight_4(0x104C11DB7, 10_000, mem_elems=100)

    def test_brute_force_guard(self):
        with pytest.raises(EnvelopeError):
            brute_force_weights(0x104C11DB7, 1000, 6)

    def test_weight_profile_k_range(self):
        with pytest.raises(ValueError):
            weight_profile(0x107, 50, 7)

    def test_weight_profile_to_six(self):
        prof = weight_profile(0x107, 30, 6)
        brute = brute_force_weights(0x107, 30, 6)
        assert prof == brute


class TestWeightProfile:
    def test_profile_keys(self):
        prof = weight_profile(0x107, 40, 4)
        assert sorted(prof) == [2, 3, 4]

    def test_profile_matches_individual_counts(self):
        g, n = 0x107, 40
        N = n + 8
        prof = weight_profile(g, n, 4)
        assert prof[2] == count_weight_2(g, N)
        assert prof[3] == count_weight_3(g, N)
        assert prof[4] == count_weight_4(g, N)

    def test_hd4_poly_has_zero_low_weights(self):
        # CRC-8 0x107 detects all 2- and 3-bit errors out to 119 bits
        prof = weight_profile(0x107, 100, 3)
        assert prof[2] == 0 and prof[3] == 0


class TestUndetectedFraction:
    def test_paper_style_fraction(self):
        # "slightly more than 1 out of every 2^32" for 802.3 at MTU:
        # checked against the real numbers in test_paper_claims.
        assert undetected_fraction(1, 100, 4) == pytest.approx(1 / 3921225)

    def test_zero_weight(self):
        assert undetected_fraction(0, 1000, 4) == 0.0
