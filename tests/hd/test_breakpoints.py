"""Breakpoint machinery tests (first-failure lengths, bands, inverse
filtering)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.poly import degree
from repro.hd.breakpoints import (
    BreakpointTable,
    first_failure_length,
    hd_breakpoint_table,
    increasing_length_filter,
    max_length_for_hd,
    refute_hd_at,
)
from repro.hd.syndromes import is_undetected_pattern
from repro.hd.weights import brute_force_weights

gen_polys = st.integers(min_value=0b100101, max_value=(1 << 10) - 1).filter(
    lambda p: p & 1
)


def brute_first_failure(g: int, k: int, n_max: int) -> int | None:
    for n in range(1, n_max + 1):
        if brute_force_weights(g, n, k)[k] > 0:
            return n
    return None


class TestFirstFailure:
    @given(gen_polys, st.integers(min_value=3, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_scan(self, g, k):
        n_max = 16 - degree(g) + 8
        if n_max < 2:
            return
        expected = brute_first_failure(g, k, n_max)
        got = first_failure_length(g, k, n_max=n_max, exploit_parity=False)
        assert got == expected

    def test_crc8_weight2(self):
        # 0x107 has order 127: first weight-2 failure at n = 127+1-8 = 120
        assert first_failure_length(0x107, 2, n_max=200) == 120
        assert first_failure_length(0x107, 2, n_max=100) is None

    def test_parity_shortcut(self):
        # 0x107 is divisible by (x+1): odd weights never fail.
        assert first_failure_length(0x107, 3, n_max=500) is None

    def test_parity_shortcut_matches_search(self):
        got = first_failure_length(0x107, 3, n_max=200, exploit_parity=False)
        assert got is None

    def test_rejects_k1(self):
        with pytest.raises(ValueError):
            first_failure_length(0x107, 1, n_max=10)


class TestBreakpointTable:
    def test_crc8_full_table(self):
        t = hd_breakpoint_table(0x107, hd_max=5, n_max=200)
        # {(k): first failure}: w4 fails from the generator itself
        assert t.first_failure[2] == 120
        assert t.first_failure[3] is None
        assert t.first_failure[4] is not None
        assert t.hd_at(119) == 4
        assert t.hd_at(120) == 2
        assert t.max_length_for(4) == 119
        assert t.max_length_for(3) == 119  # HD jumps 4 -> 2

    def test_bands_partition(self):
        t = hd_breakpoint_table(0x107, hd_max=5, n_max=200)
        bands = t.bands
        # bands tile [1, inf) without gaps or overlaps
        assert bands[0][1] == 1
        for (_, _, hi), (_, lo, _) in zip(bands, bands[1:]):
            assert hi is not None and lo == hi + 1
        assert bands[-1][2] is None

    def test_hd_at_beyond_table(self):
        t = hd_breakpoint_table(0x107, hd_max=4, n_max=50)
        with pytest.raises(ValueError):
            t.hd_at(51)

    @given(gen_polys)
    @settings(max_examples=25, deadline=None)
    def test_hd_at_matches_direct_hd(self, g):
        from repro.hd.hamming import hamming_distance

        n_max = 24 - degree(g)
        if n_max < 3:
            return
        t = hd_breakpoint_table(g, hd_max=6, n_max=n_max, exploit_parity=False)
        for n in range(1, n_max + 1):
            direct = None
            try:
                direct = hamming_distance(g, n, k_max=6, exploit_parity=False)
            except ValueError:
                continue  # HD above the table's range at this length
            assert t.hd_at(n) == direct


class TestMaxLengthForHd:
    def test_crc8(self):
        assert max_length_for_hd(0x107, 4, n_max=300) == 119
        assert max_length_for_hd(0x107, 3, n_max=300) == 119
        assert max_length_for_hd(0x107, 2, n_max=300) == 300  # everywhere

    def test_unachievable(self):
        # HD=5 from a weight-4 generator is impossible at length >= 2
        # (the generator itself is an undetected 4-bit error once it fits).
        g = 0b1011  # weight 3 generator: HD <= 3 immediately
        assert max_length_for_hd(g, 4, n_max=100) is None


class TestRefute:
    def test_refutation_witness_is_real(self):
        out = refute_hd_at(0x107, 5, 50)
        assert out is not None
        k, positions = out
        assert k == 4
        assert is_undetected_pattern(0x107, positions)
        assert max(positions) < 58

    def test_no_refutation_when_hd_holds(self):
        assert refute_hd_at(0x107, 4, 100) is None

    def test_weight2_refutation(self):
        out = refute_hd_at(0x107, 3, 150)
        assert out is not None and out[0] == 2


class TestCascade:
    def test_filter_matches_direct(self):
        candidates = [(1 << 8) | (i << 1) | 1 for i in range(40, 80)]
        survivors, stages = increasing_length_filter(candidates, [16, 60], 4)
        for g in candidates:
            direct = refute_hd_at(g, 4, 60) is None
            assert (g in survivors) == direct
        assert [n for n, _ in stages] == [16, 60]
        # survivor counts decrease monotonically
        counts = [c for _, c in stages]
        assert counts == sorted(counts, reverse=True)
