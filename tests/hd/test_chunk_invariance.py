"""Chunking must never change answers -- property tests over the MITM
engine's streaming parameters."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hd.mitm import exists_weight_k, find_witness, minimal_codeword_span
from repro.hd.syndromes import syndrome_of_positions

gen_polys = st.integers(min_value=0b100101, max_value=(1 << 11) - 1).filter(
    lambda p: p & 1
)
chunks = st.sampled_from([1, 3, 17, 64, 1 << 22])


class TestChunkInvariance:
    @given(gen_polys, st.integers(min_value=8, max_value=40),
           st.integers(min_value=3, max_value=6), chunks)
    @settings(max_examples=150, deadline=None)
    def test_exists_invariant(self, g, N, k, chunk):
        baseline = exists_weight_k(g, N, k)
        assert exists_weight_k(g, N, k, chunk_elems=chunk) == baseline

    @given(gen_polys, st.integers(min_value=8, max_value=30),
           st.integers(min_value=3, max_value=5), chunks)
    @settings(max_examples=100, deadline=None)
    def test_span_invariant(self, g, N, k, chunk):
        baseline = minimal_codeword_span(g, N, k)
        assert minimal_codeword_span(g, N, k, chunk_elems=chunk) == baseline

    @given(gen_polys, st.integers(min_value=8, max_value=30),
           st.integers(min_value=3, max_value=5), chunks)
    @settings(max_examples=100, deadline=None)
    def test_witness_validity_invariant(self, g, N, k, chunk):
        # witnesses may differ across chunkings, but existence must
        # agree and every returned witness must verify
        w_base = find_witness(g, N, k)
        w_chunk = find_witness(g, N, k, chunk_elems=chunk)
        assert (w_base is None) == (w_chunk is None)
        if w_chunk is not None:
            assert len(w_chunk) == k
            assert syndrome_of_positions(g, w_chunk) == 0
