"""Tests for the paper's enumeration engine (reference path)."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hd.reference import (
    _pattern_order_fcs_first,
    enumerate_weights_reference,
    first_undetected_reference,
)
from repro.hd.syndromes import is_undetected_pattern
from repro.hd.weights import brute_force_weights

gen_polys = st.integers(min_value=0b10011, max_value=(1 << 11) - 1).filter(
    lambda p: p & 1
)


class TestOrderings:
    @given(st.integers(min_value=4, max_value=14), st.integers(min_value=2, max_value=4),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_fcs_first_is_a_permutation(self, N, k, r):
        if k > N:
            return
        seen = list(_pattern_order_fcs_first(N, k, r))
        assert sorted(seen) == sorted(combinations(range(N), k))
        assert len(set(seen)) == len(seen)

    def test_fcs_first_starts_with_fcs_bits(self):
        patterns = list(_pattern_order_fcs_first(10, 3, 4))
        first = patterns[0]
        assert any(p < 4 for p in first)
        # exactly-one-FCS-bit patterns come before exactly-two
        one_fcs = [p for p in patterns if sum(x < 4 for x in p) == 1]
        assert patterns.index(one_fcs[-1]) < patterns.index(
            [p for p in patterns if sum(x < 4 for x in p) == 2][0]
        )


class TestWeightsMatchBruteForce:
    @given(gen_polys, st.integers(min_value=2, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_lex_counts(self, g, n):
        from repro.gf2.poly import degree

        if n + degree(g) > 22:
            return
        res = enumerate_weights_reference(g, n, 4, order="lex")
        assert res.weights == brute_force_weights(g, n, 4)

    @given(gen_polys, st.integers(min_value=2, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_fcs_first_counts_identical(self, g, n):
        from repro.gf2.poly import degree

        if n + degree(g) > 20:
            return
        lex = enumerate_weights_reference(g, n, 4, order="lex")
        fcs = enumerate_weights_reference(g, n, 4, order="fcs_first")
        assert lex.weights == fcs.weights


class TestEarlyBailout:
    def test_bailout_returns_verified_witness(self):
        g = 0x107
        res = first_undetected_reference(g, 30, 4)
        assert res.bailed_out
        assert is_undetected_pattern(g, res.first_witness)
        assert len(res.first_witness) == res.first_witness_weight

    def test_bailout_examines_fewer(self):
        g = 0x107
        full = enumerate_weights_reference(g, 30, 4, order="lex")
        early = enumerate_weights_reference(g, 30, 4, order="lex", early_out=True)
        assert early.patterns_examined < full.patterns_examined

    def test_fcs_first_wins_on_majority_of_sample(self):
        # The paper's observation -- most failures involve FCS bits,
        # so FCS-first usually bails out sooner -- is statistical, not
        # per-polynomial.  On a fixed seeded sample of degree-12
        # generators it wins the majority of head-to-heads (the full
        # 32-bit-at-MTU effect is measured in benchmark E6).
        import random

        rng = random.Random(42)
        wins = ties_or_losses = 0
        for _ in range(20):
            g = (1 << 12) | (rng.getrandbits(11) << 1) | 1
            lex = first_undetected_reference(g, 60, 4, order="lex",
                                             hard_limit=10**7)
            fcs = first_undetected_reference(g, 60, 4, order="fcs_first",
                                             hard_limit=10**7)
            if not (lex.bailed_out and fcs.bailed_out):
                continue
            if fcs.patterns_examined <= lex.patterns_examined:
                wins += 1
            else:
                ties_or_losses += 1
        assert wins > ties_or_losses

    def test_hard_limit(self):
        with pytest.raises(RuntimeError):
            enumerate_weights_reference(0x104C11DB7, 500, 4, hard_limit=1000)

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            enumerate_weights_reference(0x107, 10, 3, order="sideways")
