"""The paper's concrete numerical claims, verified exactly.

This file is the heart of the reproduction: every assertion corresponds
to a number printed in the paper (§3, §4, Table 1, the errata).  Fast
claims run in the default suite; the multi-10-second exact computations
at long lengths carry ``@pytest.mark.slow`` (RUN_SLOW=1) and are also
exercised by the benchmark harness with timing.
"""

from __future__ import annotations

import pytest

from repro.crc.catalog import (
    CASTAGNOLI_CORRECT_FULL,
    CASTAGNOLI_TYPO_FULL,
    PAPER_POLYS,
)
from repro.gf2.notation import koopman_to_full
from repro.hd.breakpoints import first_failure_length, max_length_for_hd, refute_hd_at
from repro.hd.hamming import hamming_distance
from repro.hd.weights import count_weight_4, weight_profile

MTU = 12112

G_8023 = koopman_to_full(0x82608EDB)
G_ISCSI = koopman_to_full(0x8F6E37A0)
G_BA0D = koopman_to_full(0xBA0DC66B)
G_FA56 = koopman_to_full(0xFA567D89)
G_992C = koopman_to_full(0x992C1A4C)
G_9002 = koopman_to_full(0x90022004)
G_D419 = koopman_to_full(0xD419CC15)
G_8010 = koopman_to_full(0x80108400)


class TestAbstractClaims:
    """The abstract/intro: 802.3 gets HD=4 at MTU, HD=6 is possible."""

    def test_8023_hd4_at_mtu(self):
        assert hamming_distance(G_8023, MTU) == 4

    def test_hd6_possible_at_mtu(self):
        assert hamming_distance(G_BA0D, MTU) == 6

    def test_iscsi_draft_poly_only_hd4_at_mtu(self):
        # §4.3: the {1,31} class "has now been proven to have no
        # polynomials with HD>4 for MTU-sized messages" -- its
        # recommended member is HD=4 there.
        assert hamming_distance(G_ISCSI, MTU) == 4


class Test8023Breakpoints:
    """§3: "the 802.3 polynomial has HD >= 8 up to 91 bits, HD=7 to
    171 bits, HD=6 to 268 bits, HD=5 to 2974 bits, HD=4 to 91607
    bits"."""

    def test_hd8_to_91(self):
        assert hamming_distance(G_8023, 91) >= 8
        assert hamming_distance(G_8023, 92) == 7

    def test_hd7_to_171(self):
        assert hamming_distance(G_8023, 171) == 7
        assert hamming_distance(G_8023, 172) == 6

    def test_hd6_to_268(self):
        assert hamming_distance(G_8023, 268) == 6
        assert hamming_distance(G_8023, 269) == 5

    def test_hd5_to_2974_worked_example(self):
        # §4.1's worked example: break at 2974/2975 with exactly one
        # undetected 4-bit error at 2975.
        assert first_failure_length(G_8023, 4, n_max=4000) == 2975
        assert weight_profile(G_8023, 2975, 4) == {2: 0, 3: 0, 4: 1}
        assert weight_profile(G_8023, 2974, 4) == {2: 0, 3: 0, 4: 0}

    def test_max_length_for_hd5(self):
        assert max_length_for_hd(G_8023, 5, n_max=4000) == 2974

    @pytest.mark.slow
    def test_hd4_to_91607(self):
        # weight-3 errors first become undetectable at 91608.
        assert first_failure_length(G_8023, 3, n_max=95000) == 91608

    @pytest.mark.slow
    def test_w4_at_mtu_is_223059(self):
        # §3's headline weight: W4 = 223,059 at 12112 bits.
        assert count_weight_4(G_8023, MTU + 32) == 223059


class TestBa0dc66bClaims:
    """§4.3/§5: the new {1,3,28} polynomial's advertised profile."""

    def test_hd6_at_mtu(self):
        assert hamming_distance(G_BA0D, MTU) == 6

    @pytest.mark.slow
    def test_hd6_to_16360(self):
        assert first_failure_length(G_BA0D, 4, n_max=20000) == 16361
        # HD=6 confirmed at 16360 == no weight-<6 error there
        assert refute_hd_at(G_BA0D, 6, 16360) is None

    def test_hd4_to_114663_via_order(self):
        # HD >= 4 out to 114663 needs only W2/W3 absence: W3 == 0 by
        # parity, W2 == 0 below the order.  Pure algebra.
        from repro.gf2.order import hd2_data_word_limit
        from repro.gf2.poly import divisible_by_x_plus_1

        assert divisible_by_x_plus_1(G_BA0D)
        assert hd2_data_word_limit(G_BA0D) == 114663

    def test_more_than_9x_mtu(self):
        assert 114663 > 9 * MTU

    def test_hd8_band(self):
        # Table 1 (chained): HD=8 for 19..152, HD=6 from 153.
        assert hamming_distance(G_BA0D, 152) == 8
        assert hamming_distance(G_BA0D, 153) == 6


class TestCastagnoliClaims:
    """§3's recap of [Castagnoli93] results, independently verified."""

    def test_fa567d89_hd6_band_start(self):
        # Table 1 chain: HD=8 to 274, HD=6 from 275.
        assert hamming_distance(G_FA56, 274) == 8
        assert hamming_distance(G_FA56, 275) == 6

    @pytest.mark.slow
    def test_fa567d89_hd6_to_32736(self):
        # "gives HD=6 up to almost 32K bits. (No polynomial gives HD=6
        # at exactly 32K bit data word length.)"
        assert first_failure_length(G_FA56, 4, n_max=33000) == 32737
        assert 32736 < 32768  # "almost 32K"

    def test_d419cc15_hd5_band(self):
        # HD=6 to 1060, HD=5 from 1061 (Table 1).
        assert hamming_distance(G_D419, 1060) == 6
        assert hamming_distance(G_D419, 1061) == 5

    @pytest.mark.slow
    def test_d419cc15_hd5_to_65505(self):
        # "gives HD=5 up to almost 64K bits ... drops to HD=2 above
        # 65505 bits": no weight 3 or 4 failure through 65505, order
        # 65537 takes over after.
        assert first_failure_length(G_D419, 3, n_max=65505) is None
        assert first_failure_length(G_D419, 4, n_max=65505) is None
        from repro.gf2.order import order_of_x

        assert order_of_x(G_D419) == 65537

    def test_iscsi_poly_hd6_to_5243(self):
        assert hamming_distance(G_ISCSI, 5243) == 6
        assert hamming_distance(G_ISCSI, 5244) == 4


class TestCastagnoliPublicationError:
    """§3: the published {1,1,15,15} value 1F6ACFB13 is a typo for
    1F4ACFB13; the wrong polynomial "has HD=6 up to a length of only
    382 bits"."""

    def test_one_bit_difference(self):
        assert (CASTAGNOLI_TYPO_FULL ^ CASTAGNOLI_CORRECT_FULL).bit_count() == 1

    def test_wrong_poly_hd6_collapses_near_382(self):
        # Measured: the typo polynomial (odd term count, so NOT
        # divisible by (x+1)) first admits an undetected 5-bit error
        # at 384 bits -- HD=6 holds through 383.  The paper's prose
        # says "only 382 bits"; the one-bit disagreement is recorded
        # in EXPERIMENTS.md (all other cells match exactly, and the
        # substantive claim -- collapse at ~0.4K instead of ~32K --
        # reproduces).
        assert first_failure_length(CASTAGNOLI_TYPO_FULL, 5, n_max=1000) == 384
        assert hamming_distance(CASTAGNOLI_TYPO_FULL, 382) == 6
        assert hamming_distance(CASTAGNOLI_TYPO_FULL, 384) == 5

    def test_correct_poly_fine_at_384(self):
        assert hamming_distance(CASTAGNOLI_CORRECT_FULL, 384) == 6


class TestErratum2014:
    """Page-4 erratum: 0x992C1A4C provides HD=6 up to 32738 bits (the
    original paper said 32737)."""

    @pytest.mark.slow
    def test_992c1a4c_hd6_to_32738(self):
        assert first_failure_length(G_992C, 4, n_max=33100) == 32739

    @pytest.mark.slow
    def test_90022004_hd6_to_32738(self):
        assert first_failure_length(G_9002, 4, n_max=33100) == 32739


class TestSparse80108400:
    """§4.2: 0x80108400 achieves HD=5 up to nearly 64K bits with the
    minimum possible number of non-zero coefficients."""

    def test_hd5_at_moderate_lengths(self):
        assert hamming_distance(G_8010, 1000) == 5
        assert hamming_distance(G_8010, 10000) == 5

    @pytest.mark.slow
    def test_hd5_to_65505(self):
        assert first_failure_length(G_8010, 3, n_max=65505) is None
        assert first_failure_length(G_8010, 4, n_max=65505) is None
        from repro.gf2.order import order_of_x

        assert order_of_x(G_8010) == 65537


class TestInverseFilteringBounds:
    """§4.2: "no possible polynomials of any class with HD=6 at or
    above 32739 bits and no polynomials with HD=5 at or above 65507
    bits".  A full 2^30 sweep is out of scope (DESIGN.md); here we
    verify the named polynomials saturate those bounds -- the
    {1,1,30} pair reach HD=6 exactly to 32738 and the {32} pair
    HD=5 exactly to 65505/65506-1 -- so the bounds are tight."""

    def test_hd6_bound_consistency(self):
        assert PAPER_POLYS["992C1A4C"].hd_breaks[6] == 32738 == 32739 - 1

    def test_hd5_bound_consistency(self):
        assert PAPER_POLYS["D419CC15"].hd_breaks[5] == 65505 <= 65507 - 1
